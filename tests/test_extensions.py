"""Tests for the beyond-paper extensions (mapping search, dynamic platforms)."""

import numpy as np
import pytest

from repro import Application, Instance, Platform, compute_period
from repro.extensions import (
    DynamicPlatformModel,
    greedy_mapping,
    local_search_mapping,
    random_mapping,
    simulate_dynamic,
)


def small_problem():
    app = Application(works=[4.0, 12.0, 4.0], file_sizes=[1.0, 1.0])
    plat = Platform.homogeneous(6, speed=1.0, bandwidth=1.0)
    return app, plat


class TestRandomMapping:
    def test_valid_and_deterministic(self):
        app, plat = small_problem()
        rng = np.random.default_rng(3)
        m1 = random_mapping(app, plat, rng)
        m2 = random_mapping(app, plat, np.random.default_rng(3))
        assert m1 == m2
        assert m1.n_stages == 3
        assert max(m1.used_processors) < 6


class TestGreedy:
    def test_replicates_the_heavy_stage(self):
        """Stage 1 is 3x heavier: greedy should replicate it first."""
        app, plat = small_problem()
        res = greedy_mapping(app, plat, "overlap")
        assert res.mapping.replication(1) >= 2
        # trace is monotone decreasing
        assert all(a >= b for a, b in zip(res.trace, res.trace[1:]))

    def test_beats_singleton_mapping(self):
        app, plat = small_problem()
        res = greedy_mapping(app, plat, "overlap")
        from repro import Mapping

        base = Instance(app, plat, Mapping([(0,), (1,), (2,)]))
        assert res.period <= compute_period(base, "overlap").period + 1e-12

    def test_needs_enough_processors(self):
        app, _ = small_problem()
        with pytest.raises(Exception):
            greedy_mapping(app, Platform.homogeneous(2))


class TestLocalSearch:
    def test_improves_or_matches_start(self):
        app, plat = small_problem()
        rng = np.random.default_rng(11)
        start = random_mapping(app, plat, rng)
        base = compute_period(Instance(app, plat, start), "overlap").period
        res = local_search_mapping(app, plat, "overlap", rng=rng, start=start,
                                   max_iters=20)
        assert res.period <= base + 1e-12
        assert res.evaluations > 0

    def test_batched_neighborhood_matches_serial_trajectory(self):
        """n_jobs neighborhood evaluation accepts the same moves."""
        app, plat = small_problem()
        start = random_mapping(app, plat, np.random.default_rng(11))
        serial = local_search_mapping(
            app, plat, "overlap", rng=np.random.default_rng(5),
            start=start, max_iters=8,
        )
        batched = local_search_mapping(
            app, plat, "overlap", rng=np.random.default_rng(5),
            start=start, max_iters=8, n_jobs=2,
        )
        assert batched.period == serial.period
        assert batched.mapping == serial.mapping
        assert batched.trace == serial.trace
        # The batch path evaluates whole neighborhoods, never fewer
        # oracle calls than first-improvement.
        assert batched.evaluations >= serial.evaluations

    def test_shared_engine_reused_across_searches(self):
        from repro.engine import BatchEngine

        app, plat = small_problem()
        engine = BatchEngine(max_rows=3001)
        # STRICT resolves to the TPN method, which exercises the cache.
        first = greedy_mapping(app, plat, "strict", engine=engine)
        misses_after_first = engine.stats.misses
        second = greedy_mapping(app, plat, "strict", engine=engine)
        assert first.period == second.period
        # The second search re-proposes the same mappings: all hits.
        assert engine.stats.misses == misses_after_first
        assert engine.stats.hits > 0

    def test_heterogeneous_prefers_fast_processors(self):
        app = Application(works=[1.0, 1.0], file_sizes=[0.001])
        plat = Platform(
            speeds=[10.0, 10.0, 0.1, 0.1],
            bandwidths=np.where(np.eye(4, dtype=bool), 0.0, 100.0),
        )
        res = greedy_mapping(app, plat, "overlap")
        used = set(res.mapping.used_processors[:2])
        assert used == {0, 1}


class TestDynamicPlatforms:
    def test_zero_spread_is_nominal(self):
        from repro.experiments import example_b

        dist = simulate_dynamic(
            example_b(), "overlap",
            DynamicPlatformModel(speed_spread=0.0, bandwidth_spread=0.0),
            n_epochs=5,
        )
        assert np.allclose(dist.periods, dist.nominal_period)
        assert dist.degradation == pytest.approx(0.0)

    def test_deterministic_given_seed(self):
        from repro.experiments import example_b

        mdl = DynamicPlatformModel(speed_spread=0.3, bandwidth_spread=0.3)
        a = simulate_dynamic(example_b(), "overlap", mdl, n_epochs=10, seed=4)
        b = simulate_dynamic(example_b(), "overlap", mdl, n_epochs=10, seed=4)
        assert np.array_equal(a.periods, b.periods)

    def test_slowdowns_hurt(self):
        """With only slowdowns possible (lognormal floor via negative...),
        use uniform noise and check the mean period is near nominal and
        the 95th percentile above it."""
        from repro.experiments import example_b

        mdl = DynamicPlatformModel(speed_spread=0.4, bandwidth_spread=0.4)
        dist = simulate_dynamic(example_b(), "overlap", mdl, n_epochs=60, seed=1)
        assert dist.quantile(0.95) >= dist.nominal_period * 0.9
        assert dist.mean_throughput > 0

    def test_lognormal_law(self):
        from repro.experiments import example_b

        mdl = DynamicPlatformModel(speed_spread=0.2, bandwidth_spread=0.2,
                                   law="lognormal")
        dist = simulate_dynamic(example_b(), "overlap", mdl, n_epochs=10, seed=2)
        assert np.all(dist.periods > 0)

    def test_unknown_law_rejected(self):
        with pytest.raises(ValueError):
            DynamicPlatformModel(law="cauchy")
