"""Tests for the algorithms package (Theorem 1, general TPN, bounds)."""

import pytest
from hypothesis import given, settings

from repro import ValidationError, compute_period
from repro.algorithms import (
    classify_critical_resource,
    describe_critical_cycle,
    overlap_period,
    period_lower_bound,
    tpn_period,
)
from repro.experiments import example_a, example_b

from .conftest import small_instances


class TestOverlapBreakdown:
    def test_columns_cover_net(self):
        bd = overlap_period(example_a())
        assert [c.column for c in bd.columns] == list(range(7))
        assert [c.kind for c in bd.columns] == [
            "comp", "comm", "comp", "comm", "comp", "comm", "comp"
        ]

    def test_period_is_max_contribution(self):
        bd = overlap_period(example_a())
        assert bd.period == max(c.value for c in bd.columns)

    def test_describe_lines(self):
        bd = overlap_period(example_a())
        assert "S0 computation" in bd.columns[0].describe()
        assert "F0 transmission" in bd.columns[1].describe()

    @given(small_instances())
    @settings(max_examples=20, deadline=None)
    def test_contributions_bound_cycle_times(self, inst):
        """Each resource's overlap cycle-time is dominated by its column."""
        from repro import cycle_times

        bd = overlap_period(inst)
        rep = cycle_times(inst, "overlap")
        for ct in rep.per_processor:
            assert bd.period >= ct.cexec(rep.model) - 1e-9


class TestTpnSolution:
    def test_critical_cycle_ratio_consistency(self):
        sol = tpn_period(example_b(), "overlap")
        g = sol.net.to_ratio_graph()
        assert g.cycle_ratio_of(sol.ratio.cycle_edges) == pytest.approx(
            sol.ratio.value
        )
        assert sol.period == pytest.approx(sol.ratio.value / sol.net.n_rows)

    def test_describe_critical_cycle(self):
        sol = tpn_period(example_a(), "strict")
        text = describe_critical_cycle(sol)
        assert "critical cycle" in text
        assert "duration" in text
        # at least two transitions in a strict cycle
        assert len(text.splitlines()) >= 3

    def test_critical_transitions_belong_to_net(self):
        sol = tpn_period(example_a(), "strict")
        for t in sol.critical_transitions:
            assert sol.net.transitions[t.index] is t


class TestBounds:
    def test_lower_bound_matches_cycle_times(self):
        from repro import maximum_cycle_time

        assert period_lower_bound(example_a(), "overlap") == maximum_cycle_time(
            example_a(), "overlap"
        )

    def test_classification_tight(self):
        v = classify_critical_resource(example_a(), "overlap", 189.0)
        assert v.has_critical_resource
        assert v.relative_gap == pytest.approx(0.0)
        assert (0, "out") in v.critical_resources

    def test_classification_gap(self):
        v = classify_critical_resource(example_b(), "overlap", 3500.0 / 12)
        assert not v.has_critical_resource
        assert v.relative_gap == pytest.approx(400.0 / 3100.0)
        assert v.critical_resources == ()


class TestComputePeriodApi:
    def test_polynomial_rejected_for_strict(self):
        with pytest.raises(ValidationError):
            compute_period(example_a(), "strict", method="polynomial")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValidationError):
            compute_period(example_a(), "overlap", method="magic")

    def test_simulation_method(self):
        res = compute_period(example_a(), "overlap", method="simulation")
        assert res.period == pytest.approx(189.0, rel=1e-6)
        assert res.method == "simulation"

    def test_auto_dispatch(self):
        assert compute_period(example_a(), "overlap").method == "polynomial"
        assert compute_period(example_a(), "strict").method == "tpn"

    def test_summary_text(self):
        res = compute_period(example_b(), "overlap")
        s = res.summary()
        assert "NO — every resource idles" in s
        assert "291.667" in s
        res = compute_period(example_a(), "overlap")
        assert "yes (P = Mct)" in res.summary()

    def test_throughput_inverse(self):
        res = compute_period(example_a(), "overlap")
        assert res.throughput == pytest.approx(1.0 / 189.0)
