"""Spill-journal → heal properties: idempotent, commutative, convergent.

Hypothesis property tests over the degradation ladder's bottom rung.
The journal reuses the sync layer's directory-remote layout and heal is
a counted wrapper over `sync.pull`, so these pin the merge algebra as
seen through the journal: healing twice changes nothing, heal commutes
with concurrent direct commits (content addressing leaves nothing
order-dependent), an interrupted heal converges on retry, and a spill
entry torn by the very fault that forced the spill is quarantined
instead of merged.  All runs are derandomized — the examples are part
of the repo's deterministic test surface.
"""

from __future__ import annotations

import hashlib
import sqlite3
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign import ResultStore
from repro.faults import FAULTS, FaultPlan, RetryPolicy, SpillJournal, heal
from repro.telemetry import TELEMETRY
from repro.utils import canonical_json

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(autouse=True)
def _clean_planes():
    FAULTS.disarm()
    TELEMETRY.disable()
    yield
    FAULTS.disarm()
    TELEMETRY.disable()


def _payload(i: int) -> tuple[str, str]:
    """A (digest, canonical payload text) pair that passes validation."""
    text = canonical_json({
        "schema": 1,
        "model": "overlap",
        "method": "binary-search",
        "period": float(i) + 0.5,
        "mct": float(i),
        "critical": 0.25,
        "gap": 0.0,
        "m": 3,
        "n_stages": 3,
        "n_procs": 8,
        "replication": [1, 1, 1],
    })
    return hashlib.sha256(text.encode("utf-8")).hexdigest(), text


#: Non-empty sets of distinct payload indices (small: each index costs a
#: store round-trip per heal pass).
_INDICES = st.sets(st.integers(min_value=0, max_value=40), min_size=1,
                   max_size=8)


class TestHealProperties:
    @_SETTINGS
    @given(indices=_INDICES)
    def test_heal_is_idempotent(self, indices):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            journal = SpillJournal(tmp / "journal")
            for i in sorted(indices):
                digest, text = _payload(i)
                assert journal.spill(digest, text)
                assert not journal.spill(digest, text)  # first spill wins
            assert len(journal) == len(indices)

            with ResultStore(tmp / "s.sqlite") as store:
                first = heal(store, journal.root)
                assert first.clean
                assert first.merged == len(indices)
                after_first = list(store.items_text())

                second = heal(store, journal.root)
                assert second.clean
                assert second.merged == 0
                assert second.skipped == len(indices)
                assert list(store.items_text()) == after_first

    @_SETTINGS
    @given(spilled=_INDICES, direct=_INDICES)
    def test_heal_commutes_with_concurrent_direct_commits(self, spilled,
                                                          direct):
        """heal-then-commit and commit-then-heal reach the same store,
        even when the spilled and directly-committed sets overlap."""
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            journal = SpillJournal(tmp / "journal")
            for i in sorted(spilled):
                journal.spill(*_payload(i))

            def commit_direct(store):
                for i in sorted(direct):
                    digest, text = _payload(i)
                    store.put_text(digest, text)

            with ResultStore(tmp / "a.sqlite") as store:
                heal(store, journal.root)
                commit_direct(store)
                heal_first = list(store.items_text())
            with ResultStore(tmp / "b.sqlite") as store:
                commit_direct(store)
                report = heal(store, journal.root)
                assert report.clean  # overlaps skip, never conflict
                commit_first = list(store.items_text())

            assert heal_first == commit_first
            assert len(heal_first) == len(spilled | direct)

    @_SETTINGS
    @given(indices=st.sets(st.integers(min_value=0, max_value=40),
                           min_size=2, max_size=8))
    def test_interrupted_heal_converges_on_retry(self, indices):
        """A heal killed mid-merge (injected store fault after the first
        row lands) leaves a partial store; re-running heal replays the
        remainder and converges on the full set."""
        fast = RetryPolicy(attempts=2, base_delay=0.001, max_delay=0.002,
                           budget=0.01)
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            journal = SpillJournal(tmp / "journal")
            for i in sorted(indices):
                journal.spill(*_payload(i))

            with ResultStore(tmp / "s.sqlite") as store:
                # The 2nd put of the heal dies, and keeps dying through
                # the retry budget — the heal itself fails part-way.
                FAULTS.arm(FaultPlan.single("store.put", "operational",
                                            at=2, repeat=100))
                from repro.campaign.sync import pull

                with pytest.raises(sqlite3.OperationalError,
                                   match="injected"):
                    pull(store, f"{journal.root}/", retry=fast)
                assert 0 < len(store) < len(indices)

                FAULTS.disarm()
                report = heal(store, journal.root)
                assert report.clean
                assert report.merged + report.skipped == len(indices)
                assert set(store.digests()) == set(journal.digests())

    @_SETTINGS
    @given(indices=_INDICES, torn=st.integers(min_value=0, max_value=7))
    def test_torn_spill_entry_is_quarantined_not_merged(self, indices,
                                                        torn):
        """A spill torn mid-write (injected truncation) heals into the
        quarantine, never into the results table."""
        ordered = sorted(indices)
        torn_index = ordered[torn % len(ordered)]
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            journal = SpillJournal(tmp / "journal")
            for i in ordered:
                digest, text = _payload(i)
                if i == torn_index:
                    FAULTS.arm(FaultPlan.single("journal.spill-write",
                                                "truncate"))
                    journal.spill(digest, text)
                    FAULTS.disarm()
                else:
                    journal.spill(digest, text)

            torn_digest, _ = _payload(torn_index)
            with ResultStore(tmp / "s.sqlite") as store:
                report = heal(store, journal.root)
                assert not report.clean
                assert report.merged == len(ordered) - 1
                assert [d for d, _ in report.quarantined] == [torn_digest]
                assert torn_digest not in set(store.digests())
                # The torn bytes are parked with a reason, not dropped.
                rows = store.quarantined()
                assert any(row[0] == torn_digest for row in rows)


class TestJournalCounters:
    def test_spill_and_heal_are_counted(self, tmp_path):
        TELEMETRY.enable("t")
        journal = SpillJournal(tmp_path / "journal")
        for i in range(3):
            journal.spill(*_payload(i))
        with ResultStore(tmp_path / "s.sqlite") as store:
            heal(store, journal.root)
            heal(store, journal.root)
        counters = TELEMETRY.counter_snapshot()
        assert counters["journal.spills"] == 3
        assert counters["journal.heal_replayed"] == 3
        assert counters["journal.heal_skipped"] == 3

    def test_heal_of_missing_journal_is_a_clean_noop(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            report = heal(store, tmp_path / "never-spilled")
            assert report.clean
            assert report.examined == 0
