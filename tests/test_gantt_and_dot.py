"""Tests for Gantt rendering and DOT export (Figures 4/5/7/8/12/14)."""

import pytest

from repro import compute_period
from repro.experiments import example_a, example_b
from repro.petri import build_tpn, comm_patterns
from repro.petri.dot import pattern_to_dot, tpn_to_dot
from repro.simulation import (
    extract_schedules,
    measure_period,
    render_gantt,
    resource_order,
    simulate,
    utilization_table,
)


class TestResourceOrder:
    def test_overlap_order_matches_figure7_layout(self):
        order = resource_order(example_a(), "overlap")
        # P0 computes S0: no input port; then out; P1 has all three.
        assert order[:4] == ["P0:comp", "P0:out", "P1:in", "P1:comp"]
        assert order[-1] == "P6:comp"
        # sink P6 has no output port
        assert "P6:out" not in order

    def test_strict_order_is_processors(self):
        order = resource_order(example_a(), "strict")
        assert order == [f"P{u}" for u in (0, 1, 2, 3, 4, 5, 6)]


class TestGanttRendering:
    def _chart(self, inst, model, firings=40, width=90):
        net = build_tpn(inst, model)
        trace = simulate(net, firings)
        schedules = extract_schedules(trace, model)
        est = measure_period(trace)
        t1 = min(s.intervals[-1].end for s in schedules.values())
        t0 = max(0.0, t1 - 2 * est.rate)
        return render_gantt(schedules, t0, t1, width=width,
                            resources=resource_order(inst, model))

    def test_strict_example_a_shows_idle_everywhere(self):
        """Figure 7: every resource has idle time in each period."""
        chart = self._chart(example_a(), "strict")
        for line in chart.splitlines()[1:]:  # skip ruler
            body = line.split("|")[1]
            assert "." in body, f"no idle time on row: {line}"

    def test_overlap_example_a_saturates_p0_out(self):
        """P0's output port is the critical resource: fully busy."""
        net = build_tpn(example_a(), "overlap")
        trace = simulate(net, 60)
        schedules = extract_schedules(trace, "overlap")
        sched = schedules["P0:out"]
        t1 = sched.intervals[-1].end
        t0 = t1 - 4 * 189.0 * 6
        assert sched.utilization(t0, t1) == pytest.approx(1.0, abs=1e-9)

    def test_labels_embedded(self):
        chart = self._chart(example_b(), "overlap", width=200)
        assert "F0 (" in chart

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            render_gantt({}, 10.0, 10.0)

    def test_utilization_table(self):
        net = build_tpn(example_a(), "strict")
        trace = simulate(net, 40)
        schedules = extract_schedules(trace, "strict")
        tab = utilization_table(schedules, 0.0, 1000.0,
                                resources=resource_order(example_a(), "strict"))
        lines = tab.splitlines()
        assert len(lines) == 1 + 7
        assert lines[1].startswith("P0")


class TestDotExport:
    def test_tpn_dot_well_formed(self):
        net = build_tpn(example_a(), "overlap")
        dot = tpn_to_dot(net, title="Example A")
        assert dot.startswith("digraph tpn {") and dot.endswith("}")
        # one node per transition
        assert dot.count("[label=") >= net.n_transitions
        # tokens rendered
        assert "&#9679;" in dot
        assert "Example A" in dot

    def test_critical_cycle_highlight(self):
        res = compute_period(example_a(), "strict", method="tpn")
        net = res.tpn_solution.net
        dot = tpn_to_dot(net, highlight=res.tpn_solution.ratio.cycle_nodes)
        assert "color=red" in dot

    def test_pattern_dot(self):
        pat = comm_patterns(example_b(), 0)[0]
        dot = pattern_to_dot(pat, title="F0 pattern")
        assert dot.count("->") == 24  # 2 edges per cell
        assert "P0&rarr;P3" in dot
