"""Tests for TPN construction (Sections 3.2 / 3.3 of the paper)."""

import pytest
from hypothesis import given, settings

from repro import ReplicationExplosionError
from repro.experiments import example_a
from repro.petri import PlaceKind, build_tpn, validate_tpn

from .conftest import small_instances


class TestExampleADimensions:
    """The net of Figure 4: m = 6 rows, 2n-1 = 7 columns."""

    def test_overlap_shape(self):
        net = build_tpn(example_a(), "overlap")
        assert (net.n_rows, net.n_columns) == (6, 7)
        assert net.n_transitions == 42

    def test_overlap_place_census(self):
        net = build_tpn(example_a(), "overlap")
        rep = validate_tpn(net)
        # flow: 6 rows x 6 column-gaps
        assert rep.places_by_kind[PlaceKind.FLOW] == 36
        # comp circuits: every row position of each column -> 4 columns x 6
        assert rep.places_by_kind[PlaceKind.RR_COMP] == 24
        # out circuits on comm columns: 3 columns x 6 rows
        assert rep.places_by_kind[PlaceKind.RR_OUT] == 18
        assert rep.places_by_kind[PlaceKind.RR_IN] == 18
        # one token per circuit: 7 comp + 7 out-ports... counted below
        assert rep.tokens == net.total_tokens()

    def test_overlap_token_count_equals_circuits(self):
        net = build_tpn(example_a(), "overlap")
        # circuits: comp per processor (7) + out ports (1+2+3=6... P0,P1,P2,
        # P3,P4,P5 have successors -> 6) + in ports (P1..P6 -> 6)
        assert net.total_tokens() == 7 + 6 + 6

    def test_strict_place_census(self):
        net = build_tpn(example_a(), "strict")
        rep = validate_tpn(net)
        assert rep.places_by_kind[PlaceKind.FLOW] == 36
        # one serialization circuit per processor, total 6 rows per column
        # span: each row of each processor contributes one place -> 4
        # stages x 6 rows = 24
        assert rep.places_by_kind[PlaceKind.RCS] == 24
        assert net.total_tokens() == 7  # one token per processor

    def test_transition_durations_follow_mapping(self):
        inst = example_a()
        net = build_tpn(inst, "overlap")
        # row 1 computation of S1 runs on P2 (round-robin)
        t = net.transition_at(1, 2)
        assert t.kind == "comp" and t.procs == (2,)
        assert t.duration == pytest.approx(inst.comp_time(1, 2))
        # row 1 transmission of F0 goes P0 -> P2 with time 192
        t = net.transition_at(1, 1)
        assert t.procs == (0, 2)
        assert t.duration == pytest.approx(192.0)

    def test_labels(self):
        net = build_tpn(example_a(), "overlap")
        assert net.transition_at(0, 0).label == "S0/P0 [row 0]"
        assert net.transition_at(1, 1).label == "F0:P0->P2 [row 1]"


class TestRowBudget:
    def test_explosion_guard(self):
        from repro.experiments import example_c

        with pytest.raises(ReplicationExplosionError) as err:
            build_tpn(example_c(), "overlap", max_rows=1000)
        assert err.value.m == 10395

    def test_budget_disabled(self):
        # max_rows=None builds even the big net (structure only, no solve)
        from repro.experiments import example_c

        net = build_tpn(example_c(), "overlap", max_rows=None)
        assert net.n_rows == 10395
        assert net.n_transitions == 10395 * 7


class TestInvariantsOnRandomInstances:
    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_both_models_validate(self, inst):
        for model in ("overlap", "strict"):
            net = build_tpn(inst, model)
            rep = validate_tpn(net)
            assert rep.n_transitions == inst.num_paths * (2 * inst.n_stages - 1)

    @given(small_instances())
    @settings(max_examples=25, deadline=None)
    def test_overlap_cycles_stay_in_columns(self, inst):
        """Section 4.1: any overlap cycle contains transitions of a single
        column — check via SCC membership."""
        net = build_tpn(inst, "overlap")
        graph = net.to_ratio_graph()
        for comp in graph.strongly_connected_components():
            cols = {net.transitions[t].column for t in comp}
            if len(comp) > 1:
                assert len(cols) == 1

    @given(small_instances())
    @settings(max_examples=25, deadline=None)
    def test_strict_token_count_is_processor_count(self, inst):
        net = build_tpn(inst, "strict")
        assert net.total_tokens() == sum(inst.replication_counts)
