"""Telemetry: counter determinism, span traces, merges, and exporters.

The central contract of PR 8: instrumentation observes without
perturbing.  The *contract* counter tier is partition-invariant —
identical totals for a serial run, a span-parallel ``n_jobs=2`` run,
and a 3-process lease fabric of one campaign spec — while disabled
telemetry adds exactly zero entries to the collector.  Wall-clock spans
live in a separate channel that no logic ever reads back.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    campaign_report_data,
    export_campaign_json,
    render_report_text,
    run_campaign,
    run_campaign_workers,
)
from repro.cli import main
from repro.telemetry import (
    CONTRACT_COUNTERS,
    TELEMETRY,
    Telemetry,
    attribution,
    chrome_trace,
    contract_counters,
    is_contract_counter,
    merge_traces,
    merged_from_chrome,
    read_trace,
    render_summary,
    trace_files,
    write_trace,
)

SPEC_DICT = {
    "name": "telemetry-test",
    "draws": 1,
    "models": ["overlap", "strict"],
    "applications": [
        {"synthetic": {"n_stages": 3, "shape": "balanced", "scale": 8.0}},
        {"workload": "audio-pipeline"},
    ],
    "platforms": [{"n_procs": 8}],
    "replications": [
        {"policy": "balls"},
        {"fixed": [1, 2, 3], "assignment": "blocks"},
    ],
    "max_paths": 150,
}


@pytest.fixture()
def spec():
    return CampaignSpec.from_dict(SPEC_DICT)


def _traced_run(tmp_path, tag, *, n_jobs=1, workers=None):
    """Drain SPEC_DICT into a fresh store with tracing; merged trace."""
    spec = CampaignSpec.from_dict(SPEC_DICT)
    store_path = tmp_path / f"{tag}.sqlite"
    trace_dir = tmp_path / f"trace-{tag}"
    if workers is None:
        with ResultStore(store_path) as store:
            run_campaign(spec, store, n_jobs=n_jobs, trace_dir=trace_dir)
            export = export_campaign_json(spec, store)
    else:
        run_campaign_workers(spec, store_path, workers=workers,
                             trace_dir=trace_dir)
        with ResultStore(store_path) as store:
            export = export_campaign_json(spec, store)
    return merge_traces(trace_files(trace_dir)), export


class TestCounterTaxonomy:
    def test_contract_names(self):
        assert "engine.points" in CONTRACT_COUNTERS
        assert is_contract_counter("engine.points.tpn")
        assert is_contract_counter("store.quarantines")

    def test_diagnostic_names(self):
        for name in ["engine.cache_hits", "howard.rounds", "lease.claims",
                     "sync.merged", "search.launches"]:
            assert not is_contract_counter(name)

    def test_contract_subset_sorted(self):
        counters = {"store.puts": 3, "engine.points": 5, "lease.claims": 9,
                    "engine.points.tpn": 2}
        assert contract_counters(counters) == {
            "engine.points": 5, "engine.points.tpn": 2, "store.puts": 3}


class TestCollector:
    def test_disabled_is_noop(self):
        t = Telemetry()
        t.count("engine.points", 4)
        with t.span("evaluate", points=4):
            pass
        t.merge_counters({"engine.paths": 2})
        assert t.counters == {} and t.spans == [] and t.stack == []

    def test_enable_resets(self):
        t = Telemetry()
        t.enable("worker-1")
        t.count("a")
        with t.span("s"):
            pass
        t.enable("worker-2")
        assert t.worker == "worker-2"
        assert t.counters == {} and t.spans == [] and t.stack == []

    def test_span_nesting_and_attrs(self):
        t = Telemetry()
        t.enable()
        with t.span("outer", kind="root"):
            with t.span("inner", rows=7):
                pass
            with t.span("inner", rows=9):
                pass
        outer, first, second = t.spans
        assert (outer.parent, first.parent, second.parent) == (-1, 0, 0)
        assert [s.index for s in t.spans] == [0, 1, 2]
        assert first.attrs == {"rows": 7} and outer.attrs == {"kind": "root"}
        assert outer.t0 <= first.t0 <= first.t1 <= second.t1 <= outer.t1
        assert t.stack == []

    def test_merge_counters_order_independent(self):
        a, b = Telemetry(), Telemetry()
        a.enable()
        b.enable()
        parts = [{"x": 1, "y": 2}, {"y": 5}, {"x": 3, "z": 1}]
        for part in parts:
            a.merge_counters(part)
        for part in reversed(parts):
            b.merge_counters(part)
        assert a.counter_snapshot() == b.counter_snapshot() == {
            "x": 4, "y": 7, "z": 1}

    def test_disable_keeps_data_readable(self):
        t = Telemetry()
        t.enable()
        t.count("a", 2)
        t.disable()
        assert t.counter_snapshot() == {"a": 2}
        t.count("a")  # ignored while disabled
        assert t.counter_snapshot() == {"a": 2}


class TestTraceFiles:
    def _collector(self, worker, epoch):
        t = Telemetry()
        t.enable(worker)
        t.count("engine.points", 3)
        t.count("lease.claims", 1)
        with t.span("campaign", campaign="x"):
            with t.span("evaluate", points=3):
                pass
        t.epoch = epoch  # pin for deterministic cross-worker alignment
        return t

    def test_write_read_roundtrip(self, tmp_path):
        t = self._collector("main", 100.0)
        path = write_trace(tmp_path / "trace-main.jsonl", t)
        trace = read_trace(path)
        assert trace["worker"] == "main" and trace["epoch"] == 100.0
        assert trace["counters"] == {"engine.points": 3, "lease.claims": 1}
        assert [s["name"] for s in trace["spans"]] == ["campaign", "evaluate"]

    def test_merge_is_path_order_independent(self, tmp_path):
        paths = [
            write_trace(tmp_path / "trace-main.jsonl",
                        self._collector("main", 100.0)),
            write_trace(tmp_path / "trace-worker-0.jsonl",
                        self._collector("worker-0", 100.5)),
            write_trace(tmp_path / "trace-worker-1.jsonl",
                        self._collector("worker-1", 100.25)),
        ]
        merged = merge_traces(paths)
        assert merge_traces(list(reversed(paths))) == merged
        assert merged["workers"] == ["main", "worker-0", "worker-1"]
        assert merged["counters"] == {"engine.points": 9, "lease.claims": 3}

    def test_merge_aligns_epochs(self, tmp_path):
        early = write_trace(tmp_path / "trace-main.jsonl",
                            self._collector("main", 100.0))
        late = write_trace(tmp_path / "trace-worker-0.jsonl",
                           self._collector("worker-0", 102.0))
        merged = merge_traces([late, early])
        by_worker = {}
        for span in merged["spans"]:
            if span["name"] == "campaign":
                by_worker[span["worker"]] = span
        shift = (by_worker["worker-0"]["t0"] - by_worker["main"]["t0"])
        assert shift == pytest.approx(2.0, abs=0.5)

    def test_merge_rejects_duplicate_workers(self, tmp_path):
        a = write_trace(tmp_path / "trace-a.jsonl",
                        self._collector("main", 100.0))
        b = write_trace(tmp_path / "trace-b.jsonl",
                        self._collector("main", 101.0))
        with pytest.raises(ValueError, match="duplicate worker"):
            merge_traces([a, b])
        with pytest.raises(ValueError, match="no trace files"):
            merge_traces([])

    def test_trace_files_sorted(self, tmp_path):
        for name in ["trace-worker-1.jsonl", "trace-main.jsonl",
                     "trace-worker-0.jsonl", "unrelated.txt"]:
            (tmp_path / name).write_text("{}\n")
        assert [p.name for p in trace_files(tmp_path)] == [
            "trace-main.jsonl", "trace-worker-0.jsonl",
            "trace-worker-1.jsonl"]


class TestExporters:
    def _merged(self, tmp_path):
        t = Telemetry()
        t.enable("main")
        t.count("engine.points", 2)
        t.count("howard.rounds", 6)
        with t.span("campaign", campaign="x"):
            with t.span("evaluate", points=2):
                pass
        path = write_trace(tmp_path / "trace-main.jsonl", t)
        return merge_traces([path])

    def test_chrome_roundtrip_exact(self, tmp_path):
        merged = self._merged(tmp_path)
        chrome = json.loads(json.dumps(chrome_trace(merged)))
        assert merged_from_chrome(chrome) == merged
        names = [e["name"] for e in chrome["traceEvents"]]
        assert "repro_trace" in names and "thread_name" in names
        spans = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["ts"] == pytest.approx(spans[0]["args"]["t0"] * 1e6)

    def test_attribution_synthetic(self):
        spans = [
            {"attrs": {}, "index": 0, "name": "campaign", "parent": -1,
             "t0": 0.0, "t1": 10.0, "worker": "main"},
            {"attrs": {}, "index": 1, "name": "evaluate", "parent": 0,
             "t0": 0.0, "t1": 6.0, "worker": "main"},
            {"attrs": {}, "index": 2, "name": "commit", "parent": 0,
             "t0": 5.0, "t1": 9.0, "worker": "main"},
        ]
        merged = {"counters": {}, "schema": 1, "spans": spans,
                  "workers": ["main"]}
        attrib = attribution(merged)
        assert attrib["root"] == "campaign"
        # union of [0, 6] and [5, 9] covers 9 of the 10-second root
        assert attrib["coverage"] == pytest.approx(0.9)
        assert {p["name"] for p in attrib["phases"]} == {
            "campaign", "evaluate", "commit"}

    def test_attribution_empty(self):
        attrib = attribution({"counters": {}, "schema": 1, "spans": [],
                              "workers": []})
        assert attrib["root"] is None and attrib["coverage"] == 0.0

    def test_render_summary_sections(self, tmp_path):
        text = render_summary(self._merged(tmp_path))
        assert "contract counters (partition-invariant):" in text
        assert "diagnostic counters:" in text
        assert "engine.points" in text and "howard.rounds" in text
        assert "span attribution (root 'campaign'" in text


class TestCampaignDeterminism:
    def test_contract_counters_partition_invariant(self, tmp_path):
        serial, export_serial = _traced_run(tmp_path, "serial")
        jobs2, _ = _traced_run(tmp_path, "jobs2", n_jobs=2)
        fabric, export_fabric = _traced_run(tmp_path, "fabric", workers=3)
        contract = contract_counters(serial["counters"])
        assert contract["engine.points"] == 6
        assert contract["store.puts"] == 6
        assert contract == contract_counters(jobs2["counters"])
        assert contract == contract_counters(fabric["counters"])
        # Tracing never perturbs the artifacts: fabric export bytes
        # equal the serial export bytes.
        assert export_fabric == export_serial
        assert fabric["workers"] == [
            "main", "worker-0", "worker-1", "worker-2"]

    def test_serial_counters_fully_deterministic(self, tmp_path):
        first, _ = _traced_run(tmp_path, "first")
        second, _ = _traced_run(tmp_path, "second")
        assert first["counters"] == second["counters"]

    def test_span_hierarchy_and_attribution(self, tmp_path):
        fabric, _ = _traced_run(tmp_path, "fab2", workers=2)
        names = {span["name"] for span in fabric["spans"]}
        assert {"campaign", "prepare", "worker", "worker-run",
                "claim"} <= names
        attrib = attribution(fabric)
        assert attrib["root"] == "campaign"
        # The acceptance floor is 95% (gated in bench_telemetry and the
        # CI telemetry job); the unit test keeps headroom for slow CI.
        assert attrib["coverage"] >= 0.80

    def test_disabled_run_adds_nothing(self, tmp_path, spec):
        TELEMETRY.disable()
        before_counters = TELEMETRY.counter_snapshot()
        before_spans = len(TELEMETRY.spans)
        with ResultStore(tmp_path / "dark.sqlite") as store:
            run_campaign(spec, store)
        assert TELEMETRY.counter_snapshot() == before_counters
        assert len(TELEMETRY.spans) == before_spans


class TestReportSection:
    def test_absent_without_counters(self, tmp_path, spec):
        with ResultStore(tmp_path / "s.sqlite") as store:
            run_campaign(spec, store)
            data = campaign_report_data(spec, store)
        assert "telemetry" not in data

    def test_engine_section(self, tmp_path, spec):
        with ResultStore(tmp_path / "s.sqlite") as store:
            run_campaign(spec, store, trace_dir=tmp_path / "trace")
            counters = merge_traces(trace_files(tmp_path / "trace"))[
                "counters"]
            data = campaign_report_data(spec, store, counters=counters)
            text = render_report_text(data)
        engine = data["telemetry"]["engine"]
        assert engine["skeleton_builds"] >= 1
        assert engine["lockstep_rows"] + engine["scalar_points"] == 6
        assert "engine telemetry:" in text
        assert "skeleton cache" in text


class TestTelemetryCli:
    def _trace_dir(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC_DICT))
        trace_dir = tmp_path / "trace"
        assert main(["campaign", "run", str(spec_path),
                     "--store", str(tmp_path / "s.sqlite"),
                     "--trace", str(trace_dir)]) == 0
        return spec_path, trace_dir

    def test_report_summary(self, tmp_path, capsys):
        _, trace_dir = self._trace_dir(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", "report", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "contract counters (partition-invariant):" in out
        assert "span attribution (root 'campaign'" in out

    def test_report_json_and_chrome(self, tmp_path, capsys):
        _, trace_dir = self._trace_dir(tmp_path)
        chrome_path = tmp_path / "chrome.json"
        assert main(["telemetry", "report", str(trace_dir),
                     "--chrome", str(chrome_path)]) == 0
        capsys.readouterr()
        assert main(["telemetry", "report", str(trace_dir),
                     "--json", "-"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["attribution"]["root"] == "campaign"
        chrome = json.loads(chrome_path.read_text())
        merged = merge_traces(trace_files(trace_dir))
        assert merged_from_chrome(chrome) == merged

    def test_campaign_report_trace(self, tmp_path, capsys):
        spec_path, trace_dir = self._trace_dir(tmp_path)
        capsys.readouterr()
        assert main(["campaign", "report", str(spec_path),
                     "--store", str(tmp_path / "s.sqlite"),
                     "--trace", str(trace_dir)]) == 0
        assert "engine telemetry:" in capsys.readouterr().out

    def test_report_errors_on_empty_dir(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["telemetry", "report", str(empty)]) == 1
        assert "no trace" in capsys.readouterr().err
