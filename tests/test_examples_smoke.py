"""Smoke tests: every shipped example script runs to completion.

The faster scripts run on every test invocation; the two Monte-Carlo
heavy ones are skipped unless ``REPRO_RUN_SLOW_EXAMPLES=1``.
"""

import os
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST = [
    "quickstart.py",
    "paper_examples.py",
    "video_transcoding.py",
    "latency_throughput.py",
    "optimize_mapping.py",
    "run_campaign.py",
]
SLOW = [
    "mapping_search.py",
    "dynamic_platform.py",
    "workload_survey.py",
    "racing_portfolio.py",
]


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize("name", FAST)
def test_fast_examples_run(name, capsys):
    out = _run(name, capsys)
    assert len(out) > 100  # produced a real report


@pytest.mark.parametrize("name", SLOW)
@pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_SLOW_EXAMPLES"),
    reason="set REPRO_RUN_SLOW_EXAMPLES=1 to run the Monte-Carlo examples",
)
def test_slow_examples_run(name, capsys):
    out = _run(name, capsys)
    assert len(out) > 100


def test_quickstart_shows_both_models(capsys):
    out = _run("quickstart.py", capsys)
    assert "OVERLAP ONE-PORT" in out
    assert "STRICT ONE-PORT" in out
    assert "round-robin paths" in out


def test_optimize_mapping_reports_portfolio(capsys):
    """The docs' worked portfolio example keeps its promises."""
    out = _run("optimize_mapping.py", capsys)
    assert "best of 10 random mappings" in out
    assert "perturbed-elite" in out
    assert "best period" in out
    assert "critical resource" in out  # final compute_period summary


def test_paper_examples_reproduce_headline_numbers(capsys):
    out = _run("paper_examples.py", capsys)
    assert "P = 189 (paper: 189)" in out
    assert "291.7 (paper: 291.7)" in out
    assert "230.7 (paper: 230.7)" in out


def test_examples_dir_is_complete():
    shipped = {p.name for p in EXAMPLES.glob("*.py")}
    assert shipped == set(FAST) | set(SLOW)
