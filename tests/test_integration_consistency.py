"""Integration: all period-computation routes must agree.

Five independent implementations of the same quantity are cross-checked
on random instances:

1. Theorem 1 polynomial algorithm (pattern graphs, OVERLAP only);
2. full-TPN critical cycle via Howard's policy iteration;
3. full-TPN critical cycle via Lawler's binary search;
4. max-plus matrix eigenvalue of ``A0* ⊗ A1`` via Karp;
5. discrete-event simulation (asymptotic firing rate).

Plus the paper's analytic facts: ``P >= M_ct`` always, with equality when
no stage is replicated.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compute_period
from repro.maxplus import max_cycle_ratio
from repro.maxplus.recurrence import period_by_matrix
from repro.petri import build_tpn
from repro.simulation import estimate_period

from .conftest import make_instance, small_instances


class TestMethodAgreement:
    @given(small_instances())
    @settings(max_examples=30, deadline=None)
    def test_overlap_all_methods(self, inst):
        poly = compute_period(inst, "overlap", method="polynomial").period
        tpn = compute_period(inst, "overlap", method="tpn").period
        assert poly == pytest.approx(tpn, rel=1e-9)

        net = build_tpn(inst, "overlap")
        assert period_by_matrix(net) == pytest.approx(poly, rel=1e-9)

        lawler = max_cycle_ratio(net.to_ratio_graph(), method="lawler")
        assert lawler.value / net.n_rows == pytest.approx(poly, rel=1e-7)

        sim = estimate_period(net, n_firings=max(80, 12 * net.n_rows))
        assert sim.period == pytest.approx(poly, rel=1e-6)

    @given(small_instances())
    @settings(max_examples=20, deadline=None)
    def test_strict_all_methods(self, inst):
        tpn = compute_period(inst, "strict", method="tpn").period
        net = build_tpn(inst, "strict")
        assert period_by_matrix(net) == pytest.approx(tpn, rel=1e-9)

        lawler = max_cycle_ratio(net.to_ratio_graph(), method="lawler")
        assert lawler.value / net.n_rows == pytest.approx(tpn, rel=1e-7)

        sim = estimate_period(net, n_firings=max(80, 12 * net.n_rows))
        assert sim.period == pytest.approx(tpn, rel=1e-6)


class TestPaperTheorems:
    @given(small_instances())
    @settings(max_examples=30, deadline=None)
    def test_mct_lower_bounds_period(self, inst):
        """Section 2: the critical resource bound holds in both models."""
        for model in ("overlap", "strict"):
            res = compute_period(inst, model)
            assert res.period >= res.mct - 1e-9 * max(1.0, res.mct)

    @given(small_instances())
    @settings(max_examples=30, deadline=None)
    def test_no_replication_means_tight_bound(self, inst):
        """Section 2: without replication, P = M_ct exactly (both models)."""
        if max(inst.replication_counts) > 1:
            return
        for model in ("overlap", "strict"):
            res = compute_period(inst, model)
            assert res.period == pytest.approx(res.mct, rel=1e-9)
            assert res.has_critical_resource

    @given(small_instances())
    @settings(max_examples=30, deadline=None)
    def test_strict_no_faster_than_overlap(self, inst):
        """The strict model adds constraints: P_strict >= P_overlap."""
        p_overlap = compute_period(inst, "overlap").period
        p_strict = compute_period(inst, "strict").period
        assert p_strict >= p_overlap - 1e-9 * max(1.0, p_overlap)

    @given(small_instances(), st.floats(0.25, 8.0))
    @settings(max_examples=25, deadline=None)
    def test_time_scaling(self, inst, alpha):
        """Scaling every duration by alpha scales the period by alpha."""
        from repro import Instance, Platform

        # scaling works would only scale computations; scale speeds and
        # bandwidths instead so communications stretch too
        slower = Instance(
            inst.application,
            Platform(inst.platform.speeds / alpha, inst.platform.bandwidths / alpha),
            inst.mapping,
        )
        for model in ("overlap", "strict"):
            base = compute_period(inst, model).period
            assert compute_period(slower, model).period == pytest.approx(
                alpha * base, rel=1e-9
            )


class TestDegenerateShapes:
    def test_single_stage_single_proc(self):
        inst = make_instance([1], [7.0], [[0.0]])
        for model in ("overlap", "strict"):
            res = compute_period(inst, model)
            assert res.period == pytest.approx(7.0)
            assert res.has_critical_resource

    def test_single_stage_replicated(self):
        # one stage on 3 processors: P = max(t_u) / 3
        inst = make_instance([3], [6.0, 9.0, 12.0],
                             [[0, 1, 1], [1, 0, 1], [1, 1, 0]])
        res = compute_period(inst, "overlap")
        assert res.period == pytest.approx(4.0)
        res = compute_period(inst, "strict")
        assert res.period == pytest.approx(4.0)

    def test_zero_work_stage(self):
        import numpy as np

        comm = np.full((3, 3), 2.0)
        np.fill_diagonal(comm, 0.0)
        inst = make_instance(
            [1, 1, 1], [1.0, 1.0, 1.0], comm, works=[1.0, 0.0, 1.0]
        )
        res = compute_period(inst, "overlap")
        # forwarding stage costs nothing; links (2.0) dominate... but each
        # port handles one file per data set -> P = 2
        assert res.period == pytest.approx(2.0)

    def test_free_links(self):
        import numpy as np

        comm = np.zeros((2, 2))
        inst = make_instance([1, 1], [5.0, 3.0], comm)
        res = compute_period(inst, "strict")
        assert res.period == pytest.approx(5.0)
