"""Tests for :mod:`repro.experiments.analysis` aggregates.

``summarize`` / ``gap_histogram`` / ``feature_report`` post-process
:class:`ExperimentRecord` lists; these tests pin their arithmetic on
hand-built records (exact expected values) and their behavior on live
sweep output and edge cases (empty input, all-critical groups).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import TABLE2_CONFIGS, run_family
from repro.experiments.analysis import (
    FamilySummary,
    feature_report,
    gap_histogram,
    summarize,
)
from repro.experiments.runner import ExperimentRecord


def _record(config="fam", model="strict", seed=1, replication=(1, 2),
            m=2, period=10.0, mct=10.0, critical=True, gap=0.0):
    return ExperimentRecord(
        config_name=config, model=model, seed=seed, n_stages=2,
        n_procs=3, replication=replication, m=m, period=period,
        mct=mct, critical=critical, gap=gap,
    )


class TestSummarize:
    def test_exact_aggregates(self):
        records = [
            _record(seed=1, critical=True, gap=0.0, m=2),
            _record(seed=2, critical=False, gap=0.04, m=4),
            _record(seed=3, critical=False, gap=0.08, m=6),
        ]
        (summary,) = summarize(records)
        assert summary == FamilySummary(
            config_name="fam", model="strict", total=3, no_critical=2,
            max_gap=0.08, mean_gap=float(np.mean([0.04, 0.08])),
            mean_m=float(np.mean([2, 4, 6])),
        )

    def test_groups_by_family_and_model_sorted(self):
        records = [
            _record(config="b", model="strict"),
            _record(config="a", model="strict"),
            _record(config="a", model="overlap"),
        ]
        keys = [(s.config_name, s.model) for s in summarize(records)]
        assert keys == [("a", "overlap"), ("a", "strict"), ("b", "strict")]

    def test_all_critical_group_has_zero_gaps(self):
        (summary,) = summarize([_record(), _record(seed=2)])
        assert summary.no_critical == 0
        assert summary.max_gap == 0.0
        assert summary.mean_gap == 0.0

    def test_empty(self):
        assert summarize([]) == []

    def test_live_sweep_consistency(self):
        records = run_family(TABLE2_CONFIGS[4], "strict", count=6, n_jobs=1)
        (summary,) = summarize(records)
        assert summary.total == 6
        assert summary.no_critical == sum(1 for r in records if not r.critical)
        assert summary.mean_m == float(np.mean([r.m for r in records]))


class TestGapHistogram:
    def test_no_exceptions_message(self):
        text = gap_histogram([_record()])
        assert text == "(no cases without critical resource)"

    def test_counts_cover_all_exceptions(self):
        records = [
            _record(seed=i, critical=False, gap=g)
            for i, g in enumerate([0.01, 0.02, 0.03, 0.09])
        ]
        text = gap_histogram(records, n_bins=4)
        assert "over 4 no-critical cases" in text
        # one header + one line per bin
        assert len(text.splitlines()) == 5
        counts = [int(line.split("|")[1].split()[0])
                  for line in text.splitlines()[1:]]
        assert sum(counts) == 4

    def test_bins_span_max_gap(self):
        records = [_record(seed=1, critical=False, gap=0.25)]
        text = gap_histogram(records, n_bins=2)
        assert "25.00%" in text


class TestFeatureReport:
    def test_contrasts_both_groups(self):
        records = [
            _record(seed=1, critical=True, replication=(1, 1), m=1),
            _record(seed=2, critical=False, replication=(2, 3), m=6),
        ]
        text = feature_report(records)
        assert "n=1" in text
        assert "every no-critical case has a replicated stage: True" in text

    def test_empty_no_critical_side(self):
        text = feature_report([_record()])
        assert "n=0" in text
        assert "replicated stage" not in text

    def test_replication_invariant_on_live_records(self):
        # Section 2: without replication the bound is always attained,
        # so every no-critical record must have a replicated stage.
        records = run_family(TABLE2_CONFIGS[4], "strict", count=10, n_jobs=1)
        text = feature_report(records)
        assert "False" not in text
