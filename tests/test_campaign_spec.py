"""Tests for campaign specs: expansion determinism and serialization."""

from __future__ import annotations

import pytest

from repro.campaign import (
    ApplicationAxis,
    CampaignSpec,
    PlatformAxis,
    ReplicationAxis,
)
from repro.errors import ValidationError

BASE = {
    "name": "spec-test",
    "draws": 3,
    "models": ["overlap", "strict"],
    "applications": [
        {"workload": "audio-pipeline"},
        {"synthetic": {"n_stages": 3, "shape": "comm-heavy"}},
    ],
    "platforms": [
        {"n_procs": 8},
        {"n_procs": 7, "kind": "times"},
    ],
    "replications": [
        {"policy": "balls"},
        {"fixed": [1, 2, 3], "assignment": "blocks"},
    ],
    "max_paths": 300,
}


def spec(**overrides) -> CampaignSpec:
    return CampaignSpec.from_dict({**BASE, **overrides})


class TestExpansion:
    def test_deterministic(self):
        a = spec().expand()
        b = spec().expand()
        assert [(p.index, p.cell, p.draw, p.seed) for p in a] == \
               [(p.index, p.cell, p.draw, p.seed) for p in b]

    def test_instances_rematerialize_identically(self):
        points = spec().expand()
        for p in points[:6]:
            inst_a, inst_b = p.instance(), p.instance()
            assert inst_a.to_dict() == inst_b.to_dict()

    def test_indices_sequential(self):
        points = spec().expand()
        assert [p.index for p in points] == list(range(len(points)))

    def test_infeasible_cells_excluded(self):
        # the fixed [1,2,3] axis fits the 3-stage synthetic app only
        points = spec().expand()
        fixed = [p for p in points if p.replication.policy == "fixed"]
        assert fixed and all(
            p.application.label == "synthetic-comm-heavy-3" for p in fixed
        )

    def test_seeds_survive_axis_growth(self):
        """Adding an axis never reseeds existing cells (store reuse)."""
        small = spec()
        grown = spec(platforms=BASE["platforms"] + [{"n_procs": 12}])
        small_seeds = {(p.cell, p.draw): p.seed for p in small.expand()}
        grown_seeds = {(p.cell, p.draw): p.seed for p in grown.expand()}
        for key, seed in small_seeds.items():
            assert grown_seeds[key] == seed

    def test_seeds_differ_across_cells_and_campaigns(self):
        points = spec().expand()
        assert len({p.seed for p in points}) == len(points)
        other = spec(name="other-name").expand()
        assert points[0].seed != other[0].seed

    def test_blocks_assignment_shares_topology(self):
        points = [p for p in spec().expand()
                  if p.replication.policy == "fixed"]
        mappings = {p.instance().mapping.assignments for p in points}
        assert len(mappings) == 1

    def test_n_points_matches_expand(self):
        s = spec()
        assert s.n_points == len(s.expand())


class TestSerialization:
    def test_dict_roundtrip(self):
        s = spec()
        clone = CampaignSpec.from_dict(s.to_dict())
        assert clone == s
        assert [p.seed for p in clone.expand()] == \
               [p.seed for p in s.expand()]

    def test_json_file(self, tmp_path):
        import json

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(BASE))
        assert CampaignSpec.from_file(path) == spec()

    def test_toml_file(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "spec.toml"
        path.write_text(
            'name = "toml-test"\n'
            'draws = 2\n'
            'models = ["overlap"]\n'
            '[[applications]]\n'
            'workload = "video-transcode"\n'
            '[[platforms]]\n'
            'n_procs = 9\n'
            '[[replications]]\n'
            'policy = "greedy-spare"\n'
        )
        s = CampaignSpec.from_file(path)
        assert s.name == "toml-test"
        assert s.n_points == 2
        assert s.replications[0].policy == "greedy-spare"


class TestValidation:
    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            spec(applications=[{"workload": "nope"}])

    def test_unknown_model(self):
        with pytest.raises(ValidationError):
            spec(models=["bogus"])

    def test_empty_axis(self):
        with pytest.raises(ValidationError):
            spec(platforms=[])

    def test_duplicate_labels(self):
        with pytest.raises(ValidationError):
            spec(platforms=[{"n_procs": 8}, {"n_procs": 8}])

    def test_blocks_requires_fixed(self):
        with pytest.raises(ValidationError):
            ReplicationAxis(label="x", policy="balls", assignment="blocks")

    def test_bad_draws(self):
        with pytest.raises(ValidationError):
            spec(draws=0)

    def test_missing_section(self):
        with pytest.raises(ValidationError):
            CampaignSpec.from_dict({"name": "x", "draws": 1})

    def test_axis_kinds_validated(self):
        with pytest.raises(ValidationError):
            ApplicationAxis(label="x", kind="bogus")
        with pytest.raises(ValidationError):
            PlatformAxis(label="x", n_procs=4, kind="bogus")
        with pytest.raises(ValidationError):
            ReplicationAxis(label="x", policy="bogus")


class TestAxisDraws:
    def test_cluster_regime_shapes(self):
        import numpy as np

        axis = PlatformAxis.from_dict({
            "n_procs": 8, "clusters": 2,
            "cluster_factor_range": [10.0, 10.0],
            "intra_bandwidth_factor": 3.0,
            "speed_range": [1.0, 1.0], "bandwidth_range": [1.0, 1.0],
        })
        plat = axis.draw(np.random.default_rng(0))
        # degenerate ranges make the cluster structure exact
        assert np.allclose(plat.speeds, 10.0)
        assert plat.bandwidths[0, 1] == 3.0   # intra-cluster
        assert plat.bandwidths[0, 7] == 1.0   # cross-cluster

    def test_times_regime_uses_from_comm_times(self):
        import numpy as np

        axis = PlatformAxis.from_dict({
            "n_procs": 4, "kind": "times",
            "comp_time_range": [2.0, 2.0], "comm_time_range": [4.0, 4.0],
        })
        plat = axis.draw(np.random.default_rng(0))
        assert np.allclose(plat.speeds, 0.5)
        assert plat.bandwidths[0, 1] == 0.25
