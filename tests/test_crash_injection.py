"""Crash-injection tests: SIGKILL fabric workers at protocol barriers.

Workers are *actually* killed (``os.kill(SIGKILL)`` from inside the
worker, fired by the :mod:`repro.faults` plane) at the protocol's three
barriers — right after a claim transaction, after the result commit but
before the lease release, and after the release — the
``worker.after-claim`` / ``worker.pre-release`` / ``worker.after-release``
injection sites.  The contract under test: stale leases are reclaimed,
the campaign completes on resume, and the final result set is
byte-identical to an uninterrupted run — zero lost and zero duplicated
results across 20 randomized kill schedules, every schedule expressed
as a replayable per-worker :class:`~repro.faults.FaultPlan`.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.campaign import (
    CampaignSpec,
    LeaseManager,
    ResultStore,
    export_campaign_json,
    run_campaign,
    run_campaign_workers,
)
from repro.faults import FaultPlan

SPEC_DICT = {
    "name": "crash-test",
    "draws": 2,
    "models": ["overlap", "strict"],
    "applications": [
        {"synthetic": {"n_stages": 3, "shape": "balanced", "scale": 8.0}},
        {"workload": "audio-pipeline"},
    ],
    "platforms": [{"n_procs": 8}],
    "replications": [
        {"policy": "balls"},
        {"fixed": [1, 2, 3], "assignment": "blocks"},
    ],
    "max_paths": 200,
}

#: Lease TTL for crash runs: long enough that live workers never lose a
#: lease mid-chunk, short enough that a dead worker's claims free up
#: within one test's patience.
_TTL = 0.3

_KILL_SITES = (
    "worker.after-claim",
    "worker.pre-release",
    "worker.after-release",
)


def _kill_plan(site: str, at: int) -> FaultPlan:
    """A plan that SIGKILLs the worker at its ``at``-th pass of ``site``."""
    return FaultPlan.single(site, "sigkill", at=at)


@pytest.fixture(scope="module")
def spec():
    return CampaignSpec.from_dict(SPEC_DICT)


@pytest.fixture(scope="module")
def reference(spec, tmp_path_factory):
    """The uninterrupted run every crashy run must reproduce exactly."""
    path = tmp_path_factory.mktemp("ref") / "ref.sqlite"
    with ResultStore(path) as store:
        run_campaign(spec, store)
        return set(store.digests()), export_campaign_json(spec, store)


def _drain_with_resume(spec, path, first_report, max_resumes=6):
    """Re-launch clean fabrics until the campaign completes."""
    report = first_report
    for _ in range(max_resumes):
        if report.complete:
            return report
        # Give killed workers' leases a moment to expire so the resume
        # spends its time evaluating, not polling.
        time.sleep(_TTL)
        report = run_campaign_workers(spec, path, workers=2, lease_ttl=_TTL)
    return report


class TestKillSchedules:
    @pytest.mark.parametrize("schedule", range(20))
    def test_randomized_kill_schedule(self, schedule, spec, reference,
                                      tmp_path):
        """20 seeded schedules over (worker count, kill site, trigger
        count, claim batch): always completes, never loses or
        duplicates a result."""
        rng = random.Random(20090302 + schedule)
        workers = rng.choice([1, 2, 3])
        plans = {
            w: _kill_plan(rng.choice(_KILL_SITES), rng.randint(1, 3))
            for w in range(workers) if rng.random() < 0.8
        }
        if not plans:  # every schedule kills at least one worker
            plans[rng.randrange(workers)] = _kill_plan(
                rng.choice(_KILL_SITES), 1
            )

        path = tmp_path / "crash.sqlite"
        first = run_campaign_workers(
            spec, path, workers=workers, lease_ttl=_TTL,
            claim_batch=rng.choice([2, 4, 16]),
            commit_every=rng.choice([2, 32]),
            fault_plans=plans,
        )
        # Only faulted workers can crash; a plan whose trigger count
        # exceeds the worker's site passes simply never fires (still a
        # valid schedule — the worker drained its share and exited
        # cleanly).
        assert set(first.crashed) <= set(plans)
        report = _drain_with_resume(spec, path, first)
        assert report.complete

        ref_digests, ref_json = reference
        with ResultStore(path) as store:
            # zero lost, zero duplicated: exact digest-set equality (the
            # digest PRIMARY KEY already makes row-level duplicates
            # impossible), byte-identical export.
            assert set(store.digests()) == ref_digests
            assert len(store) == len(ref_digests)
            assert export_campaign_json(spec, store) == ref_json


class TestStaleLeaseReclamation:
    def test_killed_workers_leases_expire_and_are_reclaimed(self, spec,
                                                            tmp_path):
        """A worker killed right after claiming strands its claims only
        until the TTL; the next fabric takes them over and completes."""
        path = tmp_path / "stranded.sqlite"
        first = run_campaign_workers(
            spec, path, workers=1, lease_ttl=_TTL,
            fault_plans={0: _kill_plan("worker.after-claim", 1)},
        )
        assert first.crashed == (0,)
        assert not first.complete  # died before storing anything
        with ResultStore(path) as store:
            held = store.connection.execute(
                "SELECT COUNT(*) FROM leases"
            ).fetchone()[0]
            assert held > 0  # the corpse's claims are still on file
        time.sleep(_TTL * 1.1)
        second = run_campaign_workers(spec, path, workers=1, lease_ttl=_TTL)
        assert second.complete

    def test_pre_release_crash_keeps_committed_results(self, spec, tmp_path):
        """Killed between commit and release: results survive, and their
        leftover lease rows never block completion (claims skip DONE)."""
        path = tmp_path / "prerelease.sqlite"
        first = run_campaign_workers(
            spec, path, workers=1, lease_ttl=_TTL, claim_batch=4,
            commit_every=4,
            fault_plans={0: _kill_plan("worker.pre-release", 1)},
        )
        assert first.crashed == (0,)
        assert first.evaluated > 0  # the chunk was committed before death
        report = _drain_with_resume(spec, path, first)
        assert report.complete
        # Resume reused every committed point instead of recomputing.
        assert report.hits >= first.evaluated

    def test_reclaim_stale_sweeps_expired_rows(self, tmp_path):
        with ResultStore(tmp_path / "sweep.sqlite") as store:
            t = 0.0
            mgr = LeaseManager(store, "w", ttl=10.0, clock=lambda: t)
            assert mgr.claim(["a", "b", "c"]) == ["a", "b", "c"]
            t = 100.0  # everything expired
            assert mgr.held() == []
            assert mgr.reclaim_stale() == 3
            assert mgr.active() == []

    def test_renew_heartbeat_keeps_leases_alive(self, tmp_path):
        with ResultStore(tmp_path / "renew.sqlite") as store:
            t = 0.0
            mgr = LeaseManager(store, "w", ttl=10.0, clock=lambda: t)
            mgr.claim(["a", "b"])
            t = 8.0
            assert mgr.renew() == 2  # heartbeat pushes expiry to t=18
            t = 15.0
            assert mgr.held() == ["a", "b"]
            t = 20.0  # missed the next heartbeat: expired
            assert mgr.held() == []
            assert mgr.renew(["a"]) == 0  # renewing a lost lease fails
