"""Unit tests for repro.utils."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import check_finite, check_non_negative, check_positive, format_time, gcd_all, lcm_all


class TestLcmAll:
    def test_paper_example_a(self):
        assert lcm_all([1, 2, 3, 1]) == 6

    def test_paper_example_b(self):
        assert lcm_all([3, 4]) == 12

    def test_paper_example_c(self):
        assert lcm_all([5, 21, 27, 11]) == 10395

    def test_empty_is_one(self):
        assert lcm_all([]) == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            lcm_all([2, 0])
        with pytest.raises(ValueError):
            lcm_all([-3])

    @given(st.lists(st.integers(1, 20), min_size=1, max_size=5))
    def test_divides_all(self, values):
        m = lcm_all(values)
        assert all(m % v == 0 for v in values)
        # minimality: no proper divisor of m is a common multiple
        for d in range(1, m):
            if m % d == 0 and all(d % v == 0 for v in values):
                pytest.fail(f"{d} is a smaller common multiple than {m}")


class TestGcdAll:
    def test_example_c_f1(self):
        assert gcd_all([21, 27]) == 3

    def test_coprime(self):
        assert gcd_all([3, 4]) == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            gcd_all([0, 4])

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=5))
    def test_divides_each(self, values):
        g = gcd_all(values)
        assert all(v % g == 0 for v in values)


class TestChecks:
    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive("x", [1.0, 0.0])

    def test_positive_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive("x", [math.inf])

    def test_non_negative_accepts_zero(self):
        check_non_negative("x", [0.0, 1.0])

    def test_non_negative_rejects_nan(self):
        with pytest.raises(ValueError):
            check_non_negative("x", [math.nan])

    def test_check_finite_roundtrip(self):
        assert check_finite("x", 3) == 3.0
        with pytest.raises(ValueError):
            check_finite("x", math.inf)


class TestFormatTime:
    def test_integers_render_bare(self):
        assert format_time(189.0) == "189"

    def test_fractions_render_decimal(self):
        assert format_time(215.83333333, digits=4).startswith("215.8")
