"""Property tests for the (max, +) algebra substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import SolverError
from repro.maxplus import (
    NEG_INF,
    matrix_to_graph,
    mp_eigenvalue,
    mp_eye,
    mp_matmul,
    mp_matvec,
    mp_pow,
    mp_star,
    mp_zeros,
)

finite_entries = st.floats(min_value=-50, max_value=50)
entries = st.one_of(finite_entries, st.just(NEG_INF))


def square(n):
    return arrays(float, (n, n), elements=entries)


class TestBasics:
    def test_eye_is_identity(self):
        a = np.array([[1.0, NEG_INF], [3.0, 0.0]])
        assert np.array_equal(mp_matmul(mp_eye(2), a), a)
        assert np.array_equal(mp_matmul(a, mp_eye(2)), a)

    def test_zeros_absorbs(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        z = mp_zeros((2, 2))
        assert np.all(np.isneginf(mp_matmul(a, z)))

    def test_matvec_matches_matmul(self):
        a = np.array([[1.0, 2.0], [NEG_INF, 4.0]])
        x = np.array([5.0, 6.0])
        via_mat = mp_matmul(a, x.reshape(-1, 1)).ravel()
        assert np.array_equal(mp_matvec(a, x), via_mat)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mp_matmul(np.zeros((2, 3)), np.zeros((2, 2)))


class TestSemiringLaws:
    @given(square(3), square(3), square(3))
    @settings(max_examples=30, deadline=None)
    def test_associativity(self, a, b, c):
        left = mp_matmul(mp_matmul(a, b), c)
        right = mp_matmul(a, mp_matmul(b, c))
        assert np.allclose(left, right, equal_nan=False) or np.array_equal(left, right)

    @given(square(3), square(3), square(3))
    @settings(max_examples=30, deadline=None)
    def test_distributivity_over_max(self, a, b, c):
        left = mp_matmul(a, np.maximum(b, c))
        right = np.maximum(mp_matmul(a, b), mp_matmul(a, c))
        assert np.array_equal(left, right)

    @given(square(3), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_power_consistency(self, a, k):
        direct = mp_eye(3)
        for _ in range(k):
            direct = mp_matmul(direct, a)
        # binary exponentiation reassociates float additions: allow ulps
        assert np.allclose(mp_pow(a, k), direct, rtol=1e-12, atol=1e-12)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            mp_pow(mp_eye(2), -1)


class TestStar:
    def test_star_of_strictly_lower_triangular(self):
        # nilpotent support -> star is a finite DAG closure
        a = mp_zeros((3, 3))
        a[1, 0] = 2.0
        a[2, 1] = 3.0
        s = mp_star(a)
        assert s[2, 0] == 5.0  # path 0 -> 1 -> 2
        assert s[0, 0] == 0.0  # identity part

    def test_star_detects_positive_cycle(self):
        a = mp_zeros((2, 2))
        a[0, 1] = 1.0
        a[1, 0] = 1.0
        with pytest.raises(SolverError):
            mp_star(a)

    def test_star_accepts_nonpositive_cycle(self):
        a = mp_zeros((2, 2))
        a[0, 1] = -1.0
        a[1, 0] = 0.5
        s = mp_star(a)
        assert s[0, 0] == 0.0


class TestEigenvalue:
    def test_eigenvalue_of_circulant(self):
        # cycle 0 -> 1 -> 0 with weights 2 and 4: mean 3
        a = mp_zeros((2, 2))
        a[1, 0] = 2.0
        a[0, 1] = 4.0
        assert mp_eigenvalue(a) == pytest.approx(3.0)

    def test_eigenvalue_is_asymptotic_growth_rate(self):
        rng = np.random.default_rng(7)
        a = rng.uniform(0, 10, (4, 4))
        lam = mp_eigenvalue(a)
        x = np.zeros(4)
        for _ in range(300):
            x = mp_matvec(a, x)
        growth = mp_matvec(a, x) - x
        assert np.max(growth) == pytest.approx(lam, rel=1e-6)

    def test_matrix_to_graph_orientation(self):
        a = mp_zeros((2, 2))
        a[1, 0] = 7.0  # column 0 feeds row 1: edge 0 -> 1
        g = matrix_to_graph(a)
        e = g.edge(0)
        assert (e.src, e.dst, e.weight) == (0, 1, 7.0)
