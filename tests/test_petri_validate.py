"""Tests for structural TPN validation (and its failure modes)."""

import pytest

from repro import DeadlockError, ValidationError
from repro.experiments import example_a
from repro.petri import PlaceKind, TimedEventGraph, build_tpn, validate_tpn


def tiny_net() -> TimedEventGraph:
    """Hand-built 1-row, 3-column net (one path, two stages)."""
    net = TimedEventGraph(n_rows=1, n_columns=3)
    net.add_transition(0, 0, 2.0, "comp", 0, (0,))
    net.add_transition(0, 1, 4.0, "comm", 0, (0, 1))
    net.add_transition(0, 2, 3.0, "comp", 1, (1,))
    net.add_place(0, 1, 0, PlaceKind.FLOW)
    net.add_place(1, 2, 0, PlaceKind.FLOW)
    net.add_place(0, 0, 1, PlaceKind.RR_COMP, "P0:comp")
    net.add_place(1, 1, 1, PlaceKind.RR_OUT, "P0:out")
    net.add_place(1, 1, 1, PlaceKind.RR_IN, "P1:in")
    net.add_place(2, 2, 1, PlaceKind.RR_COMP, "P1:comp")
    return net


class TestManualConstruction:
    def test_valid_net_passes(self):
        rep = validate_tpn(tiny_net())
        assert rep.tokens == 4
        assert rep.places_by_kind[PlaceKind.FLOW] == 2

    def test_out_of_order_transition_rejected(self):
        net = TimedEventGraph(n_rows=1, n_columns=3)
        with pytest.raises(ValidationError):
            net.add_transition(0, 1, 1.0, "comm", 0, (0, 1))

    def test_place_to_missing_transition_rejected(self):
        net = TimedEventGraph(n_rows=1, n_columns=3)
        net.add_transition(0, 0, 1.0, "comp", 0, (0,))
        with pytest.raises(ValidationError):
            net.add_place(0, 5, 0, PlaceKind.FLOW)

    def test_unknown_place_kind_rejected(self):
        net = tiny_net()
        with pytest.raises(ValidationError):
            net.add_place(0, 1, 0, "mystery")

    def test_flow_with_token_rejected(self):
        net = tiny_net()
        net.places[0] = net.places[0].__class__(
            index=0, src=0, dst=1, tokens=1, kind=PlaceKind.FLOW
        )
        with pytest.raises(ValidationError):
            validate_tpn(net)

    def test_circuit_with_two_tokens_rejected(self):
        net = tiny_net()
        net.add_place(0, 0, 1, PlaceKind.RR_COMP, "P0:comp")  # second token
        with pytest.raises(ValidationError):
            validate_tpn(net)

    def test_wrong_kind_for_column_rejected(self):
        net = TimedEventGraph(n_rows=1, n_columns=1)
        net.add_transition(0, 0, 1.0, "comm", 0, (0, 1))  # comp column!
        net.add_place(0, 0, 1, PlaceKind.RR_COMP, "P0:comp")
        with pytest.raises(ValidationError):
            validate_tpn(net)

    def test_token_free_cycle_detected(self):
        net = TimedEventGraph(n_rows=1, n_columns=3)
        net.add_transition(0, 0, 2.0, "comp", 0, (0,))
        net.add_transition(0, 1, 4.0, "comm", 0, (0, 1))
        net.add_transition(0, 2, 3.0, "comp", 1, (1,))
        net.add_place(0, 1, 0, PlaceKind.FLOW)
        net.add_place(1, 2, 0, PlaceKind.FLOW)
        # tokenless "circuit": deadlock
        net.add_place(0, 0, 0, PlaceKind.RR_COMP, "P0:comp")
        net.add_place(1, 1, 1, PlaceKind.RR_OUT, "P0:out")
        net.add_place(1, 1, 1, PlaceKind.RR_IN, "P1:in")
        net.add_place(2, 2, 1, PlaceKind.RR_COMP, "P1:comp")
        with pytest.raises((DeadlockError, ValidationError)):
            validate_tpn(net)


class TestAccessors:
    def test_transition_at_bounds(self):
        net = build_tpn(example_a(), "overlap")
        with pytest.raises(IndexError):
            net.transition_at(6, 0)
        with pytest.raises(IndexError):
            net.transition_at(0, 7)

    def test_column_transitions_row_order(self):
        net = build_tpn(example_a(), "overlap")
        col = net.column_transitions(3)
        assert [t.row for t in col] == list(range(6))
        assert all(t.column == 3 for t in col)

    def test_places_by_kind(self):
        net = build_tpn(example_a(), "strict")
        assert len(net.places_by_kind(PlaceKind.RCS)) == 24
        assert len(net.places_by_kind(PlaceKind.RR_OUT)) == 0

    def test_repr(self):
        net = build_tpn(example_a(), "overlap")
        assert "6x7" in repr(net)
