"""Tests for the campaign executor: resume, ordering, exports, CLI.

The acceptance contract of the campaign subsystem: a run killed
mid-stream and re-launched completes without recomputing finished
points (store hit count asserted) and produces byte-identical exports
to an uninterrupted run.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    campaign_status,
    export_campaign_csv,
    export_campaign_json,
    order_for_engine,
    run_campaign,
)
from repro.cli import main
from repro.engine import topology_signature
from repro.errors import ValidationError

SPEC_DICT = {
    "name": "executor-test",
    "draws": 2,
    "models": ["overlap", "strict"],
    "applications": [
        {"synthetic": {"n_stages": 3, "shape": "balanced", "scale": 8.0}},
        {"workload": "audio-pipeline"},
    ],
    "platforms": [{"n_procs": 8}],
    "replications": [
        {"policy": "balls"},
        {"fixed": [1, 2, 3], "assignment": "blocks"},
    ],
    "max_paths": 200,
}


@pytest.fixture()
def spec():
    return CampaignSpec.from_dict(SPEC_DICT)


class TestResume:
    def test_interrupted_run_resumes_without_recompute(self, spec, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            first = run_campaign(spec, store, max_points=5)
            assert (first.evaluated, first.remaining) == (5, spec.n_points - 5)
            assert not first.complete
            second = run_campaign(spec, store)
            # the 5 finished points are store hits, never recomputed
            assert second.hits == 5
            assert second.evaluated == spec.n_points - 5
            assert second.complete
            third = run_campaign(spec, store)
            assert (third.hits, third.evaluated) == (spec.n_points, 0)

    def test_exports_byte_identical_to_uninterrupted(self, spec, tmp_path):
        with ResultStore(tmp_path / "a.sqlite") as interrupted:
            run_campaign(spec, interrupted, max_points=5)
            run_campaign(spec, interrupted)
            json_a = export_campaign_json(spec, interrupted)
            csv_a = export_campaign_csv(spec, interrupted)
        with ResultStore(tmp_path / "b.sqlite") as fresh:
            run_campaign(spec, fresh)
            json_b = export_campaign_json(spec, fresh)
            csv_b = export_campaign_csv(spec, fresh)
        assert json_a == json_b
        assert csv_a == csv_b

    def test_parallel_run_exports_identical(self, spec, tmp_path):
        with ResultStore(tmp_path / "a.sqlite") as serial:
            run_campaign(spec, serial)
            csv_a = export_campaign_csv(spec, serial)
        with ResultStore(tmp_path / "b.sqlite") as parallel:
            report = run_campaign(spec, parallel, n_jobs=2)
            assert report.complete
            csv_b = export_campaign_csv(spec, parallel)
        assert csv_a == csv_b

    def test_status_counts(self, spec, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            run_campaign(spec, store, max_points=3)
            status = campaign_status(spec, store)
            assert status["total"] == spec.n_points
            assert status["done"] == 3
            assert sum(c["done"] for c in status["cells"]) == 3
            assert sum(c["total"] for c in status["cells"]) == spec.n_points


class TestOrdering:
    def test_groups_by_signature_preserving_sweep_order(self, spec):
        points = spec.expand()
        pairs = [(p.instance(), p.model) for p in points]
        order = order_for_engine(pairs)
        assert sorted(order) == list(range(len(pairs)))
        # group ids in visit order: each signature appears in one run
        sigs = [topology_signature(*pairs[i]) for i in order]
        seen: list = []
        for sig in sigs:
            if not seen or seen[-1] != sig:
                assert sig not in seen, "signature split across chunks"
                seen.append(sig)
        # inside a group, the original sweep order is preserved
        by_sig: dict = {}
        for i in order:
            by_sig.setdefault(topology_signature(*pairs[i]), []).append(i)
        for members in by_sig.values():
            assert members == sorted(members)

    def test_report_counts_topology_groups(self, spec, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            report = run_campaign(spec, store)
        points = spec.expand()
        n_groups = len({
            topology_signature(p.instance(), p.model) for p in points
        })
        assert report.groups == n_groups


class TestExports:
    def test_partial_export_requires_flag(self, spec, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            run_campaign(spec, store, max_points=2)
            with pytest.raises(ValidationError):
                export_campaign_json(spec, store)
            text = export_campaign_json(spec, store, allow_partial=True)
            assert len(json.loads(text)["rows"]) == 2

    def test_json_embeds_spec_and_roundtrips(self, spec, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            run_campaign(spec, store)
            payload = json.loads(export_campaign_json(spec, store))
        assert CampaignSpec.from_dict(payload["spec"]) == spec
        assert len(payload["rows"]) == spec.n_points
        row = payload["rows"][0]
        assert {"point", "digest", "period", "mct", "critical"} <= row.keys()

    def test_csv_deterministic_columns(self, spec, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            run_campaign(spec, store)
            header = export_campaign_csv(spec, store).splitlines()[0]
        assert header.startswith("point,application,platform,replication")


class TestCli:
    def test_run_status_export(self, spec, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC_DICT))
        store_path = tmp_path / "s.sqlite"
        out_json = tmp_path / "out.json"
        out_csv = tmp_path / "out.csv"

        assert main(["campaign", "run", str(spec_path),
                     "--store", str(store_path), "--max-points", "4"]) == 0
        assert "store hits     : 0" in capsys.readouterr().out

        assert main(["campaign", "run", str(spec_path),
                     "--store", str(store_path)]) == 0
        assert "store hits     : 4" in capsys.readouterr().out

        assert main(["campaign", "status", str(spec_path),
                     "--store", str(store_path)]) == 0
        assert f"done           : {spec.n_points} / {spec.n_points}" \
            in capsys.readouterr().out

        assert main(["campaign", "export", str(spec_path),
                     "--store", str(store_path),
                     "--json", str(out_json), "--csv", str(out_csv)]) == 0
        capsys.readouterr()
        rows = json.loads(out_json.read_text())["rows"]
        assert len(rows) == spec.n_points
        assert len(out_csv.read_text().splitlines()) == spec.n_points + 1

    def test_export_without_artifacts_errors(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC_DICT))
        assert main(["campaign", "export", str(spec_path),
                     "--store", str(tmp_path / "s.sqlite")]) == 1
        capsys.readouterr()
