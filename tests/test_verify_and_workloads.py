"""Tests for period certificates, the workload catalog, and transients."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import SolverError, compute_period
from repro.algorithms.verify import PeriodCertificate, certify_period, check_certificate
from repro.experiments import example_a, example_b
from repro.petri import build_tpn
from repro.simulation.transient import analyze_transient
from repro.workloads import CATALOG, get_workload, synthetic

from .conftest import small_instances


class TestCertificates:
    def test_example_a_strict_certified(self):
        cert = certify_period(example_a(), "strict")
        assert cert.period == pytest.approx(692.0 / 3.0)
        assert len(cert.cycle_edges) > 0
        # check is idempotent
        check_certificate(example_a(), cert)

    def test_example_b_overlap_certified(self):
        cert = certify_period(example_b(), "overlap")
        assert cert.period == pytest.approx(3500.0 / 12.0)

    @given(small_instances())
    @settings(max_examples=20, deadline=None)
    def test_random_instances_certify(self, inst):
        for model in ("overlap", "strict"):
            cert = certify_period(inst, model)
            assert cert.period == pytest.approx(
                compute_period(inst, model).period, rel=1e-9
            )

    def test_tampered_period_rejected(self):
        cert = certify_period(example_b(), "overlap")
        fake = PeriodCertificate(
            period=cert.period * 0.9,
            m=cert.m,
            cycle_edges=cert.cycle_edges,
            potentials=cert.potentials,
            model=cert.model,
        )
        with pytest.raises(SolverError):
            check_certificate(example_b(), fake)

    def test_tampered_cycle_rejected(self):
        cert = certify_period(example_b(), "overlap")
        fake = PeriodCertificate(
            period=cert.period,
            m=cert.m,
            cycle_edges=cert.cycle_edges[:-1],  # broken cycle
            potentials=cert.potentials,
            model=cert.model,
        )
        with pytest.raises(SolverError):
            check_certificate(example_b(), fake)

    def test_tampered_potentials_rejected(self):
        cert = certify_period(example_a(), "strict")
        bad = np.array(cert.potentials)
        bad[0] -= 1e6
        fake = PeriodCertificate(cert.period, cert.m, cert.cycle_edges,
                                 bad, cert.model)
        with pytest.raises(SolverError):
            check_certificate(example_a(), fake)


class TestWorkloads:
    def test_catalog_contents(self):
        assert len(CATALOG) == 5
        for name, spec in CATALOG.items():
            assert spec.application.n_stages >= 4
            assert spec.description

    def test_get_workload(self):
        app = get_workload("video-transcode")
        assert app.stage_names[3] == "encode"
        with pytest.raises(KeyError):
            get_workload("mining-rig")

    @pytest.mark.parametrize("shape", [
        "balanced", "compute-heavy", "comm-heavy", "shrinking", "random",
    ])
    def test_synthetic_shapes(self, shape):
        app = synthetic(5, shape=shape, scale=4.0, seed=3)
        assert app.n_stages == 5
        assert all(w >= 0 for w in app.works)

    def test_synthetic_validation(self):
        with pytest.raises(ValueError):
            synthetic(0)
        with pytest.raises(ValueError):
            synthetic(3, shape="weird")

    def test_shrinking_monotone(self):
        app = synthetic(6, shape="shrinking")
        assert all(a > b for a, b in zip(app.file_sizes, app.file_sizes[1:]))

    def test_compute_heavy_has_dominant_stage(self):
        app = synthetic(5, shape="compute-heavy")
        assert max(app.works) > 10 * sorted(app.works)[-2]

    def test_workloads_schedulable(self):
        """Every catalog workload computes a finite period when mapped."""
        from repro import Instance, Mapping, Platform

        for spec in CATALOG.values():
            app = spec.application
            n = app.n_stages
            plat = Platform.homogeneous(n, speed=10.0, bandwidth=50.0)
            inst = Instance(app, plat, Mapping([(i,) for i in range(n)]))
            res = compute_period(inst, "overlap")
            assert np.isfinite(res.period) and res.period > 0


class TestTransient:
    def test_example_b_cyclicity_two(self):
        net = build_tpn(example_b(), "overlap")
        rep = analyze_transient(net, n_firings=200)
        assert rep.cyclicity == 2
        assert rep.rate == pytest.approx(3500.0, rel=1e-9)
        assert 0 <= rep.coupling_index < 200

    def test_non_replicated_chain_cyclicity_one(self, two_stage_chain):
        net = build_tpn(two_stage_chain, "strict")
        rep = analyze_transient(net, n_firings=64)
        assert rep.cyclicity == 1
        # critical strict cycle: receive F0 (4) + compute S1 (3) on P1
        assert rep.rate == pytest.approx(7.0)

    @given(small_instances(max_stages=3, max_m=6))
    @settings(max_examples=10, deadline=None)
    def test_rate_matches_period(self, inst):
        for model in ("overlap", "strict"):
            net = build_tpn(inst, model)
            rep = analyze_transient(net, n_firings=max(96, 16 * net.n_rows))
            expected = compute_period(inst, model).period * net.n_rows
            assert rep.rate == pytest.approx(expected, rel=1e-9)

    def test_transient_report_fields(self, two_stage_chain):
        net = build_tpn(two_stage_chain, "overlap")
        rep = analyze_transient(net, n_firings=50)
        assert rep.horizon == 50
        assert rep.cyclicity >= 1
