"""Tests for :mod:`repro.analysis` — the ``repro-lint`` analyzer.

Three layers:

* per-rule fixtures — a minimized bad snippet that must fire and a
  corrected twin that must not (the rule pack's contract);
* engine behavior — pragma suppression, skip-file, scope/critical
  gating, baseline round-trip and staleness, the Python-3.10 TOML
  fallback parser, the CLI's exit codes and JSON output;
* regression fixtures — distilled versions of the two historical
  incidents the pack exists for: the PR-1 ``hash()``-seeded sweeps
  (PYTHONHASHSEED nondeterminism) and the PR-3/PR-5 fancy-index
  accumulation hazard adjacent to ``mp_star``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    Suppression,
    analyze_source,
    apply_baseline,
    format_baseline,
    get_rule,
    load_baseline,
    rule_ids,
)
from repro.analysis.baseline import _loads_toml_subset
from repro.analysis.cli import main as lint_main


@pytest.fixture
def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def findings_for(source, path="src/repro/mod.py", **kw):
    return analyze_source(textwrap.dedent(source), path, **kw)


def fired(source, rule, path="src/repro/mod.py", **kw):
    return [f for f in findings_for(source, path=path, **kw) if f.rule == rule]


# ---------------------------------------------------------------------------
# Rule fixtures: each bad snippet fires exactly its rule; the corrected
# twin is clean.
# ---------------------------------------------------------------------------


class TestRuleFixtures:
    def test_det101_builtin_hash(self):
        bad = "seed = hash(name) % 2**31\n"
        good = "import zlib\nseed = zlib.crc32(name.encode()) % 2**31\n"
        (f,) = fired(bad, "DET101")
        assert f.severity == "error"
        assert "hash()" in f.message
        assert not fired(good, "DET101")

    def test_det101_exempts_dunder_hash(self):
        src = """\
        class Edge:
            def __hash__(self):
                return hash((self.src, self.dst))
        """
        assert not fired(src, "DET101")

    def test_det102_global_random(self):
        bad = "import numpy as np\nx = np.random.uniform(0.0, 1.0, 8)\n"
        good = "import numpy as np\nrng = np.random.default_rng(7)\nx = rng.uniform(0.0, 1.0, 8)\n"
        (f,) = fired(bad, "DET102")
        assert "numpy.random.uniform" in f.message
        assert not fired(good, "DET102")

    def test_det102_stdlib_random_and_aliases(self):
        assert fired("import random\nrandom.shuffle(items)\n", "DET102")
        # Seeded constructors are the sanctioned API.
        assert not fired("import random\nr = random.Random(3)\n", "DET102")
        assert not fired(
            "from numpy.random import default_rng\nrng = default_rng(1)\n",
            "DET102",
        )

    def test_det103_set_iteration(self):
        bad = """\
        procs = {1, 2, 3}
        total = 0.0
        for p in procs:
            total += load[p]
        """
        good = """\
        procs = {1, 2, 3}
        total = 0.0
        for p in sorted(procs):
            total += load[p]
        """
        (f,) = fired(bad, "DET103")
        assert "procs" in f.message
        assert not fired(good, "DET103")

    def test_det103_comprehension_and_literal(self):
        assert fired("xs = [f(v) for v in {1, 2}]\n", "DET103")
        assert not fired("xs = [f(v) for v in sorted({1, 2})]\n", "DET103")

    def test_det104_unsorted_json(self):
        bad = "import json\ntext = json.dumps(payload, indent=2)\n"
        good = "import json\ntext = json.dumps(payload, sort_keys=True)\n"
        (f,) = fired(bad, "DET104")
        assert "sort_keys" in f.message
        assert not fired(good, "DET104")

    def test_det104_sort_keys_false_still_fires(self):
        bad = "import json\ntext = json.dumps(payload, sort_keys=False)\n"
        assert fired(bad, "DET104")

    def test_det105_wall_clock_src_only(self):
        bad = "import time\nstart = time.perf_counter()\n"
        (f,) = fired(bad, "DET105")
        assert "time.perf_counter" in f.message
        # Benchmarks are allowed to measure wall-clock time.
        assert not fired(bad, "DET105", path="benchmarks/bench_x.py")

    def test_det108_span_clock_outside_telemetry(self):
        bad = "import time\nt0 = time.monotonic()\n"
        (f,) = fired(bad, "DET108")
        assert f.severity == "error"
        assert "time.monotonic" in f.message
        # The telemetry package is the sanctioned home for span clocks:
        # both the boundary rule and DET105 stand down inside it.
        assert not fired(bad, "DET108", path="src/repro/telemetry/core.py")
        assert not fired(bad, "DET105", path="src/repro/telemetry/core.py")
        # Benchmarks measure wall-clock freely.
        assert not fired(bad, "DET108", path="benchmarks/bench_x.py")

    def test_det108_rides_with_det105(self):
        # A span clock in library code breaks both rules: wall-clock in
        # logic (DET105) and timing outside the telemetry layer (DET108).
        bad = "import time\nelapsed = time.perf_counter_ns()\n"
        assert fired(bad, "DET105") and fired(bad, "DET108")
        good = (
            "from repro.telemetry import TELEMETRY\n"
            'with TELEMETRY.span("group-solve", rows=4):\n'
            "    solve()\n"
        )
        assert not findings_for(good)

    def test_det109_bare_sleep(self):
        bad = "import time\ntime.sleep(0.1)\n"
        good = "from repro.faults import pause\npause(0.1)\n"
        (f,) = fired(bad, "DET109")
        assert f.severity == "error"
        assert "time.sleep" in f.message
        assert not fired(good, "DET109")
        # The fault plane is the sanctioned home for sleeping; tests
        # and benchmarks pace themselves freely (rule scope is src).
        assert not fired(bad, "DET109", path="src/repro/faults/retry.py")
        assert not fired(bad, "DET109", path="tests/test_x.py")
        assert not fired(bad, "DET109", path="benchmarks/bench_x.py")

    def test_det109_unbounded_retry_loop(self):
        bad = """\
        while True:
            try:
                commit()
                break
            except OSError:
                attempts += 1
                continue
        """
        good = """\
        policy = RetryPolicy(attempts=4, budget=2.0)
        policy.run("commit", commit, retryable=(OSError,))
        """
        (f,) = fired(bad, "DET109")
        assert "no attempt bound" in f.message
        assert not findings_for(textwrap.dedent(good))
        assert not fired(bad, "DET109", path="src/repro/faults/retry.py")

    def test_det109_swallowing_handler_also_retries(self):
        # Falling off the end of the handler re-enters the loop just
        # like an explicit continue does.
        bad = """\
        while True:
            try:
                return commit()
            except OSError:
                pass
        """
        assert fired(bad, "DET109")

    def test_det109_bounded_handlers_and_inner_loops_are_fine(self):
        # A handler that can give up (raise / break / return) is
        # bounded; an except-continue in a *nested* loop re-enters that
        # loop, not the while True.
        bounded = """\
        while True:
            try:
                return commit()
            except OSError:
                attempts += 1
                if attempts > 3:
                    raise
        """
        nested = """\
        while True:
            if done():
                break
            for item in batch:
                try:
                    push(item)
                except OSError:
                    failures.append(item)
                    continue
        """
        assert not fired(bounded, "DET109")
        assert not fired(nested, "DET109")

    def test_det106_fs_order(self):
        bad = "import os\nnames = os.listdir(root)\n"
        good = "import os\nnames = sorted(os.listdir(root))\n"
        assert fired(bad, "DET106")
        assert not fired(good, "DET106")

    def test_det106_pathlib_methods(self):
        bad = 'for p in root.glob("*.json"):\n    use(p)\n'
        good = 'for p in sorted(root.glob("*.json")):\n    use(p)\n'
        (f,) = fired(bad, "DET106")
        assert "Path.glob" in f.message
        assert not fired(good, "DET106")

    def test_det107_set_pop(self):
        bad = """\
        worklist = set(nodes)
        while worklist:
            node = worklist.pop()
        """
        good = """\
        worklist = sorted(nodes)
        while worklist:
            node = worklist.pop()
        """
        (f,) = fired(bad, "DET107")
        assert "pop" in f.message
        assert not fired(good, "DET107")

    def test_num201_fancy_index_accumulate(self):
        bad = """\
        import numpy as np
        idx = np.nonzero(mask)[0]
        acc[idx] += weights
        """
        good = """\
        import numpy as np
        idx = np.nonzero(mask)[0]
        np.add.at(acc, idx, weights)
        """
        (f,) = fired(bad, "NUM201")
        assert "np.add.at" in f.message
        assert not fired(good, "NUM201")

    def test_num201_scalar_index_is_fine(self):
        assert not fired("acc[3] += w\n", "NUM201")
        assert not fired("for i in range(n):\n    acc[i] += w[i]\n", "NUM201")

    def test_num202_escaping_empty(self):
        bad = """\
        import numpy as np
        def make(n):
            out = np.empty(n)
            return out
        """
        good = """\
        import numpy as np
        def make(n):
            out = np.empty(n)
            out.fill(0.0)
            return out
        """
        (f,) = fired(bad, "NUM202")
        assert "out" in f.message
        assert not fired(good, "NUM202")

    def test_num202_subscript_write_initializes(self):
        src = """\
        import numpy as np
        def make(n):
            out = np.empty(n)
            out[:] = 1.0
            return out
        """
        assert not fired(src, "NUM202")

    def test_num202_direct_return(self):
        src = "import numpy as np\ndef make(n):\n    return np.empty(n)\n"
        (f,) = fired(src, "NUM202")
        assert "returned directly" in f.message

    def test_num203_critical_only(self):
        bad = "total = float(weights.sum())\n"
        good = "import numpy as np\ntotal = float(weights.sum(dtype=np.float64))\n"
        critical = "src/repro/maxplus/mod.py"
        plain = "src/repro/experiments/mod.py"
        assert fired(bad, "NUM203", path=critical)
        assert not fired(good, "NUM203", path=critical)
        # Outside the bit-identity-critical modules the rule is silent.
        assert not fired(bad, "NUM203", path=plain)

    def test_num204_mutable_default(self):
        bad = "def run(extra=[]):\n    pass\n"
        good = "def run(extra=None):\n    extra = [] if extra is None else extra\n"
        assert fired(bad, "NUM204")
        assert fired("def run(*, models={}):\n    pass\n", "NUM204")
        assert not fired(good, "NUM204")

    def test_num205_completion_order(self):
        bad = """\
        from concurrent.futures import as_completed
        for fut in as_completed(futures):
            results.append(fut.result())
        """
        good = """\
        from concurrent.futures import as_completed
        for fut in as_completed(futures):
            results[futures[fut]] = fut.result()
        """
        (f,) = fired(bad, "NUM205")
        assert "as_completed" in f.message
        assert not fired(good, "NUM205")


# ---------------------------------------------------------------------------
# Regression fixtures: the historical incidents, distilled.
# ---------------------------------------------------------------------------


class TestIncidentRegressions:
    def test_pr1_hash_seeded_sweep(self):
        """PR 1: sweep seeds derived via builtin hash() — per-process
        PYTHONHASHSEED randomization made every run sweep a different
        seed tree.  The analyzer must flag the original shape."""
        src = """\
        def family_seed(config_name, index):
            return (hash(config_name) + index) % 2**31
        """
        (f,) = fired(src, "DET101")
        assert f.line == 2
        # And must accept the shipped fix (crc32 of explicit bytes).
        fix = """\
        import zlib
        def family_seed(config_name, index):
            return (zlib.crc32(config_name.encode()) + index) % 2**31
        """
        assert not findings_for(fix)

    def test_pr5_fancy_index_accumulation(self):
        """PR 3/PR 5: per-resource accumulation indexed by a
        transition->resource array; fancy-index += keeps only the last
        write per repeated index.  np.add.at is the shipped fix."""
        src = """\
        import numpy as np
        def cycle_sums(n_res, resource_of, durations):
            sums = np.zeros(n_res)
            idx = resource_of.astype(np.int64)
            sums[idx] += durations
            return sums
        """
        (f,) = fired(src, "NUM201", path="src/repro/maxplus/mod.py")
        assert f.line == 5
        fix = src.replace(
            "sums[idx] += durations", "np.add.at(sums, idx, durations)"
        )
        assert not fired(fix, "NUM201", path="src/repro/maxplus/mod.py")


# ---------------------------------------------------------------------------
# Engine behavior.
# ---------------------------------------------------------------------------


class TestEngine:
    def test_pragma_suppresses_one_rule(self):
        src = "seed = hash(name)  # detlint: disable=DET101\n"
        assert not findings_for(src)

    def test_pragma_all(self):
        src = "import time\nt = time.time()  # detlint: disable=all\n"
        assert not findings_for(src)

    def test_pragma_wrong_rule_does_not_suppress(self):
        src = "seed = hash(name)  # detlint: disable=DET102\n"
        assert fired(src, "DET101")

    def test_skip_file(self):
        src = "# detlint: skip-file\nseed = hash(name)\n"
        assert not findings_for(src)

    def test_select_limits_rules(self):
        src = "import json\nseed = hash(n)\ntext = json.dumps(p)\n"
        only = findings_for(src, select=["DET104"])
        assert [f.rule for f in only] == ["DET104"]

    def test_findings_sorted_and_stable(self):
        src = "import json\nb = json.dumps(p)\na = hash(n)\n"
        result = findings_for(src)
        assert result == sorted(result)
        assert [f.line for f in result] == [2, 3]

    def test_finding_to_dict_roundtrips_via_json(self):
        (f,) = findings_for("seed = hash(name)\n")
        data = json.loads(json.dumps(f.to_dict()))
        assert data["rule"] == "DET101"
        assert data["content"] == "seed = hash(name)"

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            findings_for("def broken(:\n")


class TestBaseline:
    def _finding(self):
        (f,) = findings_for("seed = hash(name)\n")
        return f

    def test_round_trip(self, tmp_path):
        f = self._finding()
        path = tmp_path / "base.toml"
        reasons = {(f.rule, f.path, f.content): "vetted: not a seed"}
        path.write_text(format_baseline([f], reasons))
        entries = load_baseline(path)
        assert entries == [
            Suppression(
                rule="DET101",
                path="src/repro/mod.py",
                content="seed = hash(name)",
                reason="vetted: not a seed",
            )
        ]
        kept, suppressed, stale = apply_baseline([f], entries)
        assert (kept, suppressed, stale) == ([], [f], [])

    def test_unvetted_entries_get_todo_reason(self):
        text = format_baseline([self._finding()])
        assert "TODO: vet and justify, or fix" in text

    def test_stale_entry_reported(self):
        entry = Suppression("DET101", "src/gone.py", "seed = hash(x)", "r")
        kept, suppressed, stale = apply_baseline([self._finding()], [entry])
        assert len(kept) == 1 and not suppressed
        assert stale == [entry]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.toml") == []

    def test_toml_subset_fallback_parses_own_output(self):
        f = self._finding()
        text = format_baseline([f], {(f.rule, f.path, f.content): 'why "quoted"'})
        data = _loads_toml_subset(text, "base.toml")
        entries = data["suppression"]
        assert entries[0]["rule"] == "DET101"
        assert entries[0]["reason"] == 'why "quoted"'

    def test_toml_subset_rejects_unsupported(self):
        with pytest.raises(ValueError):
            _loads_toml_subset("rule = 42\n", "base.toml")


class TestRegistry:
    def test_rule_ids_sorted_and_families(self):
        ids = rule_ids()
        assert ids == tuple(sorted(ids))
        assert all(i.startswith(("DET1", "NUM2")) for i in ids)
        assert len(ids) >= 10

    def test_every_rule_documented(self):
        for rule in RULES.values():
            assert rule.summary and rule.fixit and rule.incident
            assert "# bad" in rule.example and "# good" in rule.example
            text = rule.explain()
            assert rule.id in text and "Motivating incident" in text

    def test_get_rule_unknown(self):
        with pytest.raises(KeyError, match="DET101"):
            get_rule("DET999")


class TestCli:
    def test_exit_codes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        src = tmp_path / "src"
        src.mkdir()
        clean = src / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean), "--no-baseline"]) == 0
        dirty = src / "dirty.py"
        dirty.write_text("seed = hash(name)\n")
        assert lint_main([str(dirty), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "DET101" in out
        assert lint_main(["no/such/path"]) == 2
        assert lint_main(["--select", "NOPE", str(clean)]) == 2

    def test_baseline_flow(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text("seed = hash(name)\n")
        base = tmp_path / "base.toml"
        assert lint_main(["--write-baseline", "--baseline", str(base), "src"]) == 0
        assert base.exists()
        capsys.readouterr()
        # Baselined finding no longer fails the run.
        assert lint_main(["--baseline", str(base), "src"]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # Fix the line: the entry goes stale (reported, still exit 0).
        (src / "mod.py").write_text("x = 1\n")
        assert lint_main(["--baseline", str(base), "src"]) == 0
        assert "stale baseline entry" in capsys.readouterr().err

    def test_json_output_is_canonical(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text("seed = hash(name)\n")
        assert lint_main(["--format", "json", "--no-baseline", "src"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "DET101"
        # Canonical output: keys sorted at every level.
        assert list(payload) == sorted(payload)
        assert list(finding) == sorted(finding)

    def test_explain_and_list_rules(self, capsys):
        assert lint_main(["--explain", "det101"]) == 0
        out = capsys.readouterr().out
        assert "PYTHONHASHSEED" in out
        assert lint_main(["--explain", "DET999"]) == 2
        capsys.readouterr()
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out


class TestRepoIsClean:
    def test_head_has_no_unbaselined_findings(self, repo_root):
        """The CI gate's contract, asserted from the test suite too."""
        from repro.analysis import analyze_paths
        from repro.analysis.baseline import DEFAULT_BASELINE

        targets = [repo_root / d for d in ("src", "tests", "benchmarks")]
        findings = analyze_paths(targets, repo_root)
        entries = load_baseline(repo_root / DEFAULT_BASELINE)
        kept, _, stale = apply_baseline(findings, entries)
        assert kept == [], "un-baselined detlint findings at HEAD"
        assert stale == [], "stale baseline entries at HEAD"
        for entry in entries:
            assert entry.reason and not entry.reason.startswith("TODO"), (
                f"baseline entry without a vetted justification: {entry}"
            )
