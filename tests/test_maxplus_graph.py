"""Tests for the RatioGraph structure (SCC, liveness, subgraphs)."""

import pytest

from repro import DeadlockError
from repro.maxplus import RatioGraph
from repro.maxplus.graph import Edge


def triangle(tokens=(1, 1, 1), weights=(1.0, 2.0, 3.0)) -> RatioGraph:
    return RatioGraph(3, [
        (0, 1, weights[0], tokens[0]),
        (1, 2, weights[1], tokens[1]),
        (2, 0, weights[2], tokens[2]),
    ])


class TestConstruction:
    def test_edge_views(self):
        g = triangle()
        e = g.edge(1)
        assert e == Edge(1, 1, 2, 2.0, 1)
        assert [x.src for x in g.edges()] == [0, 1, 2]

    def test_out_of_range_rejected(self):
        with pytest.raises(Exception):
            RatioGraph(2, [(0, 2, 1.0, 1)])

    def test_negative_tokens_rejected(self):
        with pytest.raises(Exception):
            RatioGraph(2, [(0, 1, 1.0, -1)])

    def test_nonfinite_weight_rejected(self):
        with pytest.raises(Exception):
            RatioGraph(2, [(0, 1, float("inf"), 1)])

    def test_adjacency(self):
        g = triangle()
        assert g.out_edges(0) == [0]
        assert g.in_edges(0) == [2]

    def test_parallel_edges_and_self_loops(self):
        g = RatioGraph(1, [(0, 0, 1.0, 1), (0, 0, 2.0, 1)])
        assert g.n_edges == 2
        assert g.out_edges(0) == [0, 1]


class TestScc:
    def test_triangle_is_one_component(self):
        comps = triangle().strongly_connected_components()
        assert len(comps) == 1
        assert sorted(comps[0]) == [0, 1, 2]

    def test_chain_is_singletons(self):
        g = RatioGraph(3, [(0, 1, 1.0, 0), (1, 2, 1.0, 0)])
        comps = g.strongly_connected_components()
        assert sorted(len(c) for c in comps) == [1, 1, 1]

    def test_two_cycles_bridge(self):
        g = RatioGraph(4, [
            (0, 1, 1.0, 1), (1, 0, 1.0, 1),      # component {0,1}
            (1, 2, 1.0, 0),                       # bridge
            (2, 3, 1.0, 1), (3, 2, 1.0, 1),       # component {2,3}
        ])
        comps = {frozenset(c) for c in g.strongly_connected_components()}
        assert comps == {frozenset({0, 1}), frozenset({2, 3})}

    def test_reverse_topological_order(self):
        g = RatioGraph(2, [(0, 1, 1.0, 0)])
        comps = g.strongly_connected_components()
        # Tarjan emits sinks first: {1} before {0}
        assert comps[0] == [1]

    def test_large_path_no_recursion_error(self):
        n = 50_000
        g = RatioGraph(n, [(i, i + 1, 1.0, 0) for i in range(n - 1)])
        assert len(g.strongly_connected_components()) == n


class TestLiveness:
    def test_live_graph(self):
        assert triangle().is_live()

    def test_token_free_cycle_detected(self):
        g = triangle(tokens=(0, 0, 0))
        assert not g.is_live()
        with pytest.raises(DeadlockError):
            g.token_free_topological_order()

    def test_token_free_self_loop_detected(self):
        g = RatioGraph(1, [(0, 0, 1.0, 0)])
        with pytest.raises(DeadlockError):
            g.token_free_topological_order()

    def test_one_token_breaks_cycle(self):
        g = triangle(tokens=(0, 0, 1))
        order = g.token_free_topological_order()
        assert order.index(0) < order.index(1) < order.index(2)


class TestSubgraphAndRatios:
    def test_subgraph_maps_back(self):
        g = RatioGraph(4, [
            (0, 1, 1.0, 1), (1, 0, 2.0, 1), (1, 2, 3.0, 0), (3, 3, 4.0, 1),
        ])
        sub, node_map, edge_map = g.subgraph([1, 0])
        assert sub.n_nodes == 2 and sub.n_edges == 2
        assert node_map == [1, 0]
        assert sorted(edge_map) == [0, 1]

    def test_cycle_ratio_of(self):
        g = triangle(weights=(1.0, 2.0, 3.0), tokens=(1, 0, 1))
        assert g.cycle_ratio_of([0, 1, 2]) == pytest.approx(3.0)

    def test_cycle_ratio_token_free_raises(self):
        g = triangle(tokens=(0, 0, 0))
        with pytest.raises(DeadlockError):
            g.cycle_ratio_of([0, 1, 2])
