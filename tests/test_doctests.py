"""Run every docstring example shipped in the library.

Documentation that executes is documentation that stays true; this
module collects the doctests of all public modules so a drifting example
fails the suite.
"""

import doctest
import importlib

import pytest

MODULES = [
    "repro.core.application",
    "repro.core.platform",
    "repro.core.mapping",
    "repro.core.instance",
    "repro.core.paths",
    "repro.core.cycle_time",
    "repro.core.throughput",
    "repro.core.latency",
    "repro.maxplus.cycle_ratio",
    "repro.maxplus.howard",
    "repro.petri.builder",
    "repro.petri.reduction",
    "repro.algorithms.overlap_poly",
    "repro.algorithms.general_tpn",
    "repro.experiments.examples_paper",
    "repro.engine.signature",
    "repro.engine.batch",
    "repro.campaign.spec",
    "repro.campaign.store",
    "repro.campaign.executor",
    "repro.extensions.mapping_opt",
    "repro.experiments.io",
    "repro.objectives.base",
    "repro.objectives.evaluate",
    "repro.objectives.pareto",
    "repro.objectives.policy",
    "repro.objectives.reliability",
    "repro.search.allocator",
    "repro.search.budget",
    "repro.search.pareto",
    "repro.search.portfolio",
    "repro.utils",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False,
                             optionflags=doctest.NORMALIZE_WHITESPACE)
    assert result.failed == 0, f"{result.failed} doctest(s) failed in {module_name}"


def test_doctests_actually_exist():
    """Guard against silently running zero examples."""
    total = 0
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        finder = doctest.DocTestFinder()
        total += sum(len(t.examples) for t in finder.find(module))
    assert total >= 25
