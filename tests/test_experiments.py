"""Tests for the experiment generator, runner and Table 2 harness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import (
    TABLE2_CONFIGS,
    format_table2,
    instance_from_config,
    random_instance,
    random_replication,
    run_family,
    run_single,
    run_table2,
)
from repro.utils import lcm_all


class TestRandomReplication:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_feasibility(self, seed):
        rng = np.random.default_rng(seed)
        counts = random_replication(5, 12, rng)
        assert len(counts) == 5
        assert all(c >= 1 for c in counts)
        assert sum(counts) <= 12

    def test_max_paths_respected(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            counts = random_replication(10, 30, rng, max_paths=100)
            assert lcm_all(counts) <= 100

    def test_too_few_processors_rejected(self):
        with pytest.raises(ValueError):
            random_replication(5, 4, np.random.default_rng(0))


class TestRandomInstance:
    def test_time_ranges_respected(self):
        rng = np.random.default_rng(42)
        inst = random_instance(3, 8, (5.0, 15.0), (10.0, 50.0), rng)
        for stage in range(3):
            for u in inst.mapping.processors_of(stage):
                assert 5.0 <= inst.comp_time(stage, u) <= 15.0
        for i in range(2):
            for s, r in inst.mapping.comm_pairs(i):
                assert 10.0 <= inst.comm_time(i, s, r) <= 50.0

    def test_fixed_comp_times(self):
        rng = np.random.default_rng(1)
        inst = random_instance(2, 7, None, (5.0, 10.0), rng)
        for stage in range(2):
            for u in inst.mapping.processors_of(stage):
                assert inst.comp_time(stage, u) == pytest.approx(1.0)

    def test_table2_configs_shape(self):
        assert len(TABLE2_CONFIGS) == 6
        assert sum(c.count for c in TABLE2_CONFIGS) == 2576  # per model

    def test_instance_from_config_uses_listed_sizes(self):
        rng = np.random.default_rng(3)
        cfg = TABLE2_CONFIGS[0]
        inst = instance_from_config(cfg, rng)
        assert (inst.n_stages, inst.platform.n_processors) in cfg.sizes


class TestRunner:
    def test_run_single_deterministic(self):
        cfg = TABLE2_CONFIGS[4]  # small pipelines, cheap
        a = run_single(cfg, "overlap", seed_entropy=123)
        b = run_single(cfg, "overlap", seed_entropy=123)
        assert a == b

    def test_record_invariants(self):
        cfg = TABLE2_CONFIGS[4]
        rec = run_single(cfg, "strict", seed_entropy=7)
        assert rec.period >= rec.mct - 1e-9
        assert rec.m == lcm_all(rec.replication)
        assert rec.critical == (rec.gap <= 1e-9)

    def test_run_family_serial_matches_parallel(self):
        cfg = TABLE2_CONFIGS[4]
        serial = run_family(cfg, "overlap", count=6, n_jobs=1)
        parallel = run_family(cfg, "overlap", count=6, n_jobs=2)
        assert serial == parallel

    def test_model_changes_seed_stream(self):
        cfg = TABLE2_CONFIGS[4]
        ov = run_family(cfg, "overlap", count=3, n_jobs=1)
        stn = run_family(cfg, "strict", count=3, n_jobs=1)
        assert [r.seed for r in ov] != [r.seed for r in stn]


class TestTable2:
    def test_tiny_run_both_models(self):
        rows = run_table2(scale=0.004, n_jobs=1)  # 1-4 experiments per row
        assert len(rows) == 12
        # paper's headline: overlap rows report no gap cases... with this
        # tiny sample we can only check consistency of the aggregation.
        for row in rows:
            assert 0 <= row.no_critical <= row.total
            assert row.total >= 1
            if row.no_critical == 0:
                assert row.max_gap == 0.0

    def test_format_table(self):
        rows = run_table2(scale=0.002, models=("overlap",), n_jobs=1)
        text = format_table2(rows)
        assert "With overlap:" in text
        assert "#no-critical / total" in text
        assert len(text.splitlines()) == 3 + 6
