"""Tests for experiment record CSV round-trips."""

import pytest

from repro.experiments import TABLE2_CONFIGS, run_family
from repro.experiments.io import records_from_csv, records_to_csv


@pytest.fixture(scope="module")
def records():
    return run_family(TABLE2_CONFIGS[4], "strict", count=5, n_jobs=1)


class TestCsvRoundtrip:
    def test_exact_roundtrip(self, records):
        clone = records_from_csv(records_to_csv(records))
        assert clone == records

    def test_float_precision_preserved(self, records):
        clone = records_from_csv(records_to_csv(records))
        for a, b in zip(records, clone):
            assert a.period == b.period  # bit-exact via repr()
            assert a.gap == b.gap

    def test_file_roundtrip(self, records, tmp_path):
        path = tmp_path / "records.csv"
        records_to_csv(records, path)
        assert records_from_csv(path) == records

    def test_header_present(self, records):
        text = records_to_csv(records)
        assert text.splitlines()[0].startswith("config_name,model,seed")

    def test_empty_records(self):
        assert records_from_csv(records_to_csv([])) == []
