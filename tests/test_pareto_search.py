"""Tests for the multi-criteria Pareto portfolio (repro.search.pareto)."""

import numpy as np
import pytest

from repro import Application, Platform
from repro.errors import ValidationError
from repro.objectives import dominates
from repro.search import pareto_portfolio_search


def _app_plat(seed=5, n_procs=8):
    app = Application(works=[2.0, 9.0, 4.0, 6.0],
                      file_sizes=[3.0, 1.0, 2.0],
                      name="video-analytics")
    rng = np.random.default_rng(seed)
    bw = rng.uniform(2.0, 8.0, (n_procs, n_procs))
    np.fill_diagonal(bw, 0.0)
    plat = Platform(rng.uniform(1.0, 5.0, n_procs), bw)
    plat = plat.with_failure_rates(
        rng.uniform(0.01, 0.2, n_procs).tolist())
    return app, plat


def _search(**kw):
    app, plat = _app_plat()
    defaults = dict(objectives=("period", "latency"), n_restarts=3,
                    budget=150, max_iters=20, n_probes=4)
    defaults.update(kw)
    return pareto_portfolio_search(app, plat, "overlap", **defaults)


class TestBasics:
    def test_front_is_non_dominated(self):
        result = _search()
        front = result.front()
        assert front, "search must surface at least one mapping"
        vectors = [e.vector for e in front]
        for i, a in enumerate(vectors):
            for j, b in enumerate(vectors):
                if i != j:
                    assert not dominates(a, b)

    def test_budget_is_a_hard_cap(self):
        result = _search(budget=80)
        assert 0 < result.evaluations <= 80

    def test_objectives_canonicalized(self):
        result = _search(objectives="latency,period")
        assert result.objectives == ("period", "latency")

    def test_front_values_match_vectors(self):
        for entry in _search().front():
            assert entry.vector == entry.result.vector()
            assert entry.result.value("period") == entry.vector[0]

    def test_three_objectives(self):
        result = _search(
            objectives=("period", "latency", "reliability"))
        for entry in result.front():
            # reliability is negated into minimization space
            assert entry.vector[2] == -entry.result.value("reliability")
            assert 0.0 < entry.result.value("reliability") <= 1.0

    def test_period_only_degenerates_to_single_point(self):
        """One criterion: the archive collapses to the single best."""
        result = _search(objectives=("period",))
        assert len(result.front()) == 1

    def test_unknown_allocator_rejected(self):
        with pytest.raises(ValidationError):
            _search(allocator="simulated-annealing")


class TestDeterminism:
    def test_rerun_identical(self):
        a = _search().to_dict()
        b = _search().to_dict()
        assert a == b

    def test_n_jobs_bit_identical(self):
        serial = _search(n_jobs=None).to_dict()
        sharded = _search(n_jobs=2).to_dict()
        assert serial == sharded

    def test_warm_start_identical(self):
        cold = _search(warm_start=False).to_dict()
        warm = _search(warm_start=True).to_dict()
        assert cold == warm

    def test_seed_changes_trajectory(self):
        a = _search(root_seed=1)
        b = _search(root_seed=2)
        assert a.to_dict() != b.to_dict()


class TestAllocators:
    def test_both_strategies_run(self):
        eps = _search(allocator="epsilon-constraint")
        wts = _search(allocator="weighted-sum")
        assert eps.allocator == "epsilon-constraint"
        assert wts.allocator == "weighted-sum"
        assert eps.front() and wts.front()

    def test_weighted_sum_deterministic(self):
        a = _search(allocator="weighted-sum").to_dict()
        b = _search(allocator="weighted-sum").to_dict()
        assert a == b

    def test_records_cover_directions(self):
        result = _search()
        assert len(result.records) == len(result.directions)
        spent = sum(r.evaluations for r in result.records)
        assert spent <= result.evaluations
