"""Tests for the content-addressed result store.

Round-trips, digest stability/sensitivity, record reconstruction
equality, and corruption recovery.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.campaign import (
    RESULT_SCHEMA_VERSION,
    ResultStore,
    instance_digest,
    payload_from_result,
    record_from_payload,
)
from repro.core.instance import Instance
from repro.core.mapping import Mapping
from repro.core.throughput import compute_period
from repro.errors import StoreCorruptionError, StoreLeaseError
from repro.experiments import TABLE2_CONFIGS, run_family
from repro.experiments.examples_paper import example_a
from repro.experiments.runner import _draw_instance, family_seeds


class TestDigest:
    def test_stable_across_calls(self):
        assert instance_digest(example_a(), "overlap") == \
               instance_digest(example_a(), "overlap")

    def test_sensitive_to_model_and_schema(self):
        inst = example_a()
        d = instance_digest(inst, "overlap")
        assert d != instance_digest(inst, "strict")
        assert d != instance_digest(inst, "overlap", schema=2)

    def test_sensitive_to_instance_content(self):
        inst = example_a()
        other = Instance(
            inst.application, inst.platform,
            Mapping([tuple(reversed(s)) if len(s) > 1 else s
                     for s in inst.mapping.assignments]),
        )
        assert instance_digest(inst, "overlap") != \
               instance_digest(other, "overlap")

    def test_known_format(self):
        digest = instance_digest(example_a(), "overlap")
        assert len(digest) == 64
        assert int(digest, 16) >= 0


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        path = tmp_path / "s.sqlite"
        inst = example_a()
        result = compute_period(inst, "overlap")
        payload = payload_from_result(inst, result)
        digest = instance_digest(inst, "overlap")
        with ResultStore(path) as store:
            assert store.get(digest) is None
            assert store.put(digest, payload)
            assert digest in store
            assert len(store) == 1
        # floats survive the file round trip bit-exactly
        with ResultStore(path) as store:
            loaded = store.get(digest)
            assert loaded == payload
            assert loaded["period"] == result.period

    def test_put_never_overwrites(self):
        store = ResultStore(":memory:")
        assert store.put("d", {"schema": 1, "period": 1.0})
        assert not store.put("d", {"schema": 1, "period": 2.0})
        assert store.get("d")["period"] == 1.0

    def test_stats_counters(self):
        store = ResultStore(":memory:")
        store.get("missing")
        store.put("d", {"schema": 1})
        store.get("d")
        assert (store.stats.misses, store.stats.hits, store.stats.puts) == \
               (1, 1, 1)

    def test_items_sorted_by_digest(self):
        store = ResultStore(":memory:")
        store.put("bb", {"schema": 1})
        store.put("aa", {"schema": 1})
        assert [d for d, _ in store.items()] == ["aa", "bb"]


class TestRecordReconstruction:
    def test_records_identical_with_and_without_store(self, tmp_path):
        config = TABLE2_CONFIGS[4]
        plain = run_family(config, "strict", count=6, n_jobs=1)
        with ResultStore(tmp_path / "s.sqlite") as store:
            first = run_family(config, "strict", count=6, n_jobs=1,
                               store=store)
            assert store.stats.puts == 6
            again = run_family(config, "strict", count=6, n_jobs=1,
                               store=store)
            assert store.stats.puts == 6  # all hits the second time
            assert store.stats.hits >= 6
        assert first == plain
        assert again == plain

    def test_payload_to_record_fields(self):
        config = TABLE2_CONFIGS[4]
        seed = family_seeds(config, "strict", 1)[0]
        inst = _draw_instance(config, seed, 3000)
        result = compute_period(inst, "strict", max_rows=3001)
        payload = payload_from_result(inst, result)
        record = record_from_payload(config.name, "strict", seed, payload)
        assert record.period == result.period
        assert record.mct == result.mct
        assert record.replication == inst.replication_counts
        assert record.seed == seed

    def test_store_requires_batch_engine(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            run_family(TABLE2_CONFIGS[4], "strict", count=2,
                       engine="percall", store=ResultStore(":memory:"))


class TestCorruptionRecovery:
    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "bad.sqlite"
        path.write_bytes(b"this is not a database at all")
        with pytest.raises(StoreCorruptionError):
            ResultStore(path)

    def test_recover_from_garbage_starts_empty(self, tmp_path):
        path = tmp_path / "bad.sqlite"
        path.write_bytes(b"garbage" * 100)
        store, salvaged = ResultStore.recover(path)
        assert salvaged == 0
        assert len(store) == 0
        assert (tmp_path / "bad.sqlite.corrupt").exists()
        store.put("d", {"schema": 1})
        store.close()
        # the fresh file is a healthy store
        assert len(ResultStore(path)) == 1

    def test_recover_salvages_valid_rows(self, tmp_path):
        path = tmp_path / "s.sqlite"
        inst = example_a()
        payload = payload_from_result(inst, compute_period(inst, "overlap"))
        digest = instance_digest(inst, "overlap")
        store = ResultStore(path)
        store.put(digest, payload)
        store.close()
        # inject rows recovery must drop: broken JSON and a stale schema
        conn = sqlite3.connect(path)
        conn.execute("INSERT INTO results VALUES ('bad', '{not json')")
        conn.execute(
            "INSERT INTO results VALUES ('old', ?)",
            (f'{{"schema": {RESULT_SCHEMA_VERSION + 1}}}',),
        )
        conn.commit()
        conn.close()
        recovered, salvaged = ResultStore.recover(path)
        assert salvaged == 1
        assert recovered.get(digest) == payload
        assert "bad" not in recovered
        assert "old" not in recovered
        recovered.close()

    def test_truncated_file_detected_or_recovered(self, tmp_path):
        path = tmp_path / "s.sqlite"
        store = ResultStore(path)
        for i in range(50):
            store.put(f"digest-{i:03}", {"schema": 1, "i": i})
        store.close()
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        try:
            ResultStore(path)
            detected = False
        except StoreCorruptionError:
            detected = True
        assert detected
        recovered, salvaged = ResultStore.recover(path)
        assert 0 <= salvaged <= 50
        recovered.put("fresh", {"schema": 1})
        assert "fresh" in recovered
        recovered.close()


class TestLeaseAwareRecovery:
    """Regression: recover() must not clobber an active worker's rows.

    A worker holding live leases is (as far as the file can tell) about
    to commit results; replacing the file underneath it would lose them.
    Recovery therefore refuses while unexpired leases exist, and works
    again once they expire — or immediately under ``force=True``.
    """

    def _store_with_lease(self, path, *, at: float, ttl: float = 30.0):
        from repro.campaign import LeaseManager

        store = ResultStore(path)
        store.put("done-row", {"schema": 1, "model": "overlap",
                               "method": "x", "period": 1.0, "mct": 1.0,
                               "critical": True, "gap": 0.0, "m": 1,
                               "n_stages": 1, "n_procs": 1,
                               "replication": [1]})
        mgr = LeaseManager(store, "live-worker", ttl=ttl, clock=lambda: at)
        assert mgr.claim(["pending-row"]) == ["pending-row"]
        store.close()

    def test_recover_refuses_while_leases_are_active(self, tmp_path):
        path = tmp_path / "s.sqlite"
        self._store_with_lease(path, at=0.0)
        with pytest.raises(StoreLeaseError, match="live-worker"):
            ResultStore.recover(path, clock=lambda: 10.0)
        # Refusal is non-destructive: the file is intact and untouched.
        assert not (tmp_path / "s.sqlite.corrupt").exists()
        with ResultStore(path) as store:
            assert "done-row" in store

    def test_recover_proceeds_once_leases_expire(self, tmp_path):
        path = tmp_path / "s.sqlite"
        self._store_with_lease(path, at=0.0, ttl=30.0)
        recovered, salvaged = ResultStore.recover(path, clock=lambda: 60.0)
        assert salvaged == 1
        assert "done-row" in recovered
        recovered.close()

    def test_force_overrides_active_leases(self, tmp_path):
        path = tmp_path / "s.sqlite"
        self._store_with_lease(path, at=0.0)
        recovered, salvaged = ResultStore.recover(
            path, force=True, clock=lambda: 10.0)
        assert salvaged == 1
        recovered.close()
