"""Tests for the multi-criteria objective plane (repro.objectives)."""

import pytest

from repro import Application, Instance, Mapping, Platform, compute_period
from repro.errors import ValidationError
from repro.objectives import (
    OBJECTIVE_NAMES,
    EvalResult,
    ParetoArchive,
    attach_objectives,
    dominates,
    instance_reliability,
    mapping_reliability,
    parse_objectives,
    replication_policy_mapping,
    stage_reliability,
)
from repro.core.latency import measure_latency
from repro.objectives.evaluate import worst_path_latency
from repro.experiments import example_a


class TestParseObjectives:
    def test_none_is_period_only(self):
        assert parse_objectives(None) == ("period",)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            parse_objectives([])

    def test_string_spelling(self):
        assert parse_objectives("latency,period") == ("period", "latency")
        assert parse_objectives("reliability") == ("reliability",)

    def test_canonical_order_and_dedupe(self):
        full = parse_objectives(
            ["reliability", "latency", "period", "latency"])
        assert full == OBJECTIVE_NAMES == ("period", "latency",
                                           "reliability")

    def test_order_independent(self):
        a = parse_objectives(["latency", "reliability"])
        b = parse_objectives(["reliability", "latency"])
        assert a == b == ("latency", "reliability")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            parse_objectives(["period", "throughput"])

    def test_idempotent(self):
        once = parse_objectives("latency, reliability")
        assert parse_objectives(once) == once


class TestReliabilityModel:
    def test_no_failure_model_is_certain(self):
        """f_u = 0 everywhere => the pipeline never fails."""
        plat = Platform.homogeneous(5)
        mapping = Mapping([[0, 1], [2], [3, 4]])
        assert mapping_reliability(plat, mapping) == 1.0

    def test_zero_rate_stage_is_certain(self):
        plat = Platform.homogeneous(3).with_failure_rates([0.0, 0.5, 0.5])
        assert stage_reliability(plat, [0]) == 1.0

    def test_certain_failure_rejected(self):
        """Rates are probabilities in [0, 1): f_u = 1 is a dead
        processor, not a failure model."""
        with pytest.raises(ValidationError):
            Platform.homogeneous(2).with_failure_rates(1.0)

    def test_failure_rates_compose_multiplicatively(self):
        plat = Platform.homogeneous(2).with_failure_rates(0.9)
        assert stage_reliability(plat, [0, 1]) == pytest.approx(0.19)

    def test_empty_stage_rejected(self):
        plat = Platform.homogeneous(2).with_failure_rates(0.1)
        with pytest.raises(ValueError):
            stage_reliability(plat, [])

    def test_replication_monotone(self):
        """Adding a replica never hurts a stage's survival odds."""
        plat = Platform.homogeneous(6).with_failure_rates(
            [0.2, 0.3, 0.1, 0.4, 0.25, 0.05])
        replicas = [0]
        previous = stage_reliability(plat, replicas)
        for extra in [1, 2, 3, 4, 5]:
            replicas.append(extra)
            current = stage_reliability(plat, replicas)
            assert current >= previous
            previous = current

    def test_mapping_replication_monotone(self):
        plat = Platform.homogeneous(4).with_failure_rates(0.3)
        narrow = Mapping([[0], [1]])
        wide = Mapping([[0, 2], [1, 3]])
        assert (mapping_reliability(plat, wide)
                > mapping_reliability(plat, narrow))

    def test_instance_matches_mapping(self):
        app = Application(works=[2.0, 3.0], file_sizes=[1.0])
        plat = Platform.homogeneous(4).with_failure_rates(0.1)
        mapping = Mapping([[0, 1], [2, 3]])
        inst = Instance(app, plat, mapping)
        assert instance_reliability(inst) == mapping_reliability(
            plat, mapping)


class TestEvalResult:
    def _result(self, objectives=("period", "latency", "reliability")):
        inst = example_a()
        pr = compute_period(inst, "overlap")
        return attach_objectives(inst, pr, objectives)

    def test_period_passthrough(self):
        ev = self._result(("period",))
        assert ev.period == 189.0
        assert ev.latency is None and ev.reliability is None
        assert ev.vector() == (189.0,)

    def test_vector_negates_reliability(self):
        ev = self._result()
        assert ev.vector() == (ev.period, ev.latency, -ev.reliability)

    def test_value_requires_evaluation(self):
        ev = self._result(("period",))
        with pytest.raises(ValidationError):
            ev.value("latency")
        with pytest.raises(ValidationError):
            ev.value("unknown")

    def test_latency_bound_mode_matches_path_bound(self):
        ev = self._result(("period", "latency"))
        assert ev.latency_mode == "bound"
        assert ev.value("latency") == worst_path_latency(example_a())

    def test_bound_never_exceeds_measured(self):
        """The contention-free bound lower-bounds exact simulation."""
        inst = example_a()
        pr = compute_period(inst, "overlap")
        bound = attach_objectives(inst, pr, ("period", "latency"))
        measured = measure_latency(inst, "overlap", n_datasets=6)
        assert bound.latency <= measured.max + 1e-9

    def test_attach_is_pure(self):
        a = self._result().to_dict()
        b = self._result().to_dict()
        assert a == b


class TestDominates:
    def test_strict_dominance(self):
        assert dominates((1.0, 2.0), (2.0, 3.0))
        assert dominates((1.0, 2.0), (1.0, 3.0))

    def test_ties_do_not_dominate(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_incomparable(self):
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 3.0))


class TestParetoArchive:
    # All entries share example A's period (189.0); reliability is the
    # discriminating coordinate.
    def _add(self, archive, period, reliability, assignments, source=""):
        pr = compute_period(example_a(), "overlap")
        ev = EvalResult(objectives=("period", "reliability"),
                        period_result=pr, reliability=reliability)
        return archive.add(ev, assignments, source=source)

    def test_dominated_candidate_rejected(self):
        archive = ParetoArchive(("period", "reliability"))
        assert self._add(archive, 189.0, 0.9, [[0]], "a")
        assert not self._add(archive, 189.0, 0.5, [[1]], "b")
        assert len(archive) == 1

    def test_equal_vector_first_wins(self):
        archive = ParetoArchive(("period", "reliability"))
        assert self._add(archive, 189.0, 0.9, [[0]], "first")
        assert not self._add(archive, 189.0, 0.9, [[1]], "second")
        assert archive.front()[0].source == "first"

    def test_insertion_evicts_dominated(self):
        archive = ParetoArchive(("period", "reliability"))
        assert self._add(archive, 189.0, 0.5, [[0]], "weak")
        assert self._add(archive, 189.0, 0.9, [[1]], "strong")
        front = archive.front()
        assert len(front) == 1 and front[0].source == "strong"

    def test_front_order_insertion_independent(self):
        ab = ParetoArchive(("period", "reliability"))
        self._add(ab, 189.0, 0.4, [[0]], "a")
        self._add(ab, 189.0, 0.4, [[1]], "b")
        ba = ParetoArchive(("period", "reliability"))
        self._add(ba, 189.0, 0.4, [[1]], "b")
        self._add(ba, 189.0, 0.4, [[0]], "a")
        # 0.4 ties: first wins in each, so fronts differ by source —
        # but with distinct vectors the export order is sorted:
        assert [e.source for e in ab.front()] == ["a"]
        assert [e.source for e in ba.front()] == ["b"]

    def test_to_dict_roundtrips_canonically(self):
        archive = ParetoArchive(("period", "reliability"))
        self._add(archive, 189.0, 0.9, [[0], [1, 2]], "probe")
        data = archive.to_dict()
        assert data["objectives"] == ["period", "reliability"]
        entry = data["front"][0]
        assert entry["assignments"] == [[0], [1, 2]]
        assert entry["source"] == "probe"


class TestReplicationPolicies:
    def _app_plat(self):
        app = Application(works=[8.0, 2.0, 2.0], file_sizes=[1.0, 1.0],
                          name="demo")
        plat = Platform.homogeneous(6, speed=1.0).with_failure_rates(
            [0.1, 0.1, 0.1, 0.1, 0.3, 0.3])
        return app, plat

    def test_endpoints_differ(self):
        app, plat = self._app_plat()
        fast = replication_policy_mapping(app, plat, "throughput")
        safe = replication_policy_mapping(app, plat, "reliability")
        assert fast.assignments != safe.assignments
        # throughput piles replicas on the heavy stage...
        assert len(fast.assignments[0]) == 4
        # ...reliability spreads them evenly
        assert [len(s) for s in safe.assignments] == [2, 2, 2]

    def test_reliability_policy_maximizes_reliability(self):
        app, plat = self._app_plat()
        fast = replication_policy_mapping(app, plat, "throughput")
        safe = replication_policy_mapping(app, plat, "reliability")
        assert (mapping_reliability(plat, safe)
                >= mapping_reliability(plat, fast))

    def test_deterministic(self):
        app, plat = self._app_plat()
        a = replication_policy_mapping(app, plat, "reliability")
        b = replication_policy_mapping(app, plat, "reliability")
        assert a.assignments == b.assignments

    def test_replica_cap(self):
        app, plat = self._app_plat()
        capped = replication_policy_mapping(app, plat, "throughput",
                                            replicas=1)
        assert sum(len(s) for s in capped.assignments) == app.n_stages + 1

    def test_unknown_policy_rejected(self):
        app, plat = self._app_plat()
        with pytest.raises(ValidationError):
            replication_policy_mapping(app, plat, "fastest")
