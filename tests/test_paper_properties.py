"""Analytic properties of the paper's constructions, property-tested."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Application, Instance, Mapping, Platform, compute_period
from repro.petri import comm_patterns
from repro.utils import gcd_all, lcm_all

from .conftest import make_instance, small_instances


def disjoint_mapping(counts):
    procs, assignments = 0, []
    for c in counts:
        assignments.append(tuple(range(procs, procs + c)))
        procs += c
    return Mapping(assignments)


class TestCommunicationWindows:
    """'Each sender ships exactly one file to each of its receivers per
    lcm window' — the arithmetical core of the cycle-time formulas."""

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_one_file_per_pair_per_window(self, a, b):
        mp = disjoint_mapping([a, b])
        pairs = mp.comm_pairs(0)  # one lcm window
        # every realized pair occurs exactly once
        assert len(pairs) == len(set(pairs)) == lcm_all([a, b])

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_pairs_respect_components(self, a, b):
        """Sender s talks to receiver r iff s ≡ r (mod gcd(a, b))."""
        mp = disjoint_mapping([a, b])
        p = gcd_all([a, b])
        for s, r in mp.comm_pairs(0):
            # receiver index within its stage
            r_idx = r - a
            assert s % p == r_idx % p

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_patterns_partition_pairs(self, a, b):
        """The p component pattern graphs cover each realized pair once."""
        counts = [a, b]
        inst = make_instance(
            counts, [1.0] * (a + b), np.where(np.eye(a + b, dtype=bool), 0, 1.0)
        )
        pats = comm_patterns(inst, 0)
        cells = [
            (pat.senders[alpha], pat.receivers[beta])
            for pat in pats
            for alpha in range(pat.u)
            for beta in range(pat.v)
        ]
        assert len(cells) == len(set(cells))
        assert set(cells) == set(inst.mapping.comm_pairs(0))


class TestHomogeneousMonotonicity:
    """On a homogeneous platform, extra replicas never hurt (OVERLAP)."""

    @given(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_adding_replica_monotone(self, m0, m1, extra):
        def period(counts):
            p = sum(counts)
            app = Application(works=[4.0, 4.0], file_sizes=[2.0])
            plat = Platform.homogeneous(p, speed=1.0, bandwidth=1.0)
            return compute_period(
                Instance(app, plat, disjoint_mapping(counts)), "overlap"
            ).period

        base = period([m0, m1])
        more = period([m0 + extra, m1])
        assert more <= base + 1e-9

    def test_homogeneous_closed_form(self):
        """Homogeneous contribution of a comm column is
        delta/b * max(1/m_i, 1/m_{i+1}) — derived in docs/theory.md."""
        for a, b in [(2, 3), (3, 4), (4, 6), (5, 5)]:
            p = a + b
            app = Application(works=[0.0, 0.0], file_sizes=[6.0])
            plat = Platform.homogeneous(p, speed=1.0, bandwidth=2.0)
            inst = Instance(app, plat, disjoint_mapping([a, b]))
            res = compute_period(inst, "overlap")
            assert res.period == pytest.approx(3.0 * max(1 / a, 1 / b))


class TestReplicationChangesPairings:
    """Replica order is semantic: rotating a stage's replicas can change
    the period on heterogeneous platforms (and never on homogeneous)."""

    @given(small_instances(max_stages=3, max_m=6))
    @settings(max_examples=20, deadline=None)
    def test_rotation_preserves_homogeneous(self, inst):
        # overwrite the platform with a homogeneous one
        p = inst.platform.n_processors
        plat = Platform.homogeneous(p, speed=1.0, bandwidth=1.0)
        base = Instance(inst.application, plat, inst.mapping)
        base_period = compute_period(base, "overlap").period
        rotated_assignments = [
            tuple(s[1:] + s[:1]) for s in inst.mapping.assignments
        ]
        rotated = Instance(inst.application, plat, Mapping(rotated_assignments))
        assert compute_period(rotated, "overlap").period == pytest.approx(
            base_period
        )

    def test_rotation_is_torus_translation(self):
        """Cyclic rotation of one stage's replicas only shifts the
        round-robin phase — a translation of the pattern torus — so the
        period is invariant even on heterogeneous platforms."""
        from repro.experiments import example_b

        inst = example_b()
        base = compute_period(inst, "overlap").period
        for rotated_order in [(4, 5, 6, 3), (5, 6, 3, 4), (6, 3, 4, 5)]:
            rotated = Instance(
                inst.application,
                inst.platform,
                Mapping([inst.mapping.assignments[0], rotated_order]),
            )
            assert compute_period(rotated, "overlap").period == pytest.approx(base)

    def test_transposition_changes_heterogeneous(self):
        """Non-cyclic permutations genuinely re-pair senders/receivers."""
        import itertools

        from repro.experiments import example_b

        inst = example_b()
        periods = set()
        for order in itertools.permutations((3, 4, 5, 6)):
            trial = Instance(
                inst.application,
                inst.platform,
                Mapping([inst.mapping.assignments[0], order]),
            )
            periods.add(round(compute_period(trial, "overlap").period, 6))
        assert len(periods) > 1


class TestZeroCommunication:
    """With free links the period is purely computational."""

    @given(st.lists(st.integers(1, 3), min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_free_links_reduce_to_comp(self, counts):
        p = sum(counts)
        works = [float(2 + i) for i in range(len(counts))]
        app = Application(works=works, file_sizes=[1.0] * (len(counts) - 1))
        bw = np.full((p, p), np.inf)
        np.fill_diagonal(bw, 0.0)
        plat = Platform([1.0] * p, bw)
        inst = Instance(app, plat, disjoint_mapping(counts))
        expected = max(w / c for w, c in zip(works, counts))
        for model in ("overlap", "strict"):
            assert compute_period(inst, model).period == pytest.approx(expected)
