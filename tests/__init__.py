"""Test package marker.

The test modules import shared fixtures with ``from .conftest import
...``; that relative import only resolves when ``tests`` is a proper
package, so this file must exist for collection to work.
"""
