"""Multi-process stress tests for the WAL store and the claim protocol.

The fabric's first acceptance contract: N independent OS processes
hammering one shared store file lose no writes, never double-claim a
digest, and leave the store byte-identical to a serial run — the worker
count is invisible in every artifact.
"""

from __future__ import annotations

import multiprocessing as mp

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    export_campaign_json,
    export_campaign_report,
    run_campaign,
    run_campaign_workers,
)

SPEC_DICT = {
    "name": "fabric-test",
    "draws": 2,
    "models": ["overlap", "strict"],
    "applications": [
        {"synthetic": {"n_stages": 3, "shape": "balanced", "scale": 8.0}},
        {"workload": "audio-pipeline"},
    ],
    "platforms": [{"n_procs": 8}],
    "replications": [
        {"policy": "balls"},
        {"fixed": [1, 2, 3], "assignment": "blocks"},
    ],
    "max_paths": 200,
}

#: Distinct digests the raw-writer stress hammers (shared keyspace, so
#: every digest is written by several processes concurrently).
_STRESS_KEYSPACE = 40


@pytest.fixture()
def spec():
    return CampaignSpec.from_dict(SPEC_DICT)


def _stress_payload(index: int) -> dict:
    """The (unique, valid) payload of stress digest ``index``.

    A pure function of the digest, mirroring the content-addressing
    contract: racing writers of one digest write identical bytes.
    """
    return {
        "schema": 1, "model": "overlap", "method": "stress",
        "period": float(index + 1), "mct": float(index + 1),
        "critical": True, "gap": 0.0, "m": 1, "n_stages": 1,
        "n_procs": 1, "replication": [1],
    }


def _stress_writer(store_path: str, worker: int, rounds: int) -> None:
    """Write the whole keyspace, interleaving commit batching styles."""
    with ResultStore(store_path) as store:
        for r in range(rounds):
            for i in range(_STRESS_KEYSPACE):
                # Rotate the starting point per worker so writers collide
                # on different digests at any given moment.
                idx = (i + worker * 7) % _STRESS_KEYSPACE
                store.put(f"stress-{idx:04d}", _stress_payload(idx),
                          commit=(idx % 3 == 0))
            store.commit()


def _claimer(store_path: str, worker: int, digests: list[str]) -> None:
    """Claim everything claimable, logging each claim into claim_log."""
    from repro.campaign import LeaseManager

    with ResultStore(store_path) as store:
        lease = LeaseManager(store, f"claimer-{worker}", ttl=3600.0)
        while True:
            claimed = lease.claim(digests, limit=3)
            if not claimed:
                return
            for digest in claimed:
                store.connection.execute(
                    "INSERT INTO claim_log (digest, worker) VALUES (?, ?)",
                    (digest, worker),
                )
            store.commit()


class TestConcurrentWriters:
    def test_no_lost_or_duplicated_writes(self, tmp_path):
        """8 processes × 3 rounds over one 40-digest keyspace: the store
        ends with exactly the keyspace, every payload byte-exact."""
        path = str(tmp_path / "stress.sqlite")
        ResultStore(path).close()  # create before the race
        procs = [
            mp.Process(target=_stress_writer, args=(path, w, 3))
            for w in range(8)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)

        from repro.utils import canonical_json

        with ResultStore(path) as store:
            assert len(store) == _STRESS_KEYSPACE
            expected = {
                f"stress-{i:04d}": canonical_json(_stress_payload(i))
                for i in range(_STRESS_KEYSPACE)
            }
            assert dict(store.items_text()) == expected

    def test_no_digest_claimed_twice(self, tmp_path):
        """4 racing claimers partition 30 digests exactly once each."""
        path = str(tmp_path / "claims.sqlite")
        digests = [f"claim-{i:04d}" for i in range(30)]
        with ResultStore(path) as store:
            store.connection.execute(
                "CREATE TABLE claim_log (digest TEXT, worker INTEGER)"
            )
            store.commit()
        procs = [
            mp.Process(target=_claimer, args=(path, w, digests))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        with ResultStore(path) as store:
            log = store.connection.execute(
                "SELECT digest, COUNT(*) FROM claim_log GROUP BY digest"
            ).fetchall()
        assert sorted(d for d, _ in log) == digests
        assert all(count == 1 for _, count in log)  # never double-claimed


class TestFabricByteIdentity:
    def test_exports_independent_of_worker_count(self, spec, tmp_path):
        """workers=1, workers=3 and the serial executor all produce the
        same bytes — the acceptance criterion of the fabric."""
        serial_path = tmp_path / "serial.sqlite"
        with ResultStore(serial_path) as store:
            run_campaign(spec, store)
            ref_json = export_campaign_json(spec, store)
            ref_report = export_campaign_report(spec, store)

        for workers in (1, 3):
            path = tmp_path / f"fabric{workers}.sqlite"
            rep = run_campaign_workers(spec, path, workers=workers)
            assert rep.complete and not rep.crashed
            assert rep.evaluated == rep.total
            with ResultStore(path) as store:
                assert export_campaign_json(spec, store) == ref_json
                assert export_campaign_report(spec, store) == ref_report

    def test_fabric_resumes_over_partial_store(self, spec, tmp_path):
        """A fabric drain over a half-finished serial store reuses every
        stored point and computes only the rest."""
        path = tmp_path / "partial.sqlite"
        with ResultStore(path) as store:
            first = run_campaign(spec, store, max_points=5)
            assert not first.complete
        rep = run_campaign_workers(spec, path, workers=2)
        assert rep.complete
        assert rep.hits == 5
        assert rep.evaluated == rep.total - 5

    def test_leases_drained_after_clean_run(self, spec, tmp_path):
        """A clean fabric run leaves no lease rows behind."""
        path = tmp_path / "clean.sqlite"
        rep = run_campaign_workers(spec, path, workers=2)
        assert rep.complete
        with ResultStore(path) as store:
            rows = store.connection.execute(
                "SELECT COUNT(*) FROM leases"
            ).fetchone()[0]
        assert rows == 0
