"""Tests for SVG rendering and experiment analysis."""

import pytest

from repro.experiments import TABLE2_CONFIGS, run_family
from repro.experiments.analysis import feature_report, gap_histogram, summarize
from repro.experiments.runner import ExperimentRecord
from repro.petri import build_tpn
from repro.simulation import extract_schedules, simulate
from repro.simulation.svg import render_gantt_svg


@pytest.fixture(scope="module")
def example_a_schedules():
    from repro.experiments import example_a

    net = build_tpn(example_a(), "strict")
    trace = simulate(net, 20)
    return extract_schedules(trace, "strict")


class TestSvg:
    def test_well_formed_document(self, example_a_schedules):
        svg = render_gantt_svg(example_a_schedules, 0.0, 3000.0,
                               title="Example A strict")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "Example A strict" in svg
        # one lane background per resource
        assert svg.count(f'fill="#f4f4f4"') == len(example_a_schedules)

    def test_interval_rectangles_present(self, example_a_schedules):
        svg = render_gantt_svg(example_a_schedules, 0.0, 3000.0)
        # computations blue, transmissions orange
        assert '#4e79a7' in svg
        assert '#f28e2b' in svg
        assert "<title>S0 (0)" in svg

    def test_period_marks(self, example_a_schedules):
        svg = render_gantt_svg(example_a_schedules, 0.0, 3000.0,
                               period_marks=[1384.0, 2768.0])
        assert svg.count("stroke-dasharray") == 2

    def test_window_clipping(self, example_a_schedules):
        full = render_gantt_svg(example_a_schedules, 0.0, 3000.0)
        clipped = render_gantt_svg(example_a_schedules, 0.0, 100.0)
        assert clipped.count("<rect") < full.count("<rect")

    def test_file_output(self, example_a_schedules, tmp_path):
        path = tmp_path / "gantt.svg"
        render_gantt_svg(example_a_schedules, 0.0, 500.0, path=path)
        assert path.read_text().startswith("<svg")

    def test_bad_window(self, example_a_schedules):
        with pytest.raises(ValueError):
            render_gantt_svg(example_a_schedules, 10.0, 10.0)


def _fake_record(critical: bool, gap: float, rep=(1, 2), name="fam", model="strict"):
    return ExperimentRecord(
        config_name=name, model=model, seed=0, n_stages=len(rep),
        n_procs=sum(rep), replication=rep, m=2, period=1 + gap, mct=1.0,
        critical=critical, gap=gap,
    )


class TestAnalysis:
    def test_summarize_groups(self):
        records = [
            _fake_record(True, 0.0),
            _fake_record(False, 0.05),
            _fake_record(False, 0.01, name="fam2"),
        ]
        rows = summarize(records)
        assert len(rows) == 2
        fam = next(r for r in rows if r.config_name == "fam")
        assert fam.total == 2 and fam.no_critical == 1
        assert fam.max_gap == pytest.approx(0.05)

    def test_gap_histogram_empty(self):
        assert "no cases" in gap_histogram([_fake_record(True, 0.0)])

    def test_gap_histogram_bins(self):
        records = [_fake_record(False, g) for g in (0.01, 0.02, 0.09)]
        text = gap_histogram(records, n_bins=3)
        assert "3 no-critical cases" in text
        assert text.count("|") == 3

    def test_feature_report(self):
        records = [_fake_record(True, 0.0, rep=(1, 1)),
                   _fake_record(False, 0.03, rep=(2, 3))]
        text = feature_report(records)
        assert "with critical resource" in text
        assert "every no-critical case has a replicated stage: True" in text

    def test_on_real_records(self):
        records = run_family(TABLE2_CONFIGS[4], "strict", count=8, n_jobs=1)
        rows = summarize(records)
        assert rows[0].total == 8
        gap_histogram(records)
        feature_report(records)
