"""Tests for resource cycle-times and the M_ct bound."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import CommModel, cycle_times, maximum_cycle_time
from repro.experiments import example_a, example_b

from .conftest import make_instance, small_instances


class TestNonReplicatedChain:
    def test_overlap_is_max(self, two_stage_chain):
        rep = cycle_times(two_stage_chain, "overlap")
        p0 = rep.for_processor(0)
        assert p0.cin == 0.0
        assert p0.ccomp == 2.0
        assert p0.cout == 4.0
        assert p0.cexec(CommModel.OVERLAP_ONE_PORT) == 4.0
        p1 = rep.for_processor(1)
        assert (p1.cin, p1.ccomp, p1.cout) == (4.0, 3.0, 0.0)
        assert rep.mct == 4.0

    def test_strict_is_sum(self, two_stage_chain):
        rep = cycle_times(two_stage_chain, "strict")
        assert rep.for_processor(0).cexec(rep.model) == 6.0
        assert rep.for_processor(1).cexec(rep.model) == 7.0
        assert rep.mct == 7.0

    def test_critical_processors(self, two_stage_chain):
        rep = cycle_times(two_stage_chain, "strict")
        assert rep.critical_processors() == (1,)
        assert rep.critical_resources() == ((1, "proc"),)

    def test_missing_processor_raises(self, two_stage_chain):
        rep = cycle_times(two_stage_chain, "overlap")
        with pytest.raises(KeyError):
            rep.for_processor(5)


class TestReplicationScaling:
    def test_computation_split_by_replication(self, replicated_middle):
        rep = cycle_times(replicated_middle, "overlap")
        # middle stage comp time 8 replicated on 2 procs -> 4 per data set
        assert rep.for_processor(1).ccomp == pytest.approx(4.0)
        assert rep.for_processor(2).ccomp == pytest.approx(4.0)
        # source comp time 3, unreplicated
        assert rep.for_processor(0).ccomp == pytest.approx(3.0)

    def test_ports_split_by_windows(self, replicated_middle):
        rep = cycle_times(replicated_middle, "overlap")
        # P0 sends every data set (comm time 5): C_out = 5
        assert rep.for_processor(0).cout == pytest.approx(5.0)
        # each middle replica receives every 2nd data set: C_in = 5/2
        assert rep.for_processor(1).cin == pytest.approx(2.5)
        # sink receives every data set: C_in = 5
        assert rep.for_processor(3).cin == pytest.approx(5.0)


class TestPaperValues:
    def test_example_a_overlap_mct_is_189(self):
        rep = cycle_times(example_a(), "overlap")
        assert rep.mct == pytest.approx(189.0)
        # critical resource is the *output port* of P0
        assert (0, "out") in rep.critical_resources()

    def test_example_a_strict_mct(self):
        rep = cycle_times(example_a(), "strict")
        assert rep.mct == pytest.approx(1295.0 / 6.0)  # 215.83, paper: 215.8
        assert rep.critical_processors() == (2,)

    def test_example_b_mct(self):
        rep = cycle_times(example_b(), "overlap")
        assert rep.mct == pytest.approx(3100.0 / 12.0)  # paper: 258.3
        assert (2, "out") in rep.critical_resources()


class TestProperties:
    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_strict_dominates_overlap(self, inst):
        """C_exec^strict = sum >= max = C_exec^overlap, hence Mct too."""
        assert (
            maximum_cycle_time(inst, "strict")
            >= maximum_cycle_time(inst, "overlap") - 1e-12
        )

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_busy_time_conservation(self, inst):
        """Sum over a stage's replicas of C_comp = stage time average."""
        rep = cycle_times(inst, "overlap")
        for stage in range(inst.n_stages):
            procs = inst.mapping.processors_of(stage)
            total = sum(rep.for_processor(u).ccomp for u in procs)
            expected = sum(inst.comp_time(stage, u) for u in procs) / len(procs)
            assert total == pytest.approx(expected)

    def test_endpoint_ports_are_zero(self):
        comm = np.full((2, 2), 7.0)
        np.fill_diagonal(comm, 0.0)
        inst = make_instance([1, 1], [1.0, 1.0], comm)
        rep = cycle_times(inst, "overlap")
        assert rep.for_processor(0).cin == 0.0  # S0 receives nothing
        assert rep.for_processor(1).cout == 0.0  # S_{n-1} sends nothing
