"""Tests for column decomposition and pattern graphs (Theorem 1)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.experiments import EXAMPLE_C_STRUCTURE, example_a, example_b, example_c
from repro.maxplus import max_cycle_ratio
from repro.petri import (
    build_tpn,
    column_subgraph,
    comm_patterns,
    computation_column,
)

from .conftest import small_instances


class TestComputationColumns:
    def test_slowest_replica_dominates(self, replicated_middle):
        col = computation_column(replicated_middle, 1)
        assert col.contribution == pytest.approx(8.0 / 2.0)
        assert col.critical_proc in (1, 2)

    def test_unreplicated_stage(self, two_stage_chain):
        col = computation_column(two_stage_chain, 0)
        assert col.contribution == pytest.approx(2.0)
        assert col.per_processor == ((0, 2.0),)


class TestPatternStructure:
    def test_example_b_single_component(self):
        pats = comm_patterns(example_b(), 0)
        assert len(pats) == 1
        pat = pats[0]
        assert (pat.p, pat.u, pat.v, pat.window) == (1, 3, 4, 12)
        assert pat.senders == (0, 1, 2)
        # receiver grid order follows the round-robin step m_0 = 3 (mod 4):
        # P3, P6, P5, P4
        assert pat.receivers == (3, 6, 5, 4)

    def test_example_b_critical_ratio(self):
        pat = comm_patterns(example_b(), 0)[0]
        assert pat.critical_ratio() == pytest.approx(7000.0 / 2.0)
        assert pat.contribution() == pytest.approx(3500.0 / 12.0)

    def test_example_a_f1_pattern(self):
        pats = comm_patterns(example_a(), 1)
        assert len(pats) == 1
        pat = pats[0]
        assert (pat.p, pat.u, pat.v, pat.window) == (1, 2, 3, 6)
        assert pat.senders == (1, 2)
        # receivers step by m_1 = 2 mod 3: P3, P5, P4
        assert pat.receivers == (3, 5, 4)

    def test_example_c_components(self):
        """Figures 11/13: F1 has p=3 components of 7x9 patterns; P5 talks
        only to P26, P29, ..., P50 and P6 only to P27, P30, ..., P51."""
        pats = comm_patterns(example_c(), 1)
        assert len(pats) == 3
        for pat in pats:
            assert (pat.u, pat.v) == (7, 9)
            assert pat.window == 189
        by_first_sender = {pat.senders[0]: pat for pat in pats}
        assert sorted(by_first_sender) == [5, 6, 7]
        assert set(by_first_sender[5].receivers) == set(
            EXAMPLE_C_STRUCTURE["p5_receivers"]
        )
        assert set(by_first_sender[6].receivers) == set(
            EXAMPLE_C_STRUCTURE["p6_receivers"]
        )

    def test_pattern_c_count(self):
        """c = m / lcm(m_i, m_{i+1}) = 10395 / 189 = 55 (Figure 13)."""
        inst = example_c()
        pat = comm_patterns(inst, 1)[0]
        assert inst.num_paths // pat.window == 55

    def test_cell_pair_matches_duration(self):
        inst = example_b()
        pat = comm_patterns(inst, 0)[0]
        for a in range(pat.u):
            for b in range(pat.v):
                s, r = pat.cell_pair(a, b)
                assert pat.durations[a, b] == pytest.approx(
                    inst.comm_time(0, s, r)
                )


class TestReductionCorrectness:
    """The pattern quotient must match the full column sub-TPN exactly."""

    @given(small_instances(max_stages=3))
    @settings(max_examples=25, deadline=None)
    def test_pattern_ratio_equals_column_ratio(self, inst):
        net = build_tpn(inst, "overlap")
        m = inst.num_paths
        for i in range(inst.n_stages - 1):
            sub, _ = column_subgraph(net, 2 * i + 1)
            full = max_cycle_ratio(sub).value / m
            pats = comm_patterns(inst, i)
            quotient = max(p.contribution() for p in pats)
            assert quotient == pytest.approx(full, rel=1e-9)

    @given(small_instances(max_stages=3))
    @settings(max_examples=25, deadline=None)
    def test_comp_column_equals_subgraph(self, inst):
        net = build_tpn(inst, "overlap")
        m = inst.num_paths
        for i in range(inst.n_stages):
            sub, _ = column_subgraph(net, 2 * i)
            full = max_cycle_ratio(sub).value / m
            assert computation_column(inst, i).contribution == pytest.approx(
                full, rel=1e-9
            )

    def test_pattern_graph_token_structure(self):
        pat = comm_patterns(example_b(), 0)[0]
        g = pat.to_ratio_graph()
        # u*v nodes, 2 per-cell edges
        assert g.n_nodes == 12 and g.n_edges == 24
        # one token per wrap row + per wrap column: u + v
        assert int(np.sum(g.tokens)) == pat.u + pat.v
        assert g.is_live()
