"""Token-game semantics vs. dater recursion, plus TPN serialization."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import SimulationError
from repro.experiments import example_a, example_b
from repro.petri import build_tpn
from repro.petri.marking import (
    circuit_invariants,
    play_token_game,
    verify_invariant_during_game,
)
from repro.petri.serialization import (
    tpn_from_dict,
    tpn_from_json,
    tpn_to_dict,
    tpn_to_json,
)
from repro.simulation import simulate

from .conftest import small_instances


class TestTokenGameEquivalence:
    """The operational semantics must equal the max-plus daters exactly."""

    def test_two_stage_chain(self, two_stage_chain):
        net = build_tpn(two_stage_chain, "overlap")
        k = 5
        game = play_token_game(net, k)
        daters = simulate(net, k).completion
        assert np.allclose(game.completion_matrix(k), daters)

    def test_example_a_both_models(self):
        for model in ("overlap", "strict"):
            net = build_tpn(example_a(), model)
            k = 4
            game = play_token_game(net, k)
            daters = simulate(net, k).completion
            assert np.allclose(game.completion_matrix(k), daters), model

    @given(small_instances(max_stages=3, max_m=6))
    @settings(max_examples=12, deadline=None)
    def test_random_instances(self, inst):
        for model in ("overlap", "strict"):
            net = build_tpn(inst, model)
            k = 3
            game = play_token_game(net, k)
            daters = simulate(net, k).completion
            assert np.allclose(game.completion_matrix(k), daters)

    def test_bad_horizon(self, two_stage_chain):
        net = build_tpn(two_stage_chain, "overlap")
        with pytest.raises(SimulationError):
            play_token_game(net, 0)


class TestInvariants:
    def test_circuit_census(self):
        net = build_tpn(example_a(), "overlap")
        circuits = circuit_invariants(net)
        # 7 CPU circuits + 6 out-port + 6 in-port
        assert len(circuits) == 19
        assert "rr_comp:P0:comp" in circuits

    def test_one_token_invariant_holds(self):
        for inst, model in [(example_a(), "overlap"), (example_a(), "strict"),
                            (example_b(), "overlap")]:
            net = build_tpn(inst, model)
            game = play_token_game(net, 3)
            verify_invariant_during_game(net, game)  # raises on violation

    def test_event_ordering(self, two_stage_chain):
        net = build_tpn(two_stage_chain, "overlap")
        game = play_token_game(net, 4)
        ends = [ev.end for ev in game.events]
        assert ends == sorted(ends)
        # every transition fired exactly 4 times
        counts = {}
        for ev in game.events:
            counts[ev.transition] = counts.get(ev.transition, 0) + 1
        assert set(counts.values()) == {4}


class TestSerialization:
    def test_dict_roundtrip(self):
        net = build_tpn(example_a(), "strict")
        clone = tpn_from_dict(tpn_to_dict(net))
        assert clone.n_transitions == net.n_transitions
        assert clone.n_places == net.n_places
        assert [t.duration for t in clone.transitions] == [
            t.duration for t in net.transitions
        ]
        assert [(p.src, p.dst, p.tokens, p.kind) for p in clone.places] == [
            (p.src, p.dst, p.tokens, p.kind) for p in net.places
        ]

    def test_json_roundtrip_preserves_period(self):
        from repro.maxplus import max_cycle_ratio

        net = build_tpn(example_b(), "overlap")
        clone = tpn_from_json(tpn_to_json(net))
        a = max_cycle_ratio(net.to_ratio_graph()).value
        b = max_cycle_ratio(clone.to_ratio_graph()).value
        assert a == pytest.approx(b)

    def test_json_file_roundtrip(self, tmp_path):
        net = build_tpn(example_a(), "overlap")
        path = tmp_path / "net.json"
        tpn_to_json(net, path)
        clone = tpn_from_json(path)
        assert clone.meta["model"] == "overlap"
        assert clone.n_rows == 6

    def test_unknown_format_rejected(self):
        with pytest.raises(Exception):
            tpn_from_dict({"format": "not-a-tpn"})
