"""Pinned reproduction of the paper's Examples A, B and C.

Every number asserted here is stated in the paper (Sections 4.1-4.2,
Figures 2, 6, 11); see EXPERIMENTS.md for the full correspondence table.
"""

import pytest

from repro import compute_period, cycle_times, enumerate_paths
from repro.experiments import (
    EXAMPLE_A_EXPECTED,
    EXAMPLE_B_EXPECTED,
    EXAMPLE_C_STRUCTURE,
    example_a,
    example_b,
    example_c,
)


class TestExampleA:
    def test_paths_table1(self):
        paths = enumerate_paths(example_a().mapping)
        assert len(paths) == EXAMPLE_A_EXPECTED["m"]
        assert paths[0].processors == (0, 1, 3, 6)
        assert paths[5].processors == (0, 2, 5, 6)

    def test_overlap_period_189(self):
        """Section 4.1: period 189, critical resource = output port of P0."""
        res = compute_period(example_a(), "overlap")
        assert res.period == pytest.approx(EXAMPLE_A_EXPECTED["overlap_period"])
        assert res.has_critical_resource
        rep = cycle_times(example_a(), "overlap")
        assert (0, "out") in rep.critical_resources()

    def test_overlap_critical_column_is_f0(self):
        res = compute_period(example_a(), "overlap")
        crit = res.breakdown.critical_columns
        assert [c.column for c in crit] == [1]  # the F0 transmission column

    def test_strict_mct_and_period(self):
        """Section 4.2: M_ct = 215.8 (P2) < P = 230.7 — no critical
        resource under STRICT ONE-PORT (Figure 7)."""
        res = compute_period(example_a(), "strict")
        assert res.mct == pytest.approx(1295.0 / 6.0)  # 215.83
        assert res.period == pytest.approx(EXAMPLE_A_EXPECTED["strict_period"],
                                           abs=0.05)
        assert not res.has_critical_resource

    def test_strict_critical_cycle_spans_columns(self):
        """Figure 8: the strict critical cycle mixes computations and
        transmissions (backward edges make cycles non-columnar)."""
        res = compute_period(example_a(), "strict", method="tpn")
        cols = {t.column for t in res.tpn_solution.critical_transitions}
        assert len(cols) > 1

    def test_all_18_labels_used(self):
        """The reconstructed instance uses exactly Figure 2's label multiset."""
        from repro.experiments.examples_paper import (
            _EXAMPLE_A_COMM,
            _EXAMPLE_A_COMP,
        )

        labels = sorted(
            list(_EXAMPLE_A_COMP.values()) + list(_EXAMPLE_A_COMM.values())
        )
        assert labels == sorted(
            [147, 22, 104, 146, 23, 73, 128, 73, 77, 68, 13, 57, 157, 67,
             126, 165, 186, 192]
        )


class TestExampleB:
    def test_overlap_no_critical_resource(self):
        """Section 4.1: M_ct = 258.3 (out port of P2) < P = 291.7."""
        res = compute_period(example_b(), "overlap")
        assert res.period == pytest.approx(EXAMPLE_B_EXPECTED["overlap_period"])
        assert res.mct == pytest.approx(EXAMPLE_B_EXPECTED["overlap_mct"])
        assert not res.has_critical_resource

    def test_critical_resource_is_p2_out(self):
        rep = cycle_times(example_b(), "overlap")
        assert (2, "out") in rep.critical_resources()

    def test_label_census_matches_figure6(self):
        """Figure 6 shows twelve '100' labels and seven '1000' labels."""
        inst = example_b()
        times = [inst.comp_time(s, u)
                 for s in range(2) for u in inst.mapping.processors_of(s)]
        times += [inst.comm_time(0, s, r)
                  for s in (0, 1, 2) for r in (3, 4, 5, 6)]
        assert sorted(times).count(100.0) == 12
        assert sorted(times).count(1000.0) == 7

    def test_critical_cycle_mixes_circuit_types(self):
        """Appendix A / Figure 10: the critical cycle passes through both
        sender (out-port) and receiver (in-port) elemental circuits."""
        res = compute_period(example_b(), "overlap", method="tpn")
        trans = res.tpn_solution.critical_transitions
        senders = {t.procs[0] for t in trans}
        receivers = {t.procs[1] for t in trans}
        assert len(senders) > 1 and len(receivers) > 1

    def test_m_is_12(self):
        assert example_b().num_paths == EXAMPLE_B_EXPECTED["m"]


class TestExampleC:
    def test_structure(self):
        inst = example_c()
        assert inst.replication_counts == EXAMPLE_C_STRUCTURE["replication"]
        assert inst.num_paths == EXAMPLE_C_STRUCTURE["m"]

    def test_f1_decomposition(self):
        inst = example_c()
        p, u, v, window = inst.mapping.comm_structure(1)
        f1 = EXAMPLE_C_STRUCTURE["f1"]
        assert (p, u, v, window) == (f1["p"], f1["u"], f1["v"], f1["window"])
        assert inst.num_paths // window == f1["c"]

    def test_polynomial_algorithm_handles_it(self):
        """Theorem 1 computes the period without building the 10395-row
        net (the whole point of the polynomial algorithm)."""
        res = compute_period(example_c(), "overlap", method="polynomial")
        # homogeneous unit times: every resource busy 1/m_i per data set;
        # comm pattern ratio = full sweep of a sender row... value checked
        # against the cycle-time bound instead of a hand-derived constant:
        assert res.period >= res.mct - 1e-12

    def test_heterogeneous_variant_deterministic(self):
        a = example_c(heterogeneous=True, seed=5)
        b = example_c(heterogeneous=True, seed=5)
        assert a.platform == b.platform
        assert example_c(heterogeneous=True, seed=6).platform != a.platform
