"""The fault plane itself: plans, sites, retry policies, degradation types.

Covers the contracts ISSUE.md pins for `repro.faults`: deterministic
crc32-keyed plan expansion and JSON round-trips, the zero-cost-when-
disabled guarantee (a disarmed plane is a no-op that records nothing),
typed faults firing exactly inside their scheduled hit windows,
persistent injected clock skew, deterministic bounded retry schedules
with a total-sleep budget, and `StoreUnavailableError` carrying the
path and cause through the store's connect retry loop.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.campaign import LeaseManager, ResultStore
from repro.errors import StoreUnavailableError, ValidationError
from repro.faults import (
    FAULT_KINDS,
    FAULTS,
    INJECTION_SITES,
    FaultEvent,
    FaultPlan,
    FaultPlane,
    RetryPolicy,
)
from repro.telemetry import TELEMETRY

#: A fast policy for tests: real backoff shape, negligible wall clock.
_FAST = RetryPolicy(attempts=3, base_delay=0.001, max_delay=0.002,
                    budget=0.01)


@pytest.fixture(autouse=True)
def _clean_planes():
    """Every test starts and ends with faults and telemetry off."""
    FAULTS.disarm()
    TELEMETRY.disable()
    yield
    FAULTS.disarm()
    TELEMETRY.disable()


class TestPlans:
    def test_expand_is_deterministic_and_roundtrips(self):
        a = FaultPlan.expand("chaos-7", n_events=5)
        b = FaultPlan.expand("chaos-7", n_events=5)
        assert a == b
        assert a.events  # a full-kind pool always yields events
        assert FaultPlan.from_dict(a.to_dict()) == a
        # Different keys give different schedules (the point of seeding).
        assert FaultPlan.expand("chaos-8", n_events=5) != a

    def test_expand_respects_site_and_kind_filters(self):
        plan = FaultPlan.expand(
            3, n_events=8, include=("sigkill",),
            sites=["worker.after-claim", "worker.pre-release"],
        )
        assert plan.events
        for event in plan.events:
            assert event.kind == "sigkill"
            assert event.site in ("worker.after-claim",
                                  "worker.pre-release")
        # An impossible filter expands to the empty plan, not an error.
        empty = FaultPlan.expand(3, include=("sigkill",),
                                 sites=["store.commit"])
        assert empty == FaultPlan()

    def test_event_validation(self):
        with pytest.raises(ValidationError, match="unknown injection site"):
            FaultEvent(site="no.such.site", kind="stall")
        with pytest.raises(ValidationError, match="not valid at site"):
            FaultEvent(site="store.commit", kind="sigkill")
        with pytest.raises(ValidationError, match="`at` must be >= 1"):
            FaultEvent(site="store.commit", kind="stall", at=0)
        with pytest.raises(ValidationError, match="`repeat` must be >= 1"):
            FaultEvent(site="store.commit", kind="stall", repeat=0)
        with pytest.raises(ValidationError, match="schema"):
            FaultPlan.from_dict({"schema": 2, "events": []})

    def test_registry_is_consistent(self):
        for name, site in INJECTION_SITES.items():
            assert site.name == name
            assert site.kinds
            assert set(site.kinds) <= set(FAULT_KINDS)
            assert site.module.endswith(".py")


class TestPlane:
    def test_disarmed_plane_is_a_noop_and_records_nothing(self):
        TELEMETRY.enable("t")
        assert not FAULTS.enabled
        FAULTS.hit("store.commit")
        assert FAULTS.mangle("sync.object-write", "payload") == "payload"
        assert FAULTS.skew("lease.clock") == 0.0
        assert FAULTS.hits("store.commit") == 0
        snapshot = TELEMETRY.counter_snapshot()
        assert not any(k.startswith("faults.") for k in snapshot)

    def test_faults_fire_only_inside_their_hit_window(self):
        plane = FaultPlane()
        plane.arm(FaultPlan.single("store.commit", "operational", at=2,
                                   repeat=2))
        plane.hit("store.commit")  # hit 1: before the window
        for _ in range(2):  # hits 2 and 3: inside
            with pytest.raises(sqlite3.OperationalError, match="injected"):
                plane.hit("store.commit")
        plane.hit("store.commit")  # hit 4: past the window
        assert plane.hits("store.commit") == 4
        # Unplanned sites never advance their counters.
        plane.hit("lease.begin")
        assert plane.hits("lease.begin") == 0

    def test_enospc_raises_oserror_with_errno(self):
        import errno

        plane = FaultPlane()
        plane.arm(FaultPlan.single("sync.object-write", "enospc"))
        with pytest.raises(OSError) as excinfo:
            plane.mangle("sync.object-write", "text")
        assert excinfo.value.errno == errno.ENOSPC

    def test_truncate_halves_the_payload_once(self):
        plane = FaultPlane()
        plane.arm(FaultPlan.single("sync.object-write", "truncate", at=2))
        assert plane.mangle("sync.object-write", "abcdefgh") == "abcdefgh"
        assert plane.mangle("sync.object-write", "abcdefgh") == "abcd"
        assert plane.mangle("sync.object-write", "abcdefgh") == "abcdefgh"

    def test_clock_jumps_are_persistent_and_cumulative(self):
        plane = FaultPlane()
        plane.arm(FaultPlan(events=(
            FaultEvent("lease.clock", "clock-jump", at=2, param=30.0),
            FaultEvent("lease.clock", "clock-jump", at=3, param=10.0),
        )))
        assert plane.skew("lease.clock") == 0.0
        assert plane.skew("lease.clock") == 30.0
        assert plane.skew("lease.clock") == 40.0
        assert plane.skew("lease.clock") == 40.0  # a step, not a pulse

    def test_arm_resets_counts_and_disarm_clears(self):
        plane = FaultPlane()
        plan = FaultPlan.single("store.commit", "operational", at=1)
        plane.arm(plan)
        with pytest.raises(sqlite3.OperationalError):
            plane.hit("store.commit")
        plane.arm(plan)  # re-arm: the schedule replays from hit zero
        assert plane.hits("store.commit") == 0
        with pytest.raises(sqlite3.OperationalError):
            plane.hit("store.commit")
        plane.disarm()
        assert not plane.enabled
        plane.hit("store.commit")  # no-op again

    def test_fired_faults_are_counted_as_diagnostic_telemetry(self):
        TELEMETRY.enable("t")
        plane = FaultPlane()
        plane.arm(FaultPlan.single("store.commit", "operational",
                                   repeat=2))
        for _ in range(2):
            with pytest.raises(sqlite3.OperationalError):
                plane.hit("store.commit")
        counters = TELEMETRY.counter_snapshot()
        assert counters["faults.injected"] == 2
        assert counters["faults.injected.operational"] == 2


class TestRetryPolicy:
    def test_delays_are_deterministic_bounded_and_budgeted(self):
        policy = RetryPolicy(attempts=6, base_delay=0.1, max_delay=0.4,
                             budget=0.5, jitter_seed=7)
        delays = policy.delays("store.commit:/tmp/x.sqlite")
        assert delays == policy.delays("store.commit:/tmp/x.sqlite")
        assert delays != policy.delays("some-other-op")
        assert len(delays) <= policy.attempts - 1
        assert all(d <= policy.max_delay for d in delays)
        assert sum(delays) <= policy.budget + 1e-12

    def test_jitter_stays_in_the_half_to_full_band(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, factor=1.0,
                             budget=100.0)
        for delay in policy.delays("op"):
            assert 0.05 <= delay <= 0.1

    def test_run_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        assert _FAST.run("op", flaky,
                         retryable=(sqlite3.OperationalError,)) == "ok"
        assert len(calls) == 3

    def test_run_exhaustion_reraises_the_original_error(self):
        def always():
            raise sqlite3.OperationalError("still locked")

        TELEMETRY.enable("t")
        with pytest.raises(sqlite3.OperationalError, match="still locked"):
            _FAST.run("op", always, retryable=(sqlite3.OperationalError,))
        counters = TELEMETRY.counter_snapshot()
        assert counters["retry.exhausted"] == 1
        assert counters["retry.attempts"] == len(_FAST.delays("op"))

    def test_run_passes_non_retryable_errors_through_untouched(self):
        calls = []

        def boom():
            calls.append(1)
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            _FAST.run("op", boom, retryable=(sqlite3.OperationalError,))
        assert len(calls) == 1

    def test_attempts_one_disables_retrying(self):
        policy = RetryPolicy(attempts=1)
        assert policy.delays("op") == []
        with pytest.raises(ValidationError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValidationError):
            RetryPolicy(budget=-1.0)


class TestStoreDegradation:
    def test_connect_failure_wraps_into_store_unavailable(self, tmp_path):
        target = tmp_path / "not-a-file"
        target.mkdir()  # sqlite cannot open a directory as a database
        with pytest.raises(StoreUnavailableError) as excinfo:
            ResultStore(target, retry=RetryPolicy(attempts=1))
        err = excinfo.value
        assert err.path == str(target)
        assert isinstance(err.cause, sqlite3.OperationalError)
        assert str(target) in str(err)

    def test_injected_connect_fault_is_retried_to_success(self, tmp_path):
        FAULTS.arm(FaultPlan.single("store.connect", "operational", at=1))
        with ResultStore(tmp_path / "flaky.sqlite", retry=_FAST) as store:
            assert len(store) == 0
        assert FAULTS.hits("store.connect") == 2  # failed once, then won

    def test_injected_commit_fault_exhausts_and_propagates(self, tmp_path):
        with ResultStore(tmp_path / "c.sqlite", retry=_FAST) as store:
            FAULTS.arm(FaultPlan.single("store.commit", "operational",
                                        repeat=10))
            store.put_text("d1", '{"schema": 1}', commit=False)
            with pytest.raises(sqlite3.OperationalError, match="injected"):
                store.commit()
            FAULTS.disarm()
            store.rollback()
            assert len(store) == 0  # the failed transaction left nothing


class TestLeaseSkew:
    def test_injected_clock_jump_expires_leases(self, tmp_path):
        """The watchdog story end-to-end: a clock step past the TTL makes
        a live worker's leases stale, `held()` drops them, and
        `reclaim_stale()` sweeps the rows for other workers."""
        with ResultStore(tmp_path / "skew.sqlite") as store:
            mgr = LeaseManager(store, "w", ttl=10.0, clock=lambda: 0.0)
            # Jump on the 2nd clock read: claim sees t=0, held sees
            # t=1000 — far past the TTL.
            FAULTS.arm(FaultPlan.single("lease.clock", "clock-jump",
                                        at=2, param=1000.0))
            assert mgr.claim(["a", "b"]) == ["a", "b"]
            assert mgr.held() == []
            assert mgr.reclaim_stale() == 2
            assert mgr.active() == []

    def test_stall_on_renew_models_a_hung_heartbeat(self, tmp_path):
        with ResultStore(tmp_path / "hang.sqlite") as store:
            t = 0.0
            mgr = LeaseManager(store, "w", ttl=10.0, clock=lambda: t)
            mgr.claim(["a"])
            FAULTS.arm(FaultPlan.single("lease.renew", "stall",
                                        param=0.0))
            assert mgr.renew() == 1  # stall returns; the lease survives
            t = 20.0
            assert mgr.renew() == 0  # but a missed beat loses it
