"""Tests for the CommModel enum."""

import pytest

from repro import CommModel


class TestParse:
    def test_enum_passthrough(self):
        assert CommModel.parse(CommModel.STRICT_ONE_PORT) is CommModel.STRICT_ONE_PORT

    @pytest.mark.parametrize("text,expected", [
        ("overlap", CommModel.OVERLAP_ONE_PORT),
        ("strict", CommModel.STRICT_ONE_PORT),
        ("OVERLAP_ONE_PORT", CommModel.OVERLAP_ONE_PORT),
        ("Strict_One_Port", CommModel.STRICT_ONE_PORT),
        ("  overlap ", CommModel.OVERLAP_ONE_PORT),
    ])
    def test_strings(self, text, expected):
        assert CommModel.parse(text) is expected

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            CommModel.parse("full-duplex")
        with pytest.raises(ValueError):
            CommModel.parse(42)

    def test_overlap_flag(self):
        assert CommModel.OVERLAP_ONE_PORT.overlap
        assert not CommModel.STRICT_ONE_PORT.overlap

    def test_str(self):
        assert str(CommModel.OVERLAP_ONE_PORT) == "overlap"
