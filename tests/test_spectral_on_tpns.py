"""Spectral analysis applied to the paper's nets (integration level)."""

import pytest
from hypothesis import given, settings

from repro import compute_period
from repro.maxplus import critical_graph, cyclicity, max_cycle_ratio, potentials
from repro.experiments import example_a, example_b
from repro.petri import build_tpn
from repro.simulation.transient import analyze_transient

from .conftest import small_instances


class TestCriticalGraphOnNets:
    def test_example_a_overlap_critical_is_f0_column(self):
        """The only critical resource is P0's out port: the critical
        graph must live entirely in the F0 transmission column."""
        net = build_tpn(example_a(), "overlap")
        crit = critical_graph(net.to_ratio_graph())
        cols = {net.transitions[v].column for v in crit.nodes}
        assert cols == {1}
        procs = {net.transitions[v].procs[0] for v in crit.nodes}
        assert procs == {0}

    def test_example_b_critical_mixes_resources(self):
        net = build_tpn(example_b(), "overlap")
        crit = critical_graph(net.to_ratio_graph())
        assert crit.value == pytest.approx(3500.0)
        senders = {net.transitions[v].procs[0] for v in crit.nodes}
        receivers = {net.transitions[v].procs[1] for v in crit.nodes}
        assert len(senders) >= 2 and len(receivers) >= 2

    def test_example_a_strict_critical_spans_processors(self):
        net = build_tpn(example_a(), "strict")
        crit = critical_graph(net.to_ratio_graph())
        assert crit.value == pytest.approx(1384.0)
        procs = {p for v in crit.nodes for p in net.transitions[v].procs}
        assert {0, 2} <= procs

    @given(small_instances(max_stages=3, max_m=6))
    @settings(max_examples=15, deadline=None)
    def test_potentials_certify_all_nets(self, inst):
        for model in ("overlap", "strict"):
            net = build_tpn(inst, model)
            g = net.to_ratio_graph()
            lam = max_cycle_ratio(g).value
            h = potentials(g, lam)
            slack = h[g.src] + (g.weight - lam * g.tokens) - h[g.dst]
            assert float(slack.max()) <= 1e-6


class TestCyclicityPredictsSimulation:
    @given(small_instances(max_stages=3, max_m=6))
    @settings(max_examples=10, deadline=None)
    def test_measured_cyclicity_divides_predicted_lcm(self, inst):
        """The simulated sweep sequence's period q divides (a multiple
        of) the spectral cyclicity: measured q must divide q_spectral *
        k for small k.  We check the weaker, robust property that the
        simulated regime exists and its rate matches the exact period."""
        for model in ("overlap", "strict"):
            net = build_tpn(inst, model)
            rep = analyze_transient(net, n_firings=max(96, 20 * net.n_rows))
            exact = compute_period(inst, model).period * net.n_rows
            assert rep.rate == pytest.approx(exact, rel=1e-9)

    def test_example_a_overlap_cyclicity(self):
        """P0's out circuit (the critical cycle) carries one token ->
        cyclicity 1: the steady state repeats every sweep."""
        net = build_tpn(example_a(), "overlap")
        g = net.to_ratio_graph()
        assert cyclicity(g) == 1
        rep = analyze_transient(net, n_firings=96)
        assert rep.cyclicity == 1
