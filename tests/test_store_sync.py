"""Property tests for store push/pull/merge (repro.campaign.sync).

Hypothesis-driven pins of the sync algebra: merge is idempotent and
(on conflict-free inputs) commutative, push-then-pull converges, and
invalid or conflicting payloads are detected, quarantined at the
destination, and reported — never silently merged into ``results``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    DirectoryRemote,
    ResultStore,
    merge_stores,
    open_remote,
    payload_error,
    pull,
    push,
)
from repro.errors import SyncConflictError, ValidationError
from repro.utils import canonical_json


def _payload_text(period: float) -> str:
    """A valid stored payload whose bytes are a function of ``period``."""
    return canonical_json({
        "schema": 1, "model": "overlap", "method": "sync-test",
        "period": period, "mct": period, "critical": True, "gap": 0.0,
        "m": 1, "n_stages": 1, "n_procs": 1, "replication": [1],
    })


def _fill(store: ResultStore, rows: dict[str, float]) -> None:
    for digest, period in rows.items():
        store.put_text(digest, _payload_text(period))


_digests = st.text(alphabet="0123456789abcdef", min_size=6, max_size=6)
_periods = st.floats(min_value=0.5, max_value=100.0, allow_nan=False,
                     allow_infinity=False)


@st.composite
def two_overlapping_stores(draw):
    """Two digest->period maps drawn from one shared pool.

    Shared digests carry identical payloads (the conflict-free regime —
    exactly what honest partial campaigns of one spec produce, since
    evaluation is deterministic).
    """
    pool = draw(st.dictionaries(_digests, _periods, max_size=8))
    keys = sorted(pool)
    subset = st.sets(st.sampled_from(keys), max_size=len(keys)) if keys \
        else st.just(set())
    a = {k: pool[k] for k in draw(subset)}
    b = {k: pool[k] for k in draw(subset)}
    return a, b


class TestMergeAlgebra:
    @settings(max_examples=30, deadline=None)
    @given(two_overlapping_stores())
    def test_merge_idempotent(self, stores):
        a_rows, b_rows = stores
        with ResultStore(":memory:") as a, ResultStore(":memory:") as b:
            _fill(a, a_rows)
            _fill(b, b_rows)
            first = merge_stores(b, a)
            after_once = dict(b.items_text())
            second = merge_stores(b, a)
            assert first.clean and second.clean
            assert second.merged == 0
            assert second.skipped == second.examined == len(a_rows)
            assert dict(b.items_text()) == after_once

    @settings(max_examples=30, deadline=None)
    @given(two_overlapping_stores())
    def test_merge_commutative_without_conflicts(self, stores):
        a_rows, b_rows = stores
        with ResultStore(":memory:") as ab_a, ResultStore(":memory:") as ab_b:
            _fill(ab_a, a_rows)
            _fill(ab_b, b_rows)
            merge_stores(ab_b, ab_a)          # A -> B
            forward = dict(ab_b.items_text())
        with ResultStore(":memory:") as ba_a, ResultStore(":memory:") as ba_b:
            _fill(ba_a, a_rows)
            _fill(ba_b, b_rows)
            merge_stores(ba_a, ba_b)          # B -> A
            backward = dict(ba_a.items_text())
        union = {d: _payload_text(p)
                 for d, p in {**a_rows, **b_rows}.items()}
        assert forward == backward == union

    @settings(max_examples=30, deadline=None)
    @given(two_overlapping_stores())
    def test_push_then_pull_converges(self, stores):
        a_rows, b_rows = stores
        with tempfile.TemporaryDirectory() as tmp, \
                ResultStore(":memory:") as a, ResultStore(":memory:") as b:
            remote = str(Path(tmp) / "remote") + "/"
            _fill(a, a_rows)
            _fill(b, b_rows)
            assert push(a, remote).clean
            assert push(b, remote).clean
            assert pull(a, remote).clean
            assert pull(b, remote).clean
            union = {d: _payload_text(p)
                     for d, p in {**a_rows, **b_rows}.items()}
            assert dict(a.items_text()) == union
            assert dict(b.items_text()) == union
            assert dict(open_remote(remote).items_text()) == union


class TestCorruptionAndConflicts:
    @settings(max_examples=25, deadline=None)
    @given(st.dictionaries(_digests, _periods, min_size=1, max_size=6),
           st.sampled_from(["{not json", '{"schema": 999}', '["a list"]',
                            '{"schema": 1}']))
    def test_invalid_payloads_quarantined_not_merged(self, rows, bad_text):
        assert payload_error(bad_text) is not None  # strategy sanity
        bad_digest = "bad" + "0" * 3
        with ResultStore(":memory:") as src, ResultStore(":memory:") as dst:
            _fill(src, rows)
            src.put_text(bad_digest, bad_text)
            report = merge_stores(dst, src)
            assert not report.clean
            assert [d for d, _ in report.quarantined] == [bad_digest]
            assert report.merged == len(rows)
            # Never in results; parked in quarantine with its reason.
            assert bad_digest not in dst
            (digest, origin, text, reason), = dst.quarantined()
            assert (digest, text) == (bad_digest, bad_text)
            assert reason == payload_error(bad_text)

    def test_conflict_keeps_destination_and_quarantines_incoming(self):
        with ResultStore(":memory:") as src, ResultStore(":memory:") as dst:
            src.put_text("d1", _payload_text(1.0))
            dst.put_text("d1", _payload_text(2.0))  # different valid bytes
            report = merge_stores(dst, src)
            assert report.conflicts == ["d1"]
            assert not report.clean
            assert dst.payload_text("d1") == _payload_text(2.0)  # kept
            (digest, _, text, reason), = dst.quarantined()
            assert (digest, text) == ("d1", _payload_text(1.0))
            assert "conflict" in reason

    def test_strict_mode_raises_on_conflict(self):
        with ResultStore(":memory:") as src, ResultStore(":memory:") as dst:
            src.put_text("d1", _payload_text(1.0))
            dst.put_text("d1", _payload_text(2.0))
            with pytest.raises(SyncConflictError):
                merge_stores(dst, src, strict=True)
            # The report's forensics happened before the raise.
            assert dst.quarantined()

    def test_invalid_destination_copy_is_repaired(self):
        with ResultStore(":memory:") as src, ResultStore(":memory:") as dst:
            src.put_text("d1", _payload_text(1.0))
            dst.put_text("d1", "{broken")
            report = merge_stores(dst, src)
            assert report.repaired == 1 and not report.conflicts
            assert dst.payload_text("d1") == _payload_text(1.0)
            (digest, _, text, _), = dst.quarantined()  # old copy kept aside
            assert (digest, text) == ("d1", "{broken")

    def test_directory_remote_quarantines_invalid_push(self):
        with tempfile.TemporaryDirectory() as tmp, \
                ResultStore(":memory:") as src:
            src.put_text("good01", _payload_text(1.0))
            src.put_text("bad001", "{nope")
            remote_path = str(Path(tmp) / "remote") + "/"
            report = push(src, remote_path)
            assert report.merged == 1
            assert [d for d, _ in report.quarantined] == ["bad001"]
            remote = DirectoryRemote(Path(tmp) / "remote")
            assert dict(remote.items_text()) == {"good01": _payload_text(1.0)}
            (digest, _, text, _), = remote.quarantined()
            assert (digest, text) == ("bad001", "{nope")


class TestOpenRemote:
    def test_nonexistent_ambiguous_target_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            open_remote(tmp_path / "neither-dir-nor-store")

    def test_suffix_creates_store_trailing_slash_creates_directory(
            self, tmp_path):
        assert not isinstance(open_remote(tmp_path / "new.sqlite"),
                              DirectoryRemote)
        assert isinstance(open_remote(str(tmp_path / "objects") + "/"),
                          DirectoryRemote)
