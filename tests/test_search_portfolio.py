"""The repro.search portfolio subsystem: budget, seeding, determinism."""

import json
import zlib

import numpy as np
import pytest

from repro import Application, Platform
from repro.engine import BatchEngine
from repro.errors import ValidationError
from repro.experiments.io import portfolio_to_json, restarts_to_csv
from repro.extensions import (
    greedy_mapping,
    local_search_mapping,
    perturb_mapping,
    random_mapping,
)
from repro.search import (
    EvaluationBudget,
    PortfolioResult,
    portfolio_search,
    portfolio_seeds,
)

APP = Application(works=[2.0, 9.0, 4.0], file_sizes=[3.0, 1.0],
                  name="test-portfolio")


def make_platform(seed=5, n=8):
    rng = np.random.default_rng(seed)
    speeds = rng.uniform(1.0, 5.0, n)
    bw = rng.uniform(2.0, 8.0, (n, n))
    np.fill_diagonal(bw, 0.0)
    return Platform(speeds, bw)


class TestEvaluationBudget:
    def test_take_caps_at_limit(self):
        b = EvaluationBudget(3)
        assert b.take() == 1
        assert b.take(5) == 2
        assert b.take() == 0
        assert b.spent == 3 and b.remaining == 0 and b.exhausted

    def test_unlimited(self):
        b = EvaluationBudget(None)
        assert b.take(10_000) == 10_000
        assert b.remaining is None and not b.exhausted

    def test_negative_take_rejected(self):
        with pytest.raises(ValueError):
            EvaluationBudget(5).take(-1)


class TestSearchBudgetHooks:
    def test_local_search_never_overdraws(self):
        for limit in (1, 3, 10, 50):
            pool = EvaluationBudget(limit)
            res = local_search_mapping(
                APP, make_platform(), "overlap",
                rng=np.random.default_rng(0), budget=pool)
            assert res.evaluations <= limit
            assert pool.spent == res.evaluations

    def test_local_search_zero_budget_returns_inf(self):
        res = local_search_mapping(
            APP, make_platform(), "overlap",
            rng=np.random.default_rng(0), budget=EvaluationBudget(0))
        assert res.period == float("inf") and res.evaluations == 0

    def test_batch_path_respects_budget(self):
        pool = EvaluationBudget(20)
        res = local_search_mapping(
            APP, make_platform(), "overlap",
            rng=np.random.default_rng(0), budget=pool, n_jobs=2)
        assert res.evaluations <= 20
        assert np.isfinite(res.period)

    def test_budgeted_search_charges_identically_at_any_n_jobs(self):
        # The batch path refunds speculative grants past the accepted
        # move, so a finite budget buys the same trajectory serial or
        # sharded (the reviewer's counterexample: budget=60).
        for limit in (30, 60, 120):
            serial_pool = EvaluationBudget(limit)
            serial = local_search_mapping(
                APP, make_platform(), "overlap",
                rng=np.random.default_rng(0), budget=serial_pool)
            batch_pool = EvaluationBudget(limit)
            batch = local_search_mapping(
                APP, make_platform(), "overlap",
                rng=np.random.default_rng(0), budget=batch_pool, n_jobs=2)
            assert serial.period == batch.period
            assert serial.trace == batch.trace
            assert serial.evaluations == batch.evaluations
            assert serial_pool.spent == batch_pool.spent

    def test_budget_refund(self):
        b = EvaluationBudget(10)
        assert b.take(7) == 7
        b.refund(3)
        assert b.spent == 4 and b.remaining == 6
        with pytest.raises(ValueError):
            b.refund(5)

    def test_greedy_never_overdraws(self):
        pool = EvaluationBudget(4)
        res = greedy_mapping(APP, make_platform(), "overlap", budget=pool)
        assert res.evaluations <= 4
        assert np.isfinite(res.period)  # the seed evaluation fit

    def test_unbudgeted_behavior_unchanged(self):
        a = local_search_mapping(APP, make_platform(), "overlap",
                                 rng=np.random.default_rng(3))
        b = local_search_mapping(APP, make_platform(), "overlap",
                                 rng=np.random.default_rng(3),
                                 budget=EvaluationBudget(None))
        assert a.period == b.period
        assert a.evaluations == b.evaluations
        assert a.trace == b.trace


class TestPerturbMapping:
    def test_preserves_processor_set(self):
        rng = np.random.default_rng(0)
        plat = make_platform()
        mapping = random_mapping(APP, plat, rng)
        procs = sorted(u for s in mapping.assignments for u in s)
        for _ in range(50):
            kicked = perturb_mapping(mapping, rng, moves=3,
                                     n_processors=plat.n_processors)
            assert sorted(u for s in kicked.assignments for u in s) == procs

    def test_usually_changes_the_mapping(self):
        rng = np.random.default_rng(1)
        plat = make_platform()
        mapping = random_mapping(APP, plat, rng)
        changed = sum(
            perturb_mapping(mapping, rng, moves=2).assignments
            != mapping.assignments
            for _ in range(20)
        )
        assert changed >= 15

    def test_zero_moves_is_identity(self):
        mapping = random_mapping(APP, make_platform(),
                                 np.random.default_rng(2))
        assert perturb_mapping(
            mapping, np.random.default_rng(0), moves=0
        ).assignments == mapping.assignments


class TestPortfolioSeeds:
    def test_crc32_keyed_and_stable(self):
        seeds = portfolio_seeds(APP, "overlap", 4)
        key = zlib.crc32(b"portfolio|test-portfolio") & 0x7FFFFFFF
        ss = np.random.SeedSequence([20090302, key, 0])
        expected = [int(c.generate_state(1)[0]) for c in ss.spawn(4)]
        assert seeds == expected

    def test_model_and_root_seed_branch(self):
        base = portfolio_seeds(APP, "overlap", 3)
        assert portfolio_seeds(APP, "strict", 3) != base
        assert portfolio_seeds(APP, "overlap", 3, root_seed=1) != base

    def test_prefix_stable(self):
        assert portfolio_seeds(APP, "overlap", 6)[:3] == \
            portfolio_seeds(APP, "overlap", 3)


class TestPortfolioSearch:
    def test_deterministic_across_runs(self):
        plat = make_platform()
        a = portfolio_search(APP, plat, "overlap", n_restarts=3, budget=150)
        b = portfolio_search(APP, plat, "overlap", n_restarts=3, budget=150)
        assert a.to_json() == b.to_json()

    def test_budget_is_a_hard_cap(self):
        plat = make_platform()
        for budget in (1, 10, 60):
            res = portfolio_search(APP, plat, "overlap",
                                   n_restarts=3, budget=budget)
            assert res.evaluations <= budget
            assert sum(r.evaluations for r in res.restarts) == res.evaluations

    def test_matches_or_beats_single_start_at_equal_budget(self):
        plat = make_platform()
        budget = 300
        single = local_search_mapping(
            APP, plat, "overlap", rng=np.random.default_rng(0),
            max_iters=10_000, budget=EvaluationBudget(budget))
        port = portfolio_search(APP, plat, "overlap",
                                n_restarts=4, budget=budget,
                                max_iters=10_000)
        assert port.period <= single.period

    def test_restart_kinds_schedule(self):
        res = portfolio_search(APP, make_platform(), "overlap",
                               n_restarts=4, budget=400)
        kinds = [r.kind for r in res.restarts]
        assert kinds[0] == "greedy"
        assert "random" in kinds
        assert "perturbed-elite" in kinds

    def test_platform_too_small_fails_loudly(self):
        # With fewer processors than stages no valid mapping exists at
        # all (one processor serves at most one stage).
        plat = make_platform(n=2)
        with pytest.raises(ValidationError):
            greedy_mapping(APP, plat, "overlap")
        with pytest.raises(ValidationError):
            portfolio_search(APP, plat, "overlap", n_restarts=2, budget=40)

    def test_traces_monotone_and_mapping_consistent(self):
        from repro import Instance, compute_period

        res = portfolio_search(APP, make_platform(), "overlap",
                               n_restarts=3, budget=200)
        for r in res.restarts:
            assert all(x >= y for x, y in zip(r.trace, r.trace[1:]))
        recomputed = compute_period(
            Instance(APP, make_platform(), res.mapping), "overlap").period
        assert recomputed == res.period

    def test_shared_engine_and_n_jobs_keep_trajectory(self):
        plat = make_platform()
        serial = portfolio_search(APP, plat, "overlap",
                                  n_restarts=2, budget=120)
        shared = portfolio_search(APP, plat, "overlap",
                                  n_restarts=2, budget=120,
                                  engine=BatchEngine(max_rows=3001))
        assert serial.period == shared.period
        assert serial.mapping.assignments == shared.mapping.assignments

    def test_warm_start_flag_same_period(self):
        plat = make_platform()
        cold = portfolio_search(APP, plat, "strict", n_restarts=2, budget=80)
        warm = portfolio_search(APP, plat, "strict", n_restarts=2, budget=80,
                                warm_start=True)
        assert cold.period == warm.period
        assert cold.evaluations == warm.evaluations

    def test_zero_budget_returns_flagged_fallback(self):
        res = portfolio_search(APP, make_platform(), "overlap",
                               n_restarts=2, budget=0)
        assert res.period == float("inf")
        assert res.evaluations == 0
        assert res.mapping.assignments  # still a usable mapping object
        assert res.best_restart is None  # and the accessor doesn't raise
        # ...and the JSON stays strict RFC 8259: inf maps to null.
        data = json.loads(res.to_json())
        assert data["period"] is None
        assert "Infinity" not in res.to_json()


class TestPortfolioIO:
    def _result(self) -> PortfolioResult:
        return portfolio_search(APP, make_platform(), "overlap",
                                n_restarts=3, budget=150)

    def test_json_round_trip(self, tmp_path):
        res = self._result()
        path = tmp_path / "portfolio.json"
        text = portfolio_to_json(res, path)
        data = json.loads(path.read_text())
        assert data == json.loads(text) == res.to_dict()
        assert data["period"] == res.period
        assert data["assignments"] == [list(s) for s in res.mapping.assignments]
        assert len(data["restarts"]) == len(res.restarts)
        assert data["restarts"][0]["kind"] == res.restarts[0].kind

    def test_restarts_csv(self, tmp_path):
        res = self._result()
        path = tmp_path / "restarts.csv"
        text = restarts_to_csv(res, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == \
            "index,kind,seed,period,evaluations,trace,assignments,rungs"
        assert len(lines) == 1 + len(res.restarts)
        assert text == path.read_text()
        # period column survives a float round trip losslessly (repr)
        first = lines[1].split(",")
        assert float(first[3]) == res.restarts[0].period
