"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import strategies as st

from repro import Application, Instance, Mapping, Platform


def make_instance(
    counts: list[int],
    comp_times: list[float],
    comm_times: np.ndarray | list[list[float]],
    works: list[float] | None = None,
    file_sizes: list[float] | None = None,
) -> Instance:
    """Instance with stages mapped on consecutive processor groups.

    ``comp_times``/``comm_times`` are per-resource times for unit works
    and unit file sizes (the paper's parameterization).
    """
    n = len(counts)
    p = sum(counts)
    works = works if works is not None else [1.0] * n
    file_sizes = file_sizes if file_sizes is not None else [1.0] * (n - 1)
    app = Application(works=works, file_sizes=file_sizes)
    plat = Platform.from_comm_times(comp_times, comm_times)
    bounds = np.cumsum([0] + counts)
    mapping = Mapping(
        [tuple(range(bounds[i], bounds[i + 1])) for i in range(n)],
        n_processors=p,
    )
    return Instance(app, plat, mapping)


@st.composite
def replication_vectors(draw, max_stages: int = 4, max_m: int = 12):
    """Per-stage replication counts with a bounded number of paths."""
    n = draw(st.integers(min_value=1, max_value=max_stages))
    counts = [draw(st.integers(min_value=1, max_value=4)) for _ in range(n)]
    m = math.lcm(*counts)
    if m > max_m:
        # Shrink until the lcm budget holds (keeps hypothesis efficient
        # compared to assume()-based rejection).
        counts = [1 + (c - 1) % 2 for c in counts]
    return counts


@st.composite
def small_instances(draw, max_stages: int = 4, max_m: int = 12,
                    time_range: tuple[int, int] = (1, 50)):
    """Small random instances cheap enough for full-TPN cross-checks."""
    counts = draw(replication_vectors(max_stages=max_stages, max_m=max_m))
    p = sum(counts)
    lo, hi = time_range
    comp_times = [draw(st.integers(lo, hi)) for _ in range(p)]
    comm_times = np.ones((p, p))
    for u in range(p):
        for v in range(p):
            if u != v:
                comm_times[u, v] = draw(st.integers(lo, hi))
    np.fill_diagonal(comm_times, 0.0)
    return make_instance(counts, comp_times, comm_times)


@pytest.fixture
def two_stage_chain() -> Instance:
    """Minimal non-replicated chain: S0 on P0, S1 on P1."""
    return make_instance([1, 1], [2.0, 3.0], [[0.0, 4.0], [4.0, 0.0]])


@pytest.fixture
def replicated_middle() -> Instance:
    """3 stages; middle replicated on two processors (m = 2)."""
    comm = np.full((4, 4), 5.0)
    np.fill_diagonal(comm, 0.0)
    return make_instance([1, 2, 1], [3.0, 8.0, 8.0, 2.0], comm)
