"""Tests for the batched throughput engine (repro.engine).

The engine's contract is strict: for every supported (model, method)
combination it must return results *bit-identical* to the scalar
``compute_period`` path — same periods, same bounds, same critical
cycles — through the cache-hit, cache-miss and multi-worker paths alike.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro import Application, Instance, Mapping, Platform, compute_period
from repro.engine import (
    BatchEngine,
    build_skeleton,
    evaluate_batch,
    evaluate_stream,
    topology_signature,
)
from repro.errors import ReplicationExplosionError, ValidationError
from repro.experiments.examples_paper import example_a, example_b, example_c

from .conftest import small_instances


def assert_results_identical(scalar, batched, check_net=True):
    """Bitwise comparison of the scalar and batched PeriodResults."""
    assert scalar.period == batched.period
    assert scalar.throughput == batched.throughput
    assert scalar.model == batched.model
    assert scalar.method == batched.method
    assert scalar.m == batched.m
    assert scalar.mct == batched.mct
    assert scalar.has_critical_resource == batched.has_critical_resource
    assert scalar.relative_gap == batched.relative_gap
    if scalar.breakdown is not None:
        assert batched.breakdown is not None
        assert scalar.breakdown.period == batched.breakdown.period
        assert [c.value for c in scalar.breakdown.columns] == [
            c.value for c in batched.breakdown.columns
        ]
    if scalar.tpn_solution is not None:
        assert batched.tpn_solution is not None
        # Same critical cycle, same ratio, bit for bit.
        assert scalar.tpn_solution.ratio == batched.tpn_solution.ratio
        if check_net:
            assert batched.tpn_solution.net is None  # engine never builds it


def shared_topology_instances(count=6, counts=(2, 3, 1), seed=0):
    """Instances sharing one mapping topology with varying times."""
    rng = np.random.default_rng(seed)
    n, p = len(counts), sum(counts)
    bounds = np.cumsum([0] + list(counts))
    mapping = Mapping(
        [tuple(range(bounds[i], bounds[i + 1])) for i in range(n)],
        n_processors=p,
    )
    app = Application(works=[1.0] * n, file_sizes=[1.0] * (n - 1))
    out = []
    for _ in range(count):
        comp = rng.uniform(1.0, 20.0, p)
        comm = rng.uniform(1.0, 20.0, (p, p))
        np.fill_diagonal(comm, 0.0)
        out.append(Instance(app, Platform.from_comm_times(comp, comm), mapping))
    return out


PAPER_CASES = [
    (example_a, "overlap", "polynomial"),
    (example_a, "overlap", "tpn"),
    (example_a, "strict", "tpn"),
    (example_b, "overlap", "polynomial"),
    (example_b, "overlap", "tpn"),
    (example_b, "strict", "tpn"),
    # Example C has m = 10395: polynomial only (the TPN path is what the
    # row budget exists for; covered by test_budget_parity below).
    (example_c, "overlap", "polynomial"),
]


class TestBitIdentity:
    @pytest.mark.parametrize("mk,model,method", PAPER_CASES)
    def test_paper_examples(self, mk, model, method):
        inst = mk()
        scalar = compute_period(inst, model, method=method)
        batched = evaluate_batch([inst], model, method=method)[0]
        assert_results_identical(scalar, batched)

    def test_auto_method_resolution_matches(self):
        inst = example_a()
        for model in ("overlap", "strict"):
            scalar = compute_period(inst, model)  # auto
            batched = evaluate_batch([inst], model)[0]
            assert scalar.method == batched.method
            assert_results_identical(scalar, batched)

    @given(small_instances(max_stages=3, max_m=6))
    @settings(max_examples=25, deadline=None)
    def test_hypothesis_instances(self, inst):
        for model, method in (
            ("overlap", "polynomial"),
            ("overlap", "tpn"),
            ("strict", "tpn"),
        ):
            scalar = compute_period(inst, model, method=method)
            batched = evaluate_batch([inst], model, method=method)[0]
            assert_results_identical(scalar, batched)

    def test_shared_topology_sweep(self):
        insts = shared_topology_instances(count=8)
        engine = BatchEngine()
        batched = evaluate_batch(insts, "strict", method="tpn", engine=engine)
        for inst, b in zip(insts, batched):
            assert_results_identical(
                compute_period(inst, "strict", method="tpn"), b
            )
        # One skeleton build served the whole sweep.
        assert engine.stats.misses == 1
        assert engine.stats.hits == len(insts) - 1


class TestCacheSemantics:
    def test_signature_groups_by_model_and_mapping(self):
        a, b = shared_topology_instances(count=2)
        assert topology_signature(a, "overlap") == topology_signature(b, "overlap")
        assert topology_signature(a, "overlap") != topology_signature(a, "strict")

    def test_cache_hit_returns_identical_results(self):
        inst = shared_topology_instances(count=1)[0]
        engine = BatchEngine()
        first = engine.evaluate(inst, "strict", method="tpn")
        second = engine.evaluate(inst, "strict", method="tpn")
        assert engine.stats.misses == 1 and engine.stats.hits == 1
        assert first.period == second.period
        assert first.tpn_solution.ratio == second.tpn_solution.ratio

    def test_cache_eviction_bounds_memory(self):
        insts = shared_topology_instances(count=1, counts=(1, 1))
        other = shared_topology_instances(count=1, counts=(1, 2))
        engine = BatchEngine(cache_limit=1)
        engine.evaluate(insts[0], "strict", method="tpn")
        engine.evaluate(other[0], "strict", method="tpn")
        assert len(engine._skeletons) == 1
        # Evicted entry is rebuilt transparently with identical output.
        again = engine.evaluate(insts[0], "strict", method="tpn")
        assert again.period == compute_period(insts[0], "strict", method="tpn").period

    def test_skeleton_rebuild_is_deterministic(self):
        inst = shared_topology_instances(count=1)[0]
        sk1 = build_skeleton(inst, "strict")
        sk2 = build_skeleton(inst, "strict")
        assert np.array_equal(sk1.edge_src, sk2.edge_src)
        assert np.array_equal(sk1.edge_tokens, sk2.edge_tokens)
        assert np.array_equal(sk1.stamp_weights(inst), sk2.stamp_weights(inst))


class TestBatchApi:
    def test_order_preserved_and_streaming(self):
        insts = shared_topology_instances(count=5)
        streamed = list(evaluate_stream(insts, "strict", method="tpn"))
        batched = evaluate_batch(insts, "strict", method="tpn")
        scalar = [compute_period(i, "strict", method="tpn") for i in insts]
        for s, st, b in zip(scalar, streamed, batched):
            assert s.period == st.period == b.period

    def test_per_pair_models(self):
        insts = shared_topology_instances(count=4)
        models = ["overlap", "strict", "overlap", "strict"]
        batched = evaluate_batch(insts, models)
        for inst, model, b in zip(insts, models, batched):
            assert_results_identical(compute_period(inst, model), b)

    def test_model_count_mismatch_rejected(self):
        insts = shared_topology_instances(count=2)
        with pytest.raises(ValidationError):
            evaluate_batch(insts, ["overlap"])

    def test_multiworker_identical(self):
        insts = shared_topology_instances(count=10)
        serial = evaluate_batch(insts, "strict", method="tpn")
        sharded = evaluate_batch(insts, "strict", method="tpn", n_jobs=2)
        chunked = evaluate_batch(
            insts, "strict", method="tpn", n_jobs=2, chunk_size=3
        )
        for s, p, c in zip(serial, sharded, chunked):
            assert s.period == p.period == c.period
            assert s.mct == p.mct == c.mct
            assert s.tpn_solution.ratio == p.tpn_solution.ratio == c.tpn_solution.ratio

    def test_simulation_method_delegates(self):
        inst = shared_topology_instances(count=1, counts=(1, 1))[0]
        scalar = compute_period(inst, "overlap", method="simulation")
        batched = evaluate_batch([inst], "overlap", method="simulation")[0]
        assert scalar.period == batched.period


class TestErrorParity:
    def test_polynomial_rejects_strict(self):
        inst = example_a()
        with pytest.raises(ValidationError):
            evaluate_batch([inst], "strict", method="polynomial")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValidationError):
            evaluate_batch([example_a()], "overlap", method="magic")

    def test_budget_parity(self):
        inst = example_c()  # m = 10395
        with pytest.raises(ReplicationExplosionError):
            compute_period(inst, "strict", method="tpn", max_rows=100)
        with pytest.raises(ReplicationExplosionError):
            evaluate_batch([inst], "strict", method="tpn", max_rows=100)

    def test_budget_enforced_on_cache_hit(self):
        inst = shared_topology_instances(count=1, counts=(2, 3))[0]  # m = 6
        engine = BatchEngine(max_rows=10)
        engine.evaluate(inst, "strict", method="tpn")
        engine.max_rows = 5
        with pytest.raises(ReplicationExplosionError):
            engine.evaluate(inst, "strict", method="tpn")

    def test_batch_solution_has_no_net(self):
        inst = example_a()
        batched = evaluate_batch([inst], "strict", method="tpn")[0]
        assert batched.tpn_solution.net is None
        with pytest.raises(ValidationError):
            batched.tpn_solution.critical_transitions
