"""Lockstep Howard solver: bit-identity with the scalar path.

`solve_prepared_many` promises that row ``b`` of a batch equals
``solve_prepared(plan, weights[b])`` **bit for bit** — value bits,
extracted cycle (nodes *and* edge order), and round count — across cold
starts, exact-tie weights, and warm-started sequences.  These tests pin
that contract on randomized topologies, plus the
:class:`~repro.maxplus.howard.HowardState` cross-plan guard.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeadlockError, SolverError
from repro.maxplus.graph import RatioGraph
from repro.maxplus.howard import (
    HowardState,
    prepare_howard,
    solve_prepared,
    solve_prepared_many,
)


def random_live_graph(rng: np.random.Generator) -> RatioGraph | None:
    """A random live token graph, or ``None`` when the draw is dead."""
    n = int(rng.integers(2, 12))
    n_e = int(rng.integers(n, 4 * n))
    edges = []
    for _ in range(n_e):
        s, d = int(rng.integers(n)), int(rng.integers(n))
        if rng.random() < 0.35:
            w = float(rng.integers(0, 4))  # small ints -> exact ties
        else:
            w = float(rng.uniform(-5.0, 15.0))
        edges.append((s, d, w, int(rng.integers(0, 3))))
    g = RatioGraph(n, edges)
    return g if g.is_live() else None


def weight_batch(g: RatioGraph, rng: np.random.Generator, B: int) -> np.ndarray:
    """B stampings of ``g``'s weights: scaled, jittered, and duplicated."""
    rows = []
    for b in range(B):
        if b % 3 == 0:
            rows.append(g.weight * float(rng.uniform(0.5, 2.0)))
        elif b % 3 == 1:
            rows.append(g.weight + rng.normal(0.0, 1.0, g.n_edges))
        else:
            rows.append(g.weight.copy())  # exact duplicate of the base row
    return np.asarray(rows)


class TestLockstepBitIdentity:
    def test_matches_per_row_scalar_solves(self):
        rng = np.random.default_rng(20260725)
        checked = 0
        for _ in range(120):
            g = random_live_graph(rng)
            if g is None:
                continue
            try:
                plan = prepare_howard(g)
                W = weight_batch(g, rng, B=6)
                scalar = [solve_prepared(plan, W[b]) for b in range(len(W))]
            except SolverError:
                continue  # acyclic draw
            many = solve_prepared_many(plan, W)
            for s, m in zip(scalar, many):
                assert s == m  # value bits, cycle nodes/edges, n_rounds
            checked += 1
        assert checked >= 30  # the generator must exercise real graphs

    def test_exact_tie_weights(self):
        # Two parallel critical cycles with exactly equal ratios: the
        # lockstep tie-breaking (CSR position, discovery order) must pick
        # the same cycle as the scalar walk.
        g = RatioGraph(4, [
            (0, 1, 2.0, 1), (1, 0, 2.0, 1),   # cycle A, ratio 2
            (2, 3, 2.0, 1), (3, 2, 2.0, 1),   # cycle B, ratio 2
            (0, 2, 1.0, 1), (2, 0, 1.0, 1),   # couples the SCCs
            (1, 1, 2.0, 1), (1, 1, 2.0, 1),   # tied parallel self-loops
        ])
        plan = prepare_howard(g)
        W = np.asarray([g.weight, g.weight * 3.0, g.weight])
        scalar = [solve_prepared(plan, w) for w in W]
        many = solve_prepared_many(plan, W)
        assert scalar == many

    def test_warm_started_sequences_match_scalar_states(self):
        rng = np.random.default_rng(7)
        checked = 0
        for _ in range(60):
            g = random_live_graph(rng)
            if g is None:
                continue
            try:
                plan = prepare_howard(g)
                base = weight_batch(g, rng, B=4)
                solve_prepared(plan, base[0])
            except SolverError:
                continue
            st_scalar = [HowardState() for _ in range(len(base))]
            st_many = [HowardState() for _ in range(len(base))]
            for step in range(3):
                W = base * (1.0 + 0.07 * step)
                scalar = [
                    solve_prepared(plan, W[b], state=st_scalar[b])
                    for b in range(len(W))
                ]
                many = solve_prepared_many(plan, W, states=st_many)
                assert scalar == many
            checked += 1
        assert checked >= 15

    def test_shared_state_values_match_cold(self):
        # Group seeding (one shared HowardState) may change rounds and
        # tie extraction, never the value.
        rng = np.random.default_rng(3)
        g = None
        while g is None:
            g = random_live_graph(rng)
        plan = prepare_howard(g)
        W = weight_batch(g, rng, B=8)
        cold = solve_prepared_many(plan, W)
        state = HowardState()
        warm_a = solve_prepared_many(plan, W, state=state)
        warm_b = solve_prepared_many(plan, W, state=state)  # reseeded
        for c, a, b in zip(cold, warm_a, warm_b):
            assert c.value == a.value == b.value

    def test_empty_batch_and_shape_validation(self):
        g = RatioGraph(2, [(0, 1, 1.0, 1), (1, 0, 2.0, 1)])
        plan = prepare_howard(g)
        assert solve_prepared_many(plan, np.empty((0, 2))) == []
        with pytest.raises(ValueError):
            solve_prepared_many(plan, np.ones(2))  # 1-D
        with pytest.raises(ValueError):
            solve_prepared_many(plan, np.ones((2, 3)))  # wrong E
        with pytest.raises(ValueError):
            solve_prepared_many(plan, np.ones((2, 2)),
                                states=[HowardState()])  # wrong length
        with pytest.raises(ValueError):
            solve_prepared_many(plan, np.ones((2, 2)),
                                states=[HowardState(), HowardState()],
                                state=HowardState())  # both kinds


class TestHowardStateGuard:
    def make_plan(self, w: float):
        g = RatioGraph(3, [(0, 1, w, 1), (1, 2, w, 0), (2, 0, w, 1),
                           (1, 0, w / 2, 1)])
        return prepare_howard(g), g

    def test_cross_plan_reuse_raises(self):
        plan_a, g_a = self.make_plan(3.0)
        plan_b, _ = self.make_plan(5.0)
        state = HowardState()
        solve_prepared(plan_a, g_a.weight, state=state)
        assert state.bound_plan is plan_a
        with pytest.raises(SolverError, match="different HowardPlan"):
            solve_prepared(plan_b, g_a.weight, state=state)

    def test_cross_plan_reuse_raises_in_lockstep(self):
        plan_a, g_a = self.make_plan(3.0)
        plan_b, _ = self.make_plan(5.0)
        state = HowardState()
        solve_prepared_many(plan_a, g_a.weight[None, :], state=state)
        with pytest.raises(SolverError, match="different HowardPlan"):
            solve_prepared_many(plan_b, g_a.weight[None, :], state=state)
        per_row = [HowardState()]
        solve_prepared_many(plan_a, g_a.weight[None, :], states=per_row)
        with pytest.raises(SolverError, match="different HowardPlan"):
            solve_prepared_many(plan_b, g_a.weight[None, :], states=per_row)

    def test_same_plan_reuse_is_fine(self):
        plan, g = self.make_plan(3.0)
        state = HowardState()
        first = solve_prepared(plan, g.weight, state=state)
        second = solve_prepared(plan, g.weight, state=state)
        assert first.value == second.value

    def test_failed_batch_leaves_states_untouched(self):
        plan_a, g_a = self.make_plan(3.0)
        state = HowardState()
        solve_prepared_many(plan_a, g_a.weight[None, :], state=state)
        before = [None if p is None else p.copy() for p in state.policies]
        plan_b, _ = self.make_plan(5.0)
        with pytest.raises(SolverError):
            solve_prepared_many(plan_b, g_a.weight[None, :], state=state)
        after = state.policies
        assert all(
            (a is None and b is None) or (a == b).all()
            for a, b in zip(before, after)
        )


class TestAcyclic:
    def test_acyclic_graph_raises_like_scalar(self):
        g = RatioGraph(3, [(0, 1, 1.0, 1), (1, 2, 1.0, 1)])
        plan = prepare_howard(g)
        with pytest.raises(SolverError, match="acyclic"):
            solve_prepared(plan, g.weight)
        with pytest.raises(SolverError, match="acyclic"):
            solve_prepared_many(plan, g.weight[None, :])

    def test_dead_graph_rejected_at_prepare(self):
        g = RatioGraph(2, [(0, 1, 1.0, 0), (1, 0, 1.0, 0)])
        with pytest.raises(DeadlockError):
            prepare_howard(g)
