"""Allocator layer: budget accounting, checkpoint resume, determinism."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Application, Platform
from repro.errors import ValidationError
from repro.extensions import SearchCheckpoint, local_search_mapping
from repro.search import (
    EvaluationBudget,
    FairShareAllocator,
    RacingAllocator,
    portfolio_search,
    resolve_allocator,
)

APP = Application(works=[2.0, 9.0, 4.0], file_sizes=[3.0, 1.0],
                  name="test-allocator")


def make_platform(seed=5, n=8):
    rng = np.random.default_rng(seed)
    speeds = rng.uniform(1.0, 5.0, n)
    bw = rng.uniform(2.0, 8.0, (n, n))
    np.fill_diagonal(bw, 0.0)
    return Platform(speeds, bw)


class TestBudgetProperties:
    """Hypothesis invariants of the shared evaluation pool."""

    @given(
        limit=st.integers(min_value=0, max_value=500),
        ops=st.lists(
            st.tuples(st.integers(0, 60), st.floats(0.0, 1.0)),
            max_size=50,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_never_overdraws_and_refunds_restore(self, limit, ops):
        pool = EvaluationBudget(limit)
        for ask, refund_frac in ops:
            granted = pool.take(ask)
            assert 0 <= granted <= ask
            assert pool.spent <= limit
            assert pool.spent + pool.remaining == limit
            refund = int(granted * refund_frac)
            pool.refund(refund)
            assert pool.spent + pool.remaining == limit
            assert pool.spent >= 0
        assert pool.exhausted == (pool.remaining == 0)

    @given(
        limit=st.integers(min_value=0, max_value=500),
        asks=st.lists(st.integers(0, 60), max_size=50),
    )
    @settings(max_examples=200, deadline=None)
    def test_grants_sum_to_at_most_limit(self, limit, asks):
        pool = EvaluationBudget(limit)
        total = sum(pool.take(a) for a in asks)
        assert total <= limit
        assert pool.spent == total

    @given(
        remaining=st.integers(min_value=1, max_value=100_000),
        n=st.integers(min_value=2, max_value=64),
        reserve=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=300, deadline=None)
    def test_rung_plan_fits_in_the_pool(self, remaining, n, reserve):
        """Planned rung spend (sizes x doubling slices) never exceeds
        the pool: sum(n_j * base * 2^j) <= remaining."""
        alloc = RacingAllocator(reserve=reserve)
        sizes = alloc.rung_sizes(n)
        assert sizes[0] == n and sizes[-1] == 2
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        base = alloc.base_slice(remaining, n)
        assert base >= 1
        planned = sum(s * (base << j) for j, s in enumerate(sizes))
        assert base == 1 or planned <= remaining


class TestCheckpointResume:
    """Paused + resumed climbs are bit-identical to uninterrupted ones."""

    def _uninterrupted(self, budget, n_jobs=None, seed=0):
        return local_search_mapping(
            APP, make_platform(), "overlap", rng=np.random.default_rng(seed),
            budget=EvaluationBudget(budget), n_jobs=n_jobs)

    def _chunked(self, grants, n_jobs=None, seed=0):
        """One climb fed its budget in pieces; returns merged totals."""
        res = local_search_mapping(
            APP, make_platform(), "overlap", rng=np.random.default_rng(seed),
            budget=EvaluationBudget(grants[0]), n_jobs=n_jobs)
        evals, trace = res.evaluations, res.trace
        for grant in grants[1:]:
            if res.checkpoint is None:
                break
            res = local_search_mapping(
                APP, make_platform(), "overlap", checkpoint=res.checkpoint,
                budget=EvaluationBudget(grant), n_jobs=n_jobs)
            evals += res.evaluations
            trace += res.trace
        return res, evals, trace

    @pytest.mark.parametrize("splits", [
        (40, 60), (1, 99), (99, 1), (10, 10, 10, 70), (25, 25, 25, 25),
    ])
    def test_resume_equals_uninterrupted(self, splits):
        full = self._uninterrupted(sum(splits))
        res, evals, trace = self._chunked(splits)
        assert res.period == full.period
        assert evals == full.evaluations
        assert trace == full.trace
        assert res.mapping.assignments == full.mapping.assignments
        assert (res.checkpoint is None) == (full.checkpoint is None)

    def test_resume_equals_uninterrupted_batch_path(self):
        full = self._uninterrupted(120, n_jobs=2)
        res, evals, trace = self._chunked((30, 90), n_jobs=2)
        assert res.period == full.period
        assert evals == full.evaluations
        assert trace == full.trace

    def test_serial_and_batch_pause_identically(self):
        for splits in ((25, 75), (7, 93)):
            s_res, s_evals, s_trace = self._chunked(splits)
            b_res, b_evals, b_trace = self._chunked(splits, n_jobs=2)
            assert s_res.period == b_res.period
            assert s_trace == b_trace
            assert s_evals == b_evals

    def test_starved_start_is_resumable(self):
        first = self._uninterrupted(0)
        assert first.period == float("inf") and first.evaluations == 0
        cp = first.checkpoint
        assert isinstance(cp, SearchCheckpoint) and not cp.started
        resumed = local_search_mapping(
            APP, make_platform(), "overlap", checkpoint=cp,
            budget=EvaluationBudget(80))
        full = self._uninterrupted(80)
        assert resumed.period == full.period
        assert resumed.trace == full.trace

    def test_finished_climb_has_no_checkpoint(self):
        res = local_search_mapping(
            APP, make_platform(), "overlap", rng=np.random.default_rng(1))
        assert res.checkpoint is None

    def test_checkpoint_carries_cumulative_totals(self):
        first = self._uninterrupted(30)
        assert first.checkpoint is not None
        assert first.checkpoint.evaluations == first.evaluations
        second = local_search_mapping(
            APP, make_platform(), "overlap", checkpoint=first.checkpoint,
            budget=EvaluationBudget(20))
        if second.checkpoint is not None:
            assert second.checkpoint.evaluations == \
                first.evaluations + second.evaluations
            assert second.checkpoint.trace == first.trace + second.trace


class TestAllocatorResolution:
    def test_names(self):
        assert resolve_allocator("fair-share").name == "fair-share"
        assert resolve_allocator("racing").name == "racing"

    def test_instance_passthrough(self):
        alloc = RacingAllocator(reserve=3)
        assert resolve_allocator(alloc) is alloc

    def test_unknown_rejected(self):
        with pytest.raises(ValidationError):
            resolve_allocator("typo")
        with pytest.raises(ValidationError):
            portfolio_search(APP, make_platform(), "overlap",
                             n_restarts=2, budget=10, allocator="typo")


class TestRacingPortfolio:
    def test_deterministic_across_runs(self):
        plat = make_platform()
        a = portfolio_search(APP, plat, "overlap", n_restarts=3, budget=300,
                             allocator="racing")
        b = portfolio_search(APP, plat, "overlap", n_restarts=3, budget=300,
                             allocator="racing")
        assert a.to_json() == b.to_json()
        assert a.allocator == "racing"

    def test_deterministic_across_n_jobs(self):
        plat = make_platform()
        serial = portfolio_search(APP, plat, "overlap", n_restarts=3,
                                  budget=300, allocator="racing")
        sharded = portfolio_search(APP, plat, "overlap", n_restarts=3,
                                   budget=300, allocator="racing", n_jobs=2)
        assert serial.to_json() == sharded.to_json()

    def test_budget_is_a_hard_cap_and_rungs_account(self):
        plat = make_platform()
        for budget in (1, 37, 150, 400):
            res = portfolio_search(APP, plat, "overlap", n_restarts=3,
                                   budget=budget, allocator="racing")
            assert res.evaluations <= budget
            assert sum(r.evaluations for r in res.restarts) == res.evaluations
            for r in res.restarts:
                assert sum(r.rungs) == r.evaluations
                assert all(n >= 0 for n in r.rungs)

    def test_promoted_climbs_have_multiple_rungs(self):
        res = portfolio_search(APP, make_platform(), "overlap", n_restarts=4,
                               budget=400, allocator="racing")
        assert max(len(r.rungs) for r in res.restarts) >= 2

    def test_unlimited_budget_runs_all_restarts_to_convergence(self):
        plat = make_platform()
        racing = portfolio_search(APP, plat, "overlap", n_restarts=3,
                                  budget=None, allocator="racing")
        fair = portfolio_search(APP, plat, "overlap", n_restarts=3,
                                budget=None)
        assert racing.period == fair.period
        assert [len(r.rungs) for r in racing.restarts] == \
            [1] * len(racing.restarts)

    def test_fair_share_unchanged_by_the_refactor(self):
        """The extracted FairShareAllocator is the default and reports
        single-rung restarts — the PR-2 schedule exactly."""
        plat = make_platform()
        default = portfolio_search(APP, plat, "overlap", n_restarts=3,
                                   budget=200)
        explicit = portfolio_search(APP, plat, "overlap", n_restarts=3,
                                    budget=200,
                                    allocator=FairShareAllocator())
        assert default.to_json() == explicit.to_json()
        assert default.allocator == "fair-share"
        assert all(len(r.rungs) == 1 for r in default.restarts)

    def test_json_round_trip_includes_allocator_and_rungs(self):
        res = portfolio_search(APP, make_platform(), "overlap", n_restarts=3,
                               budget=250, allocator="racing")
        data = json.loads(res.to_json())
        assert data["allocator"] == "racing"
        for record in data["restarts"]:
            assert sum(record["rungs"]) == record["evaluations"]

    def test_zero_budget_degrades_gracefully(self):
        res = portfolio_search(APP, make_platform(), "overlap", n_restarts=2,
                               budget=0, allocator="racing")
        assert res.period == float("inf")
        assert res.evaluations == 0
        assert res.mapping.assignments

    def test_record_indexes_are_unique(self):
        # Racing brackets launch restarts past n_restarts; the intensify
        # record must take the next unused index, never a duplicate.
        for budget in (100, 400):
            res = portfolio_search(APP, make_platform(), "overlap",
                                   n_restarts=3, budget=budget,
                                   allocator="racing", max_iters=1)
            indexes = [r.index for r in res.restarts]
            assert len(indexes) == len(set(indexes))

    def test_best_restart_produced_the_mapping(self):
        # Rungs interleave incumbent updates, so a tied lower-index climb
        # can end with a *different* mapping; provenance must match the
        # result's assignments.
        for seed in (5, 7, 11):
            for budget in (150, 400):
                res = portfolio_search(APP, make_platform(seed), "overlap",
                                       n_restarts=3, budget=budget,
                                       allocator="racing")
                best = res.best_restart
                assert best is not None
                assert best.assignments == res.mapping.assignments
                assert best.period == res.period
