"""Cross-validated tests for Karp, Lawler and Howard cycle-ratio solvers.

The three algorithms are implemented independently; this module checks
them against each other and against a brute-force enumeration of
elementary cycles (via networkx) on random graphs.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SolverError
from repro.maxplus import (
    RatioGraph,
    max_cycle_mean,
    max_cycle_ratio,
    max_cycle_ratio_howard,
    max_cycle_ratio_lawler,
)


def brute_force_max_ratio(graph: RatioGraph) -> float | None:
    """Oracle: enumerate elementary cycles, return max sum(w)/sum(t)."""
    g = nx.MultiDiGraph()
    g.add_nodes_from(range(graph.n_nodes))
    for e in graph.edges():
        g.add_edge(e.src, e.dst, key=e.index, weight=e.weight, tokens=e.tokens)
    best = None
    for cycle in nx.simple_cycles(g):
        # For multigraphs, consider the best parallel edge between hops.
        nodes = list(cycle)
        total_w_opts: list[list[tuple[float, int]]] = []
        for i, u in enumerate(nodes):
            v = nodes[(i + 1) % len(nodes)]
            opts = [
                (d["weight"], d["tokens"]) for d in g.get_edge_data(u, v).values()
            ]
            total_w_opts.append(opts)
        # enumerate parallel-edge choices (small graphs only)
        import itertools

        for combo in itertools.product(*total_w_opts):
            w = sum(x[0] for x in combo)
            t = sum(x[1] for x in combo)
            if t > 0:
                r = w / t
                best = r if best is None or r > best else best
    return best


@st.composite
def live_graphs(draw):
    """Random small live graphs with at least one token cycle."""
    n = draw(st.integers(2, 6))
    n_edges = draw(st.integers(n, 2 * n))
    edges = []
    # guarantee one token-carrying hamiltonian-ish cycle for liveness
    perm = draw(st.permutations(range(n)))
    for i in range(n):
        w = draw(st.integers(0, 20))
        edges.append((perm[i], perm[(i + 1) % n], float(w), 1))
    for _ in range(n_edges - n):
        s = draw(st.integers(0, n - 1))
        d = draw(st.integers(0, n - 1))
        w = draw(st.integers(0, 20))
        t = draw(st.integers(0, 2))
        edges.append((s, d, float(w), t))
    g = RatioGraph(n, edges)
    if not g.is_live():
        # flip offending 0-token edges to 1 token
        edges = [(s, d, w, max(t, 1)) for (s, d, w, t) in edges]
        g = RatioGraph(n, edges)
    return g


class TestKnownGraphs:
    def test_single_self_loop(self):
        g = RatioGraph(1, [(0, 0, 5.0, 1)])
        assert max_cycle_ratio(g).value == 5.0

    def test_self_loop_two_tokens(self):
        g = RatioGraph(1, [(0, 0, 5.0, 2)])
        assert max_cycle_ratio(g).value == pytest.approx(2.5)

    def test_two_cycle_vs_self_loop(self):
        g = RatioGraph(2, [(0, 1, 3.0, 1), (1, 0, 5.0, 1), (0, 0, 7.0, 1)])
        assert max_cycle_ratio(g).value == 7.0

    def test_ratio_prefers_token_sparse_cycle(self):
        # cycle A: weight 10, 2 tokens (ratio 5); cycle B: weight 6, 1 token
        g = RatioGraph(2, [(0, 1, 5.0, 1), (1, 0, 5.0, 1), (0, 0, 6.0, 1)])
        assert max_cycle_ratio(g).value == pytest.approx(6.0)

    def test_mixed_token_cycle(self):
        # one cycle with a 0-token edge: ratio = (4 + 2)/1
        g = RatioGraph(2, [(0, 1, 4.0, 0), (1, 0, 2.0, 1)])
        assert max_cycle_ratio(g).value == pytest.approx(6.0)

    def test_acyclic_raises(self):
        g = RatioGraph(2, [(0, 1, 1.0, 1)])
        with pytest.raises(SolverError):
            max_cycle_ratio_howard(g)
        with pytest.raises(SolverError):
            max_cycle_ratio_lawler(g)

    def test_disconnected_components(self):
        g = RatioGraph(4, [
            (0, 1, 2.0, 1), (1, 0, 2.0, 1),
            (2, 3, 9.0, 1), (3, 2, 1.0, 1),
        ])
        assert max_cycle_ratio(g).value == pytest.approx(5.0)


class TestHowardCycleExtraction:
    def test_cycle_is_returned_and_consistent(self):
        g = RatioGraph(3, [
            (0, 1, 1.0, 0), (1, 2, 1.0, 0), (2, 0, 10.0, 1), (0, 0, 3.0, 1),
        ])
        res = max_cycle_ratio_howard(g)
        assert res.value == pytest.approx(12.0)
        assert set(res.cycle_nodes) == {0, 1, 2}
        # the reported cycle reproduces the value exactly
        assert g.cycle_ratio_of(res.cycle_edges) == pytest.approx(res.value)

    def test_self_loop_extraction(self):
        g = RatioGraph(2, [(0, 0, 7.0, 1), (0, 1, 1.0, 1), (1, 0, 1.0, 1)])
        res = max_cycle_ratio_howard(g)
        assert res.value == 7.0
        assert res.cycle_nodes == (0,)


class TestKarp:
    def test_requires_unit_tokens(self):
        g = RatioGraph(2, [(0, 1, 1.0, 0), (1, 0, 1.0, 1)])
        with pytest.raises(SolverError):
            max_cycle_ratio(g, method="karp")

    def test_matches_mean_on_unit_graph(self):
        g = RatioGraph(3, [
            (0, 1, 4.0, 1), (1, 2, 6.0, 1), (2, 0, 2.0, 1), (0, 0, 3.0, 1),
        ])
        assert max_cycle_mean(g) == pytest.approx(4.0)

    def test_acyclic_raises(self):
        g = RatioGraph(2, [(0, 1, 1.0, 1)])
        with pytest.raises(SolverError):
            max_cycle_mean(g)


class TestSolverAgreement:
    @given(live_graphs())
    @settings(max_examples=60, deadline=None)
    def test_howard_equals_lawler_equals_bruteforce(self, g):
        oracle = brute_force_max_ratio(g)
        if oracle is None:
            return
        howard = max_cycle_ratio_howard(g)
        lawler = max_cycle_ratio_lawler(g)
        assert howard.value == pytest.approx(oracle, rel=1e-9, abs=1e-9)
        assert lawler == pytest.approx(oracle, rel=1e-9, abs=1e-7)
        # Howard's certificate is a real cycle achieving the optimum
        assert g.cycle_ratio_of(howard.cycle_edges) == pytest.approx(oracle)

    @given(live_graphs())
    @settings(max_examples=30, deadline=None)
    def test_karp_agrees_when_all_tokens_one(self, g):
        if not np.all(g.tokens == 1):
            return
        oracle = brute_force_max_ratio(g)
        assert max_cycle_mean(g) == pytest.approx(oracle, rel=1e-9)

    @given(live_graphs(), st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_weight_scaling(self, g, alpha):
        """Scaling all weights by alpha scales the ratio by alpha."""
        scaled = RatioGraph(
            g.n_nodes,
            [(e.src, e.dst, e.weight * alpha, e.tokens) for e in g.edges()],
        )
        base = max_cycle_ratio(g).value
        assert max_cycle_ratio(scaled).value == pytest.approx(alpha * base, rel=1e-9)
