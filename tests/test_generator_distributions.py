"""Distribution properties of the two replication-drawing methods."""

import numpy as np
import pytest

from repro.experiments.generator import random_replication


class TestBallsMethod:
    def test_all_spares_distributed(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            counts = random_replication(4, 11, rng, method="balls")
            assert sum(counts) == 11  # balls uses every processor

    def test_low_variance(self):
        """Balls-into-bins max replication concentrates near spare/n."""
        rng = np.random.default_rng(1)
        maxima = [
            max(random_replication(10, 30, rng, method="balls"))
            for _ in range(300)
        ]
        assert np.mean(maxima) < 6  # spare=20, n=10 -> mean bin 3

    def test_both_stages_often_replicated(self):
        """The property driving overlap no-critical sensitivity."""
        rng = np.random.default_rng(2)
        both = sum(
            min(random_replication(2, 7, rng, method="balls")) > 1
            for _ in range(300)
        )
        assert both > 100  # frequent under balls


class TestGreedySpareMethod:
    def test_heavy_tail(self):
        """The legacy draw often gives one stage most of the platform."""
        rng = np.random.default_rng(3)
        maxima = [
            max(random_replication(10, 30, rng, method="greedy-spare"))
            for _ in range(300)
        ]
        assert np.mean(maxima) > np.mean(
            [max(random_replication(10, 30, np.random.default_rng(4 + i),
                                    method="balls")) for i in range(300)]
        )

    def test_may_leave_processors_unused(self):
        rng = np.random.default_rng(5)
        totals = {
            sum(random_replication(3, 10, rng, method="greedy-spare"))
            for _ in range(100)
        }
        assert min(totals) < 10  # the draw can stop before using all

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            random_replication(2, 4, np.random.default_rng(0), method="magic")


class TestSharedProperties:
    @pytest.mark.parametrize("method", ["balls", "greedy-spare"])
    def test_feasibility(self, method):
        rng = np.random.default_rng(7)
        for _ in range(100):
            counts = random_replication(5, 13, rng, method=method)
            assert len(counts) == 5
            assert all(c >= 1 for c in counts)
            assert sum(counts) <= 13

    @pytest.mark.parametrize("method", ["balls", "greedy-spare"])
    def test_deterministic(self, method):
        a = random_replication(4, 12, np.random.default_rng(9), method=method)
        b = random_replication(4, 12, np.random.default_rng(9), method=method)
        assert a == b
