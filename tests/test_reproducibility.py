"""Regression tests: sweeps must reproduce across interpreter runs.

The original runner derived each family's seed-tree branch from
``hash(config.name)``.  Python randomizes string hashing per process
(``PYTHONHASHSEED``), so two invocations of the "reproducible" Table 2
campaign silently used different seeds.  The runner now uses a stable
``zlib.crc32`` digest; these tests pin that behavior by comparing seed
lists and records across *separate interpreter processes* with
explicitly different hash seeds.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.experiments import TABLE2_CONFIGS, family_seeds, run_family

SRC = str(Path(__file__).resolve().parent.parent / "src")

_PRINT_SEEDS = """
from repro.experiments import TABLE2_CONFIGS, family_seeds
print(family_seeds(TABLE2_CONFIGS[4], "overlap", 8))
"""

_PRINT_RECORDS = """
from repro.experiments import TABLE2_CONFIGS, run_family
for r in run_family(TABLE2_CONFIGS[4], "strict", count=3, n_jobs=1):
    print(r.seed, repr(r.period), repr(r.mct), r.critical)
"""


def _run_in_fresh_interpreter(code: str, hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hashseed  # the randomization that broke hash()
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, env=env, check=True,
    )
    return out.stdout


class TestStableSeeding:
    def test_seed_lists_identical_across_interpreters(self):
        a = _run_in_fresh_interpreter(_PRINT_SEEDS, hashseed="1")
        b = _run_in_fresh_interpreter(_PRINT_SEEDS, hashseed="2")
        assert a == b
        # And they match the in-process derivation.
        assert a.strip() == str(family_seeds(TABLE2_CONFIGS[4], "overlap", 8))

    def test_records_identical_across_interpreters(self):
        a = _run_in_fresh_interpreter(_PRINT_RECORDS, hashseed="11")
        b = _run_in_fresh_interpreter(_PRINT_RECORDS, hashseed="22")
        assert a == b and a.strip()

    def test_no_builtin_hash_in_seed_derivation(self):
        """The seed path must not call hash() on the family name."""
        import inspect

        from repro.experiments import runner

        source = inspect.getsource(runner)
        assert "hash(config.name" not in source
        assert "crc32(config.name" in source


class TestEngineEquivalence:
    def test_batch_engine_matches_percall(self):
        cfg = TABLE2_CONFIGS[4]
        batch = run_family(cfg, "strict", count=5, n_jobs=1, engine="batch")
        percall = run_family(cfg, "strict", count=5, n_jobs=1, engine="percall")
        assert batch == percall

    def test_batch_parallel_matches_serial(self):
        cfg = TABLE2_CONFIGS[4]
        serial = run_family(cfg, "overlap", count=6, n_jobs=1, engine="batch")
        parallel = run_family(cfg, "overlap", count=6, n_jobs=2, engine="batch")
        assert serial == parallel

    def test_unknown_engine_rejected(self):
        import pytest

        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            run_family(TABLE2_CONFIGS[4], "overlap", count=1, engine="bogus")
