"""Unit tests for the platform model."""

import math

import numpy as np
import pytest

from repro import Platform, ValidationError


class TestConstruction:
    def test_basic_times(self):
        plat = Platform(speeds=[1.0, 2.0], bandwidths=[[0, 5.0], [5.0, 0]])
        assert plat.n_processors == 2
        assert plat.comp_time(10.0, 1) == 5.0
        assert plat.comm_time(10.0, 0, 1) == 2.0

    def test_zero_speed_rejected(self):
        with pytest.raises(ValidationError):
            Platform(speeds=[1.0, 0.0], bandwidths=np.ones((2, 2)))

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValidationError):
            Platform(speeds=[1.0, 1.0], bandwidths=[[0, -1.0], [1.0, 0]])

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValidationError):
            Platform(speeds=[1.0, 1.0], bandwidths=np.ones((3, 3)))

    def test_infinite_bandwidth_means_free_link(self):
        plat = Platform(speeds=[1, 1], bandwidths=[[0, math.inf], [1, 0]])
        assert plat.comm_time(100.0, 0, 1) == 0.0

    def test_diagonal_ignored(self):
        # zero diagonal is fine — there is no P_u -> P_u link
        plat = Platform(speeds=[1, 1], bandwidths=[[0, 1], [1, 0]])
        with pytest.raises(ValidationError):
            plat.bandwidth(0, 0)

    def test_immutable_arrays(self):
        plat = Platform.homogeneous(3)
        with pytest.raises(ValueError):
            plat.speeds[0] = 2.0
        with pytest.raises(ValueError):
            plat.bandwidths[0, 1] = 2.0

    def test_index_out_of_range(self):
        plat = Platform.homogeneous(2)
        with pytest.raises(IndexError):
            plat.speed(2)


class TestConstructors:
    def test_homogeneous(self):
        plat = Platform.homogeneous(4, speed=2.0, bandwidth=0.5)
        assert plat.n_processors == 4
        assert plat.comp_time(4.0, 3) == 2.0
        assert plat.comm_time(1.0, 0, 3) == 2.0

    def test_star_bottleneck(self):
        plat = Platform.star(speeds=[1, 1, 1], up_bandwidths=[10, 1, 5],
                             down_bandwidths=[2, 8, 4])
        # link 0 -> 1 limited by min(up[0]=10, down[1]=8) = 8
        assert plat.bandwidth(0, 1) == 8.0
        # link 1 -> 0 limited by min(up[1]=1, down[0]=2) = 1
        assert plat.bandwidth(1, 0) == 1.0

    def test_star_symmetric_default(self):
        plat = Platform.star(speeds=[1, 1], up_bandwidths=[3, 7])
        assert plat.bandwidth(0, 1) == 3.0
        assert plat.bandwidth(1, 0) == 3.0

    def test_from_comm_times(self):
        plat = Platform.from_comm_times([2.0, 4.0], [[0, 10.0], [5.0, 0]])
        # unit work on P1 takes 4 time units
        assert plat.comp_time(1.0, 1) == pytest.approx(4.0)
        assert plat.comm_time(1.0, 0, 1) == pytest.approx(10.0)
        assert plat.comm_time(1.0, 1, 0) == pytest.approx(5.0)

    def test_from_comm_times_zero_time_is_inf_bandwidth(self):
        plat = Platform.from_comm_times([1.0, 1.0], [[0, 0.0], [1.0, 0]])
        assert plat.comm_time(123.0, 0, 1) == 0.0

    def test_from_comm_times_rejects_bad_comp(self):
        with pytest.raises(ValidationError):
            Platform.from_comm_times([0.0, 1.0], np.zeros((2, 2)))


class TestSerialization:
    def test_roundtrip(self):
        plat = Platform(speeds=[1, 2], bandwidths=[[0, math.inf], [3, 0]])
        clone = Platform.from_dict(plat.to_dict())
        assert clone == plat

    def test_inf_encoded_as_string(self):
        plat = Platform(speeds=[1, 2], bandwidths=[[0, math.inf], [3, 0]])
        assert plat.to_dict()["bandwidths"][0][1] == "inf"

    def test_equality_and_hash(self):
        a = Platform.homogeneous(2)
        b = Platform.homogeneous(2)
        assert a == b and hash(a) == hash(b)
        assert a != Platform.homogeneous(3)
