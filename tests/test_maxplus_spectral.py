"""Tests for spectral analysis: critical graph, cyclicity, eigenvectors."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import SolverError
from repro.maxplus import RatioGraph, max_cycle_ratio
from repro.maxplus.algebra import mp_matvec, mp_zeros
from repro.maxplus.spectral import (
    critical_graph,
    cyclicity,
    mp_eigenvector,
    potentials,
)

from .test_maxplus_solvers import live_graphs


def two_cycle_graph():
    """Cycle A (0-1, ratio 5) and cycle B (2-3, ratio 2), bridged."""
    return RatioGraph(4, [
        (0, 1, 6.0, 1), (1, 0, 4.0, 1),
        (1, 2, 1.0, 0),
        (2, 3, 2.0, 1), (3, 2, 2.0, 1),
    ])


class TestPotentials:
    def test_feasible_at_lambda_star(self):
        g = two_cycle_graph()
        lam = max_cycle_ratio(g).value
        h = potentials(g, lam)
        slack = h[g.src] + (g.weight - lam * g.tokens) - h[g.dst]
        assert np.all(slack <= 1e-6)

    def test_infeasible_below_lambda_star(self):
        g = two_cycle_graph()
        with pytest.raises(SolverError):
            potentials(g, 4.0)  # lambda* is 5

    def test_feasible_above(self):
        g = two_cycle_graph()
        h = potentials(g, 10.0)
        slack = h[g.src] + (g.weight - 10.0 * g.tokens) - h[g.dst]
        assert np.all(slack <= 1e-6)


class TestCriticalGraph:
    def test_identifies_the_critical_cycle(self):
        g = two_cycle_graph()
        crit = critical_graph(g)
        assert crit.value == pytest.approx(5.0)
        assert set(crit.nodes) == {0, 1}
        assert set(crit.edges) == {0, 1}
        assert crit.components == ((0, 1),)

    def test_tied_cycles_both_critical(self):
        g = RatioGraph(4, [
            (0, 1, 5.0, 1), (1, 0, 5.0, 1),
            (2, 3, 4.0, 1), (3, 2, 6.0, 1),
        ])
        crit = critical_graph(g)
        assert set(crit.nodes) == {0, 1, 2, 3}
        assert len(crit.components) == 2

    def test_self_loop_critical(self):
        g = RatioGraph(2, [(0, 0, 7.0, 1), (0, 1, 0.0, 1), (1, 0, 0.0, 1)])
        crit = critical_graph(g)
        assert crit.nodes == (0,)
        assert cyclicity(g, crit) == 1

    @given(live_graphs())
    @settings(max_examples=30, deadline=None)
    def test_critical_edges_form_critical_cycles(self, g):
        crit = critical_graph(g)
        assert crit.value == pytest.approx(max_cycle_ratio(g).value, rel=1e-9)
        assert len(crit.nodes) >= 1
        # Howard's extracted cycle must live inside the critical graph
        res = max_cycle_ratio(g)
        assert set(res.cycle_nodes) <= set(crit.nodes)
        assert set(res.cycle_edges) <= set(crit.edges)


class TestCyclicity:
    def test_single_cycle_token_count(self):
        # one critical cycle with 2 tokens -> cyclicity 2
        g = RatioGraph(2, [(0, 1, 5.0, 1), (1, 0, 5.0, 1)])
        assert cyclicity(g) == 2

    def test_mixed_cycles_gcd(self):
        # one critical component with cycles of 2 and 3 tokens -> gcd 1
        g = RatioGraph(3, [
            (0, 1, 5.0, 1), (1, 0, 5.0, 1),          # ratio 5, 2 tokens
            (1, 2, 5.0, 1), (2, 0, 5.0, 1),          # 0->1->2->0: 15/3 = 5
        ])
        crit = critical_graph(g)
        assert len(crit.components) == 1
        assert len(crit.edges) == 4
        assert cyclicity(g, crit) == 1

    def test_token_heavy_cycle(self):
        # cycles of 2 and 4 tokens in one component -> gcd 2
        g = RatioGraph(3, [
            (0, 1, 5.0, 1), (1, 0, 5.0, 1),
            (1, 2, 5.0, 1), (2, 0, 10.0, 2),         # 0->1->2->0: 20/4 = 5
        ])
        assert cyclicity(g) == 2

    def test_two_components_lcm(self):
        g = RatioGraph(5, [
            (0, 1, 5.0, 1), (1, 0, 5.0, 1),                    # 2 tokens
            (2, 3, 5.0, 1), (3, 4, 5.0, 1), (4, 2, 5.0, 1),    # 3 tokens
        ])
        assert cyclicity(g) == 6

    def test_example_b_cyclicity_matches_simulation(self):
        """Example B's simulated rates oscillate with period 2: the
        critical staircase carries 2 tokens."""
        from repro.experiments import example_b
        from repro.petri import build_tpn

        net = build_tpn(example_b(), "overlap")
        g = net.to_ratio_graph()
        q = cyclicity(g)
        assert q == 2


class TestEigenvector:
    def test_circulant(self):
        a = mp_zeros((2, 2))
        a[1, 0] = 2.0
        a[0, 1] = 4.0
        lam, v = mp_eigenvector(a)
        assert lam == pytest.approx(3.0)
        assert np.allclose(mp_matvec(a, v), lam + v)

    def test_random_irreducible(self):
        rng = np.random.default_rng(3)
        a = rng.uniform(0, 10, (6, 6))  # dense -> irreducible
        lam, v = mp_eigenvector(a)
        assert np.allclose(mp_matvec(a, v), lam + v, atol=1e-7)
        assert v[0] == 0.0

    def test_reducible_detected(self):
        a = mp_zeros((2, 2))
        a[0, 0] = 1.0  # node 1 unreachable / no finite row
        with pytest.raises(SolverError):
            mp_eigenvector(a)

    def test_strict_tpn_eigenvector_gives_periodic_schedule(self):
        """On a strongly connected strict net, A0* A1 is irreducible and
        the eigenvector reproduces the simulator's steady-state offsets."""
        from repro.maxplus.recurrence import tpn_transition_matrix
        from repro.petri import build_tpn
        from repro.simulation import simulate
        from tests.conftest import make_instance

        inst = make_instance([1, 1], [2.0, 3.0], [[0.0, 4.0], [4.0, 0.0]])
        net = build_tpn(inst, "strict")
        a = tpn_transition_matrix(net)
        lam, v = mp_eigenvector(a)
        # simulate well past the transient: increments equal lam
        trace = simulate(net, 50)
        inc = trace.completion[-1] - trace.completion[-2]
        assert np.allclose(inc, lam, atol=1e-9)
        # offsets match the eigenvector up to a common shift
        offs = trace.completion[-1] - trace.completion[-1][0]
        assert np.allclose(offs, v - v[0], atol=1e-9)
