"""Tests for the discrete-event simulator, schedules and steady state."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import compute_period
from repro.experiments import example_a, example_b
from repro.maxplus.recurrence import iterate_daters
from repro.petri import build_tpn
from repro.simulation import (
    estimate_period,
    extract_schedules,
    measure_period,
    simulate,
)

from .conftest import small_instances


class TestDaterRecursion:
    def test_two_stage_chain_exact_times(self, two_stage_chain):
        """Hand-computed earliest-firing times, overlap model.

        comp0 = 2, comm = 4, comp1 = 3.  Bottleneck: the link (4).
        """
        net = build_tpn(two_stage_chain, "overlap")
        trace = simulate(net, 4)
        comp0, comm, comp1 = 0, 1, 2
        # firing 0: S0 completes at 2, F0 at 6, S1 at 9
        assert trace.completion[0, comp0] == pytest.approx(2.0)
        assert trace.completion[0, comm] == pytest.approx(6.0)
        assert trace.completion[0, comp1] == pytest.approx(9.0)
        # S0 can refire immediately (its circuit frees at completion)
        assert trace.completion[1, comp0] == pytest.approx(4.0)
        # the one-port link serializes: next comm = max(prev comm, comp) + 4
        assert trace.completion[1, comm] == pytest.approx(10.0)
        # S1 fires when its input arrives (10): 10 + 3
        assert trace.completion[1, comp1] == pytest.approx(13.0)
        # steady state: everything paced by the link, one firing per 4
        assert trace.completion[3, comm] - trace.completion[2, comm] == pytest.approx(4.0)

    def test_strict_serializes_processor(self, two_stage_chain):
        """Strict model: P0 cannot start S0(k+1) before F0(k) is sent."""
        net = build_tpn(two_stage_chain, "strict")
        trace = simulate(net, 3)
        comp0, comm, comp1 = 0, 1, 2
        assert trace.completion[0, comp0] == pytest.approx(2.0)
        assert trace.completion[0, comm] == pytest.approx(6.0)
        # second computation waits for the send to finish: 6 + 2
        assert trace.completion[1, comp0] == pytest.approx(8.0)
        # P1's strict cycle: receive(6) then compute at 9; next receive
        # waits for compute: starts 12 (send done at 12), done 16... the
        # comm also needs P0's send port: max(9@P1-free, 8@comp) + 4 = 13
        assert trace.completion[0, comp1] == pytest.approx(9.0)
        assert trace.completion[1, comm] == pytest.approx(13.0)

    def test_rejects_bad_horizon(self, two_stage_chain):
        net = build_tpn(two_stage_chain, "overlap")
        with pytest.raises(Exception):
            simulate(net, 0)

    def test_dataset_indexing(self, replicated_middle):
        net = build_tpn(replicated_middle, "overlap")
        trace = simulate(net, 3)
        t = net.transition_at(1, 2).index  # row 1
        assert trace.dataset_of_firing(0, t) == 1
        assert trace.dataset_of_firing(2, t) == 1 + 2 * net.n_rows

    def test_completions_are_monotone_per_transition(self, replicated_middle):
        net = build_tpn(replicated_middle, "strict")
        trace = simulate(net, 20)
        diffs = np.diff(trace.completion, axis=0)
        assert np.all(diffs > 0)


class TestMatrixEquivalence:
    """The simulator and the max-plus matrix iteration must agree."""

    @given(small_instances(max_stages=3, max_m=6))
    @settings(max_examples=15, deadline=None)
    def test_daters_match_simulation(self, inst):
        for model in ("overlap", "strict"):
            net = build_tpn(inst, model)
            k = 6
            trace = simulate(net, k)
            daters = iterate_daters(net, k)
            # daters[j] == completion[j-1] (x(0) = 0 initial condition)
            assert np.allclose(daters[1:], trace.completion, rtol=1e-9)


class TestSteadyState:
    def test_example_b_period(self):
        net = build_tpn(example_b(), "overlap")
        est = estimate_period(net, n_firings=400)
        assert est.period == pytest.approx(3500.0 / 12.0, rel=1e-9)
        assert est.exact

    def test_example_a_strict_period(self):
        net = build_tpn(example_a(), "strict")
        est = estimate_period(net, n_firings=600)
        expected = compute_period(example_a(), "strict").period
        assert est.period == pytest.approx(expected, rel=1e-9)

    def test_measure_requires_enough_firings(self, two_stage_chain):
        net = build_tpn(two_stage_chain, "overlap")
        with pytest.raises(Exception):
            measure_period(simulate(net, 2))


class TestSchedules:
    def test_resources_never_double_booked(self):
        """Core sanity: one-port circuits serialize every resource."""
        for inst in (example_a(), example_b()):
            for model in ("overlap", "strict"):
                net = build_tpn(inst, model)
                trace = simulate(net, 30)
                extract_schedules(trace, model)  # raises on overlap

    @given(small_instances(max_stages=3, max_m=6))
    @settings(max_examples=15, deadline=None)
    def test_random_instances_exclusive(self, inst):
        for model in ("overlap", "strict"):
            net = build_tpn(inst, model)
            trace = simulate(net, 12)
            extract_schedules(trace, model)

    def test_busy_fraction_matches_cycle_time(self):
        """Long-run busy fraction of a resource = C_exec / P."""
        from repro import cycle_times

        inst = example_b()
        net = build_tpn(inst, "overlap")
        trace = simulate(net, 300)
        schedules = extract_schedules(trace, "overlap")
        est = measure_period(trace)
        rep = cycle_times(inst, "overlap")
        # Measure over the tail of P2:out's own schedule: under OVERLAP,
        # upstream computations run ahead of the coupled communication
        # column, so a global clock window would mix different regimes.
        sched = schedules["P2:out"]
        t1 = sched.intervals[-1].end
        t0 = t1 - 80 * est.rate
        util = sched.utilization(t0, t1)
        expected = rep.for_processor(2).cout / est.period
        assert util == pytest.approx(expected, rel=0.05)
        # Example B has no critical resource: utilization < 1 everywhere
        # among steady, fully-coupled resources (the comm column).
        assert util < 0.999

    def test_interval_labels(self, two_stage_chain):
        net = build_tpn(two_stage_chain, "overlap")
        trace = simulate(net, 2)
        schedules = extract_schedules(trace, "overlap")
        labels = [iv.label for iv in schedules["P0:comp"].intervals]
        assert labels == ["S0 (0)", "S0 (1)"]
