"""Tests for the latency metric (saturated and paced regimes)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import compute_period
from repro.core.latency import measure_latency, path_latency_bound
from repro.experiments import example_a

from .conftest import small_instances


class TestPathBound:
    def test_two_stage_chain(self, two_stage_chain):
        # comp 2 + comm 4 + comp 3
        assert path_latency_bound(two_stage_chain, 0) == pytest.approx(9.0)

    def test_follows_round_robin_path(self, replicated_middle):
        # all comm times 5; comp: P0=3, replicas 8, sink 2
        assert path_latency_bound(replicated_middle, 0) == pytest.approx(
            3 + 5 + 8 + 5 + 2
        )
        # dataset 1 takes the other replica (same times here)
        assert path_latency_bound(replicated_middle, 1) == pytest.approx(23.0)

    def test_example_a_path0(self):
        inst = example_a()
        # P0(22) -F0(186)-> P1(104) -F1(57)-> P3(73) -F2(126)-> P6(23)
        assert path_latency_bound(inst, 0) == pytest.approx(
            22 + 186 + 104 + 57 + 73 + 126 + 23
        )


class TestSaturatedRegime:
    def test_first_dataset_unimpeded(self, two_stage_chain):
        rep = measure_latency(two_stage_chain, "overlap", n_datasets=8)
        assert rep.latencies[0] == pytest.approx(9.0)

    def test_backlog_grows(self, two_stage_chain):
        """Saturated input: completion paced by P=4 but starts paced by
        2 -> latency grows linearly."""
        rep = measure_latency(two_stage_chain, "overlap", n_datasets=20)
        diffs = np.diff(rep.latencies)
        assert diffs[-1] > 0
        assert rep.max == rep.latencies[-1]

    @given(small_instances(max_stages=3, max_m=6))
    @settings(max_examples=15, deadline=None)
    def test_lower_bound_holds(self, inst):
        rep = measure_latency(inst, "overlap", n_datasets=10)
        for j in range(rep.n_datasets):
            assert rep.latencies[j] >= path_latency_bound(inst, j) - 1e-9


class TestPacedRegime:
    def test_slow_pacing_reaches_path_bound(self, two_stage_chain):
        rep = measure_latency(two_stage_chain, "overlap", n_datasets=10,
                              injection_period=100.0)
        for j in range(10):
            assert rep.latencies[j] == pytest.approx(
                path_latency_bound(two_stage_chain, j)
            )

    def test_pacing_below_period_diverges(self, two_stage_chain):
        # P = 4; inject every 1 time unit -> latency grows ~3 per data set
        rep = measure_latency(two_stage_chain, "overlap", n_datasets=40,
                              injection_period=1.0)
        tail = np.diff(rep.latencies)[-10:]
        assert np.all(tail > 0)
        assert rep.latencies[-1] > rep.latencies[0] + 50

    def test_pacing_at_period_stabilizes(self, two_stage_chain):
        period = compute_period(two_stage_chain, "overlap").period
        rep = measure_latency(two_stage_chain, "overlap", n_datasets=60,
                              injection_period=period)
        tail = rep.latencies[-10:]
        assert np.allclose(tail, tail[0], atol=1e-9)

    def test_latency_monotone_in_pacing(self, replicated_middle):
        """Slower injection never increases steady latency."""
        period = compute_period(replicated_middle, "overlap").period
        values = []
        for factor in (1.0, 1.5, 3.0, 10.0):
            rep = measure_latency(replicated_middle, "overlap", n_datasets=40,
                                  injection_period=factor * period)
            values.append(rep.steady_latency())
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_strict_latency_at_least_overlap(self, two_stage_chain):
        """Strict serialization can only delay completions."""
        for T in (50.0, 8.0):
            ov = measure_latency(two_stage_chain, "overlap", n_datasets=20,
                                 injection_period=T)
            st = measure_latency(two_stage_chain, "strict", n_datasets=20,
                                 injection_period=T)
            assert np.all(st.latencies >= ov.latencies - 1e-9)


class TestValidation:
    def test_bad_dataset_count(self, two_stage_chain):
        with pytest.raises(Exception):
            measure_latency(two_stage_chain, "overlap", n_datasets=0)

    def test_negative_period_rejected(self, two_stage_chain):
        with pytest.raises(Exception):
            measure_latency(two_stage_chain, "overlap", n_datasets=5,
                            injection_period=-1.0)

    def test_report_stats(self, two_stage_chain):
        rep = measure_latency(two_stage_chain, "overlap", n_datasets=10)
        assert rep.n_datasets == 10
        assert rep.mean <= rep.max
        assert rep.model.value == "overlap"


class TestSteadyLatencyEdgeCases:
    """Edge cases of the tail-window estimator (PR 10)."""

    def _paced(self, inst, n):
        return measure_latency(inst, "overlap", n_datasets=n,
                               injection_period=100.0)

    def test_tail_fraction_bounds(self, two_stage_chain):
        from repro.errors import SimulationError

        rep = self._paced(two_stage_chain, 8)
        for bad in (0.0, -0.25, 1.0001, 2.0):
            with pytest.raises(SimulationError):
                rep.steady_latency(tail_fraction=bad)

    def test_full_tail_is_the_mean(self, two_stage_chain):
        rep = self._paced(two_stage_chain, 8)
        assert rep.steady_latency(tail_fraction=1.0) == pytest.approx(
            rep.mean)

    def test_single_dataset_report(self, two_stage_chain):
        """The window always holds >= 1 dataset, so any legal fraction
        works on a single-dataset report."""
        rep = self._paced(two_stage_chain, 1)
        only = float(rep.latencies[0])
        for frac in (0.01, 0.25, 1.0):
            assert rep.steady_latency(tail_fraction=frac) == only

    def test_tiny_fraction_is_last_dataset(self, two_stage_chain):
        rep = self._paced(two_stage_chain, 10)
        assert rep.steady_latency(tail_fraction=0.05) == float(
            rep.latencies[-1])

    def test_tail_window_excludes_transient(self, two_stage_chain):
        """Saturated regime: the backlog grows, so a trailing window
        averages above the full-series mean."""
        rep = measure_latency(two_stage_chain, "overlap", n_datasets=20)
        assert rep.steady_latency(tail_fraction=0.25) > rep.mean


class TestBoundVsMeasured:
    def test_bound_below_measured_everywhere(self, two_stage_chain):
        """path_latency_bound lower-bounds the simulation in both
        regimes and both models."""
        for model in ("overlap", "strict"):
            for T in (None, 4.0, 100.0):
                rep = measure_latency(two_stage_chain, model,
                                      n_datasets=12, injection_period=T)
                for j in range(rep.n_datasets):
                    assert rep.latencies[j] >= (
                        path_latency_bound(two_stage_chain, j) - 1e-9)

    def test_worst_path_bound_tight_under_slow_pacing(self):
        """With pacing far above P there is no contention: every
        dataset's latency equals its path bound exactly."""
        inst = example_a()
        rep = measure_latency(inst, "overlap", n_datasets=6,
                              injection_period=10_000.0)
        for j in range(6):
            assert rep.latencies[j] == pytest.approx(
                path_latency_bound(inst, j), abs=1e-9)
