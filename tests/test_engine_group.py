"""Group (lockstep) evaluation path of the batch engine.

Pins the PR-4 contracts: `evaluate_many`/`evaluate_group` results are
bit-identical to per-pair evaluation and to `compute_period`; the
batched `CycleTimePlan.verdict_many` equals the scalar verdict; and the
`engine=` + parallel `n_jobs` combination fails loudly instead of
silently dropping the engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Application, Instance, Mapping, Platform
from repro.core.throughput import compute_period
from repro.engine import (
    MIN_GROUP_ROWS,
    BatchEngine,
    build_cycle_time_plan,
    evaluate_batch,
    evaluate_stream,
)
from repro.errors import ValidationError


def group_sweep(counts, n_instances, seed=0, works=None):
    """Instances sharing one mapping topology, drawn times."""
    rng = np.random.default_rng(seed)
    counts = list(counts)
    n, p = len(counts), sum(counts)
    bounds = np.cumsum([0] + counts)
    mapping = Mapping(
        [tuple(range(bounds[i], bounds[i + 1])) for i in range(n)],
        n_processors=p,
    )
    app = Application(
        works=works if works is not None else [1.0] * n,
        file_sizes=[1.0] * (n - 1),
    )
    out = []
    for _ in range(n_instances):
        comp = rng.uniform(5.0, 15.0, p)
        comm = rng.uniform(5.0, 15.0, (p, p))
        np.fill_diagonal(comm, 0.0)
        out.append(Instance(app, Platform.from_comm_times(comp, comm), mapping))
    return out


def assert_same_result(a, b):
    assert a.period == b.period
    assert a.throughput == b.throughput
    assert a.mct == b.mct
    assert a.has_critical_resource == b.has_critical_resource
    assert a.method == b.method
    assert a.m == b.m
    if a.tpn_solution is not None:
        assert a.tpn_solution.ratio == b.tpn_solution.ratio


class TestGroupBitIdentity:
    def test_group_matches_compute_period(self):
        insts = group_sweep((2, 3, 1), 16, seed=1)
        grouped = evaluate_batch(insts, "strict", method="tpn")
        for inst, res in zip(insts, grouped):
            assert_same_result(res, compute_period(inst, "strict", method="tpn"))

    def test_group_matches_per_pair_engine(self):
        insts = group_sweep((6, 10, 15), 12, seed=2)
        scalar_engine = BatchEngine()
        scalar = [scalar_engine.evaluate(i, "strict") for i in insts]
        group_engine = BatchEngine()
        grouped = group_engine.evaluate_many(insts, "strict")
        for s, g in zip(scalar, grouped):
            assert_same_result(s, g)
        # Cache-stat parity with the per-pair loop.
        assert group_engine.stats.evaluated == scalar_engine.stats.evaluated
        assert group_engine.stats.hits == scalar_engine.stats.hits
        assert group_engine.stats.misses == scalar_engine.stats.misses

    def test_mixed_topology_stream_preserves_order(self):
        a = group_sweep((2, 3, 1), 5, seed=3)
        b = group_sweep((3, 2, 1), 4, seed=4)
        interleaved = [a[0], a[1], b[0], b[1], b[2], a[2], a[3], a[4], b[3]]
        engine = BatchEngine()
        grouped = engine.evaluate_many(interleaved, "strict")
        for inst, res in zip(interleaved, grouped):
            assert_same_result(res, compute_period(inst, "strict", method="tpn"))

    def test_stream_and_batch_agree_with_group_path(self):
        insts = group_sweep((2, 3, 1), MIN_GROUP_ROWS * 4, seed=5)
        streamed = list(evaluate_stream(insts, "strict", method="tpn"))
        batched = evaluate_batch(insts, "strict", method="tpn")
        for s, b in zip(streamed, batched):
            assert_same_result(s, b)

    def test_sharded_matches_serial_group_path(self):
        insts = group_sweep((2, 3, 1), 24, seed=6)
        serial = evaluate_batch(insts, "strict", method="tpn")
        sharded = evaluate_batch(insts, "strict", method="tpn", n_jobs=2)
        for s, p in zip(serial, sharded):
            assert_same_result(s, p)

    def test_warm_group_values_match_cold(self):
        insts = group_sweep((6, 10, 15), 10, seed=7)
        cold = evaluate_batch(insts, "strict", method="tpn")
        warm = BatchEngine(warm_start=True).evaluate_many(insts, "strict")
        for c, w in zip(cold, warm):
            assert c.period == w.period
            assert c.mct == w.mct
            assert c.has_critical_resource == w.has_critical_resource

    def test_overlap_auto_routes_polynomial_per_pair(self):
        insts = group_sweep((2, 2, 1), 6, seed=8)
        grouped = BatchEngine().evaluate_many(insts, "overlap")
        for inst, res in zip(insts, grouped):
            assert res.method == "polynomial"
            assert res.period == compute_period(inst, "overlap").period


class TestVerdictMany:
    @pytest.mark.parametrize("model", ["strict", "overlap"])
    def test_matches_scalar_verdict(self, model):
        insts = group_sweep((2, 3, 1), 9, seed=9, works=[2.0, 3.0, 5.0])
        plan = build_cycle_time_plan(insts[0], model)
        periods = np.asarray(
            [compute_period(i, model, method="tpn").period for i in insts]
        )
        mct, crit, gap = plan.verdict_many(insts, periods)
        for b, inst in enumerate(insts):
            s_mct, s_crit, s_gap = plan.verdict(inst, float(periods[b]))
            assert float(mct[b]) == s_mct
            assert bool(crit[b]) == s_crit
            assert float(gap[b]) == s_gap


class TestEvaluateGroupValidation:
    def test_mixed_topologies_raise(self):
        a = group_sweep((2, 1), 2, seed=12)
        b = group_sweep((1, 2), 1, seed=13)
        with pytest.raises(ValidationError, match="topology signature"):
            BatchEngine().evaluate_group(a + b, "strict")

    def test_single_topology_group_is_fine(self):
        insts = group_sweep((2, 1), 3, seed=14)
        res = BatchEngine().evaluate_group(insts, "strict")
        for inst, r in zip(insts, res):
            assert r.period == compute_period(inst, "strict", method="tpn").period


class TestEngineJobsValidation:
    def test_engine_with_parallel_jobs_raises(self):
        insts = group_sweep((2, 1), 6, seed=10)
        engine = BatchEngine()
        with pytest.raises(ValidationError, match="serial-path"):
            evaluate_batch(insts, "strict", engine=engine, n_jobs=2)
        with pytest.raises(ValidationError, match="serial-path"):
            list(evaluate_stream(insts, "strict", engine=engine, n_jobs=0))

    def test_engine_with_serial_jobs_is_fine(self):
        insts = group_sweep((2, 1), 4, seed=11)
        engine = BatchEngine()
        res = evaluate_batch(insts, "strict", engine=engine, n_jobs=1)
        assert len(res) == 4 and engine.stats.evaluated == 4
