"""Unit tests for the replicated mapping model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Mapping, MappingError


class TestValidation:
    def test_example_a_mapping(self):
        mp = Mapping([(0,), (1, 2), (3, 4, 5), (6,)])
        assert mp.replication_counts == (1, 2, 3, 1)
        assert mp.num_paths == 6

    def test_processor_shared_between_stages_rejected(self):
        with pytest.raises(MappingError):
            Mapping([(0,), (0, 1)])

    def test_processor_repeated_within_stage_rejected(self):
        with pytest.raises(MappingError):
            Mapping([(0, 0)])

    def test_empty_stage_rejected(self):
        with pytest.raises(MappingError):
            Mapping([(0,), ()])

    def test_no_stage_rejected(self):
        with pytest.raises(MappingError):
            Mapping([])

    def test_negative_index_rejected(self):
        with pytest.raises(MappingError):
            Mapping([(-1,)])

    def test_platform_bound_checked(self):
        with pytest.raises(MappingError):
            Mapping([(0,), (5,)], n_processors=3)


class TestRoundRobin:
    def test_processor_for_follows_round_robin(self):
        mp = Mapping([(0,), (1, 2), (3, 4, 5), (6,)])
        # Table 1, data set 1: P0 -> P2 -> P4 -> P6
        assert [mp.processor_for(s, 1) for s in range(4)] == [0, 2, 4, 6]
        # data set 6 repeats data set 0
        assert [mp.processor_for(s, 6) for s in range(4)] == [
            mp.processor_for(s, 0) for s in range(4)
        ]

    def test_stage_of_and_replica_index(self):
        mp = Mapping([(0,), (1, 2)])
        assert mp.stage_of(2) == 1
        assert mp.replica_index(2) == 1
        assert mp.stage_of(9) is None
        assert mp.replica_index(9) is None

    def test_used_processors_order(self):
        mp = Mapping([(3,), (1, 2)])
        assert mp.used_processors == (3, 1, 2)


class TestCommStructure:
    def test_example_b(self):
        mp = Mapping([(0, 1, 2), (3, 4, 5, 6)])
        assert mp.comm_structure(0) == (1, 3, 4, 12)

    def test_example_c_f1(self):
        mp = Mapping([
            tuple(range(5)),
            tuple(range(5, 26)),
            tuple(range(26, 53)),
            tuple(range(53, 64)),
        ])
        assert mp.comm_structure(1) == (3, 7, 9, 189)

    def test_comm_pairs_window(self):
        mp = Mapping([(0, 1), (2, 3, 4)])
        pairs = mp.comm_pairs(0)
        assert len(pairs) == 6  # lcm(2, 3)
        assert pairs[0] == (0, 2)
        assert pairs[1] == (1, 3)
        assert pairs[5] == (1, 4)

    def test_comm_pairs_out_of_range(self):
        mp = Mapping([(0,), (1,)])
        with pytest.raises(IndexError):
            mp.comm_pairs(1)

    @given(st.lists(st.integers(1, 4), min_size=2, max_size=4))
    def test_structure_consistency(self, counts):
        # build disjoint assignments
        procs, assignments = 0, []
        for c in counts:
            assignments.append(tuple(range(procs, procs + c)))
            procs += c
        mp = Mapping(assignments)
        for i in range(len(counts) - 1):
            p, u, v, window = mp.comm_structure(i)
            assert p * u == counts[i]
            assert p * v == counts[i + 1]
            assert window * p == counts[i] * counts[i + 1]
            # every sender appears in the pair window exactly window/m_i times
            pairs = mp.comm_pairs(i)
            assert len(pairs) == window
            senders = [s for s, _ in pairs]
            for s in assignments[i]:
                assert senders.count(s) == window // counts[i]


class TestSerialization:
    def test_roundtrip(self):
        mp = Mapping([(0,), (2, 1)])
        assert Mapping.from_dict(mp.to_dict()) == mp

    def test_order_preserved(self):
        # round-robin order is semantic: (2, 1) != (1, 2)
        assert Mapping([(0,), (2, 1)]) != Mapping([(0,), (1, 2)])

    def test_hashable(self):
        assert len({Mapping([(0,)]), Mapping([(0,)])}) == 1
