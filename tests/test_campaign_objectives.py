"""Campaign threading of the objective axis: spec, store, exports.

The invariants under test are the PR-10 compatibility contract:

* a period-only spec serializes, digests and exports byte-identically
  to the pre-objective-plane layout (no new keys, no new columns);
* a multi-objective spec produces byte-identical stores and exports
  whether evaluated serially, with ``n_jobs``, or by the multi-worker
  fabric — the extra objectives are pure per-instance functions, so
  parallelism stays a wall-clock knob.
"""

import pytest

from repro.campaign import (CampaignSpec, ResultStore, campaign_report_data,
                            campaign_rows, export_campaign_csv,
                            export_campaign_json, export_campaign_report,
                            instance_digest, payload_from_result,
                            render_report_text, run_campaign,
                            run_campaign_workers)
from repro.engine import evaluate
from repro.errors import ValidationError
from repro.experiments import example_a

SPEC = {
    "name": "objective-axis",
    "draws": 2,
    "models": ["overlap"],
    "applications": [{"workload": "audio-pipeline"}],
    "platforms": [{"n_procs": 6, "clusters": 2}],
    "replications": [{"policy": "balls"}],
    "max_paths": 200,
}


def _spec(objectives=None):
    data = dict(SPEC)
    if objectives is not None:
        data["objectives"] = objectives
    return CampaignSpec.from_dict(data)


class TestSpecAxis:
    def test_default_is_period_only(self):
        spec = _spec()
        assert spec.objectives == ("period",)

    def test_default_omitted_from_dict(self):
        """Period-only specs serialize exactly as before PR 10."""
        assert "objectives" not in _spec().to_dict()

    def test_canonicalized_on_construction(self):
        spec = _spec("reliability,latency,period")
        assert spec.objectives == ("period", "latency", "reliability")

    def test_roundtrip(self):
        spec = _spec(["latency", "period"])
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again.objectives == ("period", "latency")
        assert again == spec

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValidationError):
            _spec(["period", "speedup"])

    def test_expansion_independent_of_objectives(self):
        """The axis changes what is measured, never which points."""
        plain = [(p.index, p.seed, p.cell) for p in _spec().expand()]
        rich = [(p.index, p.seed, p.cell)
                for p in _spec(["period", "latency"]).expand()]
        assert plain == rich


class TestDigests:
    def test_period_only_digest_unchanged(self):
        inst = example_a()
        assert instance_digest(inst, "overlap") == instance_digest(
            inst, "overlap", objectives=("period",))

    def test_multi_objective_digest_differs(self):
        inst = example_a()
        assert instance_digest(inst, "overlap") != instance_digest(
            inst, "overlap", objectives=("period", "latency"))

    def test_period_only_payload_has_no_objective_keys(self):
        inst = example_a()
        [res] = evaluate([inst], "overlap")
        payload = payload_from_result(inst, res)
        assert "objectives" not in payload
        assert "latency" not in payload and "reliability" not in payload

    def test_multi_objective_payload_carries_values(self):
        inst = example_a()
        [res] = evaluate([inst], "overlap")
        payload = payload_from_result(
            inst, res, objectives=("period", "latency", "reliability"))
        assert payload["objectives"] == ["period", "latency",
                                         "reliability"]
        assert payload["latency"] > 0 and payload["latency_mode"] == "bound"
        assert payload["reliability"] == 1.0  # no failure model


class TestExports:
    def test_period_only_exports_unchanged(self, tmp_path):
        spec = _spec()
        with ResultStore(tmp_path / "s.sqlite") as store:
            run_campaign(spec, store)
            csv_text = export_campaign_csv(spec, store)
            data = campaign_report_data(spec, store)
        header = csv_text.splitlines()[0]
        assert header.endswith("critical,gap")
        assert "latency" not in header
        assert "objectives" not in data

    def test_multi_objective_exports_extend(self, tmp_path):
        spec = _spec(["period", "latency", "reliability"])
        with ResultStore(tmp_path / "s.sqlite") as store:
            run_campaign(spec, store)
            csv_text = export_campaign_csv(spec, store)
            rows, missing = campaign_rows(spec, store)
            data = campaign_report_data(spec, store)
            text = render_report_text(data)
        assert not missing
        assert csv_text.splitlines()[0].endswith(
            "critical,gap,latency,reliability")
        assert all(row["latency"] > 0 for row in rows)
        section = data["objectives"]
        assert section["names"] == ["period", "latency", "reliability"]
        assert section["pareto"], "front must be non-empty"
        assert "pareto front" in text and "latency by model" in text

    def test_report_front_is_non_dominated(self, tmp_path):
        from repro.objectives import dominates

        spec = _spec(["period", "latency"])
        with ResultStore(tmp_path / "s.sqlite") as store:
            run_campaign(spec, store)
            front = campaign_report_data(spec, store)["objectives"]["pareto"]
        vectors = [tuple(e["vector"]) for e in front]
        for i, a in enumerate(vectors):
            for j, b in enumerate(vectors):
                if i != j:
                    assert not dominates(a, b)


class TestParallelismInvariance:
    def test_serial_jobs_fabric_byte_identical(self, tmp_path):
        spec = _spec(["period", "latency", "reliability"])
        artifacts = []
        for name, runner in [
            ("serial", lambda s: run_campaign(spec, s)),
            ("jobs", lambda s: run_campaign(spec, s, n_jobs=2)),
        ]:
            with ResultStore(tmp_path / f"{name}.sqlite") as store:
                runner(store)
                artifacts.append((export_campaign_json(spec, store),
                                  export_campaign_csv(spec, store),
                                  export_campaign_report(spec, store)))
        fabric = run_campaign_workers(spec, tmp_path / "fabric.sqlite",
                                      workers=2)
        assert fabric.complete and not fabric.crashed
        with ResultStore(tmp_path / "fabric.sqlite") as store:
            artifacts.append((export_campaign_json(spec, store),
                              export_campaign_csv(spec, store),
                              export_campaign_report(spec, store)))
        assert artifacts[0] == artifacts[1] == artifacts[2]

    def test_resume_is_free(self, tmp_path):
        spec = _spec(["period", "latency"])
        with ResultStore(tmp_path / "s.sqlite") as store:
            first = run_campaign(spec, store)
            again = run_campaign(spec, store)
        assert first.evaluated == spec.n_points
        assert again.evaluated == 0 and again.hits == spec.n_points
