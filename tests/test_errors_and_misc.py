"""Coverage for the error taxonomy, recurrence internals and small utilities."""

import numpy as np
import pytest

from repro import (
    DeadlockError,
    MappingError,
    ReplicationExplosionError,
    ReproError,
    SimulationError,
    SolverError,
    ValidationError,
)
from repro.maxplus.recurrence import tpn_matrices, tpn_transition_matrix
from repro.petri import PlaceKind, TimedEventGraph, build_tpn


class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(ValidationError, ReproError)
        assert issubclass(ValidationError, ValueError)
        assert issubclass(MappingError, ValidationError)
        for cls in (DeadlockError, SolverError, SimulationError,
                    ReplicationExplosionError):
            assert issubclass(cls, ReproError)

    def test_explosion_carries_context(self):
        err = ReplicationExplosionError(10395, 1000)
        assert err.m == 10395
        assert err.limit == 1000
        assert "10395" in str(err)
        assert "max_rows" in str(err)

    def test_catch_all(self):
        from repro import Mapping

        with pytest.raises(ReproError):
            Mapping([])


class TestRecurrenceMatrices:
    def _net(self):
        from repro.experiments import example_a

        return build_tpn(example_a(), "overlap")

    def test_matrix_shapes(self):
        net = self._net()
        a0, a1 = tpn_matrices(net)
        n = net.n_transitions
        assert a0.shape == (n, n) and a1.shape == (n, n)

    def test_a0_support_is_acyclic(self):
        """A0 holds the 0-token places; its support must be a DAG."""
        from repro.maxplus.algebra import matrix_to_graph

        net = self._net()
        a0, _ = tpn_matrices(net)
        g = matrix_to_graph(a0)
        # no cycles: every SCC is a singleton without self-loop
        for comp in g.strongly_connected_components():
            assert len(comp) == 1
            v = comp[0]
            assert all(int(g.dst[i]) != v for i in g.out_edges(v))

    def test_entry_positions(self):
        """A0[d, s] = duration(d) for a 0-token place s -> d."""
        net = self._net()
        a0, a1 = tpn_matrices(net)
        flow = next(p for p in net.places if p.kind == PlaceKind.FLOW)
        assert a0[flow.dst, flow.src] == pytest.approx(
            net.transitions[flow.dst].duration
        )
        token_place = next(p for p in net.places if p.tokens == 1)
        assert a1[token_place.dst, token_place.src] == pytest.approx(
            net.transitions[token_place.dst].duration
        )

    def test_two_token_place_rejected(self):
        net = TimedEventGraph(n_rows=1, n_columns=1)
        net.add_transition(0, 0, 1.0, "comp", 0, (0,))
        net.add_place(0, 0, 2, PlaceKind.RR_COMP, "P0:comp")
        with pytest.raises(ValidationError):
            tpn_matrices(net)

    def test_transition_matrix_composes(self):
        """A = A0* A1 reproduces a hand-checkable entry: the strict
        serialization of a 1x3 net folds comp+send into one hop."""
        from tests.conftest import make_instance

        inst = make_instance([1, 1], [2.0, 3.0], [[0.0, 4.0], [4.0, 0.0]])
        net = build_tpn(inst, "strict")
        a = tpn_transition_matrix(net)
        # x_comp0(k) = comp_dur + x_comm(k-1): entry [0, 1] = 2
        assert a[0, 1] == pytest.approx(2.0)
        # x_comm(k) folds comp0 (via A0*) on top of its own places:
        # comm depends on comp0(k) which depends on comm(k-1): 4 + 2
        assert a[1, 1] == pytest.approx(6.0)


class TestGanttDetails:
    def test_ruler_has_ticks(self):
        from repro.simulation.gantt import _ruler

        ruler = _ruler(0.0, 100.0, 80)
        assert "0" in ruler and "100" in ruler

    def test_render_with_missing_resource(self):
        from repro.simulation import render_gantt

        # resources not present in the schedule map render as idle rows
        chart = render_gantt({}, 0.0, 10.0, width=40, resources=["P9"])
        row = chart.splitlines()[1]
        assert set(row.split("|")[1]) == {"."}

    def test_zero_duration_transitions_skipped(self):
        """Free links produce zero-length busy intervals — excluded."""
        from repro.petri import build_tpn
        from repro.simulation import extract_schedules, simulate
        from tests.conftest import make_instance

        inst = make_instance([1, 1], [1.0, 1.0], [[0.0, 0.0], [0.0, 0.0]])
        net = build_tpn(inst, "overlap")
        schedules = extract_schedules(simulate(net, 4), "overlap")
        assert "P0:out" not in schedules  # zero-cost transfer


class TestTraceHelpers:
    def test_start_and_dataset_helpers(self):
        from repro.petri import build_tpn
        from repro.simulation import simulate
        from tests.conftest import make_instance

        inst = make_instance([1, 1], [2.0, 3.0], [[0.0, 4.0], [4.0, 0.0]])
        net = build_tpn(inst, "overlap")
        trace = simulate(net, 3)
        assert trace.start(0, 0) == pytest.approx(0.0)
        assert trace.start(0, 1) == pytest.approx(2.0)
        assert trace.dataset_of_firing(2, 0) == 2

    def test_completion_times_of_datasets_sorted_by_dataset(self):
        from repro.experiments import example_a
        from repro.petri import build_tpn
        from repro.simulation import simulate

        net = build_tpn(example_a(), "strict")
        trace = simulate(net, 4)
        times = trace.completion_times_of_datasets()
        assert times.size == 4 * 6
        # in the strict coupled regime, completions are dataset-ordered
        assert np.all(np.diff(times) > 0)
