"""Tests for round-robin path enumeration (Proposition 1 / Table 1)."""

from hypothesis import given
from hypothesis import strategies as st

from repro import Mapping, enumerate_paths, format_path_table, path_of_dataset
from repro.utils import lcm_all


class TestTable1:
    """The exact path table of Example A (Table 1 of the paper)."""

    MAPPING = Mapping([(0,), (1, 2), (3, 4, 5), (6,)])
    EXPECTED = [
        (0, 1, 3, 6),
        (0, 2, 4, 6),
        (0, 1, 5, 6),
        (0, 2, 3, 6),
        (0, 1, 4, 6),
        (0, 2, 5, 6),
    ]

    def test_six_distinct_paths(self):
        paths = enumerate_paths(self.MAPPING)
        assert len(paths) == 6
        assert [p.processors for p in paths] == self.EXPECTED
        assert len({p.processors for p in paths}) == 6

    def test_wraparound(self):
        # data sets 6 and 7 re-use paths 0 and 1 (Table 1 rows 6-7)
        assert path_of_dataset(self.MAPPING, 6).processors == self.EXPECTED[0]
        assert path_of_dataset(self.MAPPING, 7).processors == self.EXPECTED[1]

    def test_format_table_matches_paper_rows(self):
        table = format_path_table(self.MAPPING)
        lines = table.splitlines()
        # header + separator + m + 2 rows
        assert len(lines) == 2 + 6 + 2
        assert "P0 -> P1 -> P3 -> P6" in lines[2]
        assert "P0 -> P2 -> P4 -> P6" in lines[3]
        # row 6 repeats row 0
        assert lines[8].split("|")[1] == lines[2].split("|")[1]

    def test_str_rendering(self):
        p = path_of_dataset(self.MAPPING, 0)
        assert str(p) == "path 0: P0 -> P1 -> P3 -> P6"


class TestProposition1:
    """Property form of Proposition 1."""

    @given(st.lists(st.integers(1, 4), min_size=1, max_size=5))
    def test_path_count_is_lcm(self, counts):
        procs, assignments = 0, []
        for c in counts:
            assignments.append(tuple(range(procs, procs + c)))
            procs += c
        mp = Mapping(assignments)
        paths = enumerate_paths(mp)
        assert len(paths) == lcm_all(counts)
        # all paths distinct
        assert len({p.processors for p in paths}) == len(paths)

    @given(st.lists(st.integers(1, 4), min_size=1, max_size=4),
           st.integers(0, 100))
    def test_dataset_follows_path_mod_m(self, counts, dataset):
        procs, assignments = 0, []
        for c in counts:
            assignments.append(tuple(range(procs, procs + c)))
            procs += c
        mp = Mapping(assignments)
        m = mp.num_paths
        path = path_of_dataset(mp, dataset)
        assert path.index == dataset % m
        assert path.processors == path_of_dataset(mp, dataset % m).processors

    @given(st.lists(st.integers(1, 4), min_size=2, max_size=4))
    def test_stage_round_robin_within_paths(self, counts):
        """Path j uses replica j mod m_i of stage i — the paper's rule."""
        procs, assignments = 0, []
        for c in counts:
            assignments.append(tuple(range(procs, procs + c)))
            procs += c
        mp = Mapping(assignments)
        for j, path in enumerate(enumerate_paths(mp)):
            for i, c in enumerate(counts):
                assert path.processors[i] == assignments[i][j % c]
