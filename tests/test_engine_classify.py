"""Bit-identity of the cached cycle-time plan vs the scalar classifier.

The batched engine replaces per-evaluation ``classify_critical_resource``
calls with a :class:`~repro.engine.classify.CycleTimePlan` cached per
topology signature.  These tests pin the contract that makes that swap
invisible: every float — per-processor components, ``M_ct``, the
relative gap and the critical verdict — equals the scalar path's
**exactly** (``==``, never approx), thanks to the plan's byte-stable
summation order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bounds import classify_critical_resource
from repro.core.cycle_time import cycle_times
from repro.core.throughput import compute_period
from repro.engine import BatchEngine, build_cycle_time_plan
from repro.experiments.examples_paper import example_a, example_b
from repro.experiments.generator import random_instance

MODELS = ("overlap", "strict")


def _random_instances(n: int, seed: int = 20090302):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        stages = int(rng.integers(2, 8))
        procs = int(rng.integers(stages, stages + 10))
        comp = None if rng.integers(0, 2) else (5.0, 15.0)
        out.append(random_instance(
            stages, procs, comp, (0.0, 20.0), rng, max_paths=150,
        ))
    return out


class TestPlanBitIdentity:
    @pytest.mark.parametrize("model", MODELS)
    def test_components_equal_scalar(self, model):
        for inst in _random_instances(40):
            plan = build_cycle_time_plan(inst, model)
            cin, ccomp, cout = plan.components(inst)
            report = cycle_times(inst, model)
            assert plan.n_entries == len(report.per_processor)
            for i, ct in enumerate(report.per_processor):
                assert cin[i] == ct.cin
                assert ccomp[i] == ct.ccomp
                assert cout[i] == ct.cout
            assert plan.mct(inst) == report.mct

    @pytest.mark.parametrize("model", MODELS)
    def test_verdict_equals_scalar_classifier(self, model):
        for inst in _random_instances(15, seed=7):
            plan = build_cycle_time_plan(inst, model)
            period = compute_period(inst, model, max_rows=151).period
            mct, critical, gap = plan.verdict(inst, period)
            ref = classify_critical_resource(inst, model, period)
            assert mct == ref.mct
            assert critical == ref.has_critical_resource
            assert gap == ref.relative_gap

    @pytest.mark.parametrize("model", MODELS)
    def test_paper_examples(self, model):
        for inst in (example_a(), example_b()):
            plan = build_cycle_time_plan(inst, model)
            assert plan.mct(inst) == cycle_times(inst, model).mct

    def test_plan_is_topology_reusable(self):
        """One plan built from any representative serves the whole group."""
        base, *rest = [
            inst for inst in _random_instances(30, seed=3)
        ]
        plan = build_cycle_time_plan(base, "strict")
        # Re-stamp instances sharing the mapping but with fresh times.
        from repro.core.instance import Instance
        from repro.core.platform import Platform

        rng = np.random.default_rng(11)
        p = base.platform.n_processors
        for _ in range(10):
            comp = rng.uniform(1.0, 9.0, p)
            comm = rng.uniform(1.0, 9.0, (p, p))
            np.fill_diagonal(comm, 0.0)
            sib = Instance(base.application,
                           Platform.from_comm_times(comp, comm),
                           base.mapping)
            assert plan.mct(sib) == cycle_times(sib, "strict").mct


class TestEnginePlanCache:
    def test_engine_results_equal_scalar_path(self):
        engine = BatchEngine()
        for inst in _random_instances(10, seed=5):
            for model in MODELS:
                got = engine.evaluate(inst, model)
                ref = compute_period(inst, model)
                assert got.period == ref.period
                assert got.mct == ref.mct
                assert got.has_critical_resource == ref.has_critical_resource
                assert got.relative_gap == ref.relative_gap

    def test_plan_cached_per_signature(self):
        engine = BatchEngine()
        inst = example_a()
        engine.evaluate(inst, "overlap")
        engine.evaluate(inst, "overlap")
        engine.evaluate(inst, "strict")
        # one plan per (model, assignments) signature
        assert len(engine._ct_plans) == 2

    def test_plan_cache_bounded(self):
        engine = BatchEngine(cache_limit=3)
        for inst in _random_instances(8, seed=9):
            engine.evaluate(inst, "overlap")
        assert len(engine._ct_plans) <= 3
