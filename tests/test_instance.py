"""Tests for the Instance bundle and JSON serialization."""

import numpy as np
import pytest

from repro import Application, Instance, Mapping, Platform, ValidationError


def _inst() -> Instance:
    return Instance(
        Application(works=[1, 2], file_sizes=[3], name="t"),
        Platform.homogeneous(3, speed=2.0, bandwidth=1.5),
        Mapping([(0,), (1, 2)]),
    )


class TestCrossValidation:
    def test_stage_count_mismatch(self):
        with pytest.raises(ValidationError):
            Instance(
                Application(works=[1], file_sizes=[]),
                Platform.homogeneous(2),
                Mapping([(0,), (1,)]),
            )

    def test_processor_out_of_range(self):
        with pytest.raises(ValidationError):
            Instance(
                Application(works=[1, 1], file_sizes=[1]),
                Platform.homogeneous(2),
                Mapping([(0,), (5,)]),
            )

    def test_accessors(self):
        inst = _inst()
        assert inst.n_stages == 2
        assert inst.num_paths == 2
        assert inst.replication_counts == (1, 2)
        assert inst.comp_time(1, 2) == pytest.approx(1.0)  # 2 / 2.0
        assert inst.comm_time(0, 0, 1) == pytest.approx(2.0)  # 3 / 1.5


class TestJson:
    def test_roundtrip_string(self):
        inst = _inst()
        clone = Instance.from_json(inst.to_json())
        assert clone.application == inst.application
        assert clone.mapping == inst.mapping
        assert clone.platform == inst.platform

    def test_roundtrip_file(self, tmp_path):
        inst = _inst()
        path = tmp_path / "inst.json"
        inst.to_json(path)
        clone = Instance.from_json(path)
        assert clone.mapping == inst.mapping

    def test_roundtrip_preserves_infinite_bandwidth(self):
        plat = Platform(
            speeds=[1, 1], bandwidths=np.array([[0.0, np.inf], [2.0, 0.0]])
        )
        inst = Instance(
            Application(works=[1, 1], file_sizes=[1]), plat, Mapping([(0,), (1,)])
        )
        clone = Instance.from_json(inst.to_json())
        assert clone.platform.bandwidth(0, 1) == np.inf

    def test_paper_examples_roundtrip(self):
        from repro.experiments import example_a, example_b

        for inst in (example_a(), example_b()):
            clone = Instance.from_json(inst.to_json())
            from repro import compute_period

            assert compute_period(clone, "overlap").period == pytest.approx(
                compute_period(inst, "overlap").period
            )
