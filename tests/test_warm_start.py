"""Warm-started Howard must match cold-started *values* everywhere.

The warm-start contract (ISSUE 2): seeding policy iteration from the
previous instance of a topology group may change round counts and — on
exact ties — which critical cycle is extracted, but never the period
value.  These tests pin that across the solver, the skeleton, the
engine and the sharded batch path, plus the opt-in default.
"""

import numpy as np
import pytest

from repro import Application, Instance, Mapping, Platform
from repro.engine import BatchEngine, evaluate_batch
from repro.maxplus.graph import RatioGraph
from repro.maxplus.howard import HowardState, prepare_howard, solve_prepared


def _topology(counts):
    n, p = len(counts), sum(counts)
    bounds = np.cumsum((0,) + tuple(counts))
    mapping = Mapping(
        [tuple(range(bounds[i], bounds[i + 1])) for i in range(n)],
        n_processors=p,
    )
    app = Application(works=[1.0] * n, file_sizes=[1.0] * (n - 1))
    return app, mapping, p


def _random_instances(counts, n_instances, seed, jitter=None):
    """iid draws, or (with jitter) a slowly-varying neighborhood."""
    app, mapping, p = _topology(counts)
    rng = np.random.default_rng(seed)
    base_comp = rng.uniform(5.0, 15.0, p)
    base_comm = rng.uniform(5.0, 15.0, (p, p))
    out = []
    for _ in range(n_instances):
        if jitter is None:
            comp = rng.uniform(5.0, 15.0, p)
            comm = rng.uniform(5.0, 15.0, (p, p))
        else:
            comp = base_comp * rng.uniform(1 - jitter, 1 + jitter, p)
            comm = base_comm * rng.uniform(1 - jitter, 1 + jitter, (p, p))
        np.fill_diagonal(comm, 0.0)
        out.append(Instance(app, Platform.from_comm_times(comp, comm), mapping))
    return out


class TestSolverState:
    def _graph(self):
        return RatioGraph(
            4,
            [(0, 1, 3.0, 1), (1, 2, 4.0, 1), (2, 0, 5.0, 1),
             (2, 3, 1.0, 0), (3, 0, 2.0, 1), (1, 0, 1.0, 2)],
        )

    def test_state_reuse_matches_cold_value(self):
        g = self._graph()
        plan = prepare_howard(g)
        cold = solve_prepared(plan, g.weight)
        state = HowardState()
        first = solve_prepared(plan, g.weight, state=state)
        again = solve_prepared(plan, g.weight, state=state)
        assert first.value == cold.value == again.value

    def test_converged_policy_resolves_in_one_round(self):
        g = self._graph()
        plan = prepare_howard(g)
        state = HowardState()
        solve_prepared(plan, g.weight, state=state)
        assert solve_prepared(plan, g.weight, state=state).n_rounds == 1

    def test_state_tracks_changing_weights(self):
        g = self._graph()
        plan = prepare_howard(g)
        state = HowardState()
        rng = np.random.default_rng(7)
        for _ in range(20):
            w = rng.uniform(0.5, 10.0, g.n_edges)
            assert solve_prepared(plan, w, state=state).value == \
                solve_prepared(plan, w).value


class TestEngineWarmStart:
    def test_flag_defaults_off(self):
        assert BatchEngine().warm_start is False
        eng = BatchEngine()
        insts = _random_instances((2, 3), 5, seed=0)
        for inst in insts:
            eng.evaluate(inst, "strict", method="tpn")
        assert eng._warm_states == {}  # cold engines carry no state

    @pytest.mark.parametrize("counts", [(2, 3), (2, 3, 5, 1), (4, 6)])
    def test_randomized_sweep_identical_periods(self, counts):
        insts = _random_instances(counts, 40, seed=3)
        cold = BatchEngine()
        warm = BatchEngine(warm_start=True)
        cold_p = [cold.evaluate(i, "strict", method="tpn").period
                  for i in insts]
        warm_p = [warm.evaluate(i, "strict", method="tpn").period
                  for i in insts]
        assert cold_p == warm_p  # exact equality, not approx

    def test_slowly_varying_sweep_identical_periods(self):
        insts = _random_instances((6, 10, 15), 30, seed=11, jitter=0.01)
        cold = BatchEngine()
        warm = BatchEngine(warm_start=True)
        for inst in insts:
            assert warm.evaluate(inst, "strict", method="tpn").period == \
                cold.evaluate(inst, "strict", method="tpn").period

    def test_mixed_topologies_keep_separate_states(self):
        a = _random_instances((2, 3), 10, seed=5)
        b = _random_instances((4, 6), 10, seed=6)
        interleaved = [x for pair in zip(a, b) for x in pair]
        cold = [BatchEngine().evaluate(i, "strict", method="tpn").period
                for i in interleaved]
        warm_engine = BatchEngine(warm_start=True)
        warm = [warm_engine.evaluate(i, "strict", method="tpn").period
                for i in interleaved]
        assert cold == warm
        assert len(warm_engine._warm_states) == 2

    def test_eviction_drops_warm_state_with_skeleton(self):
        eng = BatchEngine(warm_start=True, cache_limit=1)
        a = _random_instances((2, 3), 2, seed=5)
        b = _random_instances((4, 6), 2, seed=6)
        for inst in (*a, *b):
            eng.evaluate(inst, "strict", method="tpn")
        assert len(eng._skeletons) == 1
        assert len(eng._warm_states) <= 1

    def test_overlap_model_unaffected(self):
        # Polynomial path has no Howard solve; flag must be harmless.
        insts = _random_instances((2, 3), 5, seed=9)
        warm = BatchEngine(warm_start=True)
        cold = BatchEngine()
        for inst in insts:
            assert warm.evaluate(inst, "overlap").period == \
                cold.evaluate(inst, "overlap").period


class TestBatchWarmStart:
    def test_evaluate_batch_defaults_cold(self):
        insts = _random_instances((2, 3), 6, seed=1)
        baseline = evaluate_batch(insts, "strict", method="tpn")
        flagged = evaluate_batch(insts, "strict", method="tpn",
                                 warm_start=True)
        assert [r.period for r in baseline] == [r.period for r in flagged]

    def test_sharded_warm_start_identical_periods(self):
        insts = _random_instances((2, 3, 5, 1), 24, seed=2)
        serial = evaluate_batch(insts, "strict", method="tpn")
        sharded = evaluate_batch(insts, "strict", method="tpn",
                                 warm_start=True, n_jobs=2)
        assert [r.period for r in serial] == [r.period for r in sharded]
