"""End-to-end tests of the command-line interface."""

import json

import pytest

from repro.cli import main


class TestPeriod:
    def test_example_a_overlap(self, capsys):
        assert main(["period", "a"]) == 0
        out = capsys.readouterr().out
        assert "period P           : 189" in out
        assert "yes (P = Mct)" in out

    def test_example_b_breakdown(self, capsys):
        assert main(["period", "b", "--breakdown"]) == 0
        out = capsys.readouterr().out
        assert "per-column contributions:" in out
        assert "F0 transmission" in out

    def test_strict_critical_cycle(self, capsys):
        assert main(["period", "a", "--model", "strict", "--critical-cycle"]) == 0
        out = capsys.readouterr().out
        assert "critical cycle" in out

    def test_json_instance(self, tmp_path, capsys):
        from repro.experiments import example_b

        path = tmp_path / "b.json"
        example_b().to_json(path)
        assert main(["period", str(path)]) == 0
        assert "291.667" in capsys.readouterr().out

    def test_error_exit_code(self, capsys):
        assert main(["period", "/nonexistent/file.json"]) == 1
        assert "error:" in capsys.readouterr().err


class TestOtherCommands:
    def test_paths(self, capsys):
        assert main(["paths", "a"]) == 0
        out = capsys.readouterr().out
        assert "P0 -> P1 -> P3 -> P6" in out

    def test_cycle(self, capsys):
        assert main(["cycle", "a", "--model", "strict"]) == 0
        out = capsys.readouterr().out
        assert "M_ct = 215.833" in out
        assert "P2" in out

    def test_gantt(self, capsys):
        assert main(["gantt", "a", "--model", "strict", "--firings", "24",
                     "--width", "80"]) == 0
        out = capsys.readouterr().out
        assert "measured period" in out
        assert "resource" in out  # utilization table

    def test_dot_stdout(self, capsys):
        assert main(["dot", "a"]) == 0
        assert "digraph tpn" in capsys.readouterr().out

    def test_dot_file_with_cycle(self, tmp_path, capsys):
        out_file = tmp_path / "net.dot"
        assert main(["dot", "a", "--model", "strict", "--critical-cycle",
                     "--out", str(out_file)]) == 0
        assert "color=red" in out_file.read_text()

    def test_example_dump_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "a.json"
        assert main(["example", "a", "--out", str(out_file)]) == 0
        data = json.loads(out_file.read_text())
        assert data["mapping"]["assignments"] == [[0], [1, 2], [3, 4, 5], [6]]

    def test_example_stdout(self, capsys):
        assert main(["example", "b"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["platform"]["speeds"]) == 7

    def test_latency_saturated(self, capsys):
        assert main(["latency", "a", "--datasets", "12"]) == 0
        out = capsys.readouterr().out
        assert "saturated" in out
        assert "mean latency" in out

    def test_latency_paced_per_dataset(self, capsys):
        assert main(["latency", "a", "--datasets", "6", "--inject", "5000",
                     "--per-dataset"]) == 0
        out = capsys.readouterr().out
        assert "paced, one data set every 5000" in out
        assert "data set    0" in out

    def test_search(self, capsys):
        assert main(["search", "b", "--refine", "--iters", "5"]) == 0
        out = capsys.readouterr().out
        assert "greedy period" in out
        assert "refined period" in out
        assert "input mapping" in out

    def test_optimize(self, tmp_path, capsys):
        json_path = tmp_path / "portfolio.json"
        csv_path = tmp_path / "restarts.csv"
        assert main(["optimize", "b", "--restarts", "3", "--budget", "120",
                     "--json", str(json_path), "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "best period" in out
        assert "greedy" in out
        assert "input mapping" in out
        data = json.loads(json_path.read_text())
        assert data["evaluations"] <= 120
        assert csv_path.read_text().startswith("index,kind,seed,period")

    def test_optimize_zero_budget_degrades_gracefully(self, capsys):
        assert main(["optimize", "b", "--budget", "0"]) == 0
        out = capsys.readouterr().out
        assert "budget exhausted before any restart" in out
        assert "inf" in out

    def test_optimize_warm_start_same_best_period(self, capsys):
        assert main(["optimize", "b", "--model", "strict", "--restarts", "2",
                     "--budget", "60", "--max-rows", "200"]) == 0
        cold = capsys.readouterr().out
        assert main(["optimize", "b", "--model", "strict", "--restarts", "2",
                     "--budget", "60", "--max-rows", "200",
                     "--warm-start"]) == 0
        warm = capsys.readouterr().out
        pick = lambda s: [l for l in s.splitlines() if "best period" in l]
        assert pick(cold) == pick(warm)

    def test_table2_tiny(self, capsys):
        assert main(["table2", "--scale", "0.002", "--models", "overlap",
                     "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "With overlap:" in out

    def test_certify(self, capsys):
        assert main(["certify", "b"]) == 0
        out = capsys.readouterr().out
        assert "provably optimal" in out
        assert "291.667" in out

    def test_gantt_svg(self, tmp_path, capsys):
        svg_path = tmp_path / "a.svg"
        assert main(["gantt", "a", "--model", "strict", "--firings", "16",
                     "--svg", str(svg_path)]) == 0
        assert svg_path.read_text().startswith("<svg")

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestUnifiedFormat:
    """--format {text,json}: one machine-output convention (PR 10)."""

    def test_optimize_json_stdout(self, capsys):
        assert main(["optimize", "a", "--restarts", "2", "--budget", "60",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["evaluations"] <= 60
        assert data["period"] > 0 and data["allocator"] == "fair-share"

    def test_optimize_text_is_default(self, capsys):
        assert main(["optimize", "a", "--restarts", "2",
                     "--budget", "60"]) == 0
        out = capsys.readouterr().out
        assert "portfolio" in out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)

    def test_optimize_objectives_text(self, capsys):
        assert main(["optimize", "a", "--objectives", "period,latency",
                     "--restarts", "2", "--budget", "60",
                     "--iters", "10"]) == 0
        out = capsys.readouterr().out
        assert "objectives     : period, latency" in out
        assert "pareto front" in out

    def test_optimize_objectives_json(self, tmp_path, capsys):
        out_file = tmp_path / "front.json"
        assert main(["optimize", "a", "--objectives", "period,latency",
                     "--restarts", "2", "--budget", "60", "--iters", "10",
                     "--format", "json", "--json", str(out_file)]) == 0
        stdout_data = json.loads(capsys.readouterr().out)
        file_data = json.loads(out_file.read_text())
        assert stdout_data == file_data
        assert stdout_data["objectives"] == ["period", "latency"]
        assert stdout_data["front"]
        for entry in stdout_data["front"]:
            assert entry["period"] > 0 and entry["latency"] > 0

    def test_optimize_objectives_allocator_choice(self, capsys):
        assert main(["optimize", "a", "--objectives", "period,latency",
                     "--allocator", "weighted-sum", "--restarts", "2",
                     "--budget", "60", "--iters", "10",
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["allocator"] == "weighted-sum"

    def test_campaign_run_and_report_json(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps({
            "name": "fmt-demo", "draws": 2, "models": ["overlap"],
            "applications": [{"workload": "audio-pipeline"}],
            "platforms": [{"n_procs": 6}],
            "replications": [{"policy": "balls"}],
            "max_paths": 200,
            "objectives": ["period", "latency"],
        }))
        store = str(tmp_path / "s.sqlite")
        assert main(["campaign", "run", str(spec_file), "--store", store,
                     "--format", "json"]) == 0
        run_data = json.loads(capsys.readouterr().out)
        assert run_data["complete"]
        assert main(["campaign", "report", str(spec_file),
                     "--store", store, "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["objectives"]["names"] == ["period", "latency"]
        assert main(["campaign", "status", str(spec_file),
                     "--store", store, "--format", "json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["pending"] == 0

    def test_sweep_json(self, capsys):
        assert main(["sweep", "--family", "4", "--count", "3",
                     "--jobs", "1", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["experiments"] == len(data["records"]) == 3
        assert all(r["period"] > 0 for r in data["records"])
