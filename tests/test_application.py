"""Unit tests for the application model."""

import pytest

from repro import Application, ValidationError
from repro.core.application import Stage


class TestConstruction:
    def test_figure1_pipeline(self):
        app = Application(works=[1, 2, 3, 1], file_sizes=[10, 20, 30])
        assert app.n_stages == 4
        assert app.n_files == 3
        assert app.work(2) == 3.0
        assert app.file_size(1) == 20.0

    def test_single_stage_needs_no_files(self):
        app = Application(works=[5.0], file_sizes=[])
        assert app.n_stages == 1
        assert app.n_files == 0

    def test_mismatched_file_count_rejected(self):
        with pytest.raises(ValidationError):
            Application(works=[1, 2], file_sizes=[1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Application(works=[], file_sizes=[])

    def test_negative_work_rejected(self):
        with pytest.raises(ValidationError):
            Application(works=[-1.0], file_sizes=[])

    def test_zero_work_allowed(self):
        # a pure forwarding stage is legal
        assert Application(works=[0.0, 1.0], file_sizes=[1.0]).work(0) == 0.0

    def test_nan_size_rejected(self):
        with pytest.raises(ValidationError):
            Application(works=[1, 1], file_sizes=[float("nan")])

    def test_default_stage_names(self):
        app = Application(works=[1, 1], file_sizes=[1])
        assert app.stage_name(0) == "S0"
        assert app.stage_name(1) == "S1"

    def test_custom_stage_names(self):
        app = Application(works=[1, 1], file_sizes=[1],
                          stage_names=["decode", "encode"])
        assert [s.name for s in app.stages()] == ["decode", "encode"]

    def test_wrong_name_count_rejected(self):
        with pytest.raises(ValidationError):
            Application(works=[1, 1], file_sizes=[1], stage_names=["x"])


class TestAccessBounds:
    def test_stage_out_of_range(self):
        app = Application(works=[1, 1], file_sizes=[1])
        with pytest.raises(IndexError):
            app.work(2)
        with pytest.raises(IndexError):
            app.work(-1)

    def test_file_out_of_range(self):
        app = Application(works=[1, 1], file_sizes=[1])
        with pytest.raises(IndexError):
            app.file_size(1)


class TestSerialization:
    def test_roundtrip(self):
        app = Application(works=[1, 2], file_sizes=[3], name="x",
                          stage_names=["a", "b"])
        clone = Application.from_dict(app.to_dict())
        assert clone == app

    def test_dict_contents(self):
        d = Application(works=[1, 2], file_sizes=[3]).to_dict()
        assert d["works"] == [1.0, 2.0]
        assert d["file_sizes"] == [3.0]


class TestStage:
    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            Stage(work=-1.0)

    def test_fields(self):
        s = Stage(work=2.5, name="filter")
        assert s.work == 2.5 and s.name == "filter"
