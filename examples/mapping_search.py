"""Find a good replicated mapping for a DSP pipeline (extension demo).

The paper computes the throughput of a *given* mapping; choosing the
mapping is NP-hard ([3] in the paper).  This example runs the library's
greedy and local-search heuristics — which use the exact Theorem 1
period as their objective — on a software-radio style chain and compares
them against random mappings.

Run:  python examples/mapping_search.py
"""

import numpy as np

from repro import Application, Instance, Platform, compute_period
from repro.extensions import greedy_mapping, local_search_mapping, random_mapping

APP = Application(
    works=[1.0, 8.0, 3.0, 12.0, 2.0],
    file_sizes=[2.0, 2.0, 1.0, 1.0],
    name="software-radio",
    stage_names=["capture", "channelize", "demod", "decode", "sink"],
)


def make_platform(seed: int = 7, n: int = 12) -> Platform:
    rng = np.random.default_rng(seed)
    speeds = rng.uniform(1.0, 4.0, n)
    bw = rng.uniform(2.0, 8.0, (n, n))
    np.fill_diagonal(bw, 0.0)
    return Platform(speeds, bw, name="sdr-cluster")


def main() -> None:
    plat = make_platform()
    rng = np.random.default_rng(0)

    print("random mappings (10 draws):")
    best_random = None
    for i in range(10):
        mapping = random_mapping(APP, plat, rng)
        period = compute_period(Instance(APP, plat, mapping), "overlap").period
        best_random = period if best_random is None else min(best_random, period)
        print(f"  draw {i}: replication {mapping.replication_counts} "
              f"P = {period:.4f}")
    print(f"  best random: {best_random:.4f}")

    print("\ngreedy constructive heuristic:")
    greedy = greedy_mapping(APP, plat, "overlap")
    print(f"  mapping: {[list(s) for s in greedy.mapping.assignments]}")
    print(f"  period : {greedy.period:.4f} "
          f"({greedy.evaluations} oracle calls, trace {['%.3f' % t for t in greedy.trace]})")

    print("\nlocal search from the greedy solution:")
    ls = local_search_mapping(
        APP, plat, "overlap", rng=np.random.default_rng(1),
        start=greedy.mapping, max_iters=60,
    )
    print(f"  mapping: {[list(s) for s in ls.mapping.assignments]}")
    print(f"  period : {ls.period:.4f} ({ls.evaluations} oracle calls)")

    improvement = 100 * (best_random - ls.period) / best_random
    print(f"\nlocal search beats the best of 10 random draws by "
          f"{improvement:.1f}%")

    res = compute_period(Instance(APP, plat, ls.mapping), "overlap")
    print("\nfinal mapping summary:")
    print(res.summary())


if __name__ == "__main__":
    main()
