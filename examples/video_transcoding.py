"""Video transcoding workflow: the paper's motivating application class.

The introduction cites video/audio encoding pipelines as the canonical
replicated workflow.  This example models a live transcoding chain

    demux -> decode -> scale -> encode -> mux

on a heterogeneous cluster (two fast encoder boxes, several mid-range
nodes, a slow I/O gateway) and shows how replicating the expensive
encode stage changes the achievable frame rate — including the round-
robin subtlety that *which* processors share a stage matters because of
the one-port communication circuits.

Run:  python examples/video_transcoding.py
"""

import numpy as np

from repro import Application, Instance, Mapping, Platform, compute_period

# Stage costs in GFLOP per group-of-pictures (GOP); files in MB.
APP = Application(
    works=[0.4, 6.0, 2.5, 14.0, 0.5],
    file_sizes=[8.0, 48.0, 24.0, 4.0],
    name="live-transcode",
    stage_names=["demux", "decode", "scale", "encode", "mux"],
)

# 10 processors: P0 gateway (slow), P1-P6 mid-range, P7-P9 encoder boxes.
SPEEDS = [1.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 10.0, 10.0, 10.0]


def make_platform() -> Platform:
    """Cluster with 1 Gb/s links, except the gateway's slower uplink."""
    n = len(SPEEDS)
    bw = np.full((n, n), 125.0)  # MB per time unit
    bw[0, :] = 50.0  # gateway uplink
    bw[:, 0] = 50.0
    np.fill_diagonal(bw, 0.0)
    return Platform(SPEEDS, bw, name="transcode-cluster")


def show(label: str, mapping: Mapping) -> float:
    inst = Instance(APP, make_platform(), mapping)
    res = compute_period(inst, "overlap")
    fps = 30.0 / res.period  # 30 frames per GOP
    gap = "tight" if res.has_critical_resource else (
        f"no critical resource (+{100 * res.relative_gap:.1f}%)"
    )
    print(f"{label:<38} P = {res.period:8.4f}  ->  {fps:6.1f} fps   [{gap}]")
    return res.period


def main() -> None:
    plat = make_platform()
    print(f"platform: {plat.n_processors} processors, "
          f"encode boxes P7-P9 at 10 GFLOP/s\n")

    # Baseline: one processor per stage, encode on one fast box.
    show("no replication",
         Mapping([(0,), (1,), (2,), (7,), (6,)]))

    # Replicate the encoder over the fast boxes.
    show("encode on 2 boxes",
         Mapping([(0,), (1,), (2,), (7, 8), (6,)]))
    show("encode on 3 boxes",
         Mapping([(0,), (1,), (2,), (7, 8, 9), (6,)]))

    # Decode becomes the next bottleneck: replicate it too.
    show("decode x2 + encode x3",
         Mapping([(0,), (1, 2), (3,), (7, 8, 9), (6,)]))
    show("decode x2 + scale x2 + encode x3",
         Mapping([(0,), (1, 2), (3, 4), (7, 8, 9), (6,)]))

    # Round-robin phase matters: same processor sets, different order.
    print("\nround-robin phase effect (same replica sets, swapped order):")
    show("encode (7, 8, 9)",
         Mapping([(0,), (1, 2), (3, 4), (7, 8, 9), (6,)]))
    show("encode (9, 7, 8)",
         Mapping([(0,), (1, 2), (3, 4), (9, 7, 8), (6,)]))

    # Strict model for comparison: single-threaded nodes.
    print("\nstrict one-port (single-threaded I/O) on the best mapping:")
    inst = Instance(APP, plat, Mapping([(0,), (1, 2), (3, 4), (7, 8, 9), (6,)]))
    res = compute_period(inst, "strict")
    print(res.summary())


if __name__ == "__main__":
    main()
