"""Survey the workload catalog: which pipelines benefit from replication?

Maps each catalog workload (video, audio, SDR, DataCutter, genomics)
onto the same 12-node cluster three ways — one processor per stage,
greedy replication, greedy + local search — and compares throughput,
latency and the critical-resource structure.  A compact demonstration of
the full API surface on realistic pipeline shapes.

Run:  python examples/workload_survey.py
"""

import numpy as np

from repro import Instance, Mapping, Platform, compute_period, measure_latency
from repro.extensions import greedy_mapping
from repro.workloads import CATALOG


def make_cluster(seed: int = 1, n: int = 12) -> Platform:
    rng = np.random.default_rng(seed)
    speeds = rng.uniform(2.0, 8.0, n)
    bw = rng.uniform(20.0, 60.0, (n, n))
    np.fill_diagonal(bw, 0.0)
    return Platform(speeds, bw, name="survey-cluster")


def main() -> None:
    plat = make_cluster()
    print(f"cluster: 12 processors, speeds {np.round(plat.speeds, 1)}\n")
    header = (f"{'workload':<20} {'1-to-1 P':>9} {'greedy P':>9} "
              f"{'speedup':>8} {'replication':>18} {'latency':>8}")
    print(header)
    print("-" * len(header))

    results = {}
    for name, spec in sorted(CATALOG.items()):
        app = spec.application
        n = app.n_stages
        # fair 1-to-1 baseline: each stage on one of the fastest nodes
        fastest = list(np.argsort(-plat.speeds)[:n])
        base = Instance(app, plat, Mapping([(int(u),) for u in fastest]))
        base_res = compute_period(base, "overlap")

        search = greedy_mapping(app, plat, "overlap")
        best = Instance(app, plat, search.mapping)
        best_res = compute_period(best, "overlap")

        lat = measure_latency(best, "overlap", n_datasets=24,
                              injection_period=1.05 * best_res.period)
        speedup = base_res.period / best_res.period
        results[name] = (speedup, search.mapping.replication_counts)
        print(
            f"{name:<20} {base_res.period:>9.3f} {best_res.period:>9.3f} "
            f"{speedup:>7.2f}x {str(search.mapping.replication_counts):>18} "
            f"{lat.steady_latency():>8.2f}"
        )

    most = max(results, key=lambda k: results[k][0])
    least = min(results, key=lambda k: results[k][0])
    print(f"\nreplication pays most for {most} "
          f"({results[most][0]:.2f}x, replication {results[most][1]}) and "
          f"least for {least} ({results[least][0]:.2f}x) on this cluster — "
          f"\nthe speedup tracks how dominant the heaviest stage is, the "
          f"effect the paper's DataCutter references motivated.")


if __name__ == "__main__":
    main()
