"""Quickstart: compute the throughput of a replicated workflow mapping.

Builds the 4-stage pipeline of the paper's Figure 1, maps it onto a
small heterogeneous platform with the middle stages replicated, and
computes the exact period under both communication models.

Run:  python examples/quickstart.py
"""

from repro import (
    Application,
    Instance,
    Mapping,
    Platform,
    compute_period,
    cycle_times,
    enumerate_paths,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The application: a linear chain S0 -> S1 -> S2 -> S3 (Figure 1).
    #    Works in FLOP, inter-stage files in bytes.
    # ------------------------------------------------------------------
    app = Application(
        works=[2.0, 12.0, 9.0, 1.0],
        file_sizes=[4.0, 6.0, 2.0],
        name="figure-1-pipeline",
    )

    # ------------------------------------------------------------------
    # 2. The platform: 7 heterogeneous processors, logical all-to-all
    #    links through a star network (bandwidths in bytes/unit).
    # ------------------------------------------------------------------
    plat = Platform.star(
        speeds=[2.0, 3.0, 2.5, 1.5, 2.0, 1.0, 2.0],
        up_bandwidths=[4.0, 3.0, 5.0, 2.0, 4.0, 3.0, 6.0],
    )

    # ------------------------------------------------------------------
    # 3. The mapping: S1 replicated on two processors, S2 on three.
    #    Order inside each tuple fixes the round-robin phase.
    # ------------------------------------------------------------------
    mapping = Mapping([(0,), (1, 2), (3, 4, 5), (6,)])
    inst = Instance(app, plat, mapping)

    print(f"{inst.num_paths} round-robin paths (Proposition 1):")
    for path in enumerate_paths(mapping):
        print("  ", path)

    # ------------------------------------------------------------------
    # 4. Exact period under both one-port models.
    # ------------------------------------------------------------------
    for model in ("overlap", "strict"):
        print(f"\n--- {model.upper()} ONE-PORT ---")
        result = compute_period(inst, model)
        print(result.summary())

        report = cycle_times(inst, model)
        crit = ", ".join(
            f"P{p}:{kind}" for p, kind in report.critical_resources()
        )
        print(f"busiest resource(s): {crit} at {report.mct:g} per data set")

        if result.breakdown is not None:
            print("per-column contributions (Theorem 1):")
            for col in result.breakdown.columns:
                print("  " + col.describe())


if __name__ == "__main__":
    main()
