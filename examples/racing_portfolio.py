"""Race budget allocators on one mapping problem at equal oracle cost.

The portfolio's evaluation budget can be dealt two ways: *fair-share*
caps every restart at an even split of the remaining pool, *racing*
(successive halving) truncates all restarts early, then repeatedly
promotes the best half with doubled slices — paused climbs resume from
their ``SearchCheckpoint`` exactly where they stopped, so no progress
is lost to the truncation.  On rugged platforms the fair-share
controller can lose to one lucky deep climb; racing keeps the deep
climb *and* the diversity.

Run:  PYTHONPATH=src python examples/racing_portfolio.py
"""

import numpy as np

from repro import Application, Platform
from repro.search import portfolio_search

# The bench problem of benchmarks/bench_portfolio.py: restart seeds are
# keyed by the application name, so keeping it reproduces the bench
# trajectories exactly.
APP = Application(
    works=[2.0, 11.0, 5.0, 14.0, 3.0],
    file_sizes=[3.0, 2.0, 2.0, 1.0],
    name="bench-portfolio",
)

#: Equal oracle allowance for both allocators (the bench setting of
#: ``benchmarks/bench_portfolio.py``, where platform seed 17 is one of
#: the two rugged seeds racing must win).
BUDGET = 1200


def make_platform(seed: int = 17, n: int = 14) -> Platform:
    """A strongly heterogeneous cluster (speeds 0.5-8, bandwidths 1-10)."""
    rng = np.random.default_rng(seed)
    speeds = rng.uniform(0.5, 8.0, n)
    bw = rng.uniform(1.0, 10.0, (n, n))
    np.fill_diagonal(bw, 0.0)
    return Platform(speeds, bw, name="rugged-cluster")


def main() -> None:
    plat = make_platform()
    results = {}
    for allocator in ("fair-share", "racing"):
        results[allocator] = portfolio_search(
            APP,
            plat,
            "overlap",
            n_restarts=5,
            budget=BUDGET,
            max_iters=10_000,
            allocator=allocator,
        )

    for allocator, res in results.items():
        print(f"{allocator} allocator ({res.evaluations}/{BUDGET} evaluations):")
        for r in res.restarts:
            rungs = "+".join(str(n) for n in r.rungs)
            print(
                f"  restart {r.index:>2} {r.kind:<16} "
                f"P = {r.period:8.4f}  ({rungs} evals over "
                f"{len(r.rungs)} rung{'s' if len(r.rungs) != 1 else ''})"
            )
        print(f"  best period : {res.period:.4f}\n")

    fair = results["fair-share"].period
    racing = results["racing"].period
    assert racing <= fair, (racing, fair)
    print(f"racing {racing:.4f} <= fair-share {fair:.4f} at equal budget")


if __name__ == "__main__":
    main()
