"""Dynamic platforms: the paper's stated future work, as an experiment.

Section 6: "...opening the way to future work on finding good schedules
on dynamic platforms, whose speeds and bandwidths are modeled by random
variables."  This example compares two mappings of the same pipeline —
one throughput-optimal on the *nominal* platform, one more conservative
— under multiplicative speed/bandwidth noise, showing that the nominal
winner is not always the robust winner.

Run:  python examples/dynamic_platform.py
"""

import numpy as np

from repro import Application, Instance, Mapping, Platform, compute_period
from repro.extensions import DynamicPlatformModel, simulate_dynamic

APP = Application(
    works=[2.0, 10.0, 2.0],
    file_sizes=[3.0, 3.0],
    name="sensor-fusion",
)


def make_platform() -> Platform:
    # P1 is a very fast but (we will assume) jittery accelerator;
    # P2-P4 are steady mid-range nodes.
    speeds = [2.0, 12.0, 4.0, 4.0, 4.0, 2.0]
    bw = np.full((6, 6), 6.0)
    np.fill_diagonal(bw, 0.0)
    return Platform(speeds, bw, name="fusion-cluster")


def main() -> None:
    plat = make_platform()
    fast = Instance(APP, plat, Mapping([(0,), (1,), (5,)]))
    replicated = Instance(APP, plat, Mapping([(0,), (2, 3, 4), (5,)]))

    for label, inst in [("fast single node", fast),
                        ("replicated mid-range", replicated)]:
        res = compute_period(inst, "overlap")
        print(f"{label:<22} nominal P = {res.period:.4f}")

    for title, noise in [
        ("uniform +/-35% speeds, +/-20% links",
         DynamicPlatformModel(speed_spread=0.35, bandwidth_spread=0.20)),
        ("heavier-tailed noise (lognormal sigma 0.35 on speeds)",
         DynamicPlatformModel(speed_spread=0.35, bandwidth_spread=0.1,
                              law="lognormal")),
    ]:
        print(f"\nwith platform noise — {title}:")
        results = {}
        for label, inst in [("fast single node", fast),
                            ("replicated mid-range", replicated)]:
            dist = simulate_dynamic(inst, "overlap", noise, n_epochs=300,
                                    seed=42)
            results[label] = dist
            print(
                f"{label:<22} mean P = {dist.mean_period:.4f}  "
                f"p95 = {dist.quantile(0.95):.4f}  "
                f"degradation = {100 * dist.degradation:+.1f}%"
            )
        by_mean = min(results, key=lambda k: results[k].mean_period)
        by_tail = min(results, key=lambda k: results[k].quantile(0.95))
        print(f"  -> best mean period: {by_mean}; best p95 tail: {by_tail}")

    print(
        "\nNote how the comparison can differ between nominal, mean and "
        "tail:\nreplication pools several noisy machines but its period "
        "follows the\n*slowest* replica of each round-robin sweep, so it "
        "is not automatically\nthe robust choice — exactly the trade-off "
        "the paper's future-work\nparagraph points at."
    )


if __name__ == "__main__":
    main()
