"""Walk through the paper's Examples A and B, with Gantt charts.

Reproduces, from the library's public API, every number Section 4
states about the two running examples, then renders the Figure 7 / 12
style ASCII Gantt charts showing periods in which *all* resources idle.

Run:  python examples/paper_examples.py
"""

from repro import compute_period, cycle_times, format_path_table
from repro.algorithms import describe_critical_cycle
from repro.experiments import example_a, example_b
from repro.petri import build_tpn
from repro.simulation import (
    extract_schedules,
    measure_period,
    render_gantt,
    resource_order,
    simulate,
)


def gantt(inst, model: str, periods: float = 2.0, width: int = 110) -> None:
    net = build_tpn(inst, model)
    trace = simulate(net, 60)
    est = measure_period(trace)
    schedules = extract_schedules(trace, model)
    order = [r for r in resource_order(inst, model) if r in schedules]
    t1 = min(schedules[r].intervals[-1].end for r in order)
    t0 = max(0.0, t1 - periods * est.rate)
    print(render_gantt(schedules, t0, t1, width=width, resources=order))


def main() -> None:
    # ------------------------------------------------------------------
    # Example A
    # ------------------------------------------------------------------
    a = example_a()
    print("=" * 70)
    print("Example A (Figure 2): S1 on {P1,P2}, S2 on {P3,P4,P5}")
    print("=" * 70)
    print(format_path_table(a.mapping))  # Table 1

    overlap = compute_period(a, "overlap")
    print(f"\nOVERLAP: P = {overlap.period:g} (paper: 189) — critical "
          f"resource: output port of P0")

    strict = compute_period(a, "strict", method="tpn")
    rep = cycle_times(a, "strict")
    print(f"STRICT : Mct = {rep.mct:.1f} (paper: 215.8, processor P2), "
          f"P = {strict.period:.1f} (paper: 230.7)")
    print("         -> no critical resource: every processor idles!")
    print("\nThe strict critical cycle (Figure 8) weaves through columns:")
    print(describe_critical_cycle(strict.tpn_solution))

    print("\nGantt (Figure 7 style) — strict model, last two periods:")
    gantt(a, "strict")

    # ------------------------------------------------------------------
    # Example B
    # ------------------------------------------------------------------
    b = example_b()
    print()
    print("=" * 70)
    print("Example B (Figure 6): S0 on 3 processors, S1 on 4 — OVERLAP")
    print("=" * 70)
    res = compute_period(b, "overlap")
    print(f"Mct = {res.mct:.1f} (paper: 258.3, out port of P2)")
    print(f"P   = {res.period:.1f} (paper: 291.7)  ->  gap "
          f"{100 * res.relative_gap:.1f}% — no critical resource under "
          f"OVERLAP, the paper's headline example")

    print("\nPer-column breakdown (Theorem 1):")
    for col in res.breakdown.columns:
        print("  " + col.describe())

    print("\nGantt (Figure 12 style) — communication ports, two periods:")
    gantt(b, "overlap")


if __name__ == "__main__":
    main()
