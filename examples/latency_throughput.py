"""Latency / throughput tradeoff of replication (companion metric study).

The paper maximizes throughput; the works it builds on (Subhlok &
Vondran 1996, Vydyanathan et al. 2007/2008) study the latency that
throughput-optimal replication costs.  This example sweeps the injection
period of a replicated mapping and plots (textually) the tradeoff:

* injecting faster than the period P -> unbounded backlog;
* injecting at P -> maximal throughput, elevated steady latency;
* injecting slower -> latency decays to the contention-free path bound.

Run:  python examples/latency_throughput.py
"""

import numpy as np

from repro import (
    Application,
    Instance,
    Mapping,
    Platform,
    compute_period,
    measure_latency,
    path_latency_bound,
)

APP = Application(
    works=[2.0, 16.0, 2.0],
    file_sizes=[4.0, 4.0],
    name="analytics",
    stage_names=["ingest", "transform", "emit"],
)


#: Heterogeneous replica speeds: round-robin over unequal machines makes
#: datasets queue behind the slow replica when injection approaches P.
REPLICA_SPEEDS = [2.5, 1.2, 2.0, 1.5]


def instance(replicas: int) -> Instance:
    speeds = [2.0] + REPLICA_SPEEDS[:replicas] + [2.0]
    plat = Platform.homogeneous(2 + replicas, speed=2.0, bandwidth=2.0)
    plat = Platform(speeds, plat.bandwidths, name="analytics-cluster")
    middle = tuple(range(1, 1 + replicas))
    return Instance(APP, plat, Mapping([(0,), middle, (1 + replicas,)]))


def bar(value: float, scale: float, width: int = 40) -> str:
    return "#" * min(width, int(round(width * value / scale)))


def main() -> None:
    print("replicating the transform stage: throughput vs latency\n")
    print(f"{'replicas':>8} {'period P':>10} {'path bound':>11}")
    for r in (1, 2, 3, 4):
        inst = instance(r)
        res = compute_period(inst, "overlap")
        print(f"{r:>8} {res.period:>10.3f} {path_latency_bound(inst, 0):>11.3f}")

    print("\ninjection-period sweep for 3 replicas:")
    inst = instance(3)
    period = compute_period(inst, "overlap").period
    bound = max(path_latency_bound(inst, j) for j in range(inst.num_paths))
    print(f"(P = {period:.3f}, worst path bound = {bound:.3f})\n")
    print(f"{'inject T':>9} {'T/P':>6} {'steady latency':>15}")
    scale = None
    for factor in (1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 4.0, 8.0):
        T = factor * period
        rep = measure_latency(inst, "overlap", n_datasets=120,
                              injection_period=T)
        lat = rep.steady_latency()
        scale = scale or lat
        print(f"{T:>9.3f} {factor:>6.2f} {lat:>15.3f}  {bar(lat, scale)}")

    print("\ninjecting below P (backlog diverges):")
    rep = measure_latency(inst, "overlap", n_datasets=120,
                          injection_period=0.8 * period)
    growth = np.diff(rep.latencies)[-20:].mean()
    print(f"  T = 0.8 P: latency grows ~{growth:.3f} per data set "
          f"(expected {period - 0.8 * period:.3f} = P - T)")


if __name__ == "__main__":
    main()
