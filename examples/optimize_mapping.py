"""Choose a replicated mapping with the multi-start portfolio.

The paper computes the throughput of a *given* mapping; picking the
mapping is NP-hard.  This example mirrors the README quickstart: a small
video-analytics chain is mapped onto a heterogeneous cluster by
``repro.search.portfolio_search`` — diversified greedy / random /
perturbed-elite restarts of local search, metered by a shared
evaluation budget and scored by the exact period oracle through one
shared ``BatchEngine``.

Run:  PYTHONPATH=src python examples/optimize_mapping.py
"""

import numpy as np

from repro import Application, Instance, Platform, compute_period
from repro.extensions import random_mapping
from repro.search import portfolio_search

APP = Application(
    works=[2.0, 9.0, 4.0, 6.0],
    file_sizes=[3.0, 1.0, 2.0],
    name="video-analytics",
    stage_names=["decode", "detect", "track", "encode"],
)


def make_platform(seed: int = 5, n: int = 10) -> Platform:
    """A heterogeneous cluster: speeds 1-5, bandwidths 2-8."""
    rng = np.random.default_rng(seed)
    speeds = rng.uniform(1.0, 5.0, n)
    bw = rng.uniform(2.0, 8.0, (n, n))
    np.fill_diagonal(bw, 0.0)
    return Platform(speeds, bw, name="edge-cluster")


def main() -> None:
    plat = make_platform()

    # Baseline: the best of 10 uniform random mappings.
    rng = np.random.default_rng(0)
    best_random = min(
        compute_period(Instance(APP, plat, random_mapping(APP, plat, rng)),
                       "overlap").period
        for _ in range(10)
    )
    print(f"best of 10 random mappings : P = {best_random:.4f}")

    # The portfolio: 4 diversified restarts sharing 400 oracle calls.
    result = portfolio_search(APP, plat, "overlap",
                              n_restarts=4, budget=400)
    print(f"\nportfolio ({len(result.restarts)} restarts, "
          f"{result.evaluations}/{result.budget} evaluations spent):")
    for r in result.restarts:
        print(f"  restart {r.index} {r.kind:<16} "
              f"P = {r.period:.4f}  ({r.evaluations} evals, "
              f"{len(r.trace)} accepted steps)")
    print(f"\nbest mapping : {[list(s) for s in result.mapping.assignments]}")
    print(f"best period  : {result.period:.4f} "
          f"(found by restart {result.best_restart.index}, "
          f"{result.best_restart.kind})")
    gain = 100 * (best_random - result.period) / best_random
    print(f"vs best random draw: {gain:.1f}% better")

    # The result is an ordinary mapping: inspect it with the paper's
    # own tooling (period, critical resource, bound).
    res = compute_period(Instance(APP, plat, result.mapping), "overlap")
    print("\nfinal mapping summary:")
    print(res.summary())


if __name__ == "__main__":
    main()
