"""Run a declarative scenario campaign with a resumable result store.

One-shot sweeps (``run_family`` / ``run_table2``) recompute everything
on rerun.  A campaign instead declares its scenario grid once —
applications x platform regimes x replication policies x communication
models — and drains it into a content-addressed SQLite store: rerunning
is free, interrupting is safe, and growing the grid only computes the
new points.

This example builds a small spec in code (the same structure loads from
JSON or TOML via ``CampaignSpec.from_file``), simulates an interrupted
run, resumes it, and exports byte-deterministic artifacts.

Run:  PYTHONPATH=src python examples/run_campaign.py
"""

import tempfile
from pathlib import Path

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    campaign_status,
    export_campaign_csv,
    run_campaign,
)

SPEC = CampaignSpec.from_dict({
    "name": "example-campaign",
    "draws": 3,
    "models": ["overlap", "strict"],
    "applications": [
        # a catalog workload and a synthetic stress shape
        {"workload": "audio-pipeline"},
        {"synthetic": {"n_stages": 3, "shape": "comm-heavy", "scale": 5.0}},
    ],
    "platforms": [
        # a clustered heterogeneous regime: 2 speed clusters, 4x faster
        # intra-cluster links
        {"label": "clustered", "n_procs": 8, "clusters": 2,
         "cluster_factor_range": [0.5, 2.0], "intra_bandwidth_factor": 4.0},
        # a Table 2 style regime parameterized by times
        {"label": "table2-ish", "n_procs": 7, "kind": "times",
         "comp_time_range": [5, 15], "comm_time_range": [5, 15]},
    ],
    "replications": [
        {"policy": "balls"},
        # a pinned mapping: every draw shares one TPN topology
        {"fixed": [1, 2, 3], "assignment": "blocks"},
    ],
    "max_paths": 300,
})


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-campaign-"))
    store_path = workdir / "results.sqlite"
    print(f"campaign '{SPEC.name}': {SPEC.n_points} points "
          f"(store: {store_path})")

    # A run "killed" after 10 points (max_points models the interrupt).
    with ResultStore(store_path) as store:
        partial = run_campaign(SPEC, store, max_points=10)
        print(f"interrupted run : {partial.evaluated} evaluated, "
              f"{partial.remaining} remaining")

    # Relaunch: stored points are recognized by content digest and
    # skipped; only the tail is computed.
    with ResultStore(store_path) as store:
        resumed = run_campaign(SPEC, store)
        print(f"resumed run     : {resumed.hits} store hits, "
              f"{resumed.evaluated} evaluated, complete={resumed.complete}")
        assert resumed.hits == 10 and resumed.complete

        status = campaign_status(SPEC, store)
        print(f"status          : {status['done']}/{status['total']} done "
              f"across {len(status['cells'])} grid cells")

        csv_text = export_campaign_csv(SPEC, store, workdir / "results.csv")
        print(f"exported        : {workdir / 'results.csv'} "
              f"({len(csv_text.splitlines()) - 1} rows, byte-deterministic)")

    # Re-exporting (or re-running anywhere) reproduces identical bytes.
    with ResultStore(store_path) as store:
        assert export_campaign_csv(SPEC, store) == csv_text
    print("re-export is byte-identical — artifacts diff cleanly")


if __name__ == "__main__":
    main()
