"""Table 1 + Proposition 1: round-robin paths of Example A.

Regenerates the exact path table of the paper's Table 1 and times the
enumeration (which is linear in ``m * n``).
"""

from repro import enumerate_paths, format_path_table
from repro.experiments import example_a

from .conftest import report

PAPER_TABLE1 = [
    (0, 1, 3, 6),
    (0, 2, 4, 6),
    (0, 1, 5, 6),
    (0, 2, 3, 6),
    (0, 1, 4, 6),
    (0, 2, 5, 6),
    (0, 1, 3, 6),  # data set 6 re-uses path 0
    (0, 2, 4, 6),  # data set 7 re-uses path 1
]


def bench_table1_path_enumeration(benchmark):
    inst = example_a()
    paths = benchmark(enumerate_paths, inst.mapping)
    measured = [p.processors for p in paths]
    assert measured == PAPER_TABLE1[:6]
    report(
        benchmark,
        "Table 1 — paths followed by the first input data (Example A)",
        [
            ("number of paths m", 6, len(paths)),
            ("path of data set 0", "P0->P1->P3->P6",
             "->".join(f"P{u}" for u in measured[0])),
            ("path of data set 6 == path 0", True,
             PAPER_TABLE1[6] == measured[0]),
        ],
    )
    print()
    print(format_path_table(inst.mapping))
