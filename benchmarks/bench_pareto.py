"""Pareto portfolio contracts: parallel identity + allocator fronts.

The multi-criteria portfolio (:func:`repro.search.pareto_portfolio_search`)
promises the same determinism discipline as every other layer: the
archive's front — vectors, assignments, sources, export order — is a
pure function of the request.  Every contract asserted here is
deterministic (no wall-clock ratios):

* **n_jobs identity** — serial and 2-way-sharded runs return
  byte-identical ``to_dict()`` payloads for both allocator strategies
  (the latency/reliability objectives are computed in the caller's
  process, so engine sharding cannot touch them);
* **rerun identity** — the same request twice is byte-identical;
* **front validity** — every front is non-empty, mutually
  non-dominated, and within budget;
* **strategy diversity** — epsilon-constraint and weighted-sum explore
  genuinely different direction schedules (their labels differ), yet
  both feed the same archive semantics.

Run standalone (asserts all contracts)::

    PYTHONPATH=src python benchmarks/bench_pareto.py
"""

from __future__ import annotations

import numpy as np

from repro import Application, Platform
from repro.objectives import dominates
from repro.search import pareto_portfolio_search

MODEL = "overlap"
BUDGET = 400
N_RESTARTS = 4
OBJECTIVES = ("period", "latency", "reliability")

APP = Application(
    works=[2.0, 9.0, 4.0, 6.0],
    file_sizes=[3.0, 1.0, 2.0],
    name="video-analytics",
)


def make_platform(seed: int = 5, n_procs: int = 10) -> Platform:
    rng = np.random.default_rng(seed)
    bw = rng.uniform(2.0, 8.0, (n_procs, n_procs))
    np.fill_diagonal(bw, 0.0)
    plat = Platform(rng.uniform(1.0, 5.0, n_procs), bw)
    return plat.with_failure_rates(
        rng.uniform(0.01, 0.2, n_procs).tolist())


def _search(allocator: str, n_jobs=None):
    return pareto_portfolio_search(
        APP, make_platform(), MODEL, objectives=OBJECTIVES,
        n_restarts=N_RESTARTS, budget=BUDGET, max_iters=40,
        allocator=allocator, n_jobs=n_jobs,
    )


def _non_dominated(front) -> bool:
    vectors = [e.vector for e in front]
    return all(
        not dominates(a, b)
        for i, a in enumerate(vectors)
        for j, b in enumerate(vectors)
        if i != j
    )


def run_comparison() -> dict:
    """Run both strategies serial + sharded; return the contract flags."""
    per_strategy = []
    for allocator in ("epsilon-constraint", "weighted-sum"):
        serial = _search(allocator)
        sharded = _search(allocator, n_jobs=2)
        rerun = _search(allocator)
        front = serial.front()
        per_strategy.append({
            "allocator": allocator,
            "front_size": len(front),
            "evaluations": serial.evaluations,
            "directions": list(serial.directions),
            "jobs_identical": serial.to_dict() == sharded.to_dict(),
            "rerun_identical": serial.to_dict() == rerun.to_dict(),
            "non_dominated": _non_dominated(front),
            "within_budget": 0 < serial.evaluations <= BUDGET,
        })
    eps, wts = per_strategy
    return {
        "budget": BUDGET,
        "objectives": list(OBJECTIVES),
        "strategies": per_strategy,
        "identical": all(s["jobs_identical"] and s["rerun_identical"]
                         for s in per_strategy),
        "fronts_valid": all(s["non_dominated"] and s["within_budget"]
                            and s["front_size"] >= 1
                            for s in per_strategy),
        "strategies_diverse": eps["directions"] != wts["directions"],
        "front_size_eps": eps["front_size"],
        "front_size_weighted": wts["front_size"],
    }


def _check(stats: dict) -> None:
    assert stats["identical"], \
        "Pareto front not bit-identical across n_jobs / reruns"
    assert stats["fronts_valid"], "a front was empty, dominated or over budget"
    assert stats["strategies_diverse"], \
        "epsilon and weighted schedules collapsed onto the same directions"


def main() -> int:
    stats = run_comparison()
    print(f"pareto portfolio ({', '.join(stats['objectives'])}; "
          f"budget {stats['budget']}, {N_RESTARTS} directions)")
    for s in stats["strategies"]:
        print(f"  {s['allocator']:<19}: front {s['front_size']}, "
              f"{s['evaluations']} evaluations, "
              f"jobs-identical {s['jobs_identical']}, "
              f"rerun-identical {s['rerun_identical']}, "
              f"non-dominated {s['non_dominated']}")
    _check(stats)
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
