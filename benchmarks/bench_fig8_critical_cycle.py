"""Figure 8: complex critical cycles of the STRICT TPN (Example A).

The strict model's backward places ("P_u cannot compute instance i of
S_i before having sent the result of the previous instance") let
critical cycles weave through several columns and processors.  This
benchmark extracts the cycle with Howard's policy iteration and checks
the figure's qualitative claims.
"""

from repro.algorithms import describe_critical_cycle, tpn_period
from repro.experiments import example_a
from repro.petri.dot import tpn_to_dot

from .conftest import report


def bench_fig8_extract_critical_cycle(benchmark):
    sol = benchmark(tpn_period, example_a(), "strict")
    trans = sol.critical_transitions
    cols = {t.column for t in trans}
    kinds = {t.kind for t in trans}
    procs = {p for t in trans for p in t.procs}
    print()
    print(describe_critical_cycle(sol))

    assert len(cols) > 1, "strict critical cycle must span columns"
    assert kinds == {"comp", "comm"}, "mixes computations and transfers"
    report(
        benchmark,
        "Figure 8 — critical cycle structure (Example A, STRICT)",
        [
            ("cycle spans several columns", "yes", sorted(cols)),
            ("mixes comp and comm", "yes", sorted(kinds)),
            ("processors involved", "several", sorted(procs)),
            ("cycle ratio / m = period", 230.7, round(sol.period, 2)),
        ],
    )


def bench_fig8_dot_export(benchmark):
    sol = tpn_period(example_a(), "strict")
    dot = benchmark(
        tpn_to_dot, sol.net, sol.ratio.cycle_nodes, "Example A strict — Figure 8"
    )
    assert "color=red" in dot
    report(
        benchmark,
        "Figure 8 — DOT rendering with highlighted cycle",
        [("highlighted transitions", len(sol.ratio.cycle_nodes),
          dot.count("penwidth=2"))],
    )
