"""Fault plane & degradation ladder: chaos completes exactly, disarmed is free.

PR 9's acceptance contract, in two halves:

* **Disarmed is free** — with the fault plane disarmed, a traced
  campaign drain adds **zero** fault-plane telemetry entries
  (``faults.*``, ``retry.*``, ``journal.*``, ``fabric.spilled*``) and
  every PR-8 byte-identity contract holds unchanged: the export of an
  instrumented fabric run equals the undisturbed serial export.
* **Chaos completes exactly** — a 3-worker campaign under a seeded
  chaos schedule (a SIGKILL at a protocol barrier + store commits
  failing past the retry budget + a lease-clock jump), followed by
  ``heal`` of the spill journal and clean resumes, finishes with zero
  lost and zero duplicated results and a **byte-identical export**
  versus an undisturbed serial run.  The forced spill→heal path is
  additionally pinned on its own: a worker whose every commit fails
  spills the whole campaign to its journal, heal replays it exactly,
  and a second heal merges nothing (idempotent).

Retry schedules are themselves a deterministic contract: the delay
sequence for an operation key is a pure function of ``(key, policy)``.

Run standalone (asserts everything)::

    PYTHONPATH=src python benchmarks/bench_faults.py

The chaos-soak CI job runs the same schedules as a matrix::

    PYTHONPATH=src python benchmarks/bench_faults.py \
        --soak --schedules 3 --offset 0 --artifacts chaos-artifacts/

On a soak failure the per-schedule artifacts directory (worker traces +
the spill journal + the replayable fault plans as JSON) is left in
place for CI to upload.
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
import zlib
from pathlib import Path

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    export_campaign_json,
    run_campaign,
    run_campaign_workers,
)
from repro.faults import FAULTS, FaultEvent, FaultPlan, RetryPolicy, heal, pause
from repro.telemetry import TELEMETRY, merge_traces, trace_files
from repro.utils import canonical_json

try:  # pytest package context vs standalone `python benchmarks/...`
    from .conftest import report
except ImportError:  # pragma: no cover - standalone fallback
    from conftest import report

#: Counter prefixes the fault plane and degradation ladder own: none of
#: these may appear in a trace of a fault-disabled run.
FAULT_COUNTER_PREFIXES = ("faults.", "retry.", "journal.", "fabric.spilled")

#: Same multi-group shape as bench_telemetry: 2 models x 2 applications
#: x 2 replication policies x 2 draws = 12 distinct digests.
SPEC = {
    "name": "faults-bench",
    "draws": 2,
    "models": ["overlap", "strict"],
    "applications": [
        {"synthetic": {"n_stages": 3, "shape": "balanced", "scale": 8.0}},
        {"workload": "audio-pipeline"},
    ],
    "platforms": [{"n_procs": 8}],
    "replications": [
        {"policy": "balls"},
        {"fixed": [1, 2, 3], "assignment": "blocks"},
    ],
    "max_paths": 200,
}

#: Lease TTL for chaos runs (short: dead workers' claims free quickly).
_TTL = 0.4

_KILL_SITES = (
    "worker.after-claim",
    "worker.pre-release",
    "worker.after-release",
)


def chaos_plans(schedule: int) -> dict[int, FaultPlan]:
    """The seeded 3-worker chaos schedule for one soak index.

    Worker 0 is SIGKILLed at a protocol barrier, worker 1's store
    commits keep failing past the retry budget (forcing the spill
    path whenever it wins a claim), and worker 2's clock jumps past
    the TTL mid-run (exercising the renewal-loss guard and the
    stale-lease watchdog).  crc32-seeded: schedule N is the same
    schedule forever, replayable from its JSON form.
    """
    rng = random.Random(zlib.crc32(f"chaos-soak-{schedule}".encode()))
    return {
        0: FaultPlan.single(rng.choice(_KILL_SITES), "sigkill", at=1),
        1: FaultPlan(
            events=(FaultEvent("store.commit", "operational", at=1, repeat=50),)
        ),
        2: FaultPlan.single(
            "lease.clock", "clock-jump", at=rng.randint(2, 5), param=30.0
        ),
    }


def _reference(tmp: Path) -> tuple[set[str], str]:
    """The undisturbed serial run every chaos run must reproduce."""
    spec = CampaignSpec.from_dict(SPEC)
    with ResultStore(tmp / "reference.sqlite") as store:
        run_campaign(spec, store)
        return set(store.digests()), export_campaign_json(spec, store)


def _drain(spec, path, max_resumes: int = 8) -> None:
    """Clean resumes until complete (waiting out crashed workers' TTLs)."""
    for _ in range(max_resumes):
        pause(_TTL)
        if run_campaign_workers(spec, path, workers=2,
                                lease_ttl=_TTL).complete:
            return


def run_chaos_schedule(schedule: int, workdir: Path,
                       ref: tuple[set[str], str]) -> dict:
    """One seeded 3-worker chaos run + heal + resume; verdict flags."""
    spec = CampaignSpec.from_dict(SPEC)
    plans = chaos_plans(schedule)
    store_path = workdir / "chaos.sqlite"
    journal = workdir / "journal"
    (workdir / "plans.json").write_text(canonical_json(
        {str(w): plan.to_dict() for w, plan in plans.items()}, indent=2,
    ) + "\n")

    first = run_campaign_workers(
        spec, store_path, workers=3, lease_ttl=_TTL,
        claim_batch=4, commit_every=4,
        fault_plans=plans, spill_dir=journal,
        trace_dir=workdir / "traces",
    )
    with ResultStore(store_path) as store:
        healed = heal(store, journal)
    _drain(spec, store_path)

    ref_digests, ref_export = ref
    with ResultStore(store_path) as store:
        digests = set(store.digests())
        stats = {
            "schedule": schedule,
            "crashed_workers": list(first.crashed),
            "healed_from_journal": healed.merged,
            "heal_clean": healed.clean,
            "zero_lost": digests == ref_digests,
            "zero_duplicated": len(store) == len(ref_digests),
            "chaos_identical":
                export_campaign_json(spec, store) == ref_export,
        }
    return stats


def _forced_spill_heal(tmp: Path, ref: tuple[set[str], str]) -> dict:
    """Every commit fails: the whole campaign spills, then heals exactly."""
    spec = CampaignSpec.from_dict(SPEC)
    store_path = tmp / "sick.sqlite"
    journal = tmp / "sick-journal"
    sick = FaultPlan(
        events=(FaultEvent("store.commit", "operational", at=1, repeat=200),)
    )
    run_campaign_workers(spec, store_path, workers=1,
                         fault_plans={0: sick}, spill_dir=journal)
    ref_digests, ref_export = ref
    with ResultStore(store_path) as store:
        spilled_everything = len(store) == 0
        first = heal(store, journal)
        second = heal(store, journal)
        return {
            "spilled_everything": spilled_everything,
            "heal_merged": first.merged,
            "spill_heal_identical": (
                first.clean
                and first.merged == len(ref_digests)
                and export_campaign_json(spec, store) == ref_export
            ),
            "heal_idempotent": second.clean and second.merged == 0,
        }


def _disabled_noop(tmp: Path, ref: tuple[set[str], str]) -> dict:
    """Disarmed plane: no fault-plane counters, PR-8 contracts intact."""
    spec = CampaignSpec.from_dict(SPEC)
    run_campaign_workers(spec, tmp / "dark.sqlite", workers=2,
                         trace_dir=tmp / "dark-traces")
    merged = merge_traces(trace_files(tmp / "dark-traces"))
    leaked = sorted(
        name for name in merged["counters"]
        if name.startswith(FAULT_COUNTER_PREFIXES)
    )
    with ResultStore(tmp / "dark.sqlite") as store:
        export = export_campaign_json(spec, store)
    # The parent-side plane must still be disarmed, and the singleton
    # collector empty (faults count only through enabled telemetry).
    return {
        "disabled_noop": not leaked and not FAULTS.enabled,
        "leaked_counters": leaked,
        "exports_identical": export == ref[1],
    }


def run_comparison() -> dict:
    TELEMETRY.disable()
    FAULTS.disarm()
    policy = RetryPolicy(attempts=5, base_delay=0.05, max_delay=0.4,
                         budget=2.0, jitter_seed=9)
    retry_deterministic = (
        policy.delays("store.commit:x") == policy.delays("store.commit:x")
        and policy.delays("store.commit:x") != policy.delays("lease.begin:y")
    )
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        ref = _reference(tmp)
        noop = _disabled_noop(tmp, ref)
        spill = _forced_spill_heal(tmp, ref)
        chaos_dir = tmp / "chaos-0"
        chaos_dir.mkdir()
        chaos = run_chaos_schedule(0, chaos_dir, ref)
    return {
        "n_points": len(ref[0]),
        "retry_deterministic": retry_deterministic,
        **noop,
        **spill,
        **chaos,
    }


def _check(stats: dict) -> None:
    assert stats["disabled_noop"], (
        f"fault-disabled run leaked counters: {stats['leaked_counters']}"
    )
    assert stats["exports_identical"], \
        "fault-disabled fabric export drifted from the serial reference"
    assert stats["retry_deterministic"], \
        "retry delay schedules are not a pure function of the key"
    assert stats["spilled_everything"], \
        "a store with failing commits still accepted rows"
    assert stats["spill_heal_identical"], \
        "spill -> heal did not reproduce the reference store exactly"
    assert stats["heal_idempotent"], "a second heal was not a no-op"
    assert stats["zero_lost"], "chaos run lost results"
    assert stats["zero_duplicated"], "chaos run duplicated results"
    assert stats["chaos_identical"], \
        "chaos-run export is not byte-identical to the serial reference"


def bench_faults_chaos(benchmark):
    stats = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    _check(stats)
    report(benchmark, "Fault plane (disarmed no-op / spill+heal / chaos)",
           [("disarmed adds no counters", "yes", stats["disabled_noop"]),
            ("retry schedules deterministic", "yes",
             stats["retry_deterministic"]),
            ("spill -> heal exact", "yes", stats["spill_heal_identical"]),
            ("heal idempotent", "yes", stats["heal_idempotent"]),
            ("chaos zero lost / duplicated", "yes",
             stats["zero_lost"] and stats["zero_duplicated"]),
            ("chaos export byte-identical", "yes",
             stats["chaos_identical"])])


def _soak(schedules: int, offset: int, artifacts: str | None) -> int:
    """The chaos-soak CI entry: N seeded schedules, artifacts on failure."""
    failures = 0
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        ref = _reference(tmp)
        for schedule in range(offset, offset + schedules):
            workdir = tmp / f"schedule-{schedule}"
            workdir.mkdir()
            try:
                stats = run_chaos_schedule(schedule, workdir, ref)
                ok = (stats["zero_lost"] and stats["zero_duplicated"]
                      and stats["chaos_identical"] and stats["heal_clean"])
            except Exception as exc:  # noqa: BLE001 - recorded per schedule
                stats = {"schedule": schedule, "error": repr(exc)}
                ok = False
            status = "ok" if ok else "FAIL"
            print(f"schedule {schedule:3d}: {status}  "
                  f"{json.dumps(stats, sort_keys=True)}")
            if not ok:
                failures += 1
                if artifacts is not None:
                    dest = Path(artifacts) / f"schedule-{schedule}"
                    dest.parent.mkdir(parents=True, exist_ok=True)
                    shutil.copytree(workdir, dest, dirs_exist_ok=True)
                    print(f"  artifacts -> {dest}")
    if failures:
        print(f"chaos soak FAILED: {failures}/{schedules} schedule(s)")
        return 1
    print(f"chaos soak OK: {schedules} schedule(s), zero lost, "
          "zero duplicated, exports byte-identical")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--soak", action="store_true",
                        help="run seeded chaos schedules (the CI soak job)")
    parser.add_argument("--schedules", type=int, default=3,
                        help="number of soak schedules (default %(default)s)")
    parser.add_argument("--offset", type=int, default=0,
                        help="first schedule index (CI matrix sharding)")
    parser.add_argument("--artifacts", default=None,
                        help="directory for failing schedules' traces, "
                             "spill journals and fault plans")
    args = parser.parse_args(argv)
    if args.soak:
        return _soak(args.schedules, args.offset, args.artifacts)

    stats = run_comparison()
    print(f"campaign: {stats['n_points']} points")
    print(f"disarmed plane adds no counters  : {stats['disabled_noop']}")
    print(f"disabled exports byte-identical  : {stats['exports_identical']}")
    print(f"retry schedules deterministic    : "
          f"{stats['retry_deterministic']}")
    print(f"forced spill journaled everything: "
          f"{stats['spilled_everything']} "
          f"({stats['heal_merged']} healed)")
    print(f"spill -> heal exact              : "
          f"{stats['spill_heal_identical']}")
    print(f"heal idempotent                  : {stats['heal_idempotent']}")
    print(f"chaos crashed workers            : {stats['crashed_workers']}")
    print(f"chaos zero lost / duplicated     : "
          f"{stats['zero_lost']} / {stats['zero_duplicated']}")
    print(f"chaos export byte-identical      : {stats['chaos_identical']}")
    _check(stats)
    print("all fault-plane contracts hold")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    raise SystemExit(main())
