"""Section 5 timing claim: computation time vs duplication factor.

The paper: "The computation times closely depend on the duplication
factor of each stage: the computation of an example with 10 stages and
20 processors ranges from 2 to 150 000 seconds."  That blow-up is the
``m = lcm(m_i)`` of the general (full-TPN) method.  This benchmark
compares the general solver against Theorem 1's polynomial algorithm on
a family of instances with growing ``m`` — the polynomial algorithm's
cost tracks ``sum (m_i m_{i+1})^3`` and stays flat while the TPN size
explodes.
"""

import time

import pytest

from repro import Application, Instance, Mapping, Platform, compute_period

from .conftest import report


def _instance(counts: tuple[int, ...]) -> Instance:
    p = sum(counts)
    app = Application(works=[1.0] * len(counts),
                      file_sizes=[1.0] * (len(counts) - 1))
    plat = Platform.homogeneous(p, speed=1.0, bandwidth=0.5)
    bounds = [0]
    for c in counts:
        bounds.append(bounds[-1] + c)
    return Instance(app, plat, Mapping(
        [tuple(range(bounds[i], bounds[i + 1])) for i in range(len(counts))]
    ))


#: Replication vectors with exploding lcm but near-constant pattern sizes.
FAMILY = [
    (2, 3),            # m = 6
    (3, 4, 5),         # m = 60
    (4, 5, 7),         # m = 140
    (3, 5, 7, 8),      # m = 840
    (5, 7, 8, 9),      # m = 2520
    (5, 7, 9, 11, 8),  # m = 27720 — full TPN refused by default budget
]


def bench_theorem1_polynomial_on_largest(benchmark):
    inst = _instance(FAMILY[-1])
    res = benchmark(compute_period, inst, "overlap", "polynomial")
    assert res.m == 27720
    report(
        benchmark,
        "Theorem 1 on m = 27720 (never builds the TPN)",
        [("m", 27720, res.m), ("period", "-", round(res.period, 4))],
    )


def bench_general_tpn_on_m2520(benchmark):
    inst = _instance(FAMILY[4])
    res = benchmark.pedantic(
        compute_period, args=(inst, "overlap", "tpn"), iterations=1, rounds=1
    )
    poly = compute_period(inst, "overlap", "polynomial")
    assert res.period == pytest.approx(poly.period, rel=1e-9)
    report(
        benchmark,
        "General TPN solver at m = 2520 (22680 transitions)",
        [("matches polynomial", "yes",
          f"{res.period:.6g} == {poly.period:.6g}")],
    )


def bench_scaling_sweep(benchmark):
    """One timed sweep printing the growth table (general vs polynomial)."""

    def sweep():
        rows = []
        for counts in FAMILY[:5]:
            inst = _instance(counts)
            t0 = time.perf_counter()
            poly = compute_period(inst, "overlap", "polynomial")
            t_poly = time.perf_counter() - t0
            t0 = time.perf_counter()
            tpn = compute_period(inst, "overlap", "tpn")
            t_tpn = time.perf_counter() - t0
            assert tpn.period == pytest.approx(poly.period, rel=1e-9)
            rows.append((counts, poly.m, t_poly, t_tpn))
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=2)
    print()
    print(f"{'replication':<18} {'m':>7} {'poly (s)':>10} {'full TPN (s)':>13} {'ratio':>8}")
    for counts, m, t_poly, t_tpn in rows:
        print(f"{str(counts):<18} {m:>7} {t_poly:>10.4f} {t_tpn:>13.4f} "
              f"{t_tpn / max(t_poly, 1e-9):>8.1f}x")
    report(
        benchmark,
        "Section 5 — runtime vs duplication factor",
        [
            ("general method growth", "2 s .. 150000 s",
             f"{rows[-1][3] / max(rows[0][3], 1e-9):.0f}x over the family"),
            ("polynomial method growth", "polynomial",
             f"{rows[-1][2] / max(rows[0][2], 1e-9):.0f}x over the family"),
        ],
    )
