"""Ablation: when does replication stop paying? (crossover study)

Replicating a stage divides its computation load but multiplies one-port
communication traffic through the source's output port.  For a
compute-bound stage throughput keeps improving with replicas; for a
comm-bound stage the source port saturates and extra replicas are
wasted.  This ablation sweeps the replica count in both settings and
locates the crossover — the kind of what-if analysis the paper's exact
period oracle enables.
"""

from repro import Application, Instance, Mapping, Platform, compute_period

from .conftest import report


def _sweep(work: float, file_size: float, max_replicas: int = 6):
    rows = []
    for r in range(1, max_replicas + 1):
        app = Application(works=[0.5, work, 0.5], file_sizes=[file_size, 1.0])
        plat = Platform.homogeneous(2 + r + 1, speed=1.0, bandwidth=1.0)
        mapping = Mapping([(0,), tuple(range(1, 1 + r)), (1 + r,)])
        inst = Instance(app, plat, mapping)
        res = compute_period(inst, "overlap")
        rows.append((r, res.period, res.has_critical_resource))
    return rows


def bench_replication_compute_bound(benchmark):
    rows = benchmark(_sweep, 12.0, 1.0)
    print()
    print("compute-bound stage (w = 12, file = 1):")
    for r, p, crit in rows:
        print(f"  replicas {r}: P = {p:7.3f}  {'(saturated)' if crit else ''}")
    # period keeps dropping until the source port (file=1/bw=1 -> 1/unit)
    # dominates: crossover where 12/r < 1 -> r > 12 (not reached here)
    assert all(a[1] > b[1] for a, b in zip(rows, rows[1:])), \
        "compute-bound: each replica must improve the period"
    report(
        benchmark,
        "Ablation: replication sweep, compute-bound stage",
        [("monotone improvement", "yes", True),
         ("P at 1 vs 6 replicas", "12 -> 2",
          f"{rows[0][1]:.0f} -> {rows[-1][1]:.0f}")],
    )


def bench_replication_comm_bound(benchmark):
    rows = benchmark(_sweep, 2.0, 3.0)
    print()
    print("comm-bound stage (w = 2, file = 3):")
    for r, p, crit in rows:
        print(f"  replicas {r}: P = {p:7.3f}  {'(saturated)' if crit else ''}")
    # the source must push a 3-byte file per data set through its port:
    # P >= 3 whatever the replication; the crossover is at 2/r <= 3, r >= 1
    assert all(p >= 3.0 - 1e-9 for _, p, _ in rows)
    flat_from = next(r for r, p, _ in rows if abs(p - 3.0) < 1e-9)
    report(
        benchmark,
        "Ablation: replication sweep, comm-bound stage",
        [("floor (source port)", 3.0, min(p for _, p, _ in rows)),
         ("useless replicas beyond", "r = 1", f"r = {flat_from}")],
    )
