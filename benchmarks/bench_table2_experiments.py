"""Table 2: the paper's randomized campaign — rarity of no-critical cases.

The paper ran 5152 experiments (2576 per model across 6 parameter
families) and found **zero** instances without critical resource under
OVERLAP ONE-PORT, versus a handful (gaps below 3-9%) under STRICT in the
small-time-range families.

By default this benchmark runs a scaled-down campaign (fast, CI-safe);
set ``REPRO_TABLE2_SCALE=1`` (or ``REPRO_TABLE2_FULL=1``) for the full
5152-experiment reproduction (uses all cores, takes minutes).
"""

import os

from repro.experiments import format_table2, run_table2

from .conftest import report

_SCALE = float(os.environ.get(
    "REPRO_TABLE2_SCALE", "1.0" if os.environ.get("REPRO_TABLE2_FULL") else "0.02"
))


def bench_table2_campaign(benchmark):
    rows = benchmark.pedantic(
        run_table2,
        kwargs=dict(scale=_SCALE, n_jobs=0),
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table2(rows))

    overlap_rows = [r for r in rows if r.model == "overlap"]
    strict_rows = [r for r in rows if r.model == "strict"]
    overlap_no_crit = sum(r.no_critical for r in overlap_rows)
    strict_no_crit = sum(r.no_critical for r in strict_rows)
    overlap_total = sum(r.total for r in overlap_rows)
    strict_total = sum(r.total for r in strict_rows)
    total = sum(r.total for r in rows)

    # Paper shape (see EXPERIMENTS.md for the nuance): no-critical cases
    # are *very rare* under OVERLAP (the paper sampled none in 2576; a
    # different replication distribution can surface a handful — Example
    # B proves they exist) and a small minority with small gaps under
    # STRICT.
    assert overlap_no_crit <= max(2, 0.01 * overlap_total), (
        f"overlap no-critical cases should be very rare (< 1%), found "
        f"{overlap_no_crit}/{overlap_total}"
    )
    if strict_total >= 100:
        assert strict_no_crit < 0.25 * strict_total, (
            f"strict no-critical cases should be a small minority, found "
            f"{strict_no_crit}/{strict_total}"
        )
    max_gap = max((r.max_gap for r in rows), default=0.0)
    assert max_gap <= 0.20, (
        f"paper reports single-digit-percent gaps, got {max_gap:.2%}"
    )

    report(
        benchmark,
        f"Table 2 — campaign at scale {_SCALE} ({total} experiments)",
        [
            ("overlap: no-critical cases", "0 / 2576",
             f"{overlap_no_crit} / {overlap_total}"),
            ("strict: no-critical cases", "29 / 2576 (rows 1,3,5)",
             f"{strict_no_crit} / {strict_total}"),
            ("max gap", "< 9%", f"{100 * max_gap:.1f}%"),
        ],
    )
