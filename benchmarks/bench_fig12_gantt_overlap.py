"""Figure 12: Gantt diagram of Example B's first periods (OVERLAP).

The paper's figure shows the steady periodic pattern in which every
resource of the communication stage idles part of each 12-data-set
period.  We simulate, render the chart, and assert idleness of all
ports (the coupled resources) plus the exact measured period.
"""

import pytest

from repro.experiments import example_b
from repro.petri import build_tpn
from repro.simulation import (
    extract_schedules,
    measure_period,
    render_gantt,
    resource_order,
    simulate,
)

from .conftest import report


def bench_fig12_gantt(benchmark):
    inst = example_b()
    net = build_tpn(inst, "overlap")
    trace = benchmark(simulate, net, 80)
    est = measure_period(trace)
    schedules = extract_schedules(trace, "overlap")

    # The coupled steady-state resources are the F0 ports; CPU rows of
    # the source stage run ahead (unbounded input queue, see DESIGN.md).
    ports = [r for r in resource_order(inst, "overlap") if ":" in r and
             ("in" in r.split(":")[1] or "out" in r.split(":")[1])]
    t1 = min(schedules[r].intervals[-1].end for r in ports)
    t0 = t1 - est.rate
    idle = {r: schedules[r].has_idle_in(t0, t1) for r in ports}
    print()
    print(render_gantt(schedules, t0, t1, width=110, resources=ports))

    assert est.period == pytest.approx(3500.0 / 12.0, rel=1e-9)
    assert all(idle.values())
    report(
        benchmark,
        "Figure 12 — Example B steady periods (OVERLAP)",
        [
            ("measured period", 291.7, round(est.period, 2)),
            ("all ports idle each period", "yes", all(idle.values())),
            ("busiest port", "P2:out (258.3 of 291.7)",
             max(ports, key=lambda r: schedules[r].busy_time(t0, t1))),
        ],
    )
