"""Batched vs per-call throughput evaluation on a shared-topology sweep.

The experiment behind :mod:`repro.engine`: 500 instances share one
mapping topology (``m_i = (2, 3, 5, 1)``, ``m = lcm = 30``) and differ
only in their drawn computation/communication times — exactly the shape
of a Table 2 family sweep or one mapping-search neighborhood.  The
per-call loop rebuilds the TPN, re-reduces it to a ratio graph and
re-runs the solver's structural phases 500 times; the engine builds one
skeleton and re-stamps edge weights per instance.  The asserted
contract is deterministic: results are bit-identical and the engine
performs exactly **one** skeleton build for the whole sweep (the
per-call path performs ``n``).  Wall-clock speedup is reported, never
gated — BENCH_4/5.json record the old wall-clock floors failing on CI
hardware with no code defect.

Run standalone (asserts identity and the single-build contract)::

    PYTHONPATH=src python benchmarks/bench_engine_batch.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_batch.py \
        -o python_files='bench_*.py' -o python_functions='bench_*'
"""

from __future__ import annotations

import time

import numpy as np

from repro import Application, Instance, Mapping, Platform
from repro.core.throughput import compute_period
from repro.engine import BatchEngine, evaluate

try:  # pytest package context vs standalone `python benchmarks/...`
    from .conftest import report
except ImportError:  # pragma: no cover - standalone fallback
    from conftest import report

#: Per-stage replication of the shared topology; lcm = 30 rows.
REPLICATION = (2, 3, 5, 1)
N_INSTANCES = 500


def make_sweep(n_instances: int = N_INSTANCES, seed: int = 0) -> list[Instance]:
    """Instances sharing one mapping topology, times drawn U(5, 15)."""
    rng = np.random.default_rng(seed)
    counts = list(REPLICATION)
    n, p = len(counts), sum(counts)
    bounds = np.cumsum([0] + counts)
    mapping = Mapping(
        [tuple(range(bounds[i], bounds[i + 1])) for i in range(n)],
        n_processors=p,
    )
    app = Application(works=[1.0] * n, file_sizes=[1.0] * (n - 1))
    instances = []
    for _ in range(n_instances):
        comp = rng.uniform(5.0, 15.0, p)
        comm = rng.uniform(5.0, 15.0, (p, p))
        np.fill_diagonal(comm, 0.0)
        instances.append(
            Instance(app, Platform.from_comm_times(comp, comm), mapping)
        )
    return instances


def run_comparison(n_instances: int = N_INSTANCES) -> dict:
    """Time per-call vs batched evaluation; verify identity; return stats."""
    instances = make_sweep(n_instances)
    # Warm both paths so one-time import/alloc costs don't skew the race.
    compute_period(instances[0], "strict", method="tpn")
    engine = BatchEngine()
    engine.evaluate(instances[0], "strict", method="tpn")
    engine = BatchEngine()  # fresh cache: the timed run pays the one build

    t0 = time.perf_counter()
    scalar = [compute_period(i, "strict", method="tpn") for i in instances]
    t1 = time.perf_counter()
    batched = evaluate(instances, "strict", method="tpn", engine=engine)
    t2 = time.perf_counter()

    identical = all(
        s.period == b.period
        and s.mct == b.mct
        and s.has_critical_resource == b.has_critical_resource
        and s.tpn_solution.ratio == b.tpn_solution.ratio
        for s, b in zip(scalar, batched)
    )
    per_call_s, batch_s = t1 - t0, t2 - t1
    return {
        "n": len(instances),
        "per_call_s": per_call_s,
        "batch_s": batch_s,
        "speedup": per_call_s / batch_s,
        "identical": identical,
        "cache": engine.stats,
        # Deterministic structural-work contract: the whole sweep costs
        # one skeleton build; the per-call path pays n of them.
        "skeleton_builds": engine.stats.misses,
        "cache_hits": engine.stats.hits,
    }


def bench_engine_batch_speedup(benchmark):
    instances = make_sweep(100)
    scalar = [compute_period(i, "strict", method="tpn") for i in instances]

    def batched():
        return evaluate(instances, "strict", method="tpn")

    results = benchmark(batched)
    assert all(s.period == b.period for s, b in zip(scalar, results))
    stats = run_comparison(200)
    assert stats["identical"]
    assert stats["skeleton_builds"] == 1
    report(benchmark, "Engine: batched vs per-call (shared topology, m=30)",
           [("results identical", "yes", stats["identical"]),
            ("skeleton builds (deterministic)", 1, stats["skeleton_builds"]),
            ("speedup (reported, not gated)", "-",
             f"{stats['speedup']:.2f}x")])


def bench_engine_multiworker_determinism(benchmark):
    instances = make_sweep(60)
    serial = evaluate(instances, "strict", method="tpn")

    def sharded():
        return evaluate(instances, "strict", method="tpn", n_jobs=2)

    results = benchmark.pedantic(sharded, rounds=1, iterations=1)
    assert all(s.period == r.period for s, r in zip(serial, results))
    report(benchmark, "Engine: 2-worker shard returns identical results",
           [("order preserved", "yes", True),
            ("bit-identical", "yes", True)])


def main() -> int:
    stats = run_comparison()
    print(f"shared-topology sweep: {stats['n']} instances, strict model, "
          f"replication {REPLICATION} (m = 30)")
    print(f"per-call loop : {stats['per_call_s']:.3f} s "
          f"({1000 * stats['per_call_s'] / stats['n']:.2f} ms/instance)")
    print(f"evaluate(): {stats['batch_s']:.3f} s "
          f"({1000 * stats['batch_s'] / stats['n']:.2f} ms/instance)")
    print(f"speedup       : {stats['speedup']:.2f}x "
          f"(wall-clock: reported, never gated; cache: "
          f"{stats['cache'].misses} build, {stats['cache'].hits} hits)")
    print(f"bit-identical : {stats['identical']}")
    assert stats["identical"], "batched results diverged from per-call"
    assert stats["skeleton_builds"] == 1, (
        f"{stats['skeleton_builds']} skeleton builds for one shared "
        f"topology (expected exactly 1)"
    )
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
