"""Figure 5: STRICT ONE-PORT TPN of Example A (backward serialization).

Asserts the structure of Figure 5b — same 42 transitions, but the
overlap circuits are replaced by one receive->compute->send circuit per
processor — and times construction plus the strict period computation.
"""

import pytest

from repro import compute_period
from repro.experiments import example_a
from repro.petri import PlaceKind, build_tpn, validate_tpn

from .conftest import report


def bench_fig5_build_strict_tpn(benchmark):
    inst = example_a()
    net = benchmark(build_tpn, inst, "strict")
    rep = validate_tpn(net)
    backwards = sum(
        1
        for p in net.places
        if p.kind == PlaceKind.RCS
        and net.transitions[p.src].column > net.transitions[p.dst].column
    )
    report(
        benchmark,
        "Figure 5 — complete STRICT TPN of Example A",
        [
            ("transitions", 42, rep.n_transitions),
            ("flow places", 36, rep.places_by_kind[PlaceKind.FLOW]),
            ("serialization places", 24, rep.places_by_kind[PlaceKind.RCS]),
            ("tokens (one per processor)", 7, rep.tokens),
            ("backward places (send -> next receive)", "> 0", backwards),
        ],
    )
    assert backwards > 0


def bench_fig5_strict_period(benchmark):
    res = benchmark(compute_period, example_a(), "strict")
    assert res.period == pytest.approx(692.0 / 3.0)  # 230.67; paper: 230.7
    report(
        benchmark,
        "Example A, STRICT — period via full-TPN critical cycle",
        [("period P", 230.7, round(res.period, 2)),
         ("M_ct", 215.8, round(res.mct, 2)),
         ("critical resource exists", "no", res.has_critical_resource)],
    )
