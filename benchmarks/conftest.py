"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
experiment index in DESIGN.md) and *asserts* the published facts while
timing the computation.  ``report()`` prints a paper-vs-measured block
(visible with ``pytest benchmarks/ --benchmark-only -s``) and attaches it
to the benchmark's ``extra_info`` so it lands in benchmark JSON exports.
"""

from __future__ import annotations


def report(benchmark, title: str, rows: list[tuple[str, object, object]]) -> None:
    """Print and record a paper-vs-measured comparison table.

    Parameters
    ----------
    benchmark:
        The pytest-benchmark fixture (or ``None`` outside benchmarks).
    title:
        Experiment id, e.g. ``"Figure 6 / Example B"``.
    rows:
        ``(quantity, paper_value, measured_value)`` triples.
    """
    width = max((len(r[0]) for r in rows), default=10)
    lines = [f"== {title} ==",
             f"   {'quantity':<{width}} | paper        | measured"]
    for name, paper, measured in rows:
        lines.append(f"   {name:<{width}} | {str(paper):<12} | {measured}")
    text = "\n".join(lines)
    print("\n" + text)
    if benchmark is not None:
        benchmark.extra_info["report"] = text
