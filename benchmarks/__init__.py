"""Benchmark package marker (enables the relative conftest imports)."""
