"""Figure 7: Gantt diagram of Example A under STRICT ONE-PORT.

The paper's figure shows three full periods in which *every* resource
(CPU rows and port rows alike) has idle time — the visual proof that no
critical resource exists.  This benchmark simulates the schedule,
renders the ASCII Gantt, and asserts per-resource idleness over one
steady-state period.
"""

import pytest

from repro import cycle_times
from repro.experiments import example_a
from repro.petri import build_tpn
from repro.simulation import (
    extract_schedules,
    measure_period,
    render_gantt,
    resource_order,
    simulate,
)

from .conftest import report


def _schedule(n_firings=60):
    net = build_tpn(example_a(), "strict")
    trace = simulate(net, n_firings)
    return net, trace


def bench_fig7_gantt(benchmark):
    net, trace = benchmark(_schedule)
    est = measure_period(trace)
    schedules = extract_schedules(trace, "strict")
    order = resource_order(example_a(), "strict")

    # one full steady-state period (6 data sets = est.rate time units)
    t1 = min(s.intervals[-1].end for s in schedules.values())
    t0 = t1 - est.rate
    idle = {res: schedules[res].has_idle_in(t0, t1) for res in order}
    chart = render_gantt(schedules, t0, t1, width=110, resources=order)
    print()
    print(chart)

    assert est.period == pytest.approx(692.0 / 3.0, rel=1e-9)
    assert all(idle.values()), f"expected idle time everywhere, got {idle}"

    rep = cycle_times(example_a(), "strict")
    utils = {
        res: schedules[res].busy_time(t0, t1) / (t1 - t0) for res in order
    }
    report(
        benchmark,
        "Figure 7 — strict Example A schedule without critical resource",
        [
            ("measured period", 230.7, round(est.period, 2)),
            ("M_ct (P2)", 215.8, round(rep.mct, 2)),
            ("all resources idle each period", "yes", all(idle.values())),
            ("max utilization", "< 1",
             f"{max(utils.values()):.4f} ({max(utils, key=utils.get)})"),
        ],
    )
