"""Figures 3-4: OVERLAP ONE-PORT TPN construction of Example A.

The paper states the construction is linear in the net size O(mn); this
benchmark times it and asserts the structural census of Figure 4
(6 rows x 7 columns, round-robin circuits with one token each).
"""

from repro.experiments import example_a
from repro.petri import PlaceKind, build_tpn, validate_tpn

from .conftest import report


def bench_fig4_build_overlap_tpn(benchmark):
    inst = example_a()
    net = benchmark(build_tpn, inst, "overlap")
    rep = validate_tpn(net)
    assert (rep.n_rows, rep.n_columns) == (6, 7)
    report(
        benchmark,
        "Figure 4 — complete OVERLAP TPN of Example A",
        [
            ("rows m", 6, rep.n_rows),
            ("columns 2n-1", 7, rep.n_columns),
            ("transitions", 42, rep.n_transitions),
            ("flow places (constraint 1)", 36,
             rep.places_by_kind[PlaceKind.FLOW]),
            ("CPU circuits places (constraint 2)", 24,
             rep.places_by_kind[PlaceKind.RR_COMP]),
            ("out-port circuit places (constraint 3)", 18,
             rep.places_by_kind[PlaceKind.RR_OUT]),
            ("in-port circuit places (constraint 4)", 18,
             rep.places_by_kind[PlaceKind.RR_IN]),
            ("tokens (one per circuit)", 19, rep.tokens),
        ],
    )


def bench_fig4_construction_scales_linearly(benchmark):
    """Time the O(mn) claim on a larger instance (m = 420 rows)."""
    from repro import Application, Instance, Mapping, Platform

    counts = (4, 3, 5, 7)  # lcm = 420
    p = sum(counts)
    app = Application(works=[1.0] * 4, file_sizes=[1.0] * 3)
    plat = Platform.homogeneous(p)
    bounds = [0]
    for c in counts:
        bounds.append(bounds[-1] + c)
    mapping = Mapping([tuple(range(bounds[i], bounds[i + 1]))
                       for i in range(4)])
    inst = Instance(app, plat, mapping)
    net = benchmark(build_tpn, inst, "overlap")
    assert net.n_rows == 420
    report(
        benchmark,
        "Figure 4 construction at scale (m = 420)",
        [("transitions", 420 * 7, net.n_transitions),
         ("places", "O(mn)", net.n_places)],
    )
