"""Telemetry determinism across execution plans + wall-clock attribution.

PR 8's acceptance contract: the instrumentation layer observes without
perturbing.  One small multi-group campaign is drained four ways —
serial (twice), ``n_jobs=2`` span workers, and a 2-process lease fabric
— all with tracing enabled, and the benchmark asserts:

* **counter determinism** — two serial runs produce *identical* full
  counter snapshots (every counter, not just the contract tier);
* **partition invariance** — the contract-tier counters
  (``engine.points[.*]``, ``engine.paths``, ``store.puts``,
  ``store.quarantines``) are identical across serial, ``n_jobs=2`` and
  the 2-worker fabric;
* **no perturbation** — the campaign JSON export of the traced fabric
  run is byte-identical to the traced serial run's;
* **disabled no-op** — draining the same spec with telemetry disabled
  adds zero counters and zero spans to the collector;
* **lossless Chrome export** — ``merged_from_chrome(chrome_trace(m))``
  reconstructs the merged fabric trace exactly;
* **span coverage** — the merged fabric trace attributes at least
  :data:`MIN_COVERAGE` of the root ``campaign`` span's wall-clock to
  named child phases.

The per-phase attribution table (where the wall-clock actually went)
is recorded in the stats — visible in ``BENCH_8.json`` — but its times
are never gated; only the structural facts above are contracts.

Run standalone (asserts everything)::

    PYTHONPATH=src python benchmarks/bench_telemetry.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_telemetry.py \
        -o python_files='bench_*.py' -o python_functions='bench_*'
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    export_campaign_json,
    run_campaign,
    run_campaign_workers,
)
from repro.telemetry import (
    TELEMETRY,
    attribution,
    chrome_trace,
    contract_counters,
    merge_traces,
    merged_from_chrome,
    trace_files,
)

try:  # pytest package context vs standalone `python benchmarks/...`
    from .conftest import report
except ImportError:  # pragma: no cover - standalone fallback
    from conftest import report

#: Minimum fraction of the root span the named phases must cover.
MIN_COVERAGE = 0.95

#: Small but multi-group: 2 models x 2 applications x 2 replication
#: policies x 2 draws = 12 distinct digests over ~10 topology groups,
#: touching both the tpn and polynomial engine paths.
SPEC = {
    "name": "telemetry-bench",
    "draws": 2,
    "models": ["overlap", "strict"],
    "applications": [
        {"synthetic": {"n_stages": 3, "shape": "balanced", "scale": 8.0}},
        {"workload": "audio-pipeline"},
    ],
    "platforms": [{"n_procs": 8}],
    "replications": [
        {"policy": "balls"},
        {"fixed": [1, 2, 3], "assignment": "blocks"},
    ],
    "max_paths": 200,
}


def _traced_serial(tmp: Path, tag: str) -> tuple[dict, str]:
    """One traced serial drain into a fresh store; merged trace + export."""
    spec = CampaignSpec.from_dict(SPEC)
    with ResultStore(tmp / f"{tag}.sqlite") as store:
        run_campaign(spec, store, trace_dir=tmp / f"trace-{tag}")
        export = export_campaign_json(spec, store)
    return merge_traces(trace_files(tmp / f"trace-{tag}")), export


def run_comparison() -> dict:
    spec = CampaignSpec.from_dict(SPEC)
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)

        serial_a, export_serial = _traced_serial(tmp, "serial-a")
        serial_b, _ = _traced_serial(tmp, "serial-b")

        with ResultStore(tmp / "jobs2.sqlite") as store:
            run_campaign(spec, store, n_jobs=2, trace_dir=tmp / "trace-jobs2")
        jobs2 = merge_traces(trace_files(tmp / "trace-jobs2"))

        run_campaign_workers(spec, tmp / "fabric.sqlite", workers=2,
                             trace_dir=tmp / "trace-fabric")
        with ResultStore(tmp / "fabric.sqlite") as store:
            export_fabric = export_campaign_json(spec, store)
        fabric = merge_traces(trace_files(tmp / "trace-fabric"))

        # Disabled no-op: a drain without tracing must add zero counter
        # entries and zero spans to the (disabled) collector.
        TELEMETRY.disable()
        before_counters = TELEMETRY.counter_snapshot()
        before_spans = len(TELEMETRY.spans)
        with ResultStore(tmp / "dark.sqlite") as store:
            run_campaign(spec, store)
        disabled_noop = (TELEMETRY.counter_snapshot() == before_counters
                         and len(TELEMETRY.spans) == before_spans)

    contract_serial = contract_counters(serial_a["counters"])
    chrome = json.loads(json.dumps(chrome_trace(fabric), sort_keys=True))
    attrib = attribution(fabric)
    return {
        "n_points": contract_serial.get("engine.points", 0),
        "counters_identical": serial_a["counters"] == serial_b["counters"],
        "contract_invariant": (
            contract_serial == contract_counters(jobs2["counters"])
            == contract_counters(fabric["counters"])
        ),
        "exports_identical": export_serial == export_fabric,
        "disabled_noop": disabled_noop,
        "chrome_roundtrip": merged_from_chrome(chrome) == fabric,
        "engine_points": contract_serial.get("engine.points", 0),
        "skeleton_builds": serial_a["counters"].get(
            "engine.skeleton_builds", 0),
        "contract_counters": contract_serial,
        "coverage": attrib["coverage"],
        "coverage_floor": MIN_COVERAGE,
        "attribution_root": attrib["root"],
        "attribution_phases": {
            p["name"]: {"count": p["count"], "total_s": p["total"]}
            for p in attrib["phases"]
        },
        "workers": fabric["workers"],
    }


def _check(stats: dict) -> None:
    assert stats["counters_identical"], \
        "two serial traced runs disagreed on counters"
    assert stats["contract_invariant"], \
        "contract counters depend on the partitioning"
    assert stats["exports_identical"], \
        "tracing perturbed the campaign export bytes"
    assert stats["disabled_noop"], \
        "disabled telemetry still collected counters or spans"
    assert stats["chrome_roundtrip"], \
        "Chrome export round-trip lost information"
    assert stats["coverage"] >= stats["coverage_floor"], (
        f"named spans cover only {100 * stats['coverage']:.1f}% of the "
        f"fabric campaign (floor {100 * stats['coverage_floor']:.0f}%)"
    )


def bench_telemetry_campaign(benchmark):
    stats = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    _check(stats)
    report(benchmark, "Telemetry determinism (serial vs jobs vs fabric)",
           [("serial counters identical", "yes", stats["counters_identical"]),
            ("contract tier invariant", "yes", stats["contract_invariant"]),
            ("exports byte-identical", "yes", stats["exports_identical"]),
            ("disabled no-op", "yes", stats["disabled_noop"]),
            ("chrome round-trip", "exact", stats["chrome_roundtrip"]),
            ("span coverage", f">= {MIN_COVERAGE:.0%}",
             f"{stats['coverage']:.1%}")])


def main() -> int:
    stats = run_comparison()
    print(f"campaign: {stats['n_points']} points, "
          f"workers {stats['workers']}")
    print(f"counters identical (serial x2)   : "
          f"{stats['counters_identical']}")
    print(f"contract tier partition-invariant: "
          f"{stats['contract_invariant']}")
    print(f"exports byte-identical           : {stats['exports_identical']}")
    print(f"disabled telemetry no-op         : {stats['disabled_noop']}")
    print(f"chrome round-trip exact          : {stats['chrome_roundtrip']}")
    print(f"span coverage of '{stats['attribution_root']}'    : "
          f"{stats['coverage']:.1%} (floor {MIN_COVERAGE:.0%})")
    for name, phase in stats["attribution_phases"].items():
        print(f"  {name:<14} x{phase['count']:<4} {phase['total_s']:.4f}s")
    _check(stats)
    print("all telemetry contracts hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
