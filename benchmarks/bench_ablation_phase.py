"""Ablation: does the round-robin *order* of replicas matter?

The paper fixes round-robin service and the mapping fixes each stage's
replica order — a design choice users may not realize is load-bearing:
permuting the replicas of a stage changes which sender feeds which
receiver and therefore the pattern-graph cycles.  This ablation sweeps
all replica orders of Example B's receiver stage and of a random
instance, reporting the period spread (max/min ratio).
"""

import itertools

import pytest

from repro import Application, Instance, Mapping, Platform, compute_period
from repro.experiments import example_b

from .conftest import report


def bench_phase_sensitivity_example_b(benchmark):
    inst = example_b()

    def sweep():
        periods = {}
        for order in itertools.permutations((3, 4, 5, 6)):
            mapping = Mapping([inst.mapping.processors_of(0), order])
            trial = Instance(inst.application, inst.platform, mapping)
            periods[order] = compute_period(trial, "overlap").period
        return periods

    periods = benchmark(sweep)
    lo, hi = min(periods.values()), max(periods.values())
    # the published order realizes the worst case (the staircase exists)
    assert hi == pytest.approx(3500.0 / 12.0)
    assert lo < hi - 1e-9, "replica order must matter on Example B"
    best = min(periods, key=periods.get)
    report(
        benchmark,
        "Ablation: receiver round-robin order on Example B (24 orders)",
        [
            ("period of the paper's order", 291.67,
             round(periods[(3, 4, 5, 6)], 2)),
            ("best order found", "-", f"{best} -> {lo:.2f}"),
            ("max/min spread", "-", f"{hi / lo:.4f}x"),
        ],
    )


def bench_phase_sensitivity_random(benchmark):
    """Same sweep on a heterogeneous random instance: order matters there
    too, i.e. Example B is not a knife-edge artifact."""
    import numpy as np

    rng = np.random.default_rng(11)
    app = Application(works=[1.0, 1.0], file_sizes=[1.0])
    n = 7
    comm = rng.uniform(5.0, 15.0, (n, n))
    np.fill_diagonal(comm, 0.0)
    plat = Platform.from_comm_times(rng.uniform(5.0, 15.0, n), comm)

    def sweep():
        periods = []
        for order in itertools.permutations((3, 4, 5, 6)):
            mapping = Mapping([(0, 1, 2), order])
            periods.append(
                compute_period(Instance(app, plat, mapping), "overlap").period
            )
        return min(periods), max(periods)

    lo, hi = benchmark(sweep)
    report(
        benchmark,
        "Ablation: replica order on a random (3 -> 4) instance",
        [("spread max/min", "> 1", f"{hi / lo:.4f}x"),
         ("best period", "-", round(lo, 3)),
         ("worst period", "-", round(hi, 3))],
    )
