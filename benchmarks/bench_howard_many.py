"""Lockstep Howard (`solve_prepared_many`) vs the PR-3 scalar-solve engine.

The PR-4 experiment: a single-topology batch — the shape every sweep,
campaign cell and neighborhood scan reduces to — evaluated two ways:

* **PR-3 path**: one ``BatchEngine.evaluate`` call per instance.  The
  skeleton and Howard plan are cached, but every stamping runs its own
  policy iteration with the per-node Python chain walk;
* **PR-4 group path**: one ``BatchEngine.evaluate(mode="many")`` call.  The
  whole batch stamps into a single ``(B, E)`` weight matrix and
  :func:`repro.maxplus.howard.solve_prepared_many` runs policy
  iteration for all rows in lockstep.

The sweep drifts smoothly (per-resource sinusoids, like a campaign's
platform axis), so the batch is the canonical warm-cache workload.
Asserted facts (all deterministic — wall-clock is reported, never
gated; BENCH_4/5.json record the old >= 4x wall-clock contract failing
on CI hardware with no code defect, which is why PR 6 retired it):

* the lockstep path does the batch in ``max_b rounds(b)`` outer
  vectorized sweeps where the scalar path spends ``sum_b rounds(b)``
  sequential policy rounds; on this seeded drift sweep the ratio is a
  pure function of the inputs and must stay >= ``MIN_ROUND_RATIO``;
* both formulations follow **identical policy trajectories** (equal
  per-row round counts);
* group results are **bit-identical** to ``compute_period`` — period,
  ``mct``, ``has_critical_resource`` and the extracted critical cycle —
  on the existing regression topologies (the (2, 3, 5, 1) shared-sweep
  topology of ``bench_engine_batch`` and the choice-rich (6, 10, 15) of
  ``bench_campaign``); this part is deterministic and also pinned by
  ``tests/test_engine_group.py``.

Run standalone (asserts round ratio and identity)::

    PYTHONPATH=src python benchmarks/bench_howard_many.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_howard_many.py \
        -o python_files='bench_*.py' -o python_functions='bench_*'
"""

from __future__ import annotations

import time

import numpy as np

from repro import Application, Instance, Mapping, Platform
from repro.core.throughput import compute_period
from repro.engine import BatchEngine
from repro.maxplus.howard import solve_prepared, solve_prepared_many

try:  # pytest package context vs standalone `python benchmarks/...`
    from .conftest import report
except ImportError:  # pragma: no cover - standalone fallback
    from conftest import report

#: Replication of the benchmark topology: m = lcm = 60, 420 transitions.
REPLICATION = (4, 6, 10, 1)
#: Single-topology batch size (the acceptance floor is B >= 64).
N_INSTANCES = 192
#: Deterministic work contract: total scalar policy rounds over the
#: batch divided by the lockstep outer-sweep count (= the max per-row
#: rounds, since rows march together until the last one converges).
#: On the seeded drift sweep every row converges in one round, so the
#: ratio equals B = 192; the floor leaves 4x headroom for future
#: topology/tolerance changes before the contract trips.
MIN_ROUND_RATIO = N_INSTANCES / 4
#: Regression topologies for the bit-identity sweep.
IDENTITY_TOPOLOGIES = ((2, 3, 5, 1), (6, 10, 15))
N_IDENTITY = 24
#: Timing repetitions (best-of, both paths measured identically).
REPEATS = 5


def drift_sweep(counts=REPLICATION, n_instances=N_INSTANCES, seed=0,
                amp=0.35) -> list[Instance]:
    """A single-topology sweep over smoothly drifting platforms."""
    rng = np.random.default_rng(seed)
    counts = list(counts)
    n, p = len(counts), sum(counts)
    bounds = np.cumsum([0] + counts)
    mapping = Mapping(
        [tuple(range(bounds[i], bounds[i + 1])) for i in range(n)],
        n_processors=p,
    )
    app = Application(works=[1.0] * n, file_sizes=[1.0] * (n - 1))
    base_c = rng.uniform(5.0, 15.0, p)
    ph_c = rng.uniform(0.0, 2 * np.pi, p)
    base_m = rng.uniform(5.0, 15.0, (p, p))
    ph_m = rng.uniform(0.0, 2 * np.pi, (p, p))
    out = []
    for r in range(n_instances):
        t = 2 * np.pi * 3 * r / n_instances
        comp = base_c * (1 + amp * np.sin(t + ph_c))
        comm = base_m * (1 + amp * np.sin(t + ph_m))
        np.fill_diagonal(comm, 0.0)
        out.append(Instance(app, Platform.from_comm_times(comp, comm), mapping))
    return out


def _race(fn_a, fn_b, repeats: int = REPEATS) -> tuple[float, float]:
    """Best-of timings with interleaved, order-alternating repetitions.

    Interleaving the two contenders — and swapping which one goes first
    on every repetition — keeps CPU frequency scaling and cache
    temperature from systematically favoring either side.
    """
    best_a = best_b = float("inf")
    for rep in range(repeats):
        pair = (fn_a, fn_b) if rep % 2 == 0 else (fn_b, fn_a)
        times = []
        for fn in pair:
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        t_a, t_b = (times if rep % 2 == 0 else times[::-1])
        best_a = min(best_a, t_a)
        best_b = min(best_b, t_b)
    return best_a, best_b


def check_identity() -> dict:
    """Group results vs ``compute_period`` on the regression topologies."""
    checked = 0
    for counts in IDENTITY_TOPOLOGIES:
        insts = drift_sweep(counts, N_IDENTITY, seed=7)
        grouped = BatchEngine().evaluate(insts, "strict", method="tpn", mode="many")
        for inst, res in zip(insts, grouped):
            ref = compute_period(inst, "strict", method="tpn")
            assert res.period == ref.period
            assert res.mct == ref.mct
            assert res.has_critical_resource == ref.has_critical_resource
            assert res.tpn_solution.ratio == ref.tpn_solution.ratio
            checked += 1
    return {"topologies": len(IDENTITY_TOPOLOGIES), "checked": checked,
            "identical": True}


def run_comparison(n_instances: int = N_INSTANCES) -> dict:
    """Time the PR-3 per-instance path vs the lockstep group path."""
    instances = drift_sweep(n_instances=n_instances)
    # Warm both engines on one instance so the timed runs compare the
    # solve paths, not the one-time skeleton build.
    scalar_engine = BatchEngine()
    scalar_engine.evaluate(instances[0], "strict")
    group_engine = BatchEngine()
    group_engine.evaluate(instances[0], "strict")

    scalar_s, group_s = _race(
        lambda: [scalar_engine.evaluate(i, "strict") for i in instances],
        lambda: group_engine.evaluate(instances, "strict", mode="many"),
    )

    scalar = [scalar_engine.evaluate(i, "strict") for i in instances]
    grouped = group_engine.evaluate(instances, "strict", mode="many")
    identical = all(
        s.period == g.period
        and s.mct == g.mct
        and s.has_critical_resource == g.has_critical_resource
        and s.tpn_solution.ratio == g.tpn_solution.ratio
        for s, g in zip(scalar, grouped)
    )

    # Policy-round totals of both formulations (identical trajectories).
    sk = group_engine.skeleton(instances[0], "strict")
    weights = sk.stamp_weights_many(instances)
    rounds_scalar = sum(
        solve_prepared(sk.plan, weights[b]).n_rounds
        for b in range(len(instances))
    )
    per_row = [r.n_rounds for r in solve_prepared_many(sk.plan, weights)]
    rounds_many = sum(per_row)
    rounds_outer = max(per_row)

    return {
        "n": len(instances),
        "replication": list(REPLICATION),
        "scalar_s": scalar_s,
        "group_s": group_s,
        "speedup": scalar_s / group_s,
        "identical": identical,
        "rounds_scalar": rounds_scalar,
        "rounds_lockstep": rounds_many,
        "rounds_lockstep_outer": rounds_outer,
        "round_ratio": rounds_scalar / rounds_outer,
        "cache": {
            "hits": group_engine.stats.hits,
            "misses": group_engine.stats.misses,
            "evaluated": group_engine.stats.evaluated,
        },
    }


def bench_howard_many_speedup(benchmark):
    instances = drift_sweep()
    engine = BatchEngine()
    engine.evaluate(instances[0], "strict")

    def grouped():
        return engine.evaluate(instances, "strict", mode="many")

    results = benchmark(grouped)
    scalar_engine = BatchEngine()
    scalar = [scalar_engine.evaluate(i, "strict") for i in instances]
    assert all(s.period == g.period for s, g in zip(scalar, results))
    stats = run_comparison()
    assert stats["identical"]
    assert stats["round_ratio"] >= MIN_ROUND_RATIO
    report(benchmark, "Lockstep Howard: group batch vs PR-3 per-instance",
           [("results identical", "yes", stats["identical"]),
            ("round ratio (deterministic)", f">= {MIN_ROUND_RATIO:g}",
             f"{stats['round_ratio']:.1f}"),
            ("speedup (reported, not gated)", "-",
             f"{stats['speedup']:.2f}x"),
            ("rounds (scalar == lockstep)",
             stats["rounds_scalar"], stats["rounds_lockstep"])])


def bench_howard_many_bit_identity(benchmark):
    stats = benchmark.pedantic(check_identity, rounds=1, iterations=1)
    report(benchmark, "Lockstep Howard: bit-identity vs compute_period",
           [("topologies", len(IDENTITY_TOPOLOGIES), stats["topologies"]),
            ("pairs checked", "all equal", stats["checked"])])


def main() -> int:
    stats = run_comparison()
    ident = check_identity()
    print(f"bit-identity vs compute_period: {ident['checked']} pairs over "
          f"{ident['topologies']} regression topologies: OK")
    print(f"single-topology drift sweep: B = {stats['n']}, replication "
          f"{REPLICATION} (m = 60, 420 transitions), strict model")
    print(f"PR-3 per-instance path : {stats['scalar_s']:.3f} s "
          f"({1000 * stats['scalar_s'] / stats['n']:.2f} ms/instance)")
    print(f"lockstep group path    : {stats['group_s']:.3f} s "
          f"({1000 * stats['group_s'] / stats['n']:.2f} ms/instance)")
    print(f"speedup                : {stats['speedup']:.2f}x "
          f"(wall-clock: reported, never gated)")
    print(f"policy rounds          : {stats['rounds_scalar']} scalar == "
          f"{stats['rounds_lockstep']} lockstep "
          f"({stats['rounds_lockstep_outer']} outer sweeps)")
    print(f"round ratio            : {stats['round_ratio']:.1f} "
          f"(deterministic floor {MIN_ROUND_RATIO:g})")
    print(f"bit-identical          : {stats['identical']}")
    assert stats["identical"], "group results diverged from the scalar path"
    assert stats["rounds_scalar"] == stats["rounds_lockstep"], \
        "lockstep trajectory diverged from the scalar trajectory"
    assert stats["round_ratio"] >= MIN_ROUND_RATIO, (
        f"round ratio {stats['round_ratio']:.1f} below the deterministic "
        f"{MIN_ROUND_RATIO:g} floor"
    )
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
