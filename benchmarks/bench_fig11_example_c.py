"""Figures 11, 13, 14: Example C — the pattern decomposition at scale.

Example C replicates stages on (5, 21, 27, 11) processors: the full TPN
would need m = 10395 rows, yet Theorem 1 reduces the F1 column to 3
connected components of 7x9 patterns (55 pattern repetitions each).
The appendix's worked constants and the sender/receiver component
memberships are asserted, and the polynomial algorithm is timed on the
instance the paper uses to motivate it.
"""

from repro import compute_period
from repro.experiments import EXAMPLE_C_STRUCTURE, example_c
from repro.petri import comm_patterns
from repro.petri.dot import pattern_to_dot

from .conftest import report


def bench_fig13_pattern_decomposition(benchmark):
    inst = example_c()
    pats = benchmark(comm_patterns, inst, 1)
    f1 = EXAMPLE_C_STRUCTURE["f1"]
    assert len(pats) == f1["p"]
    by_first = {p.senders[0]: p for p in pats}
    assert set(by_first[5].receivers) == set(EXAMPLE_C_STRUCTURE["p5_receivers"])
    assert set(by_first[6].receivers) == set(EXAMPLE_C_STRUCTURE["p6_receivers"])
    report(
        benchmark,
        "Figures 11/13 — Example C decomposition constants",
        [
            ("m = lcm(5,21,27,11)", 10395, inst.num_paths),
            ("components p = gcd(21,27)", 3, len(pats)),
            ("pattern size u x v", "7 x 9", f"{pats[0].u} x {pats[0].v}"),
            ("patterns per component c", 55,
             inst.num_paths // pats[0].window),
            ("P5 communicates with", "P26, P29, ..., P50",
             sorted(by_first[5].receivers)),
        ],
    )


def bench_fig14_single_pattern_graph(benchmark):
    inst = example_c()
    pat = comm_patterns(inst, 1)[0]

    def build_and_solve():
        g = pat.to_ratio_graph()
        from repro.maxplus import max_cycle_ratio

        return g, max_cycle_ratio(g).value

    g, value = benchmark(build_and_solve)
    assert g.n_nodes == 63
    dot = pattern_to_dot(pat)
    assert dot.count("->") == 2 * 63
    report(
        benchmark,
        "Figure 14 — single 7x9 pattern graph G'",
        [("transitions u*v", 63, g.n_nodes),
         ("places 2*u*v", 126, g.n_edges),
         ("critical ratio (homogeneous times)", "-", round(value, 3))],
    )


def bench_example_c_polynomial_period(benchmark):
    """Theorem 1 on the full 4-stage Example C — the 10395-row net is
    never built (the paper reports hours for nets of this size)."""
    inst = example_c(heterogeneous=True, seed=2009)
    res = benchmark(compute_period, inst, "overlap")
    assert res.period >= res.mct - 1e-12
    report(
        benchmark,
        "Example C — polynomial period without building the TPN",
        [
            ("rows avoided", 10395, res.m),
            ("period", "-", round(res.period, 4)),
            ("M_ct", "-", round(res.mct, 4)),
            ("critical resource", "-", res.has_critical_resource),
        ],
    )
