"""Figures 9-10: communication-column sub-TPNs and their critical cycles.

Figure 9 is the sub-TPN of ``F_1`` in Example A (2 senders x 3
receivers); Figure 10 the sub-TPN of ``F_0`` in Example B (3 x 4), whose
critical cycle mixes sender and receiver round-robin circuits — that mix
is what pushes the period above every resource cycle-time.
"""

import pytest

from repro.experiments import example_a, example_b
from repro.maxplus import max_cycle_ratio
from repro.petri import build_tpn, column_subgraph, comm_patterns

from .conftest import report


def bench_fig9_example_a_f1_subtpn(benchmark):
    inst = example_a()
    net = build_tpn(inst, "overlap")
    sub, ids = benchmark(column_subgraph, net, 3)  # F1 column
    ratio = max_cycle_ratio(sub)
    pats = comm_patterns(inst, 1)
    assert ratio.value / net.n_rows == pytest.approx(
        max(p.contribution() for p in pats)
    )
    report(
        benchmark,
        "Figure 9 — sub-TPN of F1 (Example A)",
        [
            ("transitions", 6, sub.n_nodes),
            ("senders x receivers", "2 x 3",
             f"{pats[0].u} x {pats[0].v}"),
            ("column period contribution", "< 189",
             round(ratio.value / net.n_rows, 2)),
        ],
    )


def bench_fig10_example_b_f0_subtpn(benchmark):
    inst = example_b()
    net = build_tpn(inst, "overlap")
    sub, ids = column_subgraph(net, 1)  # F0 column
    ratio = benchmark(max_cycle_ratio, sub)
    # the critical cycle uses both sender circuits (right moves) and
    # receiver circuits (down moves): senders and receivers both vary.
    trans = [net.transitions[ids[v]] for v in ratio.cycle_nodes]
    senders = {t.procs[0] for t in trans}
    receivers = {t.procs[1] for t in trans}
    assert ratio.value / net.n_rows == pytest.approx(3500.0 / 12.0)
    assert len(senders) > 1 and len(receivers) > 1
    report(
        benchmark,
        "Figure 10 — sub-TPN of F0 (Example B) and its critical cycle",
        [
            ("transitions", 12, sub.n_nodes),
            ("critical ratio / m", 291.7, round(ratio.value / net.n_rows, 1)),
            ("cycle mixes sender+receiver circuits", "yes",
             f"senders {sorted(senders)}, receivers {sorted(receivers)}"),
        ],
    )


def bench_fig9_pattern_quotient_equivalence(benchmark):
    """Theorem 1's pattern graph gives the same answer as the full
    column — timed on Example B's F0 column."""
    inst = example_b()

    def quotient():
        return max(p.contribution() for p in comm_patterns(inst, 0))

    value = benchmark(quotient)
    assert value == pytest.approx(3500.0 / 12.0)
    report(
        benchmark,
        "Pattern quotient == full column (Example B, F0)",
        [("contribution", 291.7, round(value, 1))],
    )
