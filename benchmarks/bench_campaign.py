"""Campaign chunk ordering vs PR-1 contiguous chunking: Howard rounds.

The campaign executor reorders pending points by topology signature
(groups in first-seen order, sweep order preserved inside each group)
and hands each worker one **contiguous span** of the ordered stream.
PR-1's ``evaluate_stream`` instead cuts the caller's order into small
contiguous chunks dispatched round-robin — fine when the caller already
grouped by topology, but a grid campaign naturally interleaves
topologies (replication is an inner axis), which scatters each
topology's sweep across all workers.

This benchmark builds that adversarial-but-typical stream — two
choice-rich replication topologies (out-degree > 1, ``m = 30``) swept
across smoothly drifting platforms, interleaved per drift step — and
*simulates both worker layouts deterministically*: per-worker engines,
per-(worker, topology) :class:`~repro.maxplus.howard.HowardState`,
exactly the state the real executors carry.  It asserts:

* **identical period values** under both layouts (warm starts never
  change values — the campaign's byte-identical-exports guarantee);
* the campaign layout needs **strictly fewer skeleton builds** (each
  topology is built by fewer workers);
* the campaign layout cuts **total policy-iteration rounds by at least
  1.25x** (measured ~1.5x): consecutive same-topology points inside a
  span are drift neighbors, so the carried policy is usually one
  improvement round from the next fixed point, while round-robin
  chunking makes each worker's same-topology stream jump across the
  drift.

All counts are seeded and deterministic — no wall-clock flake.

Run standalone (asserts all three facts)::

    PYTHONPATH=src python benchmarks/bench_campaign.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_campaign.py \
        -o python_files='bench_*.py' -o python_functions='bench_*'
"""

from __future__ import annotations

import numpy as np

from repro import Application, Instance, Mapping, Platform
from repro.campaign import order_for_engine
from repro.engine import BatchEngine, topology_signature
from repro.maxplus.howard import HowardState, solve_prepared

try:  # pytest package context vs standalone `python benchmarks/...`
    from .conftest import report
except ImportError:  # pragma: no cover - standalone fallback
    from conftest import report

#: Two choice-rich topologies (m = 30, out-degree > 1 everywhere) that a
#: grid campaign interleaves; the (2,3,5,1) regression topology would
#: converge in one round from cold and show nothing.
REPLICATIONS = ((6, 10, 15), (15, 6, 10))
N_REGIMES = 120          # drift steps of the platform sweep
CHUNK_SIZE = 8           # PR-1 chunk granularity
N_WORKERS = 4
MIN_ROUND_REDUCTION = 1.25
MODEL = "strict"


def make_interleaved_sweep() -> list[tuple[Instance, str]]:
    """The campaign-shaped stream: topologies interleaved per drift step.

    Platforms drift smoothly (per-resource sinusoids, 35% amplitude,
    three cycles over the sweep), so drift neighbors are
    warm-start-friendly while distant steps are genuinely different.
    """
    apps_maps = []
    for counts in REPLICATIONS:
        n, p = len(counts), sum(counts)
        bounds = np.cumsum([0] + list(counts))
        mapping = Mapping(
            [tuple(range(bounds[i], bounds[i + 1])) for i in range(n)],
            n_processors=p,
        )
        app = Application(works=[1.0] * n, file_sizes=[1.0] * (n - 1))
        apps_maps.append((app, mapping))

    rng = np.random.default_rng(42)
    p = sum(REPLICATIONS[0])
    base_comp = rng.uniform(5.0, 15.0, p)
    base_comm = rng.uniform(5.0, 15.0, (p, p))
    phase_comp = rng.uniform(0, 2 * np.pi, p)
    phase_comm = rng.uniform(0, 2 * np.pi, (p, p))

    pairs: list[tuple[Instance, str]] = []
    for r in range(N_REGIMES):
        t = 2 * np.pi * 3 * r / N_REGIMES
        comp = base_comp * (1 + 0.35 * np.sin(t + phase_comp))
        comm = base_comm * (1 + 0.35 * np.sin(t + phase_comm))
        np.fill_diagonal(comm, 0.0)
        plat = Platform.from_comm_times(comp, comm, name=f"drift-{r}")
        for app, mapping in apps_maps:
            pairs.append((Instance(app, plat, mapping), MODEL))
    return pairs


def simulate_workers(
    pairs: list[tuple[Instance, str]],
    worker_streams: list[list[int]],
) -> dict:
    """Replay per-worker evaluation and count rounds/builds.

    Each worker owns a :class:`BatchEngine` (skeleton builds = its cache
    misses) and one :class:`HowardState` per topology — exactly the
    state a sharded executor's long-lived workers carry.
    """
    rounds = builds = 0
    values: dict[int, float] = {}
    for stream in worker_streams:
        engine = BatchEngine()
        states: dict[tuple, HowardState] = {}
        for i in stream:
            inst, model = pairs[i]
            sig = topology_signature(inst, model)
            sk = engine.skeleton(inst, model)
            state = states.setdefault(sig, HowardState())
            res = solve_prepared(sk.plan, sk.stamp_weights(inst), state=state)
            rounds += res.n_rounds
            values[i] = res.value / sk.m
        builds += engine.stats.misses
    return {"rounds": rounds, "builds": builds, "values": values}


def pr1_layout(n: int) -> list[list[int]]:
    """PR-1's sharding model: contiguous chunks, round-robin workers."""
    chunks = [list(range(i, min(i + CHUNK_SIZE, n)))
              for i in range(0, n, CHUNK_SIZE)]
    return [
        [i for chunk in chunks[w::N_WORKERS] for i in chunk]
        for w in range(N_WORKERS)
    ]


def campaign_layout(pairs: list[tuple[Instance, str]]) -> list[list[int]]:
    """The executor's layout: signature-grouped order, contiguous spans."""
    order = order_for_engine(pairs)
    base, extra = divmod(len(order), N_WORKERS)
    spans, start = [], 0
    for s in range(N_WORKERS):
        size = base + (1 if s < extra else 0)
        spans.append(order[start: start + size])
        start += size
    return [s for s in spans if s]


def run_comparison() -> dict:
    pairs = make_interleaved_sweep()
    pr1 = simulate_workers(pairs, pr1_layout(len(pairs)))
    camp = simulate_workers(pairs, campaign_layout(pairs))
    return {
        "n_points": len(pairs),
        "identical": pr1["values"] == camp["values"],
        "pr1_rounds": pr1["rounds"],
        "campaign_rounds": camp["rounds"],
        "reduction": pr1["rounds"] / camp["rounds"],
        "pr1_builds": pr1["builds"],
        "campaign_builds": camp["builds"],
    }


def _check(stats: dict) -> None:
    assert stats["identical"], \
        "period values diverged between chunk layouts"
    assert stats["campaign_builds"] < stats["pr1_builds"], (
        f"campaign layout built {stats['campaign_builds']} skeletons, "
        f"PR-1 only {stats['pr1_builds']}"
    )
    assert stats["reduction"] >= MIN_ROUND_REDUCTION, (
        f"ordering only cut policy rounds by {stats['reduction']:.2f}x "
        f"(floor {MIN_ROUND_REDUCTION}x)"
    )


def bench_campaign_ordering(benchmark):
    stats = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    _check(stats)
    report(benchmark, "Campaign ordering vs PR-1 chunking (Howard rounds)",
           [("values identical", "yes", stats["identical"]),
            ("PR-1 rounds", "baseline", stats["pr1_rounds"]),
            ("campaign rounds", f">= {MIN_ROUND_REDUCTION}x fewer",
             f"{stats['campaign_rounds']} ({stats['reduction']:.2f}x)"),
            ("skeleton builds", "strictly fewer",
             f"{stats['pr1_builds']} -> {stats['campaign_builds']}")])


def main() -> int:
    stats = run_comparison()
    print(f"interleaved sweep: {stats['n_points']} points, "
          f"{len(REPLICATIONS)} choice-rich topologies, "
          f"{N_REGIMES} drift regimes, {N_WORKERS} workers, "
          f"chunk size {CHUNK_SIZE}")
    print(f"PR-1 chunking   : {stats['pr1_rounds']} policy rounds, "
          f"{stats['pr1_builds']} skeleton builds")
    print(f"campaign order  : {stats['campaign_rounds']} policy rounds, "
          f"{stats['campaign_builds']} skeleton builds")
    print(f"round reduction : {stats['reduction']:.2f}x "
          f"(floor {MIN_ROUND_REDUCTION}x)")
    print(f"values identical: {stats['identical']}")
    _check(stats)
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
