"""Section 4.1 / Figure 2: Example A under OVERLAP ONE-PORT.

Paper: "a critical resource is the output port of P0, whose cycle-time
is equal to the period, 189."  Benchmarks Theorem 1's polynomial
algorithm on the instance and cross-checks the full-TPN route.
"""

import pytest

from repro import compute_period, cycle_times
from repro.algorithms import overlap_period
from repro.experiments import example_a

from .conftest import report


def bench_example_a_overlap_polynomial(benchmark):
    inst = example_a()
    bd = benchmark(overlap_period, inst)
    rep = cycle_times(inst, "overlap")
    assert bd.period == pytest.approx(189.0)
    assert rep.mct == pytest.approx(189.0)
    assert (0, "out") in rep.critical_resources()
    report(
        benchmark,
        "Example A, OVERLAP — period = cycle-time of P0's output port",
        [
            ("period P", 189, bd.period),
            ("M_ct", 189, rep.mct),
            ("critical resource", "P0 output port",
             rep.critical_resources()),
            ("critical column", "F0 transmission",
             [c.column for c in bd.critical_columns]),
        ],
    )


def bench_example_a_overlap_full_tpn(benchmark):
    inst = example_a()
    res = benchmark(compute_period, inst, "overlap", "tpn")
    assert res.period == pytest.approx(189.0)
    report(
        benchmark,
        "Example A, OVERLAP — full 42-transition TPN cross-check",
        [("period P", 189, res.period),
         ("rows m", 6, res.m)],
    )
