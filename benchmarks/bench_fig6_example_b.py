"""Figure 6 / Section 4.1: Example B — no critical resource under OVERLAP.

Paper: "Its critical resource cycle-time is Mct = 258.3 and corresponds
to the outgoing communications of P2.  It is strictly smaller than the
actual period of the complete system, P = 291.7."
"""

import pytest

from repro import compute_period, cycle_times
from repro.experiments import example_b
from repro.simulation import estimate_period
from repro.petri import build_tpn

from .conftest import report


def bench_example_b_polynomial(benchmark):
    inst = example_b()
    res = benchmark(compute_period, inst, "overlap")
    rep = cycle_times(inst, "overlap")
    assert res.period == pytest.approx(3500.0 / 12.0)
    assert res.mct == pytest.approx(3100.0 / 12.0)
    assert not res.has_critical_resource
    report(
        benchmark,
        "Figure 6 / Example B, OVERLAP — no critical resource",
        [
            ("period P", 291.7, round(res.period, 1)),
            ("M_ct", 258.3, round(res.mct, 1)),
            ("M_ct resource", "out port of P2", rep.critical_resources()),
            ("critical resource exists", "no", res.has_critical_resource),
            ("gap (P - Mct)/Mct", "12.9%",
             f"{100 * res.relative_gap:.1f}%"),
        ],
    )


def bench_example_b_simulation_confirms(benchmark):
    """The event simulator reaches the same period — the figure's claim
    is about real schedules, not just the TPN abstraction."""
    net = build_tpn(example_b(), "overlap")
    est = benchmark(estimate_period, net, 360)
    assert est.period == pytest.approx(3500.0 / 12.0, rel=1e-9)
    assert est.exact
    report(
        benchmark,
        "Example B — discrete-event simulation cross-check",
        [("period P", 291.7, round(est.period, 2)),
         ("periodic regime reached", "yes", est.exact)],
    )
