"""Ablation: the three cycle-ratio solvers on the same nets.

DESIGN.md replaces the paper's external tools (ERS / GreatSPN) with three
in-house solvers.  This ablation times them head-to-head on the paper's
nets and asserts agreement — the evidence that the substitution is safe:

* Howard policy iteration (default; exact value + explicit cycle);
* Lawler binary search (value only, tolerance-bounded);
* Karp cycle mean on the max-plus matrix ``A0* ⊗ A1`` (spectral route,
  requires the matrix form and cubic memory, only viable on small nets).
"""

import pytest

from repro.experiments import example_a, example_b
from repro.maxplus import max_cycle_ratio_howard, max_cycle_ratio_lawler
from repro.maxplus.recurrence import period_by_matrix
from repro.petri import build_tpn

from .conftest import report


def _net():
    return build_tpn(example_a(), "strict")


def bench_solver_howard(benchmark):
    net = _net()
    graph = net.to_ratio_graph()
    res = benchmark(max_cycle_ratio_howard, graph)
    assert res.value / net.n_rows == pytest.approx(692.0 / 3.0)
    report(benchmark, "Ablation: Howard on Example A strict (42 transitions)",
           [("period", 230.67, round(res.value / net.n_rows, 2)),
            ("policy rounds", "-", res.n_rounds),
            ("provides critical cycle", "yes", len(res.cycle_edges) > 0)])


def bench_solver_lawler(benchmark):
    net = _net()
    graph = net.to_ratio_graph()
    value = benchmark(max_cycle_ratio_lawler, graph)
    assert value / net.n_rows == pytest.approx(692.0 / 3.0, rel=1e-7)
    report(benchmark, "Ablation: Lawler on Example A strict",
           [("period", 230.67, round(value / net.n_rows, 4)),
            ("provides critical cycle", "no", "value only")])


def bench_solver_matrix_karp(benchmark):
    net = _net()
    value = benchmark(period_by_matrix, net)
    assert value == pytest.approx(692.0 / 3.0)
    report(benchmark, "Ablation: max-plus matrix + Karp on Example A strict",
           [("period", 230.67, round(value, 2)),
            ("cost", "O(T^3) memory/time", f"T = {net.n_transitions}")])


def bench_solvers_agree_on_example_b(benchmark):
    net = build_tpn(example_b(), "overlap")
    graph = net.to_ratio_graph()

    def all_three():
        h = max_cycle_ratio_howard(graph).value
        law = max_cycle_ratio_lawler(graph)
        m = period_by_matrix(net) * net.n_rows
        return h, law, m

    h, law, m = benchmark(all_three)
    assert h == pytest.approx(3500.0)
    assert law == pytest.approx(3500.0, rel=1e-7)
    assert m == pytest.approx(3500.0)
    report(benchmark, "Ablation: three solvers on Example B overlap",
           [("Howard", 3500, round(h, 4)),
            ("Lawler", 3500, round(l, 4)),
            ("matrix+Karp", 3500, round(m, 4))])
