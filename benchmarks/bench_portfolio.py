"""Portfolio allocators vs single-start local search at equal budget.

The experiments behind :mod:`repro.search`: every optimizer gets the
same allowance of exact-period evaluations (metered by
:class:`~repro.search.budget.EvaluationBudget`) on heterogeneous
mapping problems, so the only difference is how the budget is spent —
one long hill climb from one random seed, diversified restarts under
the fair-share allocator, or racing successive halving over
checkpoint-resumable climbs.  Two deterministic contracts are pinned:

* the fair-share portfolio beats single-start on the PR-2 reference
  platform (``run_comparison``);
* across the :data:`BENCH_SEEDS` platforms, racing is never worse than
  fair-share and strictly better on the two :data:`RUGGED_SEEDS` —
  exactly the platforms where fair-share loses to a single lucky deep
  climb (``run_three_way``, the ROADMAP "smarter portfolios" claim).

The second experiment pins the warm-start contract on two sweeps:
``BatchEngine(warm_start=True)`` — Howard's policy iteration seeded from
the previous instance of each topology group — must return exactly the
same period values as a cold engine on the iid regression sweep (the
extracted critical cycle is allowed to differ, the value is not), and on
a slowly-varying sweep (1% jitter around one base instance, the shape of
a mapping-search neighborhood) the carried policy must cut total
policy-iteration rounds by at least 2x.

Run standalone (asserts both facts)::

    PYTHONPATH=src python benchmarks/bench_portfolio.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_portfolio.py \
        -o python_files='bench_*.py' -o python_functions='bench_*'
"""

from __future__ import annotations

import time

import numpy as np

from repro import Application, Platform
from repro.engine import BatchEngine
from repro.extensions import local_search_mapping
from repro.search import EvaluationBudget, portfolio_search

try:  # pytest package context vs standalone `python benchmarks/...`
    from .conftest import report
    from .bench_engine_batch import make_sweep
except ImportError:  # pragma: no cover - standalone fallback
    from conftest import report
    from bench_engine_batch import make_sweep

#: Equal oracle allowance for both optimizers.
BUDGET = 1200
N_RESTARTS = 5
MODEL = "overlap"

APP = Application(
    works=[2.0, 11.0, 5.0, 14.0, 3.0],
    file_sizes=[3.0, 2.0, 2.0, 1.0],
    name="bench-portfolio",
)


def make_platform(seed: int = 13, n: int = 14) -> Platform:
    """A strongly heterogeneous cluster: speeds 0.5-8, bandwidths 1-10.

    The wide spread makes the mapping landscape rugged — exactly the
    regime where one hill climb gets stuck and a diversified portfolio
    pays off.
    """
    rng = np.random.default_rng(seed)
    speeds = rng.uniform(0.5, 8.0, n)
    bw = rng.uniform(1.0, 10.0, (n, n))
    np.fill_diagonal(bw, 0.0)
    return Platform(speeds, bw, name="bench-cluster")


#: Platform seeds of the three-way allocator race.  Chosen so the set
#: spans both regimes: on most platforms the fair-share portfolio beats
#: one deep climb, on the two :data:`RUGGED_SEEDS` it loses to it.
BENCH_SEEDS = (13, 17, 23, 29, 43, 67)

#: The rugged platforms of the ROADMAP "smarter portfolios" item: the
#: landscape rewards one lucky deep climb over even slicing (fair-share
#: loses to single-start here), and racing must strictly beat
#: fair-share on them.
RUGGED_SEEDS = (17, 67)


def run_comparison() -> dict:
    """Portfolio vs single-start at equal budget; return both outcomes."""
    plat = make_platform()

    single_budget = EvaluationBudget(BUDGET)
    single = local_search_mapping(
        APP, plat, MODEL, rng=np.random.default_rng(0),
        max_iters=10_000, budget=single_budget,
    )

    portfolio = portfolio_search(
        APP, plat, MODEL, n_restarts=N_RESTARTS, budget=BUDGET,
        max_iters=10_000,
    )
    return {
        "single_period": single.period,
        "single_evals": single.evaluations,
        "portfolio_period": portfolio.period,
        "portfolio_evals": portfolio.evaluations,
        "restarts": [(r.kind, r.period) for r in portfolio.restarts],
        "wins": portfolio.period < single.period or (
            portfolio.period == single.period
            and portfolio.evaluations <= single.evaluations
        ),
    }


def run_three_way() -> dict:
    """Single-start vs fair-share vs racing at equal budget, per seed.

    Every number here is a seeded search trajectory — no wall-clock —
    so the returned flags are deterministic contracts, not advisory
    ratios.
    """
    per_seed = []
    for seed in BENCH_SEEDS:
        plat = make_platform(seed)
        single = local_search_mapping(
            APP, plat, MODEL, rng=np.random.default_rng(0),
            max_iters=10_000, budget=EvaluationBudget(BUDGET),
        )
        fair = portfolio_search(
            APP, plat, MODEL, n_restarts=N_RESTARTS, budget=BUDGET,
            max_iters=10_000, allocator="fair-share",
        )
        racing = portfolio_search(
            APP, plat, MODEL, n_restarts=N_RESTARTS, budget=BUDGET,
            max_iters=10_000, allocator="racing",
        )
        per_seed.append({
            "seed": seed,
            "rugged": seed in RUGGED_SEEDS,
            "single_period": single.period,
            "fair_period": fair.period,
            "racing_period": racing.period,
            "fair_evals": fair.evaluations,
            "racing_evals": racing.evaluations,
            "racing_restarts": len(racing.restarts),
            "racing_margin": (fair.period - racing.period) / fair.period,
        })
    return {
        "budget": BUDGET,
        "n_restarts": N_RESTARTS,
        "seeds": per_seed,
        # Racing dominates fair-share: never worse at equal budget...
        "racing_never_worse": all(
            s["racing_period"] <= s["fair_period"] for s in per_seed
        ),
        # ...and strictly better exactly where fair-share was weak.
        "racing_beats_fair_on_rugged": all(
            s["racing_period"] < s["fair_period"]
            for s in per_seed if s["rugged"]
        ),
        # The rugged set is *defined* by fair-share losing to one lucky
        # deep climb — pin that the chosen seeds still exhibit it.
        "rugged_seeds_are_rugged": all(
            (s["single_period"] < s["fair_period"]) == s["rugged"]
            for s in per_seed
        ),
    }


def run_warm_start_sweep(n_instances: int = 300) -> dict:
    """Warm vs cold periods on the shared-topology regression sweep."""
    instances = make_sweep(n_instances)
    cold_engine = BatchEngine()
    warm_engine = BatchEngine(warm_start=True)
    # Warm both skeleton caches so the race times solving, not building.
    cold_engine.evaluate(instances[0], "strict", method="tpn")
    warm_engine.evaluate(instances[0], "strict", method="tpn")

    t0 = time.perf_counter()
    cold = [cold_engine.evaluate(i, "strict", method="tpn").period
            for i in instances]
    t1 = time.perf_counter()
    warm = [warm_engine.evaluate(i, "strict", method="tpn").period
            for i in instances]
    t2 = time.perf_counter()
    return {
        "n": n_instances,
        "identical": cold == warm,
        "cold_s": t1 - t0,
        "warm_s": t2 - t1,
        "speedup": (t1 - t0) / (t2 - t1),
    }


#: Replication of the slowly-varying sweep: lcm = 30, out-degree > 1
#: everywhere (the (2,3,5,1) regression topology converges in one round
#: from cold, leaving nothing for a warm start to save).
SLOW_REPLICATION = (6, 10, 15)
MIN_ROUND_REDUCTION = 2.0


def run_warm_start_rounds(n_instances: int = 200) -> dict:
    """Total policy-iteration rounds, cold vs carried-policy warm.

    The sweep jitters one base instance by 1% — the shape of a
    mapping-search neighborhood or a slowly-drifting platform — so the
    previous fixed point is almost always one improvement round from
    the next.  Round counts are deterministic, so the reduction is
    asserted, not advisory.
    """
    from repro import Instance, Mapping
    from repro.maxplus.howard import HowardState, solve_prepared

    rng = np.random.default_rng(42)
    counts = list(SLOW_REPLICATION)
    n, p = len(counts), sum(counts)
    bounds = np.cumsum([0] + counts)
    mapping = Mapping(
        [tuple(range(bounds[i], bounds[i + 1])) for i in range(n)],
        n_processors=p,
    )
    app = Application(works=[1.0] * n, file_sizes=[1.0] * (n - 1))
    base_comp = rng.uniform(5.0, 15.0, p)
    base_comm = rng.uniform(5.0, 15.0, (p, p))
    instances = []
    for _ in range(n_instances):
        comp = base_comp * rng.uniform(0.99, 1.01, p)
        comm = base_comm * rng.uniform(0.99, 1.01, (p, p))
        np.fill_diagonal(comm, 0.0)
        instances.append(
            Instance(app, Platform.from_comm_times(comp, comm), mapping)
        )

    engine = BatchEngine()
    sk = engine.skeleton(instances[0], "strict")
    state = HowardState()
    cold_rounds = warm_rounds = 0
    identical = True
    for inst in instances:
        weights = sk.stamp_weights(inst)
        cold = solve_prepared(sk.plan, weights)
        warm = solve_prepared(sk.plan, weights, state=state)
        cold_rounds += cold.n_rounds
        warm_rounds += warm.n_rounds
        identical &= cold.value == warm.value
    return {
        "n": n_instances,
        "identical": identical,
        "cold_rounds": cold_rounds,
        "warm_rounds": warm_rounds,
        "reduction": cold_rounds / warm_rounds,
    }


def bench_racing_dominates_fair_share(benchmark):
    stats = benchmark.pedantic(run_three_way, rounds=1, iterations=1)
    assert stats["rugged_seeds_are_rugged"], (
        "the RUGGED_SEEDS set drifted: fair-share vs single-start flipped "
        f"on some seed: {stats['seeds']}"
    )
    assert stats["racing_never_worse"], (
        f"racing lost to fair-share at equal budget: {stats['seeds']}"
    )
    assert stats["racing_beats_fair_on_rugged"], (
        f"racing failed to strictly beat fair-share on a rugged seed: "
        f"{stats['seeds']}"
    )
    report(benchmark, f"Racing vs fair-share vs single-start "
                      f"(equal budget {BUDGET}, {len(BENCH_SEEDS)} seeds)",
           [("racing <= fair-share (all seeds)", "yes",
             stats["racing_never_worse"]),
            ("racing < fair-share (rugged seeds)", "yes",
             stats["racing_beats_fair_on_rugged"]),
            ("rugged = fair loses to single", "yes",
             stats["rugged_seeds_are_rugged"])])


def bench_portfolio_beats_single_start(benchmark):
    stats = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    assert stats["wins"], (
        f"portfolio {stats['portfolio_period']:.4f} "
        f"({stats['portfolio_evals']} evals) did not beat single-start "
        f"{stats['single_period']:.4f} ({stats['single_evals']} evals)"
    )
    report(benchmark, f"Portfolio vs single-start (budget {BUDGET})",
           [("single-start period", "baseline",
             f"{stats['single_period']:.4f} ({stats['single_evals']} evals)"),
            ("portfolio period", "<= baseline",
             f"{stats['portfolio_period']:.4f} "
             f"({stats['portfolio_evals']} evals)"),
            ("portfolio wins", "yes", stats["wins"])])


def bench_warm_start_identity(benchmark):
    stats = benchmark.pedantic(run_warm_start_sweep, rounds=1, iterations=1)
    assert stats["identical"], "warm-started periods diverged from cold start"
    rounds = run_warm_start_rounds()
    assert rounds["identical"], "warm-started values diverged from cold start"
    assert rounds["reduction"] >= MIN_ROUND_REDUCTION, (
        f"warm start only cut policy-iteration rounds by "
        f"{rounds['reduction']:.2f}x on the slowly-varying sweep"
    )
    report(benchmark, "Warm-started Howard: identity + round reduction",
           [("periods identical (iid sweep)", "yes", stats["identical"]),
            ("values identical (slow sweep)", "yes", rounds["identical"]),
            ("round reduction (slow sweep)", f">= {MIN_ROUND_REDUCTION}x",
             f"{rounds['reduction']:.2f}x"),
            ("warm vs cold time (iid)", "(advisory)",
             f"{stats['speedup']:.2f}x")])


def main() -> int:
    stats = run_comparison()
    print(f"equal-budget comparison ({BUDGET} evaluations, {MODEL} model, "
          f"{APP.n_stages} stages on {make_platform().n_processors} procs)")
    print(f"single-start : P = {stats['single_period']:.4f} "
          f"({stats['single_evals']} evaluations)")
    print(f"portfolio    : P = {stats['portfolio_period']:.4f} "
          f"({stats['portfolio_evals']} evaluations)")
    for kind, period in stats["restarts"]:
        print(f"  restart {kind:<16}: {period:.4f}")
    assert stats["wins"], "portfolio failed to beat single-start local search"

    three = run_three_way()
    print(f"\nallocator race ({len(BENCH_SEEDS)} platform seeds, "
          f"budget {three['budget']}, {three['n_restarts']} restarts)")
    print(f"{'seed':>6} {'single':>9} {'fair':>9} {'racing':>9} "
          f"{'margin':>8}  notes")
    for s in three["seeds"]:
        notes = []
        if s["rugged"]:
            notes.append("rugged")
        if s["racing_period"] < s["fair_period"]:
            notes.append("racing wins")
        print(f"{s['seed']:>6} {s['single_period']:>9.4f} "
              f"{s['fair_period']:>9.4f} {s['racing_period']:>9.4f} "
              f"{100 * s['racing_margin']:>7.1f}%  {', '.join(notes)}")
    assert three["rugged_seeds_are_rugged"], "RUGGED_SEEDS drifted"
    assert three["racing_never_worse"], "racing lost to fair-share"
    assert three["racing_beats_fair_on_rugged"], \
        "racing did not strictly beat fair-share on a rugged seed"

    warm = run_warm_start_sweep()
    print(f"\nwarm-start regression sweep (iid): {warm['n']} instances, "
          f"strict model")
    print(f"cold engine : {warm['cold_s']:.3f} s")
    print(f"warm engine : {warm['warm_s']:.3f} s "
          f"({warm['speedup']:.2f}x, advisory)")
    print(f"identical   : {warm['identical']}")
    assert warm["identical"], "warm-started periods diverged from cold start"

    rounds = run_warm_start_rounds()
    print(f"\nslowly-varying sweep: {rounds['n']} instances, "
          f"replication {SLOW_REPLICATION} (m = 30)")
    print(f"policy rounds: {rounds['cold_rounds']} cold -> "
          f"{rounds['warm_rounds']} warm "
          f"({rounds['reduction']:.2f}x reduction)")
    print(f"identical    : {rounds['identical']}")
    assert rounds["identical"], "warm-started values diverged from cold start"
    assert rounds["reduction"] >= MIN_ROUND_REDUCTION, (
        f"round reduction {rounds['reduction']:.2f}x below "
        f"{MIN_ROUND_REDUCTION}x"
    )
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
