"""Run the required benchmarks; write and compare BENCH_<pr>.json.

The perf trajectory of this repo lives in its benchmarks, but until
PR 4 their numbers evaporated with the CI logs.  This harness runs each
required benchmark's comparison function, collects the stats dicts
(speedup ratios, policy-round counts, cache counters, identity flags),
and serializes everything to one JSON artifact.  Since PR 5 the reports
are **committed** (``BENCH_4.json``, ``BENCH_5.json``, ...) so the
trajectory accumulates in-repo, and ``--compare PREV.json`` turns the
previous report into a regression gate.

Since PR 6 every gated contract is deterministic (identity flags,
policy-round ratios, skeleton-build counts, seeded search periods):
BENCH_4/5.json record the old wall-clock speedup floors failing on CI
hardware with no code defect, so wall-clock numbers are still
*recorded* in the artifacts — the perf trajectory stays visible — but
never gated.  The exit code is non-zero only if a deterministic
contract fails, or, under ``--compare``, if one that held in the
previous report regressed (:data:`CONTRACTS`).

Usage::

    PYTHONPATH=src python benchmarks/run_all.py \\
        [--output BENCH_5.json] [--compare BENCH_4.json]
"""

from __future__ import annotations

import argparse
import json
import platform as _platform
import sys
from pathlib import Path

#: Schema version of the emitted JSON.
SCHEMA = 2

#: The PR this harness currently reports for.
PR = 10

#: Cross-report deterministic contracts: ``--compare`` fails when the
#: current value is worse than the previous report's.  Direction
#: ``"<="`` means lower-or-equal is required (counts, seeded periods),
#: ``">="`` higher-or-equal (boolean flags — an improvement from False
#: to True never regresses).  Metrics missing on either side are
#: skipped, so reports from different PRs stay comparable.
CONTRACTS = [
    ("howard_many_identity", "identical", ">="),
    ("howard_many", "identical", ">="),
    ("howard_many", "round_ratio", ">="),
    ("howard_many", "rounds_lockstep_outer", "<="),
    ("engine_batch", "identical", ">="),
    ("engine_batch", "skeleton_builds", "<="),
    ("campaign_ordering", "identical", ">="),
    ("campaign_ordering", "campaign_rounds", "<="),
    ("campaign_ordering", "campaign_builds", "<="),
    ("warm_start_rounds", "identical", ">="),
    ("warm_start_rounds", "warm_rounds", "<="),
    ("portfolio_vs_single_start", "wins", ">="),
    ("portfolio_vs_single_start", "portfolio_period", "<="),
    ("portfolio_three_way", "racing_never_worse", ">="),
    ("portfolio_three_way", "racing_beats_fair_on_rugged", ">="),
    ("telemetry_campaign", "counters_identical", ">="),
    ("telemetry_campaign", "contract_invariant", ">="),
    ("telemetry_campaign", "exports_identical", ">="),
    ("telemetry_campaign", "disabled_noop", ">="),
    ("telemetry_campaign", "chrome_roundtrip", ">="),
    ("telemetry_campaign", "engine_points", "<="),
    ("telemetry_campaign", "skeleton_builds", "<="),
    ("faults_chaos", "disabled_noop", ">="),
    ("faults_chaos", "exports_identical", ">="),
    ("faults_chaos", "retry_deterministic", ">="),
    ("faults_chaos", "spill_heal_identical", ">="),
    ("faults_chaos", "heal_idempotent", ">="),
    ("faults_chaos", "zero_lost", ">="),
    ("faults_chaos", "zero_duplicated", ">="),
    ("faults_chaos", "chaos_identical", ">="),
    ("pareto_portfolio", "identical", ">="),
    ("pareto_portfolio", "fronts_valid", ">="),
    ("pareto_portfolio", "strategies_diverse", ">="),
]


def _jsonable(obj):
    """Best-effort conversion of benchmark stats to plain JSON data."""
    import numpy as np

    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "__dict__"):  # e.g. EngineStats
        return {k: _jsonable(v) for k, v in vars(obj).items()}
    return repr(obj)


def _run(name: str, fn, check) -> dict:
    """Run one benchmark comparison; capture stats and verdict."""
    entry: dict = {"name": name}
    try:
        stats = fn()
        entry["stats"] = _jsonable(stats)
        try:
            check(stats)
            entry["passed"] = True
        except AssertionError as exc:
            entry["passed"] = False
            entry["error"] = str(exc)
    except Exception as exc:  # noqa: BLE001 - recorded, not raised
        entry["passed"] = False
        entry["error"] = f"{type(exc).__name__}: {exc}"
    return entry


def collect() -> dict:
    """Run every required benchmark and assemble the report."""
    import bench_campaign
    import bench_engine_batch
    import bench_faults
    import bench_howard_many
    import bench_pareto
    import bench_portfolio
    import bench_telemetry

    benchmarks = [
        # (name, stats function, assertion, deterministic?)
        (
            "howard_many",
            bench_howard_many.run_comparison,
            lambda s: [
                _assert(s["identical"], "group results diverged"),
                _assert(s["rounds_scalar"] == s["rounds_lockstep"],
                        "lockstep trajectory diverged"),
                _assert(s["round_ratio"] >= bench_howard_many.MIN_ROUND_RATIO,
                        f"round ratio {s['round_ratio']:.1f} below the "
                        f"deterministic "
                        f"{bench_howard_many.MIN_ROUND_RATIO:g} floor"),
            ],
            True,
        ),
        (
            "howard_many_identity",
            bench_howard_many.check_identity,
            lambda s: _assert(s["identical"], "bit-identity broke"),
            True,
        ),
        (
            "engine_batch",
            bench_engine_batch.run_comparison,
            lambda s: [
                _assert(s["identical"], "batched results diverged"),
                _assert(s["skeleton_builds"] == 1,
                        f"{s['skeleton_builds']} skeleton builds for one "
                        f"shared topology (expected exactly 1)"),
            ],
            True,
        ),
        (
            "campaign_ordering",
            bench_campaign.run_comparison,
            lambda s: [
                _assert(s["identical"], "values diverged between layouts"),
                _assert(s["reduction"] >= bench_campaign.MIN_ROUND_REDUCTION,
                        f"round reduction {s['reduction']:.2f}x below floor"),
            ],
            True,
        ),
        (
            "portfolio_vs_single_start",
            bench_portfolio.run_comparison,
            lambda s: _assert(s["wins"], "portfolio lost to single start"),
            True,
        ),
        (
            "portfolio_three_way",
            bench_portfolio.run_three_way,
            lambda s: [
                _assert(s["rugged_seeds_are_rugged"],
                        "RUGGED_SEEDS drifted"),
                _assert(s["racing_never_worse"],
                        "racing lost to fair-share at equal budget"),
                _assert(s["racing_beats_fair_on_rugged"],
                        "racing did not strictly beat fair-share on a "
                        "rugged seed"),
            ],
            True,
        ),
        (
            "telemetry_campaign",
            bench_telemetry.run_comparison,
            bench_telemetry._check,
            True,
        ),
        (
            "faults_chaos",
            bench_faults.run_comparison,
            bench_faults._check,
            True,
        ),
        (
            "pareto_portfolio",
            bench_pareto.run_comparison,
            bench_pareto._check,
            True,
        ),
        (
            "warm_start_rounds",
            bench_portfolio.run_warm_start_rounds,
            lambda s: [
                _assert(s["identical"], "warm values diverged"),
                _assert(s["reduction"] >= bench_portfolio.MIN_ROUND_REDUCTION,
                        f"round reduction {s['reduction']:.2f}x below floor"),
            ],
            True,
        ),
    ]

    report = {
        "schema": SCHEMA,
        "pr": PR,
        "python": sys.version.split()[0],
        "machine": _platform.machine(),
        "benchmarks": {},
        "deterministic_failures": [],
    }
    for name, fn, check, deterministic in benchmarks:
        entry = _run(name, fn, check)
        entry["deterministic"] = deterministic
        report["benchmarks"][name] = entry
        if deterministic and not entry["passed"]:
            report["deterministic_failures"].append(name)
    return report


def _assert(cond: bool, message: str) -> None:
    # Explicit raise, not `assert`: the contract gates must survive -O.
    if not cond:
        raise AssertionError(message)


def compare_reports(prev: dict, curr: dict) -> list[str]:
    """Deterministic regressions of ``curr`` against a previous report.

    Two classes of failure, both restricted to deterministic contracts
    (wall-clock ratios are recorded in the artifacts but never gated):

    * a deterministic benchmark that **passed** in the previous report
      now fails or has disappeared;
    * a :data:`CONTRACTS` metric moved in the regressing direction
      (more policy rounds, a worse seeded search period, a True flag
      turned False).
    """
    errors: list[str] = []
    for name, entry in prev.get("benchmarks", {}).items():
        if not entry.get("deterministic") or not entry.get("passed"):
            continue
        cur = curr.get("benchmarks", {}).get(name)
        if cur is None:
            errors.append(f"{name}: deterministic benchmark disappeared "
                          f"from the report")
        elif not cur.get("passed"):
            errors.append(f"{name}: passed in the previous report, now "
                          f"fails ({cur.get('error')})")
    for name, key, direction in CONTRACTS:
        prev_stats = prev.get("benchmarks", {}).get(name, {}).get("stats", {})
        curr_stats = curr.get("benchmarks", {}).get(name, {}).get("stats", {})
        if key not in prev_stats or key not in curr_stats:
            continue
        p, c = prev_stats[key], curr_stats[key]
        ok = c <= p if direction == "<=" else c >= p
        if not ok:
            errors.append(f"{name}.{key}: regressed from {p!r} to {c!r} "
                          f"(required {direction} previous)")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=f"BENCH_{PR}.json",
                        help="path of the JSON artifact (default: %(default)s)")
    parser.add_argument("--compare", default=None, metavar="PREV",
                        help="previous report (e.g. BENCH_4.json); exit "
                             "non-zero if a deterministic contract that "
                             "held there regressed")
    args = parser.parse_args(argv)

    report = collect()
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    Path(args.output).write_text(text)

    for name, entry in report["benchmarks"].items():
        status = "ok" if entry["passed"] else f"FAIL ({entry.get('error')})"
        kind = "deterministic" if entry["deterministic"] else "wall-clock"
        print(f"{name:28s} [{kind:13s}] {status}")
    print(f"wrote {args.output}")

    failed = bool(report["deterministic_failures"])
    if report["deterministic_failures"]:
        print("deterministic failures:",
              ", ".join(report["deterministic_failures"]))

    if args.compare is not None:
        prev = json.loads(Path(args.compare).read_text())
        regressions = compare_reports(prev, report)
        for err in regressions:
            print(f"REGRESSION vs {args.compare}: {err}")
        if not regressions:
            print(f"no deterministic regressions vs {args.compare} "
                  f"(pr {prev.get('pr')} -> {report['pr']})")
        failed = failed or bool(regressions)

    return 1 if failed else 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    raise SystemExit(main())
