"""Run the required benchmarks and write a machine-readable BENCH_4.json.

The perf trajectory of this repo lives in its benchmarks, but until
PR 4 their numbers evaporated with the CI logs.  This harness runs each
required benchmark's comparison function, collects the stats dicts
(speedup ratios, policy-round counts, cache counters, identity flags),
and serializes everything to one JSON artifact that CI uploads — the
seed of a cross-PR performance history.

Wall-clock ratios (``engine_batch``, ``howard_many``) can flake on
shared runners with no code defect, so each benchmark records its
assertion outcome instead of aborting the whole report; the exit code
is non-zero only if a *deterministic* benchmark (identity flags, round
counts) fails.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--output BENCH_4.json]
"""

from __future__ import annotations

import argparse
import json
import platform as _platform
import sys
from pathlib import Path

#: Schema version of the emitted JSON.
SCHEMA = 1


def _jsonable(obj):
    """Best-effort conversion of benchmark stats to plain JSON data."""
    import numpy as np

    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "__dict__"):  # e.g. EngineStats
        return {k: _jsonable(v) for k, v in vars(obj).items()}
    return repr(obj)


def _run(name: str, fn, check) -> dict:
    """Run one benchmark comparison; capture stats and verdict."""
    entry: dict = {"name": name}
    try:
        stats = fn()
        entry["stats"] = _jsonable(stats)
        try:
            check(stats)
            entry["passed"] = True
        except AssertionError as exc:
            entry["passed"] = False
            entry["error"] = str(exc)
    except Exception as exc:  # noqa: BLE001 - recorded, not raised
        entry["passed"] = False
        entry["error"] = f"{type(exc).__name__}: {exc}"
    return entry


def collect() -> dict:
    """Run every required benchmark and assemble the report."""
    import bench_campaign
    import bench_engine_batch
    import bench_howard_many
    import bench_portfolio

    benchmarks = [
        # (name, stats function, assertion, deterministic?)
        (
            "howard_many",
            bench_howard_many.run_comparison,
            lambda s: [
                _assert(s["identical"], "group results diverged"),
                _assert(s["rounds_scalar"] == s["rounds_lockstep"],
                        "lockstep trajectory diverged"),
                _assert(s["speedup"] >= bench_howard_many.MIN_SPEEDUP,
                        f"speedup {s['speedup']:.2f}x below "
                        f"{bench_howard_many.MIN_SPEEDUP}x"),
            ],
            False,
        ),
        (
            "howard_many_identity",
            bench_howard_many.check_identity,
            lambda s: _assert(s["identical"], "bit-identity broke"),
            True,
        ),
        (
            "engine_batch",
            bench_engine_batch.run_comparison,
            lambda s: [
                _assert(s["identical"], "batched results diverged"),
                _assert(s["speedup"] >= bench_engine_batch.MIN_SPEEDUP,
                        f"speedup {s['speedup']:.2f}x below "
                        f"{bench_engine_batch.MIN_SPEEDUP}x"),
            ],
            False,
        ),
        (
            "campaign_ordering",
            bench_campaign.run_comparison,
            lambda s: [
                _assert(s["identical"], "values diverged between layouts"),
                _assert(s["reduction"] >= bench_campaign.MIN_ROUND_REDUCTION,
                        f"round reduction {s['reduction']:.2f}x below floor"),
            ],
            True,
        ),
        (
            "portfolio_vs_single_start",
            bench_portfolio.run_comparison,
            lambda s: _assert(s["wins"], "portfolio lost to single start"),
            True,
        ),
        (
            "warm_start_rounds",
            bench_portfolio.run_warm_start_rounds,
            lambda s: [
                _assert(s["identical"], "warm values diverged"),
                _assert(s["reduction"] >= bench_portfolio.MIN_ROUND_REDUCTION,
                        f"round reduction {s['reduction']:.2f}x below floor"),
            ],
            True,
        ),
    ]

    report = {
        "schema": SCHEMA,
        "pr": 4,
        "python": sys.version.split()[0],
        "machine": _platform.machine(),
        "benchmarks": {},
        "deterministic_failures": [],
    }
    for name, fn, check, deterministic in benchmarks:
        entry = _run(name, fn, check)
        entry["deterministic"] = deterministic
        report["benchmarks"][name] = entry
        if deterministic and not entry["passed"]:
            report["deterministic_failures"].append(name)
    return report


def _assert(cond: bool, message: str) -> None:
    # Explicit raise, not `assert`: the contract gates must survive -O.
    if not cond:
        raise AssertionError(message)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_4.json",
                        help="path of the JSON artifact (default: %(default)s)")
    args = parser.parse_args(argv)

    report = collect()
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    Path(args.output).write_text(text)

    for name, entry in report["benchmarks"].items():
        status = "ok" if entry["passed"] else f"FAIL ({entry.get('error')})"
        kind = "deterministic" if entry["deterministic"] else "wall-clock"
        print(f"{name:28s} [{kind:13s}] {status}")
    print(f"wrote {args.output}")

    if report["deterministic_failures"]:
        print("deterministic failures:",
              ", ".join(report["deterministic_failures"]))
        return 1
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    raise SystemExit(main())
