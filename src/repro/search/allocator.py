"""Budget allocators: how a portfolio deals its oracle pool to restarts.

:func:`repro.search.portfolio_search` owns *what* a restart is (greedy /
random / perturbed-elite seeds climbing by local search) and exposes two
primitives to this module through a driver object: ``launch`` a restart
under a budget cap, and ``resume`` a paused climb with a fresh grant
(checkpointed climbs — see
:class:`repro.extensions.mapping_opt.SearchCheckpoint`).  A
:class:`BudgetAllocator` decides *when each climb runs and how much it
gets*:

* :class:`FairShareAllocator` — the PR-2 controller: each restart is
  capped at an even split of the remaining pool, under-spent slices
  roll forward.  One pass, no resumes.
* :class:`RacingAllocator` — successive halving: seed every restart
  with a small base slice, rank the paused climbs by incumbent period
  (ties broken by restart index), promote the best ⌈half⌉ with doubled
  slices, and repeat until a single survivor holds the remaining pool.
  A lucky deep basin still gets most of the budget — but only after
  beating the field at every rung, which is exactly where fair-share
  loses to a single lucky deep climb on rugged platforms.
* :class:`EpsilonConstraintAllocator` /
  :class:`WeightedScalarizationAllocator` — the multi-criteria
  strategies behind :func:`repro.search.pareto.pareto_portfolio_search`:
  fair-share budget dealing across deterministic scalarization
  directions (epsilon sweeps / simplex-grid weight vectors).

Both allocators spend from the same
:class:`~repro.search.budget.EvaluationBudget`, so portfolios under
different allocators are comparable at equal oracle cost
(``benchmarks/bench_portfolio.py`` races them on equal budgets).  All
control flow is deterministic: ranking is a stable sort on
``(period, index)``, rung slices are integer arithmetic on the pool's
remaining count, and climbs resume bit-identically from their
checkpoints — so a racing portfolio reproduces across interpreter
invocations and ``n_jobs`` worker counts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar, Protocol

from ..telemetry import TELEMETRY
from .budget import EvaluationBudget

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.mapping import Mapping
    from ..extensions.mapping_opt import SearchCheckpoint

__all__ = [
    "Climb",
    "ClimbDriver",
    "BudgetAllocator",
    "FairShareAllocator",
    "RacingAllocator",
    "ParetoAllocator",
    "EpsilonConstraintAllocator",
    "WeightedScalarizationAllocator",
    "resolve_allocator",
]


@dataclass
class Climb:
    """Running state of one restart, as the allocator sees it.

    The driver mutates a climb on every ``launch``/``resume``:
    ``period``/``trace``/``evaluations`` aggregate across grants, and
    ``rungs`` records the evaluations each grant actually spent — the
    per-rung trace surfaced on
    :class:`~repro.search.portfolio.RestartRecord`.
    """

    index: int
    kind: str
    seed: int
    period: float = float("inf")
    evaluations: int = 0
    trace: tuple[float, ...] = ()
    rungs: tuple[int, ...] = ()
    mapping: "Mapping | None" = None
    checkpoint: "SearchCheckpoint | None" = field(default=None, repr=False)

    @property
    def resumable(self) -> bool:
        """Whether the climb paused mid-slope (vs converged/starved out)."""
        return self.checkpoint is not None


class ClimbDriver(Protocol):
    """What an allocator may do — implemented by ``portfolio_search``.

    ``launch`` may be called with any non-negative index: indexes
    beyond ``n_restarts - 1`` draw fresh children of the same
    deterministic seed tree (racing brackets use them to turn leftover
    budget into extra exploration).
    """

    pool: EvaluationBudget
    n_restarts: int

    def launch(self, index: int, cap: int | None) -> Climb: ...

    def resume(self, climb: Climb, cap: int | None) -> None: ...


class BudgetAllocator(ABC):
    """Strategy dealing one evaluation pool across portfolio restarts."""

    #: Registry key and the value reported on ``PortfolioResult``.
    name: ClassVar[str] = "?"

    @abstractmethod
    def allocate(self, driver: ClimbDriver) -> list[Climb]:
        """Run the whole restart schedule; return climbs in launch order."""


class FairShareAllocator(BudgetAllocator):
    """Even-split slicing (the original inline ``portfolio_search`` loop).

    Restart ``i`` of ``n`` may draw at most ``remaining / (n - i)``
    grants, so one deep climb cannot starve the rest of the schedule;
    slices a restart leaves unspent (early local optimum) roll forward
    into later restarts' shares.  Every climb runs exactly once —
    paused checkpoints are left untouched for the intensify phase.
    """

    name: ClassVar[str] = "fair-share"

    def allocate(self, driver: ClimbDriver) -> list[Climb]:
        climbs: list[Climb] = []
        for index in range(driver.n_restarts):
            if driver.pool.exhausted:
                break
            remaining = driver.pool.remaining
            if remaining is None:
                cap = None
            else:
                cap = max(1, remaining // (driver.n_restarts - index))
            climbs.append(driver.launch(index, cap))
            TELEMETRY.count("search.launches")
        return climbs


@dataclass
class RacingAllocator(BudgetAllocator):
    """Successive halving over truncated, resumable climbs.

    One **bracket**: rung 0 launches ``n`` restarts with a base slice
    ``s``; each following rung keeps the best ``⌈alive / 2⌉`` climbs —
    ranked by incumbent period, ties broken toward the earlier restart
    index — and resumes the survivors' checkpoints with a doubled
    slice.  When one climb remains it is resumed uncapped and holds the
    remaining pool.

    Climbs converge (a local optimum leaves nothing to resume), so a
    bracket usually ends with budget still in the pool; the race then
    **repeats** on the leftover with a fresh bracket of ``n``
    diversified restarts (new children of the same deterministic seed
    tree, restart indexes continuing where the last bracket stopped)
    until the pool cannot fund another bracket.  The portfolio-level
    intensify phase still follows, exactly as under fair-share.

    The base slice reserves roughly ``1/reserve`` of the pool for the
    final survivor: with rung sizes ``n_0 = n, n_1 = ⌈n_0/2⌉, …,
    n_k = 2`` and slice ``s · 2^j`` at rung ``j``, ``s`` is the largest
    integer with ``s · Σ n_j 2^j ≤ remaining / reserve`` (at least 1).

    Parameters
    ----------
    reserve:
        Fraction denominator of the pool withheld from a bracket's
        halving rungs for its final survivor (default 2 — one half).
    """

    reserve: int = 2

    name: ClassVar[str] = "racing"

    @staticmethod
    def rung_sizes(n_restarts: int) -> list[int]:
        """Climbs alive at each halving rung: ``n, ⌈n/2⌉, …, 2``."""
        sizes: list[int] = []
        alive = n_restarts
        while alive > 1:
            sizes.append(alive)
            alive = -(-alive // 2)
        return sizes

    def base_slice(self, remaining: int, n_restarts: int) -> int:
        """The rung-0 slice for a pool with ``remaining`` evaluations."""
        cost = sum(s << j for j, s in enumerate(self.rung_sizes(n_restarts)))
        if cost == 0:
            return remaining
        return max(1, remaining // (max(1, self.reserve) * cost))

    def _race(self, driver: ClimbDriver, bracket: list[Climb], slice_: int) -> None:
        """Halve one bracket down to a survivor that drains the pool."""
        pool = driver.pool
        alive = list(bracket)
        while len(alive) > 1 and not pool.exhausted:
            # Rank by incumbent; a climb that converged inside its slice
            # keeps racing on its final period (resume is then a no-op).
            alive.sort(key=lambda c: (c.period, c.index))
            keep = -(-len(alive) // 2)
            alive = alive[:keep]
            if len(alive) == 1:
                break
            TELEMETRY.count("search.rungs")
            slice_ *= 2
            for climb in alive:
                if pool.exhausted:
                    break
                if climb.resumable:
                    driver.resume(climb, slice_)
        if alive and not pool.exhausted:
            alive.sort(key=lambda c: (c.period, c.index))
            winner = alive[0]
            if winner.resumable:
                # One climb holds whatever the rungs left unspent.
                driver.resume(winner, None)

    def allocate(self, driver: ClimbDriver) -> list[Climb]:
        pool = driver.pool
        n = driver.n_restarts
        if pool.remaining is None or n <= 1:
            # Unlimited pool (or a single restart): nothing to race —
            # every climb runs to convergence, like fair-share.
            unlimited: list[Climb] = []
            for i in range(n):
                if pool.exhausted:
                    break
                unlimited.append(driver.launch(i, None))
                TELEMETRY.count("search.launches")
            return unlimited
        climbs: list[Climb] = []
        next_index = 0
        while not pool.exhausted and pool.remaining >= 2 * n:
            base = self.base_slice(pool.remaining, n)
            TELEMETRY.count("search.brackets")
            bracket: list[Climb] = []
            for _ in range(n):
                if pool.exhausted:
                    break
                bracket.append(driver.launch(next_index, base))
                TELEMETRY.count("search.launches")
                next_index += 1
            climbs.extend(bracket)
            self._race(driver, bracket, base)
        return climbs


class ParetoAllocator(FairShareAllocator):
    """Base of the multi-criteria allocators (fair-share budget dealing).

    A Pareto allocator deals the pool exactly like
    :class:`FairShareAllocator` — an even split of the remaining pool
    per scalarization direction, under-spent slices rolling forward —
    and additionally names the **scalarization strategy** the Pareto
    driver uses to turn restart indexes into search directions
    (:mod:`repro.search.pareto` owns the direction math).  Passing one
    to the period-only :func:`repro.search.portfolio_search` is
    harmless: the strategy is simply unused and the portfolio behaves
    as under fair-share.
    """

    #: Consumed by :func:`repro.search.pareto.scalarization_directions`.
    strategy: ClassVar[str] = "?"


class EpsilonConstraintAllocator(ParetoAllocator):
    """Epsilon-constraint directions: optimize the primary objective
    subject to per-direction bounds on each secondary objective, the
    bounds swept deterministically across the probed objective ranges.
    """

    name: ClassVar[str] = "epsilon-constraint"
    strategy: ClassVar[str] = "epsilon"


class WeightedScalarizationAllocator(ParetoAllocator):
    """Weighted-sum directions: minimize ``w · v`` over range-normalized
    minimization-space vectors, with weight vectors on a deterministic
    simplex grid.
    """

    name: ClassVar[str] = "weighted-sum"
    strategy: ClassVar[str] = "weighted"


#: Registry backing the ``allocator=`` string shorthand (and the CLI
#: ``optimize --allocator`` choices).
ALLOCATORS: dict[str, type[BudgetAllocator]] = {
    FairShareAllocator.name: FairShareAllocator,
    RacingAllocator.name: RacingAllocator,
    EpsilonConstraintAllocator.name: EpsilonConstraintAllocator,
    WeightedScalarizationAllocator.name: WeightedScalarizationAllocator,
}


def resolve_allocator(spec: "str | BudgetAllocator") -> BudgetAllocator:
    """An allocator instance from its registry name (or pass-through).

    >>> resolve_allocator("racing").name
    'racing'
    >>> resolve_allocator("typo")
    Traceback (most recent call last):
        ...
    repro.errors.ValidationError: unknown allocator 'typo' (expected one of: epsilon-constraint, fair-share, racing, weighted-sum)
    """
    if isinstance(spec, BudgetAllocator):
        return spec
    try:
        return ALLOCATORS[spec]()
    except KeyError:
        from ..errors import ValidationError

        raise ValidationError(
            f"unknown allocator {spec!r} (expected one of: "
            f"{', '.join(sorted(ALLOCATORS))})"
        ) from None
