"""Mapping-space search at scale: the multi-start portfolio subsystem.

The layers below answer the paper's question — the exact period of a
*given* replicated mapping (:mod:`repro.core`, :mod:`repro.petri`,
:mod:`repro.maxplus`) at batch throughput (:mod:`repro.engine`).  This
package sits on top and attacks the NP-hard outer problem of *choosing*
the mapping (Benoit & Robert, JPDC 2008; Benoit, Rehn-Sonigo & Robert,
2007):

* :class:`~repro.search.budget.EvaluationBudget` — the shared
  oracle-call pool that makes heuristics comparable at equal cost;
* :func:`~repro.search.portfolio.portfolio_search` — diversified
  greedy / random / perturbed-elite restarts of
  :func:`~repro.extensions.mapping_opt.local_search_mapping` over one
  shared :class:`~repro.engine.batch.BatchEngine`, with deterministic
  ``crc32``-keyed seeding, per-restart traces and optional Howard warm
  starting.

Exposed on the CLI as ``repro-workflow optimize``; see
``benchmarks/bench_portfolio.py`` for the equal-budget comparison
against single-start local search.
"""

from .budget import EvaluationBudget
from .portfolio import (
    PortfolioResult,
    RestartRecord,
    portfolio_search,
    portfolio_seeds,
)

__all__ = [
    "EvaluationBudget",
    "PortfolioResult",
    "RestartRecord",
    "portfolio_search",
    "portfolio_seeds",
]
