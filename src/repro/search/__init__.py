"""Mapping-space search at scale: the multi-start portfolio subsystem.

The layers below answer the paper's question — the exact period of a
*given* replicated mapping (:mod:`repro.core`, :mod:`repro.petri`,
:mod:`repro.maxplus`) at batch throughput (:mod:`repro.engine`).  This
package sits on top and attacks the NP-hard outer problem of *choosing*
the mapping (Benoit & Robert, JPDC 2008; Benoit, Rehn-Sonigo & Robert,
2007):

* :class:`~repro.search.budget.EvaluationBudget` — the shared
  oracle-call pool that makes heuristics comparable at equal cost;
* :mod:`repro.search.allocator` — pluggable budget-allocation
  strategies over that pool: :class:`~repro.search.allocator.FairShareAllocator`
  (even splits), :class:`~repro.search.allocator.RacingAllocator`
  (successive halving over checkpoint-resumable climbs) and the
  multi-criteria pair
  :class:`~repro.search.allocator.EpsilonConstraintAllocator` /
  :class:`~repro.search.allocator.WeightedScalarizationAllocator`;
* :func:`~repro.search.portfolio.portfolio_search` — diversified
  greedy / random / perturbed-elite restarts of
  :func:`~repro.extensions.mapping_opt.local_search_mapping` over one
  shared :class:`~repro.engine.batch.BatchEngine`, with deterministic
  ``crc32``-keyed seeding, per-restart (and per-rung) traces and
  optional Howard warm starting;
* :func:`~repro.search.pareto.pareto_portfolio_search` — the
  multi-criteria portfolio over the :mod:`repro.objectives` plane:
  scalarized climbs (epsilon-constraint sweeps / simplex-grid weighted
  sums) feeding one deterministic
  :class:`~repro.objectives.ParetoArchive`.

Exposed on the CLI as ``repro-workflow optimize [--allocator racing]``
(multi-criteria via ``--objectives``); see
``benchmarks/bench_portfolio.py`` for the equal-budget three-way
comparison against single-start local search.
"""

from .allocator import (
    BudgetAllocator,
    Climb,
    EpsilonConstraintAllocator,
    FairShareAllocator,
    ParetoAllocator,
    RacingAllocator,
    WeightedScalarizationAllocator,
    resolve_allocator,
)
from .budget import EvaluationBudget
from .pareto import (
    Direction,
    DirectionRecord,
    ParetoPortfolioResult,
    pareto_portfolio_search,
    pareto_seeds,
    scalarization_directions,
)
from .portfolio import (
    PortfolioResult,
    RestartRecord,
    portfolio_search,
    portfolio_seeds,
)

__all__ = [
    "BudgetAllocator",
    "Climb",
    "Direction",
    "DirectionRecord",
    "EpsilonConstraintAllocator",
    "EvaluationBudget",
    "FairShareAllocator",
    "ParetoAllocator",
    "ParetoPortfolioResult",
    "PortfolioResult",
    "RacingAllocator",
    "RestartRecord",
    "WeightedScalarizationAllocator",
    "pareto_portfolio_search",
    "pareto_seeds",
    "portfolio_search",
    "portfolio_seeds",
    "resolve_allocator",
    "scalarization_directions",
]
