"""Multi-start mapping-search portfolio (the NP-hard outer problem).

The paper's algorithms answer *"what is the throughput of this
mapping?"*; the question users actually start from is *"which mapping?"*
— NP-hard even without replication (Benoit & Robert, JPDC 2008).  A
single hill climb from one seed gets stuck in the first basin it finds;
a **portfolio** of diversified restarts spends the same evaluation
budget across several basins and keeps the best incumbent:

* restart 0 climbs from the **greedy** constructive solution (a
  platform with fewer processors than stages admits no valid mapping at
  all, and is rejected with a :class:`~repro.errors.ValidationError`
  up front);
* **random** restarts climb from fresh uniform draws;
* **perturbed-elite** restarts kick the incumbent with a few random
  moves (:func:`repro.extensions.mapping_opt.perturb_mapping`) and climb
  from the neighbor — exploitation between the exploration draws;
* a final **intensify** phase resumes the climb from the incumbent with
  whatever budget the allocator left unspent, so a promising basin
  truncated by its slice is still driven to a local optimum.

*How the shared budget is dealt* across the restarts is pluggable
(``allocator=``, :mod:`repro.search.allocator`): ``"fair-share"`` caps
every restart at an even split of the remaining pool (the original
controller), ``"racing"`` runs successive halving — all restarts start
on small slices, the best ⌈half⌉ (by incumbent period, ties to the
earlier index) resume their checkpointed climbs with doubled slices
each rung, and the last survivor drains the pool.

All restarts share one :class:`~repro.engine.batch.BatchEngine`, so a
mapping topology proposed twice — common, neighborhoods overlap heavily
— reuses its TPN skeleton and Howard plan; neighborhood scans route
through the engine's ``evaluate_many``, which locksteps any
same-topology candidate runs through the batched Howard solver
(:func:`repro.maxplus.howard.solve_prepared_many`).  Pass
``warm_start=True`` to additionally seed policy iteration from the
previous evaluation of each topology group (period values are
unchanged; see :class:`~repro.engine.batch.BatchEngine`).  A shared
:class:`~repro.search.budget.EvaluationBudget` meters every oracle call,
so the portfolio is comparable to any other heuristic at equal cost.

Determinism: restart seeds derive from
``crc32(f"portfolio|{app.name}")`` through a
:class:`numpy.random.SeedSequence` tree — the same stable-digest scheme
as :func:`repro.experiments.runner.family_seeds` — so a portfolio
reproduces across interpreter invocations and worker counts.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..core.application import Application
from ..core.mapping import Mapping
from ..core.models import CommModel
from ..core.platform import Platform
from ..engine import BatchEngine
from ..errors import ValidationError
from ..telemetry import TELEMETRY
from ..utils import canonical_json
from ..extensions.mapping_opt import (
    MappingSearchResult,
    greedy_mapping,
    local_search_mapping,
    perturb_mapping,
)
from .allocator import BudgetAllocator, Climb, resolve_allocator
from .budget import EvaluationBudget

__all__ = [
    "RestartRecord",
    "PortfolioResult",
    "portfolio_seeds",
    "portfolio_search",
]


def _json_period(value: float) -> float | None:
    """``None`` for a starved search's ``inf`` — ``json.dumps`` would
    otherwise emit the non-RFC token ``Infinity`` that strict parsers
    (jq, ``JSON.parse``) reject."""
    return value if np.isfinite(value) else None


@dataclass(frozen=True)
class RestartRecord:
    """Trace of one restart of the portfolio.

    Attributes
    ----------
    index:
        Position in the restart schedule.
    kind:
        Seed strategy: ``"greedy"``, ``"random"`` or
        ``"perturbed-elite"``.
    seed:
        Entropy of the restart's seed sequence (reproducibility key).
    period:
        Best period this restart reached (``inf`` if the budget dried
        up before its first evaluation completed).
    evaluations:
        Oracle calls this restart was granted (summed over its rungs).
    trace:
        Periods of successive accepted solutions (monotone).
    assignments:
        The restart's best mapping.
    rungs:
        Evaluations spent in each budget grant of this restart.  A
        fair-share restart runs in one rung; a racing restart that
        survives ``k`` promotions records ``k + 1`` entries.
    """

    index: int
    kind: str
    seed: int
    period: float
    evaluations: int
    trace: tuple[float, ...]
    assignments: tuple[tuple[int, ...], ...]
    rungs: tuple[int, ...] = ()

    def to_dict(self) -> dict:
        """JSON-ready representation (``period`` is ``None`` if starved)."""
        return {
            "index": self.index,
            "kind": self.kind,
            "seed": self.seed,
            "period": _json_period(self.period),
            "evaluations": self.evaluations,
            "trace": list(self.trace),
            "assignments": [list(s) for s in self.assignments],
            "rungs": list(self.rungs),
        }


@dataclass(frozen=True)
class PortfolioResult:
    """Outcome of a multi-start portfolio search.

    Attributes
    ----------
    mapping:
        Best mapping across all restarts (first achiever on ties).
    period:
        Its exact period.
    evaluations:
        Total oracle calls actually spent (never exceeds ``budget``).
    budget:
        The evaluation allowance the portfolio ran under (``None`` =
        unlimited).
    model:
        Communication model value ("overlap"/"strict").
    restarts:
        Per-restart records, in schedule order.
    allocator:
        Name of the budget allocator that dealt the pool
        (``"fair-share"`` / ``"racing"``).
    """

    mapping: Mapping
    period: float
    evaluations: int
    budget: int | None
    model: str
    restarts: tuple[RestartRecord, ...]
    allocator: str = "fair-share"

    @property
    def best_restart(self) -> RestartRecord | None:
        """The record that produced :attr:`mapping` (first on ties).

        Provenance is matched on the mapping itself: racing rungs
        interleave incumbent updates, so the lowest ``(period, index)``
        record can be a *tied* climb that produced a different mapping —
        records carrying :attr:`mapping`'s assignments take precedence.

        ``None`` when the portfolio was starved before any restart ran
        (``budget=0``) — the same runs whose :attr:`period` is ``inf``.
        """
        if not self.restarts:
            return None
        produced = [r for r in self.restarts
                    if r.assignments == self.mapping.assignments]
        pool = produced or self.restarts
        return min(pool, key=lambda r: (r.period, r.index))

    def to_dict(self) -> dict:
        """JSON-ready representation (see ``portfolio_to_json``).

        Non-finite periods (budget-starved runs) serialize as ``None``
        so the output stays strict RFC 8259 JSON.
        """
        return {
            "model": self.model,
            "allocator": self.allocator,
            "period": _json_period(self.period),
            "evaluations": self.evaluations,
            "budget": self.budget,
            "assignments": [list(s) for s in self.mapping.assignments],
            "restarts": [r.to_dict() for r in self.restarts],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize to strict JSON text (``allow_nan=False`` enforced).

        Routed through :func:`repro.utils.canonical_json`: sorted keys
        and canonical separators, so equal results are byte-identical
        files under every exporter in the repo.
        """
        return canonical_json(self.to_dict(), indent=indent)


def portfolio_seeds(
    app: Application,
    model: CommModel | str,
    n_restarts: int,
    root_seed: int = 20090302,
) -> list[int]:
    """Deterministic per-restart seed entropies.

    Keyed by ``crc32("portfolio|" + app.name)`` — the same stable-digest
    scheme as :func:`repro.experiments.runner.family_seeds`, immune to
    ``PYTHONHASHSEED`` randomization — plus the model bit, so overlap
    and strict portfolios explore independent seed streams.
    """
    model = CommModel.parse(model)
    key = zlib.crc32(f"portfolio|{app.name}".encode()) & 0x7FFFFFFF
    ss = np.random.SeedSequence([root_seed, key, 0 if model.overlap else 1])
    return [int(child.generate_state(1)[0]) for child in ss.spawn(n_restarts)]


def _restart_kind(index: int, has_elite: bool) -> str:
    """The restart schedule: greedy first, then alternate random/elite."""
    if index == 0:
        return "greedy"
    if has_elite and index % 2 == 0:
        return "perturbed-elite"
    return "random"


class _BudgetSlice:
    """One restart's slice of the shared pool.

    Without slicing, the first climb drains the whole pool and the
    "portfolio" degenerates to single-start: the allocator therefore
    caps each grant (an even split for fair-share, a rung slice for
    racing), while still charging the shared pool so under-spent slices
    (an early local optimum) roll forward into later grants.
    """

    def __init__(self, pool: EvaluationBudget, cap: int | None) -> None:
        self._pool = pool
        self._cap = cap
        self._used = 0

    def take(self, n: int = 1) -> int:
        if self._cap is not None:
            n = min(n, self._cap - self._used)
        granted = self._pool.take(n) if n > 0 else 0
        self._used += granted
        return granted

    def refund(self, n: int) -> None:
        self._used -= n
        self._pool.refund(n)


class _ClimbDriver:
    """``portfolio_search``'s launch/resume services for allocators.

    Owns the restart semantics (seed streams, greedy/random/elite
    starts, the shared engine) and the incumbent; the allocator only
    decides grant sizes and ordering.  Implements
    :class:`repro.search.allocator.ClimbDriver`.
    """

    def __init__(self, app: Application, plat: Platform, model: CommModel,
                 eng: BatchEngine, pool: EvaluationBudget, root_seed: int,
                 n_restarts: int, max_iters: int, max_paths: int,
                 perturbation_moves: int, n_jobs: int | None) -> None:
        self.app = app
        self.plat = plat
        self.model = model
        self.eng = eng
        self.pool = pool
        self.root_seed = root_seed
        self.n_restarts = n_restarts
        self.max_iters = max_iters
        self.max_paths = max_paths
        self.perturbation_moves = perturbation_moves
        self.n_jobs = n_jobs
        self.best_mapping: Mapping | None = None
        self.best_period = float("inf")
        self._children = portfolio_seeds(app, model, n_restarts + 1,
                                         root_seed=root_seed)

    def _seed(self, index: int) -> int:
        """Seed entropy of restart ``index`` (lazily grown seed tree).

        Children ``0 .. n_restarts - 1`` are the scheduled restarts and
        child ``n_restarts`` drives the intensify phase; allocators that
        launch extra restarts (racing brackets) get the children after
        it — ``portfolio_seeds`` is prefix-stable, so growing the tree
        never reshuffles earlier seeds.
        """
        child = index if index < self.n_restarts else index + 1
        if child >= len(self._children):
            self._children = portfolio_seeds(self.app, self.model, child + 1,
                                             root_seed=self.root_seed)
        return self._children[child]

    def _note(self, climb: Climb) -> None:
        """Track the incumbent (first achiever wins ties)."""
        if climb.period < self.best_period and climb.mapping is not None:
            self.best_period = climb.period
            self.best_mapping = climb.mapping

    def launch(self, index: int, cap: int | None) -> Climb:
        """Run restart ``index`` under a budget cap (one rung)."""
        seed = self._seed(index)
        rng = np.random.default_rng(np.random.SeedSequence(seed))
        kind = _restart_kind(index, self.best_mapping is not None)
        slice_budget = _BudgetSlice(self.pool, cap)

        extra_evals = 0
        extra_trace: tuple[float, ...] = ()
        if kind == "greedy":
            g = greedy_mapping(self.app, self.plat, self.model,
                               max_paths=self.max_paths, engine=self.eng,
                               budget=slice_budget)
            start = g.mapping if np.isfinite(g.period) else None
            extra_evals, extra_trace = g.evaluations, g.trace
        elif kind == "perturbed-elite":
            start = perturb_mapping(self.best_mapping, rng,
                                    moves=self.perturbation_moves,
                                    n_processors=self.plat.n_processors)
        else:
            start = None  # drawn uniformly inside local_search_mapping

        res: MappingSearchResult = local_search_mapping(
            self.app, self.plat, self.model, rng=rng, start=start,
            max_iters=self.max_iters, max_paths=self.max_paths,
            engine=self.eng, n_jobs=self.n_jobs, budget=slice_budget,
        )
        climb = Climb(index=index, kind=kind, seed=seed)
        climb.period = min(res.period, *extra_trace) if extra_trace \
            else res.period
        climb.evaluations = extra_evals + res.evaluations
        climb.trace = extra_trace + res.trace
        climb.mapping = res.mapping
        climb.checkpoint = res.checkpoint
        climb.rungs = (climb.evaluations,)
        self._note(climb)
        return climb

    def resume(self, climb: Climb, cap: int | None) -> None:
        """Grant a paused climb another rung from its checkpoint."""
        if climb.checkpoint is None:
            return
        slice_budget = _BudgetSlice(self.pool, cap)
        res = local_search_mapping(
            self.app, self.plat, self.model, checkpoint=climb.checkpoint,
            max_iters=self.max_iters, max_paths=self.max_paths,
            engine=self.eng, n_jobs=self.n_jobs, budget=slice_budget,
        )
        climb.period = min(climb.period, res.period)
        climb.evaluations += res.evaluations
        climb.trace = climb.trace + res.trace
        climb.mapping = res.mapping
        climb.checkpoint = res.checkpoint
        climb.rungs = climb.rungs + (res.evaluations,)
        self._note(climb)


def portfolio_search(
    app: Application,
    plat: Platform,
    model: CommModel | str = "overlap",
    n_restarts: int = 6,
    budget: int | None = 1500,
    root_seed: int = 20090302,
    max_iters: int = 100,
    max_paths: int = 3000,
    perturbation_moves: int = 2,
    engine: BatchEngine | None = None,
    n_jobs: int | None = None,
    warm_start: bool = False,
    allocator: str | BudgetAllocator = "fair-share",
) -> PortfolioResult:
    """Multi-start local search under a shared evaluation budget.

    Parameters
    ----------
    app, plat:
        The application chain and the platform to map it on.
    model:
        Communication model scoring the candidates.
    n_restarts:
        Diversified restarts to schedule (greedy / random /
        perturbed-elite); later restarts are skipped once the budget is
        exhausted.  Raises
        :class:`~repro.errors.ValidationError` up front when no valid
        mapping exists (fewer processors than stages).
    budget:
        Total period-oracle evaluations granted across all restarts
        (``None`` = unlimited).  How the pool is dealt is the
        ``allocator``'s business; slices a restart leaves unspent
        (early local optimum) always roll forward.
    root_seed:
        Root entropy of the :func:`portfolio_seeds` tree.
    max_iters:
        Hill-climbing iteration cap per restart.
    max_paths:
        Reject mappings whose ``lcm(m_i)`` exceeds this (same budget as
        :mod:`repro.experiments.runner`).
    perturbation_moves:
        Kick strength of perturbed-elite restarts.
    engine:
        Caller-owned :class:`~repro.engine.batch.BatchEngine` to share
        its topology cache (its own ``warm_start`` flag then governs);
        by default one engine is created for the whole portfolio.
    n_jobs:
        Fan each restart's neighborhood evaluation out to worker
        processes (0 = all cores); the search trajectory is unchanged.
    warm_start:
        Enable Howard warm starting inside the default engine (ignored
        when ``engine`` is passed).  Off by default: period values are
        identical either way, only extracted critical cycles may differ.
    allocator:
        Budget-allocation strategy: ``"fair-share"`` (even split, the
        default), ``"racing"`` (successive halving over checkpointed
        climbs), or any :class:`~repro.search.allocator.BudgetAllocator`
        instance.  Equal budget either way — only the spending schedule
        differs.

    Examples
    --------
    >>> from repro import Application, Platform
    >>> app = Application(works=[4.0, 9.0], file_sizes=[1.0], name="doc")
    >>> plat = Platform.homogeneous(3, speed=1.0, bandwidth=10.0)
    >>> res = portfolio_search(app, plat, "overlap", n_restarts=3, budget=60)
    >>> res.period  # S1 replicated on two unit-speed processors
    4.5
    >>> res.evaluations <= 60
    True
    """
    model = CommModel.parse(model)
    alloc = resolve_allocator(allocator)
    if plat.n_processors < app.n_stages:
        # No valid replicated mapping exists at all (a processor runs at
        # most one stage, every stage needs one) — fail loudly up front.
        raise ValidationError(
            f"no valid mapping: {app.n_stages} stages need at least "
            f"{app.n_stages} processors, platform has {plat.n_processors}"
        )
    eng = engine if engine is not None else BatchEngine(
        max_rows=max_paths + 1, warm_start=warm_start)
    pool = EvaluationBudget(budget)
    # SeedSequence.spawn is prefix-stable, so seeds[:n_restarts] equals
    # portfolio_seeds(..., n_restarts); the extra child drives the final
    # intensify phase.
    final_seed = portfolio_seeds(app, model, n_restarts + 1,
                                 root_seed=root_seed)[-1]

    driver = _ClimbDriver(app, plat, model, eng, pool, root_seed, n_restarts,
                          max_iters, max_paths, perturbation_moves, n_jobs)
    with TELEMETRY.span("portfolio-allocate", allocator=alloc.name,
                        restarts=n_restarts):
        climbs = alloc.allocate(driver)
    restarts = [
        RestartRecord(
            index=c.index,
            kind=c.kind,
            seed=c.seed,
            period=c.period,
            evaluations=c.evaluations,
            trace=c.trace,
            assignments=c.mapping.assignments,
            rungs=c.rungs,
        )
        for c in climbs
    ]
    best_mapping = driver.best_mapping
    best_period = driver.best_period

    if best_mapping is not None and not pool.exhausted and np.isfinite(best_period):
        # Intensify: resume from the incumbent with the leftover budget
        # (uncapped — exploration is over, certify/deepen the best basin).
        rng = np.random.default_rng(np.random.SeedSequence(final_seed))
        with TELEMETRY.span("portfolio-intensify"):
            res = local_search_mapping(
                app, plat, model, rng=rng, start=best_mapping,
                max_iters=max_iters, max_paths=max_paths, engine=eng,
                n_jobs=n_jobs, budget=pool,
            )
        # The next unused index: racing brackets may have launched extra
        # restarts past n_restarts, and record indexes must stay unique.
        intensify_index = max(
            [n_restarts] + [c.index + 1 for c in climbs])
        restarts.append(RestartRecord(
            index=intensify_index,
            kind="intensify",
            seed=final_seed,
            period=res.period,
            evaluations=res.evaluations,
            trace=res.trace,
            assignments=res.mapping.assignments,
            rungs=(res.evaluations,),
        ))
        if res.period < best_period:
            best_period = res.period
            best_mapping = res.mapping

    if best_mapping is None:
        # Zero budget (or every restart starved before its first oracle
        # call): fall back to a deterministic valid mapping so callers
        # always get *a* mapping, flagged by the infinite period.
        fallback = restarts[-1].assignments if restarts else tuple(
            (u,) for u in range(app.n_stages))
        best_mapping = Mapping(fallback, n_processors=plat.n_processors)

    if TELEMETRY.enabled:
        TELEMETRY.count("search.portfolios")
        TELEMETRY.count("search.restarts", len(restarts))
        TELEMETRY.count("search.evaluations", pool.spent)

    return PortfolioResult(
        mapping=best_mapping,
        period=best_period,
        evaluations=pool.spent,
        budget=budget,
        model=model.value,
        restarts=tuple(restarts),
        allocator=alloc.name,
    )
