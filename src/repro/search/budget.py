"""Evaluation-budget controller shared by the restarts of a portfolio.

Mapping search is compared at *equal oracle cost*: a heuristic is only
better than another if it reaches a lower period with the same number of
exact-period evaluations.  :class:`EvaluationBudget` is the single
mutable counter every restart of :func:`repro.search.portfolio_search`
draws from — and the hook :func:`repro.extensions.mapping_opt` search
loops check before each oracle call, so a restart stops mid-climb the
moment the shared pool runs dry instead of overdrawing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EvaluationBudget"]


@dataclass
class EvaluationBudget:
    """A finite pool of period-oracle evaluations.

    Parameters
    ----------
    limit:
        Total evaluations the pool may grant; ``None`` means unlimited
        (every ``take`` is granted — useful to reuse budget-aware code
        without a cap).

    Examples
    --------
    >>> budget = EvaluationBudget(3)
    >>> budget.take()
    1
    >>> budget.take(5)      # only 2 grants left
    2
    >>> budget.take()
    0
    >>> budget.spent, budget.remaining, budget.exhausted
    (3, 0, True)
    """

    limit: int | None
    spent: int = field(default=0, init=False)

    def take(self, n: int = 1) -> int:
        """Request ``n`` evaluations; grant (and record) as many as remain."""
        if n < 0:
            raise ValueError(f"cannot take a negative count ({n})")
        granted = n if self.limit is None else min(n, self.limit - self.spent)
        self.spent += granted
        return granted

    def refund(self, n: int) -> None:
        """Return ``n`` unused grants to the pool.

        The batched neighborhood scan takes its whole grant up front but
        — like the serial scan — only *pays* for candidates up to the
        first improving move; the speculative remainder is refunded so
        parallel and serial searches charge identically.
        """
        if n < 0:
            raise ValueError(f"cannot refund a negative count ({n})")
        if n > self.spent:
            raise ValueError(f"refunding {n} grants but only {self.spent} spent")
        self.spent -= n

    @property
    def remaining(self) -> int | None:
        """Evaluations still available (``None`` when unlimited)."""
        return None if self.limit is None else self.limit - self.spent

    @property
    def exhausted(self) -> bool:
        """Whether the pool has run dry (never true when unlimited)."""
        return self.limit is not None and self.spent >= self.limit
