"""Pareto-archive portfolio: multi-criteria mapping search.

:func:`pareto_portfolio_search` generalizes
:func:`repro.search.portfolio_search` from the period alone to the
(period, latency, reliability) plane of :mod:`repro.objectives`.  The
shape is the same — diversified restarts dealt a shared evaluation pool
by a :class:`~repro.search.allocator.BudgetAllocator` — but each restart
is now a **scalarization direction**: a deterministic reduction of the
objective vector to one comparable score, climbed by first-improvement
local search over the same swap/move/rotate neighborhoods as the
period-only search.  Two direction families exist, selected by the
allocator (:class:`~repro.search.allocator.EpsilonConstraintAllocator`
/ :class:`~repro.search.allocator.WeightedScalarizationAllocator`):

* **epsilon-constraint** — optimize the primary objective (the first in
  canonical order, i.e. the period when present) subject to a bound on
  one secondary objective, the bounds swept across the probed objective
  ranges; scores compare as ``(constraint violation, primary value)``
  tuples, so feasibility always beats optimality.
* **weighted-sum** — minimize ``w · v`` over range-normalized
  minimization-space vectors, weight vectors on a deterministic simplex
  grid.

Every evaluated mapping — probes, climb starts, every neighborhood
candidate the serial scan reaches — is offered to one shared
:class:`~repro.objectives.ParetoArchive` in direction-major order.
Because the scan order, budget charging and archive offers all follow
the *serial* trajectory (the batched neighborhood path refunds and
discards evaluations past the first improving move, exactly like
:func:`repro.extensions.mapping_opt.local_search_mapping`), the archive
contents are bit-identical at any ``n_jobs``.

Determinism inventory: probe mappings are the two
:func:`repro.objectives.replication_policy_mapping` policies plus
seeded random draws; objective ranges come from the probe vectors; the
direction schedule is integer arithmetic on those ranges; restart seeds
derive from ``crc32("pareto|" + app.name)`` through a
:class:`numpy.random.SeedSequence` tree (prefix-stable, the
:func:`repro.search.portfolio.portfolio_seeds` scheme).  No wall clock,
no ``hash()``, no dict-order dependence anywhere.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from math import comb
from typing import Any

import numpy as np

from ..core.application import Application
from ..core.instance import Instance
from ..core.mapping import Mapping
from ..core.models import CommModel
from ..core.platform import Platform
from ..engine import BatchEngine, evaluate
from ..engine.batch import MIN_PARALLEL_BATCH
from ..errors import ValidationError
from ..extensions.mapping_opt import _neighborhood_moves, random_mapping
from ..objectives import (
    DEFAULT_LATENCY_DATASETS,
    REPLICATION_POLICIES,
    EvalResult,
    ParetoArchive,
    ParetoEntry,
    attach_objectives,
    parse_objectives,
    replication_policy_mapping,
)
from ..objectives.evaluate import ObjectiveEvaluator
from ..telemetry import TELEMETRY
from ..utils import canonical_json
from .allocator import (
    BudgetAllocator,
    Climb,
    ParetoAllocator,
    resolve_allocator,
)
from .budget import EvaluationBudget

__all__ = [
    "Direction",
    "DirectionRecord",
    "ParetoPortfolioResult",
    "pareto_seeds",
    "scalarization_directions",
    "pareto_portfolio_search",
]

#: Score of an unevaluated / infeasible candidate (compares worst).
_INF_SCORE = (float("inf"), float("inf"))


def _normalized(value: float, lo: float, hi: float) -> float:
    """``value`` mapped into the probed range (0 when the range is flat)."""
    if hi > lo:
        return (value - lo) / (hi - lo)
    return 0.0


@dataclass(frozen=True)
class Direction:
    """One scalarization direction of the multi-criteria portfolio.

    A direction reduces a minimization-space objective vector to a
    totally ordered score tuple ``(violation, value)``:

    * weighted directions have no constraints (``violation = 0``) and
      ``value = w · normalized(v)``;
    * epsilon directions sum the range-normalized excess over each
      ``(objective index, bound)`` pair into ``violation`` and use the
      primary objective as ``value`` — lexicographic comparison, so
      restoring feasibility always dominates improving the primary.

    ``lo``/``hi`` are the probed per-objective ranges the normalization
    uses; they are baked into the direction so scoring is a pure
    function of the vector.
    """

    index: int
    kind: str
    label: str
    weights: tuple[float, ...] = ()
    primary: int = 0
    bounds: tuple[tuple[int, float], ...] = ()
    lo: tuple[float, ...] = ()
    hi: tuple[float, ...] = ()

    def score(self, vector: Sequence[float]) -> tuple[float, float]:
        """The direction's score of one minimization-space vector."""
        if self.kind == "weighted":
            total = 0.0
            for k, weight in enumerate(self.weights):
                total += weight * _normalized(
                    float(vector[k]), self.lo[k], self.hi[k]
                )
            return (0.0, total)
        violation = 0.0
        for j, bound in self.bounds:
            value = float(vector[j])
            if value > bound:
                span = self.hi[j] - self.lo[j]
                violation += (value - bound) / span if span > 0.0 else 1.0
        return (violation, float(vector[self.primary]))


@dataclass(frozen=True)
class DirectionRecord:
    """Trace of one scalarized climb, in schedule order.

    ``best_vector`` is the minimization-space vector of the climb's
    incumbent (``None`` when the climb starved before its first
    evaluation); ``accepted`` counts accepted moves including the start
    evaluation.
    """

    index: int
    kind: str
    label: str
    seed: int
    evaluations: int
    accepted: int
    best_vector: tuple[float, ...] | None
    assignments: tuple[tuple[int, ...], ...]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "index": self.index,
            "kind": self.kind,
            "label": self.label,
            "seed": self.seed,
            "evaluations": self.evaluations,
            "accepted": self.accepted,
            "best_vector": None
            if self.best_vector is None
            else list(self.best_vector),
            "assignments": [list(s) for s in self.assignments],
        }


@dataclass(frozen=True)
class ParetoPortfolioResult:
    """Outcome of a multi-criteria portfolio search.

    Attributes
    ----------
    objectives:
        Canonical objective tuple the run optimized.
    model:
        Communication model value ("overlap"/"strict").
    allocator:
        Registry name of the Pareto allocator that dealt the pool.
    budget:
        The evaluation allowance (``None`` = unlimited).
    evaluations:
        Oracle calls actually spent (never exceeds ``budget``).
    archive:
        The shared :class:`~repro.objectives.ParetoArchive` — its
        :meth:`~repro.objectives.ParetoArchive.front` is the result.
    records:
        Per-direction climb records, in schedule order.
    directions:
        Direction labels, in schedule order.
    """

    objectives: tuple[str, ...]
    model: str
    allocator: str
    budget: int | None
    evaluations: int
    archive: ParetoArchive
    records: tuple[DirectionRecord, ...]
    directions: tuple[str, ...]

    def front(self) -> list[ParetoEntry]:
        """The non-dominated entries in deterministic export order."""
        return self.archive.front()

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (front in deterministic order)."""
        return {
            "objectives": list(self.objectives),
            "model": self.model,
            "allocator": self.allocator,
            "budget": self.budget,
            "evaluations": self.evaluations,
            "directions": list(self.directions),
            "records": [r.to_dict() for r in self.records],
            "front": [e.to_dict() for e in self.archive.front()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Canonical-JSON text of :meth:`to_dict` (byte-deterministic)."""
        return canonical_json(self.to_dict(), indent=indent)


def pareto_seeds(
    app: Application,
    model: CommModel | str,
    n: int,
    root_seed: int = 20090302,
) -> list[int]:
    """Deterministic seed entropies of the multi-criteria portfolio.

    Child 0 drives the probe phase, children ``1 .. n - 1`` the
    scalarized climbs.  Keyed by ``crc32("pareto|" + app.name)`` plus
    the model bit — the :func:`repro.search.portfolio.portfolio_seeds`
    scheme on an independent stream (prefix-stable: growing ``n`` never
    reshuffles earlier seeds).
    """
    model = CommModel.parse(model)
    key = zlib.crc32(f"pareto|{app.name}".encode()) & 0x7FFFFFFF
    ss = np.random.SeedSequence([root_seed, key, 0 if model.overlap else 1])
    return [int(child.generate_state(1)[0]) for child in ss.spawn(n)]


def _compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """All ordered compositions of ``total`` into ``parts`` non-negative
    integers, in lexicographic order."""
    if parts == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for rest in _compositions(total - head, parts - 1):
            yield (head, *rest)


def _weight_grid(m: int, n_directions: int) -> list[tuple[float, ...]]:
    """``n_directions`` weight vectors on the smallest simplex grid that
    holds them, picked at evenly spaced lexicographic positions."""
    if m == 1:
        return [(1.0,)] * n_directions
    granularity = 1
    while comb(granularity + m - 1, m - 1) < n_directions:
        granularity += 1
    grid = list(_compositions(granularity, m))
    count = len(grid)
    if n_directions == 1:
        picks = [count // 2]
    else:
        picks = [
            i * (count - 1) // (n_directions - 1) for i in range(n_directions)
        ]
    return [
        tuple(part / granularity for part in grid[pick]) for pick in picks
    ]


def scalarization_directions(
    strategy: str,
    objectives: Sequence[str] | str,
    n_directions: int,
    lo: Sequence[float],
    hi: Sequence[float],
) -> list[Direction]:
    """The deterministic direction schedule of one Pareto portfolio.

    ``strategy`` is an allocator's
    :attr:`~repro.search.allocator.ParetoAllocator.strategy`
    (``"epsilon"`` / ``"weighted"``); ``lo``/``hi`` are the probed
    per-objective ranges in minimization space.  Pure integer/float
    arithmetic — the schedule is a function of its arguments only.

    >>> dirs = scalarization_directions(
    ...     "weighted", ("period", "latency"), 3, (0.0, 0.0), (1.0, 1.0))
    >>> [d.weights for d in dirs]
    [(0.0, 1.0), (0.5, 0.5), (1.0, 0.0)]
    >>> dirs = scalarization_directions(
    ...     "epsilon", ("period", "latency"), 2, (10.0, 4.0), (20.0, 8.0))
    >>> [d.label for d in dirs]
    ['epsilon:latency<=5.33333', 'epsilon:latency<=6.66667']
    """
    names = parse_objectives(objectives)
    if n_directions < 1:
        raise ValidationError("n_directions must be at least 1")
    lo_t = tuple(float(x) for x in lo)
    hi_t = tuple(float(x) for x in hi)
    if len(lo_t) != len(names) or len(hi_t) != len(names):
        raise ValidationError("lo/hi must have one bound per objective")
    directions: list[Direction] = []
    if strategy == "weighted":
        for index, weights in enumerate(_weight_grid(len(names), n_directions)):
            label = "weighted:" + "/".join(f"{w:.3f}" for w in weights)
            directions.append(
                Direction(
                    index=index,
                    kind="weighted",
                    label=label,
                    weights=weights,
                    lo=lo_t,
                    hi=hi_t,
                )
            )
        return directions
    if strategy != "epsilon":
        raise ValidationError(
            f"unknown scalarization strategy {strategy!r} "
            "(expected epsilon/weighted)"
        )
    others = list(range(1, len(names)))
    if not others:
        return [
            Direction(
                index=index,
                kind="epsilon",
                label=f"epsilon:{names[0]}",
                primary=0,
                lo=lo_t,
                hi=hi_t,
            )
            for index in range(n_directions)
        ]
    counts = [
        n_directions // len(others) + (1 if t < n_directions % len(others) else 0)
        for t in range(len(others))
    ]
    # Interleave the constrained objectives so a truncated schedule
    # still covers every secondary objective early.
    index = 0
    for level in range(max(counts)):
        for t, j in enumerate(others):
            if level >= counts[t]:
                continue
            frac = (level + 1) / (counts[t] + 1)
            bound = lo_t[j] + (hi_t[j] - lo_t[j]) * frac
            directions.append(
                Direction(
                    index=index,
                    kind="epsilon",
                    label=f"epsilon:{names[j]}<={bound:.6g}",
                    primary=0,
                    bounds=((j, bound),),
                    lo=lo_t,
                    hi=hi_t,
                )
            )
            index += 1
    return directions


class _BudgetSlice:
    """One climb's capped slice of the shared pool (see
    :class:`repro.search.portfolio._BudgetSlice` — duplicated here to
    keep the module import-light)."""

    def __init__(self, pool: EvaluationBudget, cap: int | None) -> None:
        self._pool = pool
        self._cap = cap
        self._used = 0

    def take(self, n: int = 1) -> int:
        if self._cap is not None:
            n = min(n, self._cap - self._used)
        granted = self._pool.take(n) if n > 0 else 0
        self._used += granted
        return granted

    def refund(self, n: int) -> None:
        self._used -= n
        self._pool.refund(n)


class _ParetoDriver:
    """Launch/resume services for the Pareto portfolio's allocator.

    Implements :class:`repro.search.allocator.ClimbDriver`: ``launch``
    runs one scalarized first-improvement climb under a budget cap and
    offers every serially reached evaluation to the shared archive;
    multi-criteria climbs do not checkpoint, so ``resume`` is a no-op
    (fair-share dealing never resumes anyway).
    """

    def __init__(
        self,
        app: Application,
        plat: Platform,
        model: CommModel,
        evaluator: ObjectiveEvaluator,
        archive: ParetoArchive,
        pool: EvaluationBudget,
        directions: Sequence[Direction],
        root_seed: int,
        n_restarts: int,
        max_iters: int,
        max_paths: int,
        n_jobs: int | None,
    ) -> None:
        self.app = app
        self.plat = plat
        self.model = model
        self.evaluator = evaluator
        self.archive = archive
        self.pool = pool
        self.directions = list(directions)
        self.root_seed = root_seed
        self.n_restarts = n_restarts
        self.max_iters = max_iters
        self.max_paths = max_paths
        self.n_jobs = n_jobs
        self.records: list[DirectionRecord] = []
        self._seeds = pareto_seeds(
            app, model, n_restarts + 1, root_seed=root_seed
        )

    def _seed(self, index: int) -> int:
        """Seed entropy of climb ``index`` (child 0 is the probe phase)."""
        child = index + 1
        if child >= len(self._seeds):
            self._seeds = pareto_seeds(
                self.app, self.model, child + 1, root_seed=self.root_seed
            )
        return self._seeds[child]

    def _start_mapping(
        self, direction: Direction, rng: np.random.Generator
    ) -> Mapping:
        """The direction's climb start: the archive entry scoring best
        under the direction (deterministic front order), or a seeded
        random draw when the archive is still empty."""
        front = self.archive.front()
        if front:
            best = min(
                enumerate(front),
                key=lambda item: (direction.score(item[1].vector), item[0]),
            )[1]
            return Mapping(
                best.assignments, n_processors=self.plat.n_processors
            )
        return random_mapping(self.app, self.plat, rng, self.max_paths)

    def _evaluate_one(self, mapping: Mapping) -> EvalResult:
        inst = Instance(self.app, self.plat, mapping)
        return self.evaluator.evaluate(inst, self.model)

    def launch(self, index: int, cap: int | None) -> Climb:
        """Run one scalarized climb under a budget cap."""
        direction = self.directions[index % len(self.directions)]
        seed = self._seed(index)
        rng = np.random.default_rng(np.random.SeedSequence(seed))
        slice_budget = _BudgetSlice(self.pool, cap)
        climb = Climb(index=index, kind=direction.kind, seed=seed)

        mapping = self._start_mapping(direction, rng)
        best_score = _INF_SCORE
        best_result: EvalResult | None = None
        evaluations = 0
        trace: list[float] = []

        starved = slice_budget.take(1) == 0
        if not starved:
            evaluations += 1
            if mapping.num_paths <= self.max_paths:
                result = self._evaluate_one(mapping)
                self.archive.add(
                    result, mapping.assignments, source=direction.label
                )
                best_score = direction.score(result.vector())
                best_result = result
                trace.append(float(result.vector()[0]))

        iteration = 0
        while not starved and iteration < self.max_iters:
            assign = [list(s) for s in mapping.assignments]
            moves = _neighborhood_moves(assign)
            order = rng.permutation(len(moves))
            candidates: list[Mapping] = []
            for k in order:
                try:
                    candidates.append(
                        Mapping(
                            [tuple(s) for s in moves[int(k)]],
                            n_processors=self.plat.n_processors,
                        )
                    )
                except ValidationError:
                    continue
            grant = slice_budget.take(len(candidates))
            scan = candidates[:grant]
            feasible = [m2 for m2 in scan if m2.num_paths <= self.max_paths]
            insts = [Instance(self.app, self.plat, m2) for m2 in feasible]
            # Periods are n_jobs-invariant (engine guarantee); latency
            # and reliability attach in this process as each scanned
            # candidate is reached, so the archive offers — and the
            # accepted move — follow the serial trajectory exactly.
            if (
                self.n_jobs is not None
                and self.n_jobs != 1
                and len(insts) >= MIN_PARALLEL_BATCH
            ):
                periods = evaluate(
                    insts,
                    self.model,
                    max_rows=self.max_paths + 1,
                    n_jobs=self.n_jobs,
                    warm_start=self.evaluator.engine.warm_start,
                )
            elif insts:
                periods = self.evaluator.engine.evaluate(
                    insts, self.model, mode="many"
                )
            else:
                periods = []
            by_id = {
                id(m2): (inst, pr)
                for m2, inst, pr in zip(feasible, insts, periods)
            }
            charged = grant
            improved = False
            for pos, m2 in enumerate(scan):
                pair = by_id.get(id(m2))
                if pair is None:
                    continue  # path-budget infeasible: charged, score inf
                inst, period_result = pair
                result = attach_objectives(
                    inst,
                    period_result,
                    self.evaluator.objectives,
                    latency_mode=self.evaluator.latency_mode,
                    latency_datasets=self.evaluator.latency_datasets,
                )
                self.archive.add(
                    result, m2.assignments, source=direction.label
                )
                score = direction.score(result.vector())
                if score < best_score:
                    mapping, best_score, best_result = m2, score, result
                    trace.append(float(result.vector()[0]))
                    improved = True
                    # Serial-equivalent cost: refund the grant past the
                    # move the sequential scan would have stopped at.
                    slice_budget.refund(grant - (pos + 1))
                    charged = pos + 1
                    break
            evaluations += charged
            if not improved:
                if grant < len(candidates):
                    starved = True
                break
            iteration += 1

        climb.period = (
            float(best_result.vector()[0])
            if best_result is not None
            else float("inf")
        )
        climb.evaluations = evaluations
        climb.trace = tuple(trace)
        climb.mapping = mapping
        climb.rungs = (evaluations,)
        self.records.append(
            DirectionRecord(
                index=index,
                kind=direction.kind,
                label=direction.label,
                seed=seed,
                evaluations=evaluations,
                accepted=len(trace),
                best_vector=None
                if best_result is None
                else best_result.vector(),
                assignments=mapping.assignments,
            )
        )
        return climb

    def resume(self, climb: Climb, cap: int | None) -> None:
        """Multi-criteria climbs do not checkpoint — nothing to resume."""
        return


def pareto_portfolio_search(
    app: Application,
    plat: Platform,
    model: CommModel | str = "overlap",
    objectives: Sequence[str] | str = ("period", "latency"),
    n_restarts: int = 6,
    budget: int | None = 1500,
    root_seed: int = 20090302,
    max_iters: int = 100,
    max_paths: int = 3000,
    n_probes: int = 6,
    engine: BatchEngine | None = None,
    n_jobs: int | None = None,
    warm_start: bool = False,
    allocator: str | BudgetAllocator = "epsilon-constraint",
    latency_mode: str = "bound",
    latency_datasets: int = DEFAULT_LATENCY_DATASETS,
) -> ParetoPortfolioResult:
    """Multi-criteria portfolio search into a shared Pareto archive.

    The run has two deterministic phases charged to one shared
    evaluation pool:

    1. **Probe** — the two replication-policy mappings
       (:func:`repro.objectives.replication_policy_mapping`, one per
       end of the throughput/reliability trade-off) plus seeded random
       draws, up to ``n_probes``; their objective vectors set the
       per-objective ranges the direction schedule normalizes against.
    2. **Climb** — ``n_restarts`` scalarization directions (the
       allocator's strategy: epsilon sweeps or simplex-grid weights),
       each a first-improvement local search from the archive's best
       point under that direction, dealt even budget slices.

    Every evaluation the serial trajectory reaches is offered to the
    archive in direction-major order; ``n_jobs`` fans neighborhood
    period computations out to workers but charges, accepts and offers
    exactly like the serial scan — archive contents are bit-identical
    at any worker count.

    Parameters mirror :func:`repro.search.portfolio_search`; the
    additions are ``objectives`` (see
    :func:`repro.objectives.parse_objectives`), ``n_probes``,
    ``latency_mode``/``latency_datasets`` (see
    :class:`repro.objectives.ObjectiveEvaluator`) and the default
    ``allocator`` (``"epsilon-constraint"``; ``"weighted-sum"`` is the
    other multi-criteria strategy — plain period-only allocators are
    rejected here).

    Examples
    --------
    >>> from repro import Application, Platform
    >>> app = Application(works=[4.0, 9.0], file_sizes=[1.0], name="doc")
    >>> plat = Platform.homogeneous(3, speed=1.0, bandwidth=10.0)
    >>> res = pareto_portfolio_search(app, plat, "overlap",
    ...                               objectives="period,latency",
    ...                               n_restarts=2, budget=80)
    >>> res.objectives
    ('period', 'latency')
    >>> len(res.front()) >= 1
    True
    >>> res.evaluations <= 80
    True
    """
    model = CommModel.parse(model)
    names = parse_objectives(objectives)
    alloc = resolve_allocator(allocator)
    if not isinstance(alloc, ParetoAllocator):
        raise ValidationError(
            f"pareto_portfolio_search needs a Pareto allocator "
            f"(epsilon-constraint / weighted-sum), got {alloc.name!r}"
        )
    if plat.n_processors < app.n_stages:
        raise ValidationError(
            f"no valid mapping: {app.n_stages} stages need at least "
            f"{app.n_stages} processors, platform has {plat.n_processors}"
        )
    eng = (
        engine
        if engine is not None
        else BatchEngine(max_rows=max_paths + 1, warm_start=warm_start)
    )
    evaluator = ObjectiveEvaluator(
        engine=eng,
        objectives=names,
        latency_mode=latency_mode,
        latency_datasets=latency_datasets,
    )
    archive = ParetoArchive(names)
    pool = EvaluationBudget(budget)

    # Phase 1: probes — policy mappings first, seeded random fill.
    probe_seed = pareto_seeds(app, model, 1, root_seed=root_seed)[0]
    probe_rng = np.random.default_rng(np.random.SeedSequence(probe_seed))
    probes: list[Mapping] = [
        replication_policy_mapping(app, plat, policy, max_paths=max_paths)
        for policy in REPLICATION_POLICIES
    ]
    while len(probes) < n_probes:
        probes.append(random_mapping(app, plat, probe_rng, max_paths))
    vectors: list[tuple[float, ...]] = []
    with TELEMETRY.span("pareto-probe", probes=len(probes)):
        for probe in probes[:n_probes]:
            if pool.take(1) == 0:
                break
            if probe.num_paths > max_paths:
                continue
            result = evaluator.evaluate(
                Instance(app, plat, probe), model
            )
            archive.add(result, probe.assignments, source="probe")
            vectors.append(result.vector())
    if vectors:
        lo = tuple(min(v[k] for v in vectors) for k in range(len(names)))
        hi = tuple(max(v[k] for v in vectors) for k in range(len(names)))
    else:
        lo = hi = (0.0,) * len(names)

    # Phase 2: scalarized climbs dealt by the allocator.
    directions = scalarization_directions(
        alloc.strategy, names, n_restarts, lo, hi
    )
    driver = _ParetoDriver(
        app,
        plat,
        model,
        evaluator,
        archive,
        pool,
        directions,
        root_seed,
        n_restarts,
        max_iters,
        max_paths,
        n_jobs,
    )
    with TELEMETRY.span(
        "pareto-allocate", allocator=alloc.name, restarts=n_restarts
    ):
        alloc.allocate(driver)

    if TELEMETRY.enabled:
        TELEMETRY.count("search.pareto_portfolios")
        TELEMETRY.count("search.restarts", len(driver.records))
        TELEMETRY.count("search.evaluations", pool.spent)

    return ParetoPortfolioResult(
        objectives=names,
        model=model.value,
        allocator=alloc.name,
        budget=budget,
        evaluations=pool.spent,
        archive=archive,
        records=tuple(driver.records),
        directions=tuple(d.label for d in directions),
    )
