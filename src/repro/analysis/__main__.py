"""``python -m repro.analysis`` — alias of the ``repro-lint`` script."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
