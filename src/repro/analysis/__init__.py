"""``repro.analysis`` — static determinism & numerical-safety analysis.

Every reproducibility contract in this repo (bit-identical lockstep
rows, byte-identical campaign exports, prefix-stable seed trees) was at
some point defended only by after-the-fact debugging: PR 1's
``hash()``-seeded sweeps, PR 3's fancy-index accumulation order, PR 5's
``mp_star`` re-association divergence.  This package turns those
incidents into an enforced rule pack: an AST analyzer (``repro-lint`` /
``python -m repro.analysis``) that runs over ``src/``, ``tests/`` and
``benchmarks/`` as a required CI gate, with per-line
``# detlint: disable=RULE`` pragmas and a committed suppression
baseline (``.detlint-baseline.toml``) restricted to vetted false
positives.

See ``repro-lint --list-rules`` for the pack and ``repro-lint
--explain RULE`` for each rule's motivating incident; docs in
ARCHITECTURE.md ("Static analysis"), whose rule table is validated
against this registry by ``tools/check_docs.py``.
"""

from __future__ import annotations

from .baseline import (
    DEFAULT_BASELINE,
    Suppression,
    apply_baseline,
    format_baseline,
    load_baseline,
    write_baseline,
)
from .checker import (
    CRITICAL_PREFIXES,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_source_files,
)
from .cli import main
from .rules import RULES, Finding, Rule, get_rule, rule_ids

__all__ = [
    "CRITICAL_PREFIXES",
    "DEFAULT_BASELINE",
    "Finding",
    "RULES",
    "Rule",
    "Suppression",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "format_baseline",
    "get_rule",
    "iter_source_files",
    "load_baseline",
    "main",
    "rule_ids",
    "write_baseline",
]
