"""AST pass of the determinism & numerical-safety analyzer.

One :class:`ast.NodeVisitor` walk per file implements every rule in
:mod:`repro.analysis.rules`.  The checker is deliberately *local*: it
resolves imported names to dotted module paths (``np.random.rand`` ->
``numpy.random.rand``), tracks per-scope value kinds for the handful of
inferences the rules need (which names hold sets, numpy arrays, or
not-yet-written ``np.empty`` buffers), and otherwise judges each
statement on its own.  No cross-module dataflow — a finding is cheap to
verify by reading the flagged line, and anything the heuristics cannot
prove is handled by the pragma/baseline layer rather than by guessing.

Suppression happens at this layer too: a ``# detlint: disable=RULE``
(comma-separated ids, or ``all``) comment on the flagged line drops the
finding, and a ``# detlint: skip-file`` comment near the top of a file
skips it entirely.  The committed baseline is applied later by
:mod:`repro.analysis.baseline`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .rules import RULES, Finding, Rule

__all__ = [
    "CRITICAL_PREFIXES",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_source_files",
]

#: Modules under bit-identity contracts: rules with ``critical_only``
#: (NUM203) fire only on files whose repo-relative path starts here.
CRITICAL_PREFIXES = (
    "src/repro/core/",
    "src/repro/engine/",
    "src/repro/maxplus/",
    "src/repro/search/allocator.py",
)

_PRAGMA = re.compile(r"#\s*detlint:\s*disable=([A-Za-z0-9_,\s]+)")
_SKIP_FILE = re.compile(r"#\s*detlint:\s*skip-file")

#: Wall-clock sources (DET105).
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Span clocks (DET108): monotonic timing sources whose only sanctioned
#: home is the telemetry package's span channel.
_SPAN_CLOCKS = frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)

#: The one place under ``src/`` where clock reads are legal.  DET105 is
#: silent inside it; DET108 enforces the boundary everywhere else.
_TELEMETRY_PREFIX = "src/repro/telemetry/"

#: The one place under ``src/`` where sleeping and retry loops are
#: legal: the fault plane's pause()/RetryPolicy primitives.  DET109
#: enforces the boundary everywhere else.
_FAULTS_PREFIX = "src/repro/faults/"

#: Explicit-state constructors exempt from DET102.
_RANDOM_OK = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
        "numpy.random.BitGenerator",
        "random.Random",
    }
)

#: Filesystem enumeration calls (DET106), by dotted name ...
_FS_LISTING = frozenset(
    {
        "os.listdir",
        "os.scandir",
        "os.walk",
        "glob.glob",
        "glob.iglob",
    }
)
#: ... and by method name on an arbitrary receiver (pathlib).
_FS_METHODS = frozenset({"iterdir", "rglob", "glob"})

#: Reductions accepting ``dtype=`` (NUM203), as methods ...
_REDUCTION_NAMES = ("sum", "prod", "cumsum", "cumprod", "mean", "trace")
_REDUCTION_METHODS = frozenset(_REDUCTION_NAMES)
#: ... and as numpy module-level functions.
_REDUCTION_FUNCS = frozenset("numpy." + name for name in _REDUCTION_NAMES)

#: Mutable-default constructors (NUM204).
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "collections.defaultdict", "collections.OrderedDict"}
)


def _is_set_expr(node: ast.expr, checker: _ModuleChecker) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_array_expr(node: ast.expr, checker: _ModuleChecker) -> bool:
    """Conservatively: the expression is a numpy call producing indices."""
    # np.nonzero(mask)[0] and friends: unwrap constant subscripts.
    while isinstance(node, ast.Subscript):
        node = node.value
    if not isinstance(node, ast.Call):
        return False
    dotted, rooted = checker.resolve(node.func)
    if rooted and dotted is not None and dotted.startswith("numpy."):
        return True
    # Methods that yield index-like arrays from an existing array.
    if isinstance(node.func, ast.Attribute):
        return node.func.attr in ("nonzero", "argsort", "astype", "take", "repeat")
    return False


def _is_empty_expr(node: ast.expr, checker: _ModuleChecker) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted, rooted = checker.resolve(node.func)
    return rooted and dotted in ("numpy.empty", "numpy.empty_like")


@dataclass
class _Scope:
    """Name-kind facts for one function (or the module) body."""

    node: ast.AST
    set_names: set[str] = field(default_factory=set)
    array_names: set[str] = field(default_factory=set)
    empty_buffers: dict[str, ast.Call] = field(default_factory=dict)
    written: set[str] = field(default_factory=set)


def _iter_scope_statements(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function scopes."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


class _ModuleChecker(ast.NodeVisitor):
    """One-file visitor implementing the whole rule pack."""

    def __init__(
        self,
        source: str,
        path: str,
        rules: dict[str, Rule],
        critical: bool,
    ) -> None:
        self.source_lines = source.splitlines()
        self.path = path
        self.rules = rules
        self.critical = critical
        self.findings: list[Finding] = []
        self.suppressed = 0
        self.imports: dict[str, str] = {}
        self._func_stack: list[str] = []
        self._scope_stack: list[_Scope] = []
        self._sorted_args: set[ast.expr] = set()

    # -- plumbing ---------------------------------------------------

    def resolve(self, node: ast.expr) -> tuple[str | None, bool]:
        """Dotted name of an attribute chain, and whether its root is
        an imported module/name (``np.random.rand`` -> (``"numpy.
        random.rand"``, True); ``rng.random`` -> (``"rng.random"``,
        False))."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None, False
        parts.append(node.id)
        parts.reverse()
        target = self.imports.get(parts[0])
        if target is None:
            return ".".join(parts), False
        return ".".join([target] + parts[1:]), True

    def report(self, rule_id: str, node: ast.AST, detail: str = "") -> None:
        rule = self.rules.get(rule_id)
        if rule is None:
            return
        if rule.critical_only and not self.critical:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        content = ""
        if 1 <= line <= len(self.source_lines):
            content = self.source_lines[line - 1].strip()
        if self._pragma_disabled(line, rule_id):
            self.suppressed += 1
            return
        message = rule.summary if not detail else f"{rule.summary}: {detail}"
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                col=col,
                rule=rule_id,
                message=f"{message}.  {rule.fixit}",
                severity=rule.severity,
                content=content,
            )
        )

    def _pragma_disabled(self, line: int, rule_id: str) -> bool:
        if not 1 <= line <= len(self.source_lines):
            return False
        match = _PRAGMA.search(self.source_lines[line - 1])
        if match is None:
            return False
        ids = {part.strip() for part in match.group(1).split(",")}
        return rule_id in ids or "all" in ids

    def _lookup(self, kind: str, name: str) -> bool:
        for scope in reversed(self._scope_stack):
            names: set[str] = getattr(scope, kind)
            if name in names:
                return True
        return False

    # -- scope collection -------------------------------------------

    def _collect_scope(self, root: ast.AST) -> _Scope:
        scope = _Scope(node=root)
        tainted: set[str] = set()
        for node in _iter_scope_statements(root):
            if isinstance(node, ast.Assign):
                targets = node.targets
                sole = targets[0] if len(targets) == 1 else None
                if isinstance(sole, ast.Name):
                    self._classify(scope, tainted, sole.id, node.value)
                    continue
                for target in targets:
                    if isinstance(target, (ast.Tuple, ast.List)):
                        elements: list[ast.expr] = list(target.elts)
                    else:
                        elements = [target]
                    for element in elements:
                        if isinstance(element, ast.Subscript):
                            base = element.value
                            if isinstance(base, ast.Name):
                                scope.written.add(base.id)
                        elif isinstance(element, ast.Name):
                            tainted.add(element.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    self._classify(scope, tainted, node.target.id, node.value)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Subscript):
                    base = node.target.value
                    if isinstance(base, ast.Name):
                        scope.written.add(base.id)
            elif isinstance(node, ast.Call):
                self._collect_call_writes(scope, node)
        for name in sorted(tainted):
            scope.set_names.discard(name)
            scope.array_names.discard(name)
            scope.empty_buffers.pop(name, None)
        return scope

    def _classify(
        self,
        scope: _Scope,
        tainted: set[str],
        name: str,
        value: ast.expr,
    ) -> None:
        if _is_set_expr(value, self):
            if name in scope.array_names or name in scope.empty_buffers:
                tainted.add(name)
            scope.set_names.add(name)
        elif _is_empty_expr(value, self):
            if name in scope.set_names:
                tainted.add(name)
            scope.empty_buffers.setdefault(name, value)  # type: ignore[arg-type]
            scope.array_names.add(name)
        elif _is_array_expr(value, self):
            if name in scope.set_names:
                tainted.add(name)
            scope.array_names.add(name)
        else:
            # Reassigned to something we cannot classify: forget it.
            tainted.add(name)

    def _collect_call_writes(self, scope: _Scope, node: ast.Call) -> None:
        # buf.fill(x) initializes; passing buf to any callable may
        # initialize it (np.add.at(buf, ...), helper(buf), out=buf).
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.attr == "fill":
                scope.written.add(func.value.id)
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Name):
                scope.written.add(arg.id)
            elif isinstance(arg, ast.Starred) and isinstance(arg.value, ast.Name):
                scope.written.add(arg.value.id)

    def _finish_scope(self, scope: _Scope) -> None:
        for name, call in sorted(scope.empty_buffers.items()):
            if name not in scope.written:
                self.report(
                    "NUM202",
                    call,
                    f"buffer {name!r} is allocated uninitialized and "
                    f"never written in this scope",
                )

    # -- visitors ----------------------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        self._scope_stack.append(self._collect_scope(node))
        self.generic_visit(node)
        self._finish_scope(self._scope_stack.pop())

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname is not None:
                self.imports[alias.asname] = alias.name
            else:
                top = alias.name.split(".")[0]
                self.imports[top] = top
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None and node.level == 0:
            for alias in node.names:
                bound = alias.asname or alias.name
                self.imports[bound] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._func_stack.append(node.name)
        self._scope_stack.append(self._collect_scope(node))
        self.generic_visit(node)
        self._finish_scope(self._scope_stack.pop())
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults: list[ast.expr] = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self.report("NUM204", default)
            elif isinstance(default, ast.Call):
                dotted, _ = self.resolve(default.func)
                if dotted in _MUTABLE_CALLS:
                    self.report("NUM204", default)

    def visit_Call(self, node: ast.Call) -> None:
        dotted, rooted = self.resolve(node.func)

        # DET101: builtin hash() outside __hash__ implementations.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "hash"
            and "hash" not in self.imports
            and "__hash__" not in self._func_stack
        ):
            self.report("DET101", node)

        if rooted and dotted is not None:
            # DET102: global-state RNG calls.
            if (
                dotted.startswith(("numpy.random.", "random."))
                and dotted not in _RANDOM_OK
            ):
                self.report("DET102", node, dotted)
            # DET104: unsorted JSON dumps.
            if dotted in ("json.dump", "json.dumps"):
                if not self._has_true_kwarg(node, "sort_keys"):
                    self.report("DET104", node)
            # DET105/DET108: wall-clock readings in library code.  The
            # telemetry package is the sanctioned home for clocks (its
            # span channel is the whole point); everywhere else a span
            # clock additionally breaks the timing/logic separation.
            in_telemetry = self.path.startswith(_TELEMETRY_PREFIX)
            if dotted in _WALL_CLOCK and not in_telemetry:
                self.report("DET105", node, dotted)
            if dotted in _SPAN_CLOCKS and not in_telemetry:
                self.report("DET108", node, dotted)
            # DET109: bare sleeps outside the fault plane's pause().
            if dotted == "time.sleep" and not self.path.startswith(
                _FAULTS_PREFIX
            ):
                self.report("DET109", node, dotted)
            # DET106 (module form) handled below with the method form.

        self._check_fs_listing(node, dotted, rooted)
        self._check_reduction(node, dotted, rooted)
        self._check_set_pop(node)

        # Mark `sorted(X)`'s first argument as order-sanctioned before
        # descending, so DET103/DET106 skip it.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
            and "sorted" not in self.imports
            and node.args
        ):
            self._sorted_args.add(node.args[0])

        self.generic_visit(node)

    def _has_true_kwarg(self, node: ast.Call, name: str) -> bool:
        for kw in node.keywords:
            if kw.arg == name:
                if isinstance(kw.value, ast.Constant):
                    return bool(kw.value.value)
                return True  # non-literal: assume the caller means it
            if kw.arg is None:
                return True  # **kwargs may carry it; do not guess
        return False

    def _check_fs_listing(
        self,
        node: ast.Call,
        dotted: str | None,
        rooted: bool,
    ) -> None:
        listing = False
        detail = ""
        if rooted and dotted in _FS_LISTING:
            listing, detail = True, str(dotted)
        elif (
            not rooted
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_METHODS
        ):
            listing, detail = True, f"Path.{node.func.attr}"
        if listing and node not in self._sorted_args:
            self.report("DET106", node, detail)

    def _check_reduction(
        self,
        node: ast.Call,
        dotted: str | None,
        rooted: bool,
    ) -> None:
        reduction = False
        if rooted and dotted in _REDUCTION_FUNCS:
            reduction = True
        elif (
            not rooted
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _REDUCTION_METHODS
        ):
            reduction = True
        if reduction and not any(kw.arg == "dtype" for kw in node.keywords):
            self.report("NUM203", node)

    def _check_set_pop(self, node: ast.Call) -> None:
        if node.args or node.keywords:
            return
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "pop"):
            return
        receiver = func.value
        if isinstance(receiver, ast.Name) and self._lookup("set_names", receiver.id):
            self.report("DET107", node, f"{receiver.id}.pop()")
        elif _is_set_expr(receiver, self):
            self.report("DET107", node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self._check_completion_order(node)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._check_unbounded_retry(node)
        self.generic_visit(node)

    def _check_unbounded_retry(self, node: ast.While) -> None:
        """DET109 (loop form): ``while True`` re-entered from an except
        handler that has no exit path — a retry with no attempt bound
        and no budget."""
        if self.path.startswith(_FAULTS_PREFIX):
            return
        test = node.test
        if not (isinstance(test, ast.Constant) and bool(test.value)):
            return
        # Only handlers belonging to *this* loop count: walk the body
        # without descending into nested loops (a continue there
        # re-enters the inner loop) or function definitions.  A handler
        # that can neither break, raise nor return always re-enters the
        # loop — whether by explicit ``continue`` or by falling through.
        for handler in self._own_level_handlers(node.body):
            if not self._handler_can_exit(handler.body):
                self.report(
                    "DET109",
                    handler,
                    "while True loop retried from an except handler "
                    "with no attempt bound",
                )
                return

    _LOOP_OR_DEF = (
        ast.For,
        ast.AsyncFor,
        ast.While,
        ast.FunctionDef,
        ast.AsyncFunctionDef,
        ast.Lambda,
    )

    def _own_level_handlers(
        self, body: list[ast.stmt]
    ) -> Iterator[ast.ExceptHandler]:
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.ExceptHandler):
                yield node
            if not isinstance(node, self._LOOP_OR_DEF):
                stack.extend(ast.iter_child_nodes(node))

    def _handler_can_exit(self, body: list[ast.stmt]) -> bool:
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Break, ast.Raise, ast.Return)):
                return True
            if not isinstance(node, self._LOOP_OR_DEF):
                stack.extend(ast.iter_child_nodes(node))
        return False

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if iter_node in self._sorted_args:
            return
        if _is_set_expr(iter_node, self):
            self.report("DET103", iter_node)
        elif isinstance(iter_node, ast.Name):
            if self._lookup("set_names", iter_node.id):
                self.report("DET103", iter_node, f"{iter_node.id} is a set")

    def _check_completion_order(self, node: ast.For) -> None:
        if not isinstance(node.iter, ast.Call):
            return
        dotted, rooted = self.resolve(node.iter.func)
        if not rooted or dotted != "concurrent.futures.as_completed":
            return
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "append"
            ):
                self.report("NUM205", sub, "append in an as_completed loop")

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        accumulating = isinstance(node.op, (ast.Add, ast.Sub))
        if accumulating and isinstance(node.target, ast.Subscript):
            index = node.target.slice
            if isinstance(index, ast.Name):
                if self._lookup("array_names", index.id):
                    self.report("NUM201", node, f"index {index.id!r} is an array")
            elif _is_array_expr(index, self):
                self.report("NUM201", node, "index is a computed array")
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and _is_empty_expr(node.value, self):
            self.report("NUM202", node.value, "returned directly")
        self.generic_visit(node)


# -- public API ------------------------------------------------------


def _scope_of(path: str) -> str:
    top = path.split("/", 1)[0]
    return top if top in ("src", "tests", "benchmarks") else "src"


def _is_critical(path: str) -> bool:
    return path.startswith(CRITICAL_PREFIXES)


def analyze_source(
    source: str,
    path: str = "<string>",
    scope: str | None = None,
    critical: bool | None = None,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Analyze one file's text; returns sorted findings.

    ``scope`` (``src``/``tests``/``benchmarks``) and ``critical`` are
    derived from ``path`` when not given.  ``select`` limits the pack
    to the given rule ids.
    """
    normalized = path.replace("\\", "/")
    file_scope = scope if scope is not None else _scope_of(normalized)
    file_critical = critical if critical is not None else _is_critical(normalized)
    rules = {
        rule_id: rule
        for rule_id, rule in RULES.items()
        if file_scope in rule.scopes and (select is None or rule_id in set(select))
    }
    if not rules:
        return []
    for line in source.splitlines()[:3]:
        if _SKIP_FILE.search(line):
            return []
    tree = ast.parse(source, filename=path)
    checker = _ModuleChecker(source, normalized, rules, file_critical)
    checker.visit(tree)
    return sorted(checker.findings)


def analyze_file(
    path: Path,
    root: Path,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Analyze one file on disk, keyed by its ``root``-relative path."""
    try:
        relative = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relative = path.as_posix()
    return analyze_source(path.read_text(), relative, select=select)


def iter_source_files(paths: Iterable[Path]) -> Iterator[Path]:
    """The ``.py`` files under ``paths``, sorted, vendored code skipped."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "_vendor" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def analyze_paths(
    paths: Iterable[Path],
    root: Path,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Analyze every python file under ``paths``; sorted findings."""
    findings: list[Finding] = []
    for path in iter_source_files(paths):
        findings.extend(analyze_file(path, root, select=select))
    return sorted(findings)
