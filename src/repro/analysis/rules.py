"""Rule registry of the determinism & numerical-safety analyzer.

Every rule in this pack encodes a hazard class that this repository has
*actually shipped* (and later debugged) — the registry doubles as an
incident log.  Each :class:`Rule` carries the machine-checkable facts
(id, severity, which top-level directories it applies to) plus the
human half: a fix-it message, the historical bug that motivated the
rule, and a minimized bad/good example for ``repro-lint --explain``.

Rule identifiers are stable API: the suppression baseline
(:mod:`repro.analysis.baseline`), per-line ``# detlint: disable=RULE``
pragmas, the ARCHITECTURE.md rule table (validated by
``tools/check_docs.py``) and CONTRIBUTING.md all reference them.

The two families:

* ``DET1xx`` — determinism: a value that should be a pure function of
  the inputs picks up interpreter, process, wall-clock or scheduling
  state.
* ``NUM2xx`` — numerical safety: floating-point results that must be
  bit-identical across code paths are exposed to re-association,
  uninitialized memory, or silent index-collision semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding", "Rule", "RULES", "get_rule", "rule_ids"]

#: Top-level directories a rule may apply to (the analyzer maps every
#: file to one of these scopes; unknown locations default to ``src``,
#: the strictest).
SCOPES = ("src", "tests", "benchmarks")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule fired at a source location.

    Ordering is (path, line, col, rule) so sorted findings give
    byte-deterministic reports.  ``content`` is the stripped source
    line — the suppression baseline keys on it instead of the line
    number, so unrelated edits above a vetted finding do not invalidate
    its baseline entry.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    severity: str = field(compare=False)
    content: str = field(compare=False)

    def to_dict(self) -> dict[str, object]:
        """Plain-data form used by ``--format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
            "content": self.content,
        }


@dataclass(frozen=True)
class Rule:
    """One hazard class: detection scope plus the story behind it."""

    id: str
    name: str
    severity: str
    summary: str
    fixit: str
    incident: str
    example: str
    scopes: frozenset[str]
    critical_only: bool = False

    def explain(self) -> str:
        """The ``--explain`` text: summary, incident, fix, example."""
        where = ", ".join(sorted(self.scopes))
        if self.critical_only:
            where += " (bit-identity-critical modules only)"
        return (
            f"{self.id} ({self.name}) [{self.severity}] — {self.summary}\n"
            f"\n"
            f"Applies to: {where}\n"
            f"\n"
            f"Motivating incident:\n{self.incident}\n"
            f"\n"
            f"Fix:\n{self.fixit}\n"
            f"\n"
            f"Example:\n{self.example}"
        )


def _rule(
    id: str,
    name: str,
    severity: str,
    summary: str,
    fixit: str,
    incident: str,
    example: str,
    scopes: tuple[str, ...] = SCOPES,
    critical_only: bool = False,
) -> Rule:
    for scope in scopes:
        if scope not in SCOPES:
            raise ValueError(f"unknown scope {scope!r} for rule {id}")
    return Rule(
        id=id,
        name=name,
        severity=severity,
        summary=summary,
        fixit=fixit,
        incident=incident,
        example=example,
        scopes=frozenset(scopes),
        critical_only=critical_only,
    )


_RULE_LIST = [
    _rule(
        "DET101",
        "builtin-hash",
        "error",
        "builtin hash() feeding a seed, cache key or persisted value",
        "Derive stable digests with zlib.crc32 of an explicit byte "
        "encoding (see repro.campaign.spec.stable_digest) or "
        "hashlib.sha256; reserve hash() for __hash__ implementations.",
        "PR 1: experiment sweep seeds were derived with builtin hash() "
        "of the family name.  hash() of str is randomized per process "
        "(PYTHONHASHSEED), so every interpreter run swept a different "
        "seed tree and no published number could be reproduced.  Fixed "
        "by switching to zlib.crc32 with cross-interpreter regression "
        "tests.",
        "    # bad\n"
        "    seed = hash(config.name) % 2**31\n"
        "    # good\n"
        "    seed = zlib.crc32(config.name.encode()) % 2**31",
        scopes=("src", "benchmarks"),
    ),
    _rule(
        "DET102",
        "global-random",
        "error",
        "module-level random/np.random call (hidden global RNG state)",
        "Thread an explicit seeded generator: np.random.default_rng("
        "seed) / np.random.SeedSequence spawning / random.Random(seed).",
        "PR 2/PR 5: every reproducibility contract in the search stack "
        "(prefix-stable seed trees, bit-identical pausable climbs) "
        "exists because RNG state is explicit.  One module-level "
        "np.random.shuffle in a library path would silently couple "
        "results to import order and sibling callers.",
        "    # bad\n"
        "    jitter = np.random.uniform(0.0, 1.0, n)\n"
        "    # good\n"
        "    rng = np.random.default_rng(seed)\n"
        "    jitter = rng.uniform(0.0, 1.0, n)",
        scopes=("src", "benchmarks"),
    ),
    _rule(
        "DET103",
        "set-iteration",
        "warning",
        "iterating a set, whose order varies with hash randomization",
        "Wrap the iterable in sorted(...) (or iterate a list/dict, "
        "which preserve insertion order).",
        "Set iteration order depends on PYTHONHASHSEED for str "
        "elements.  Anywhere it feeds float accumulation or serialized "
        "output — the exact paths the campaign store digests — two "
        "runs of the same code can produce different bytes.",
        "    # bad\n"
        "    for proc in critical_procs:  # a set\n"
        "        total += load[proc]\n"
        "    # good\n"
        "    for proc in sorted(critical_procs):\n"
        "        total += load[proc]",
    ),
    _rule(
        "DET104",
        "unsorted-json",
        "error",
        "json.dump/json.dumps without sort_keys on an export path",
        "Route exports through repro.utils.canonical_json (sorted keys, "
        "repr floats, NaN rejected) or pass sort_keys=True.",
        "PR 3/PR 5: campaign artifacts and the content-addressed "
        "ResultStore digest canonical JSON bytes; the PR-5 campaign "
        "de-flake moved the CLI's machine-readable outputs onto "
        "canonical_json after grep-based CI assertions broke on "
        "key-order drift.  Any dict-ordered dump on an export path "
        "breaks byte-identical resume/export contracts.",
        "    # bad\n"
        "    Path(out).write_text(json.dumps(payload, indent=2))\n"
        "    # good\n"
        "    Path(out).write_text(canonical_json(payload, indent=2))",
        scopes=("src", "benchmarks"),
    ),
    _rule(
        "DET105",
        "wall-clock",
        "error",
        "wall-clock reading in library code (time.time/perf_counter)",
        "Keep timing in benchmarks/ (reported, never gated) or accept "
        "a clock callable so tests can inject a fake one; library "
        "results must be pure functions of their inputs.",
        "PR 5/PR 6: the howard_many >=4x wall-clock contract passed on "
        "the dev box and failed on CI hardware (3.27x in BENCH_4.json) "
        "— two committed reports now record a hardware-dependent "
        "failure of code with no defect.  PR 6 rebuilt the perf gates "
        "on deterministic round/op counts; this rule keeps wall-clock "
        "out of src/ so it cannot leak into contracts again.",
        "    # bad (library code)\n"
        "    started = time.perf_counter()\n"
        "    # good: benchmarks measure, libraries count\n"
        "    rounds = solution.n_rounds",
        scopes=("src",),
    ),
    _rule(
        "DET106",
        "fs-order",
        "warning",
        "directory listing order (os.listdir/glob/iterdir) used as-is",
        "Wrap the listing in sorted(...): filesystem enumeration order "
        "is an OS/filesystem artifact, not a contract.",
        "The campaign store digests whole result sets; DVC (the model "
        "for the planned distributed store) sorts every directory walk "
        "before hashing for exactly this reason — two hosts listing "
        "one directory can disagree, so push/pull merges would "
        "spuriously diff.",
        "    # bad\n"
        "    for spec in specs_dir.glob(\"*.json\"):\n"
        "        runs.append(load(spec))\n"
        "    # good\n"
        "    for spec in sorted(specs_dir.glob(\"*.json\")):\n"
        "        runs.append(load(spec))",
    ),
    _rule(
        "DET107",
        "set-pop",
        "warning",
        "set.pop() removes a hash-order-dependent arbitrary element",
        "Pop deterministically: sort first, or use a list/deque; "
        "min(s)/max(s) when any extreme element will do.",
        "Same root cause as DET103: which element .pop() returns "
        "depends on hash randomization.  In a worklist algorithm "
        "(e.g. the petri reduction passes) it silently reorders the "
        "whole traversal between runs.",
        "    # bad\n"
        "    node = worklist.pop()  # worklist: set[int]\n"
        "    # good\n"
        "    node = min(worklist)\n"
        "    worklist.discard(node)",
    ),
    _rule(
        "DET108",
        "timing-outside-telemetry",
        "error",
        "span clock (time.monotonic/perf_counter) outside repro.telemetry",
        "Record timings through repro.telemetry spans "
        "(TELEMETRY.span(...)) — the one layer allowed to read clocks — "
        "and keep the measured values out of logic and contracts.",
        "PR 8: the telemetry layer splits instrumentation into "
        "deterministic counters (gateable) and wall-clock spans "
        "(diagnostics only).  That separation only holds if "
        "src/repro/telemetry/ stays the single home for monotonic "
        "clocks; a perf_counter call anywhere else in src/ is timing "
        "about to leak into logic — exactly the drift DET105 exists "
        "to stop.",
        "    # bad (library code)\n"
        "    t0 = time.perf_counter()\n"
        "    solve()\n"
        "    elapsed = time.perf_counter() - t0\n"
        "    # good\n"
        "    with TELEMETRY.span(\"group-solve\", rows=B):\n"
        "        solve()",
        scopes=("src",),
    ),
    _rule(
        "DET109",
        "ad-hoc-sleep-retry",
        "error",
        "bare time.sleep or unbounded retry loop outside repro.faults",
        "Route deliberate delays through repro.faults.pause and wrap "
        "flaky operations in a RetryPolicy (bounded attempts, "
        "deterministic seeded jitter, total-sleep budget) instead of "
        "hand-rolled sleep/retry loops.",
        "PR 9: the fault plane exists because ad-hoc resilience is "
        "untestable — a bare sleep is an invisible timeout nobody "
        "tunes, and a while-True retry around a locked store hangs a "
        "fabric worker forever instead of degrading to the spill "
        "journal.  Consolidating every delay into "
        "src/repro/faults/ (pause + RetryPolicy) made retry behavior "
        "deterministic, budgeted, and chaos-injectable; this rule "
        "keeps new sleeps from leaking back in anywhere else.",
        "    # bad\n"
        "    while True:\n"
        "        try:\n"
        "            return store.commit()\n"
        "        except sqlite3.OperationalError:\n"
        "            time.sleep(0.1)\n"
        "            continue\n"
        "    # good\n"
        "    policy = RetryPolicy(attempts=4, budget=2.0)\n"
        "    return policy.run(\"store.commit\", store.commit,\n"
        "                      retryable=(sqlite3.OperationalError,))",
        scopes=("src",),
    ),
    _rule(
        "NUM201",
        "fancy-index-accumulate",
        "warning",
        "a[idx] += ... with an array index drops repeated indices",
        "Use np.add.at(a, idx, v) (unbuffered, applies every "
        "occurrence, deterministic order) when idx can repeat; keep "
        "+= only for indices that are provably unique.",
        "PR 3: per-resource cycle-time accumulation indexed by "
        "transition->resource arrays; fancy-index += applies the "
        "*last* write per repeated index instead of summing, and the "
        "fix (np.add.at with a documented accumulation order) is what "
        "makes CycleTimePlan byte-stable.  PR 5's mp_star "
        "false-divergence hunt started from a nearby hazard of the "
        "same shape.",
        "    # bad\n"
        "    cycle_sum[nodes] += weights  # nodes may repeat\n"
        "    # good\n"
        "    np.add.at(cycle_sum, nodes, weights)",
        scopes=("src", "benchmarks"),
    ),
    _rule(
        "NUM202",
        "escaping-empty",
        "error",
        "np.empty buffer that is never written before it can escape",
        "Write every element before the buffer escapes, or allocate "
        "np.zeros/np.full so unwritten lanes hold defined values.",
        "The lockstep Howard kernels (PR 4) allocate np.empty "
        "scratch for policies, lane tables and potentials and fill "
        "them with masked scatter writes; a lane the mask misses "
        "returns whatever bytes malloc recycled — nondeterministic "
        "*and* wrong.  Bit-identity fuzzing cannot even catch it "
        "reliably, because the garbage is sometimes stable.",
        "    # bad\n"
        "    out = np.empty(n)\n"
        "    return out\n"
        "    # good\n"
        "    out = np.zeros(n)\n"
        "    return out",
    ),
    _rule(
        "NUM203",
        "dtypeless-reduction",
        "warning",
        "dtype-less reduction in a bit-identity-critical module",
        "Pass an explicit dtype= (np.float64 / np.int64) so the "
        "accumulator type — and therefore the rounding — is pinned by "
        "the source instead of inherited from the input array.",
        "PR 5: mp_star's squared-matrix reductions drifted 1 ulp past "
        "the settling limit purely from accumulation details, and was "
        "misreported as a positive-weight cycle.  PR 4's scalar cycle "
        "sums had to be made *sequential* to share association with "
        "the lockstep path.  In modules under bit-identity contracts, "
        "reductions must say what they accumulate in.",
        "    # bad (inside repro.maxplus / repro.engine / repro.core)\n"
        "    total = weights[idx].sum()\n"
        "    # good\n"
        "    total = weights[idx].sum(dtype=np.float64)",
        scopes=("src",),
        critical_only=True,
    ),
    _rule(
        "NUM204",
        "mutable-default",
        "error",
        "mutable default argument shared across calls",
        "Default to None and create the list/dict/set inside the "
        "function body.",
        "A mutable default is evaluated once at import: results "
        "accumulated into it leak between calls, so the first sweep "
        "poisons the second — state that, like global RNG, makes "
        "outputs depend on call history rather than arguments.",
        "    # bad\n"
        "    def run(extra_models=[]):\n"
        "        ...\n"
        "    # good\n"
        "    def run(extra_models=None):\n"
        "        extra_models = [] if extra_models is None else "
        "extra_models",
    ),
    _rule(
        "NUM205",
        "completion-order",
        "error",
        "appending results in as_completed order (scheduling-dependent)",
        "Key results by a stable index — futures = {pool.submit(...): "
        "i}; results[i] = fut.result() — and keep lists ordered by "
        "submission, never by completion.",
        "PR 1's deterministic ProcessPool sharding and PR 3's campaign "
        "executor both key every future back to its submission span "
        "precisely so that worker scheduling cannot reorder rows; an "
        "appended-in-completion-order list would make exports differ "
        "run to run with identical values.",
        "    # bad\n"
        "    for fut in as_completed(futures):\n"
        "        results.append(fut.result())\n"
        "    # good\n"
        "    for fut in as_completed(futures):\n"
        "        results[futures[fut]] = fut.result()",
        scopes=("src", "benchmarks"),
    ),
]

#: The shipped rule pack, keyed by rule id, in id order.
RULES: dict[str, Rule] = {r.id: r for r in sorted(_RULE_LIST, key=lambda r: r.id)}


def get_rule(rule_id: str) -> Rule:
    """Look up a rule by id (raises ``KeyError`` with the known ids)."""
    try:
        return RULES[rule_id]
    except KeyError:
        known = ", ".join(RULES)
        raise KeyError(f"unknown rule {rule_id!r} (known: {known})") from None


def rule_ids() -> tuple[str, ...]:
    """All registered rule ids, sorted."""
    return tuple(RULES)
