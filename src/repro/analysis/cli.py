"""``repro-lint`` — the analyzer's command line.

Usage (from the repo root; ``python -m repro.analysis`` is identical)::

    repro-lint                         # src/ tests/ benchmarks/, text
    repro-lint --format json src/      # machine-readable findings
    repro-lint --explain DET101        # rule doc + motivating incident
    repro-lint --list-rules            # one line per registered rule
    repro-lint --write-baseline        # snapshot findings (then vet!)

Exit codes: 0 — clean (every finding pragma- or baseline-suppressed);
1 — at least one un-suppressed finding; 2 — usage or input error.
Stale baseline entries are reported on stderr but do not fail the run —
they mean a finding was fixed and the entry should be deleted.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .baseline import (
    DEFAULT_BASELINE,
    Suppression,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .checker import analyze_paths
from .rules import RULES, Finding, get_rule

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism & numerical-safety analyzer "
        "with this repo's incident-derived rule pack.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to analyze (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="findings as human-readable text or canonical JSON",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="suppression baseline file (default: %(default)s)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline (report vetted false positives too)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0; "
        "every new entry carries a TODO reason that must be vetted",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="print a rule's documentation and motivating incident",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _print_text(findings: list[Finding], stale: int, n_baselined: int) -> None:
    for finding in findings:
        print(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule} [{finding.severity}] {finding.message}"
        )
        if finding.content:
            print(f"    {finding.content}")
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    print(
        f"detlint: {len(findings)} finding(s) "
        f"({errors} error(s), {warnings} warning(s)); "
        f"{n_baselined} baselined"
        + (f", {stale} STALE baseline entr(y/ies)" if stale else "")
    )


def _print_json(
    findings: list[Finding],
    stale_entries: list[Suppression],
    n_baselined: int,
) -> None:
    from ..utils import canonical_json

    payload = {
        "version": 1,
        "findings": [f.to_dict() for f in findings],
        "errors": sum(1 for f in findings if f.severity == "error"),
        "warnings": sum(1 for f in findings if f.severity == "warning"),
        "baselined": n_baselined,
        "stale_baseline": [vars(s) for s in stale_entries],
    }
    print(canonical_json(payload, indent=2))


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:  # pragma: no cover - e.g. `repro-lint | head`
        # The downstream reader closed the pipe; exit quietly like grep
        # does, and point stdout at devnull so the interpreter's shutdown
        # flush does not raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            scope = "+".join(sorted(rule.scopes))
            extra = " [critical-only]" if rule.critical_only else ""
            print(
                f"{rule.id}  {rule.name:24s} {rule.severity:7s} "
                f"({scope}){extra}  {rule.summary}"
            )
        return 0

    if args.explain is not None:
        try:
            print(get_rule(args.explain.strip().upper()).explain())
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        return 0

    select = None
    if args.select is not None:
        select = [part.strip().upper() for part in args.select.split(",") if part]
        unknown = [rule_id for rule_id in select if rule_id not in RULES]
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    raw_paths = args.paths or ["src", "tests", "benchmarks"]
    paths = [Path(p) for p in raw_paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    try:
        findings = analyze_paths(paths, Path.cwd(), select=select)
    except (SyntaxError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        existing = [] if args.no_baseline else load_baseline(args.baseline)
        reasons = {(s.rule, s.path, s.content): s.reason for s in existing}
        write_baseline(findings, args.baseline, reasons)
        print(f"wrote {len(findings)} suppression(s) to {args.baseline}")
        return 0

    suppressions = [] if args.no_baseline else load_baseline(args.baseline)
    kept, baselined, stale = apply_baseline(findings, suppressions)

    if args.format == "json":
        _print_json(kept, list(stale), len(baselined))
    else:
        _print_text(kept, len(stale), len(baselined))
    for entry in stale:
        print(
            f"stale baseline entry (fixed? delete it): "
            f"{entry.rule} {entry.path}: {entry.content!r}",
            file=sys.stderr,
        )
    return 1 if kept else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
