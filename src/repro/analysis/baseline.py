"""Suppression baseline: vetted false positives, committed to the repo.

The CI gate requires ``repro-lint`` to exit zero at HEAD, and the
triage policy (CONTRIBUTING.md) requires every *true* positive to be
fixed — so the committed ``.detlint-baseline.toml`` may contain only
findings a human has vetted as false positives, each with a one-line
justification.

Entries key on ``(rule, path, content)`` where ``content`` is the
stripped source line.  Keying on content instead of a line number means
edits elsewhere in the file do not invalidate the entry, while any edit
to the flagged line itself — which may well change the verdict —
surfaces the finding again.  An entry that no longer matches anything
is *stale* and reported, so the baseline can only shrink or be
consciously re-vetted, never silently rot.

The file format is TOML (readable with stdlib ``tomllib``; a minimal
vendored parser keeps Python 3.10 working)::

    [[suppression]]
    rule = "NUM203"
    path = "src/repro/maxplus/lawler.py"
    content = "hi = float(np.maximum(w, 0.0).sum()) + 1.0"
    reason = "binary-search bracket only; never exported or compared"
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from .rules import Finding

__all__ = [
    "DEFAULT_BASELINE",
    "Suppression",
    "apply_baseline",
    "format_baseline",
    "load_baseline",
    "write_baseline",
]

#: Conventional location, relative to the repo root.
DEFAULT_BASELINE = ".detlint-baseline.toml"


@dataclass(frozen=True, order=True)
class Suppression:
    """One vetted false positive."""

    rule: str
    path: str
    content: str
    reason: str = ""

    def matches(self, finding: Finding) -> bool:
        return (
            self.rule == finding.rule
            and self.path == finding.path
            and self.content == finding.content
        )


def _parse_entries(data: object, source: str) -> list[Suppression]:
    if not isinstance(data, dict):
        raise ValueError(f"{source}: baseline must be a TOML table")
    entries = data.get("suppression", [])
    if not isinstance(entries, list):
        raise ValueError(f"{source}: [[suppression]] must be an array of tables")
    out: list[Suppression] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(f"{source}: suppression #{index} is not a table")
        try:
            out.append(
                Suppression(
                    rule=str(entry["rule"]),
                    path=str(entry["path"]),
                    content=str(entry["content"]),
                    reason=str(entry.get("reason", "")),
                )
            )
        except KeyError as exc:
            raise ValueError(
                f"{source}: suppression #{index} is missing key {exc}"
            ) from None
    return out


def _loads_toml_subset(text: str, source: str) -> dict[str, object]:
    """Parse the exact TOML subset :func:`format_baseline` emits.

    Python 3.10 has no ``tomllib``; since the baseline is written by
    this module, round-tripping its own output (comments, blank lines,
    ``[[suppression]]`` headers, ``key = "basic string"`` pairs) is all
    the fallback needs.
    """
    entries: list[dict[str, object]] = []
    current: dict[str, object] | None = None
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line == "[[suppression]]":
            current = {}
            entries.append(current)
            continue
        key, sep, value = line.partition("=")
        key, value = key.strip(), value.strip()
        if current is None or not sep or not value.startswith('"'):
            raise ValueError(f"{source}:{number}: unsupported TOML: {line!r}")
        try:
            current[key] = json.loads(value)
        except json.JSONDecodeError:
            raise ValueError(
                f"{source}:{number}: unsupported TOML string: {value!r}"
            ) from None
    return {"suppression": entries}


def _loads_toml(text: str, source: str) -> dict[str, object]:
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python 3.10
        return _loads_toml_subset(text, source)
    return tomllib.loads(text)


def load_baseline(path: str | Path) -> list[Suppression]:
    """Parse a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return []
    return _parse_entries(_loads_toml(path.read_text(), str(path)), str(path))


def apply_baseline(
    findings: Sequence[Finding],
    suppressions: Sequence[Suppression],
) -> tuple[list[Finding], list[Finding], list[Suppression]]:
    """Split findings into (kept, suppressed) and return stale entries.

    A suppression may match several findings (identical lines); it is
    stale only when it matches none.
    """
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    used: set[Suppression] = set()
    for finding in findings:
        match = next((s for s in suppressions if s.matches(finding)), None)
        if match is None:
            kept.append(finding)
        else:
            suppressed.append(finding)
            used.add(match)
    stale = sorted(s for s in suppressions if s not in used)
    return kept, suppressed, stale


def _toml_str(value: str) -> str:
    # JSON string escaping is a valid TOML basic string for the
    # characters that appear in rule ids, paths and source lines.
    return json.dumps(value)  # detlint: disable=DET104 - escaper, not an export


def format_baseline(
    findings: Iterable[Finding],
    reasons: dict[tuple[str, str, str], str] | None = None,
) -> str:
    """Render findings as baseline text (deterministic order).

    ``reasons`` maps ``(rule, path, content)`` to the justification;
    unvetted entries get an explicit TODO so review cannot miss them.
    """
    lines = [
        "# detlint suppression baseline.",
        "#",
        "# Policy (CONTRIBUTING.md): true positives are fixed, never",
        "# baselined.  Every entry below is a vetted false positive and",
        "# carries a one-line justification in `reason`.",
    ]
    seen: set[tuple[str, str, str]] = set()
    for finding in sorted(findings):
        key = (finding.rule, finding.path, finding.content)
        if key in seen:
            continue
        seen.add(key)
        reason = (reasons or {}).get(key, "TODO: vet and justify, or fix")
        lines.append("")
        lines.append("[[suppression]]")
        lines.append(f"rule = {_toml_str(finding.rule)}")
        lines.append(f"path = {_toml_str(finding.path)}")
        lines.append(f"content = {_toml_str(finding.content)}")
        lines.append(f"reason = {_toml_str(reason)}")
    return "\n".join(lines) + "\n"


def write_baseline(
    findings: Iterable[Finding],
    path: str | Path,
    reasons: dict[tuple[str, str, str], str] | None = None,
) -> None:
    """Write ``format_baseline`` output to ``path``."""
    Path(path).write_text(format_baseline(findings, reasons), newline="")
