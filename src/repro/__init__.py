"""repro — throughput of replicated workflows on heterogeneous platforms.

A faithful, self-contained reproduction of

    Anne Benoit, Matthieu Gallet, Bruno Gaujal, Yves Robert,
    "Computing the throughput of replicated workflows on heterogeneous
    platforms", LIP RR-2009-08 / ICPP 2009.

Quick start::

    from repro import Application, Platform, Mapping, Instance, compute_period

    inst = Instance(
        Application(works=[4.0, 8.0, 4.0], file_sizes=[2.0, 2.0]),
        Platform.homogeneous(5, speed=1.0, bandwidth=1.0),
        Mapping([(0,), (1, 2), (3,)]),       # middle stage replicated
    )
    result = compute_period(inst, "overlap")
    print(result.summary())

Sub-packages
------------
``repro.core``
    Applications, platforms, replicated mappings, round-robin paths,
    resource cycle-times, and the :func:`compute_period` entry point.
``repro.petri``
    Timed Petri net construction (both one-port models), validation,
    column reduction / pattern graphs (Theorem 1), DOT export.
``repro.maxplus``
    Max-plus algebra and maximum-cycle-ratio solvers (Karp, Lawler,
    Howard) used to extract critical cycles.
``repro.simulation``
    Exact discrete-event simulation, per-resource schedules, Gantt charts.
``repro.algorithms``
    Theorem 1 polynomial algorithm, full-TPN solver, period bounds.
``repro.experiments``
    Paper examples A/B/C, the random-instance generator and the Table 2
    campaign harness.
``repro.engine``
    Batched throughput evaluation: per-topology TPN-skeleton caching,
    vectorized weight re-stamping, multi-process sharding and opt-in
    Howard warm starts — bit-identical to :func:`compute_period`,
    several times faster on sweeps (``evaluate_batch`` /
    ``BatchEngine``).
``repro.search``
    Mapping-space optimization: the multi-start portfolio
    (``portfolio_search``) with diversified restarts, a shared
    evaluation budget and deterministic seeding, plus the
    multi-criteria Pareto portfolio (``pareto_portfolio_search``).
``repro.objectives``
    The multi-criteria objective plane: period × latency × reliability
    (``EvalResult``, ``parse_objectives``, ``ParetoArchive``,
    replication policies, the reliability model).
``repro.campaign``
    Durable experiment campaigns: declarative JSON/TOML scenario specs,
    a content-addressed SQLite result store and a resumable streaming
    executor (``CampaignSpec`` / ``ResultStore`` / ``run_campaign``).
``repro.extensions``
    Beyond-paper extras: mapping heuristics and stochastic platforms.

The names most users need are re-exported here: the core model types
(``Application`` / ``Platform`` / ``Mapping`` / ``Instance``), the
period and latency oracles (``compute_period`` / ``measure_latency``),
the batch engine (``BatchEngine``), the portfolio searches
(``portfolio_search`` / ``pareto_portfolio_search``) and the campaign
subsystem's entry points (``CampaignSpec`` / ``run_campaign``).
"""

from .core import (
    Application,
    CommModel,
    CycleTimeReport,
    Instance,
    LatencyReport,
    Mapping,
    Path,
    PeriodResult,
    Platform,
    ProcessorCycleTime,
    Stage,
    compute_period,
    compute_throughput,
    cycle_times,
    enumerate_paths,
    format_path_table,
    maximum_cycle_time,
    measure_latency,
    path_latency_bound,
    path_of_dataset,
)
from .campaign import CampaignSpec, run_campaign
from .engine import BatchEngine
from .errors import (
    DeadlockError,
    MappingError,
    ReplicationExplosionError,
    ReproError,
    SimulationError,
    SolverError,
    StoreCorruptionError,
    ValidationError,
)
from .objectives import EvalResult, ParetoArchive, parse_objectives
from .search import pareto_portfolio_search, portfolio_search

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core models
    "Application",
    "Stage",
    "Platform",
    "Mapping",
    "Instance",
    "CommModel",
    # paths
    "Path",
    "enumerate_paths",
    "path_of_dataset",
    "format_path_table",
    # cycle times & period
    "CycleTimeReport",
    "ProcessorCycleTime",
    "cycle_times",
    "maximum_cycle_time",
    "PeriodResult",
    "compute_period",
    "compute_throughput",
    "LatencyReport",
    "measure_latency",
    "path_latency_bound",
    # batch evaluation
    "BatchEngine",
    # objective plane
    "EvalResult",
    "ParetoArchive",
    "parse_objectives",
    # mapping search
    "portfolio_search",
    "pareto_portfolio_search",
    # campaigns
    "CampaignSpec",
    "run_campaign",
    # errors
    "ReproError",
    "ValidationError",
    "MappingError",
    "DeadlockError",
    "SolverError",
    "ReplicationExplosionError",
    "SimulationError",
    "StoreCorruptionError",
]
