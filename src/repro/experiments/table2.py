"""Table 2 reproduction: how rare are mappings without critical resource?

Runs the six experiment families under both communication models and
tabulates, per row, the number of instances whose period strictly
exceeds every resource cycle-time.  The paper's findings, which this
harness reproduces in *shape*:

* OVERLAP ONE-PORT: **zero** cases without critical resource across all
  2576 experiments;
* STRICT ONE-PORT: a handful of cases (14/220, 5/68, 10/1000) confined
  to the *small-time-range* rows, with relative gaps below 3-9%.

``scale`` shrinks the per-row counts proportionally for quick runs; the
full campaign (scale=1.0) reproduces the paper's 5152 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.models import CommModel
from .generator import TABLE2_CONFIGS, ExperimentConfig
from .runner import DEFAULT_MAX_PATHS, ExperimentRecord, run_family

if TYPE_CHECKING:  # pragma: no cover - layering: campaign sits above
    from ..campaign.store import ResultStore

__all__ = ["Table2Row", "run_table2", "format_table2"]


@dataclass(frozen=True)
class Table2Row:
    """Aggregated result of one (family, model) row of Table 2.

    Attributes
    ----------
    config:
        The experiment family.
    model:
        "overlap" or "strict".
    total:
        Number of experiments run.
    no_critical:
        How many had no critical resource (``P > M_ct``).
    max_gap:
        Largest relative gap observed (the paper reports "diff less than
        X%" per row).
    records:
        The raw per-experiment records.
    """

    config: ExperimentConfig
    model: str
    total: int
    no_critical: int
    max_gap: float
    records: tuple[ExperimentRecord, ...]


def run_table2(
    scale: float = 1.0,
    models: tuple[str, ...] = ("overlap", "strict"),
    configs: tuple[ExperimentConfig, ...] = TABLE2_CONFIGS,
    root_seed: int = 20090302,
    n_jobs: int | None = None,
    max_paths: int = DEFAULT_MAX_PATHS,
    engine: str = "batch",
    store: "ResultStore | None" = None,
) -> list[Table2Row]:
    """Run the full campaign (or a scaled-down version).

    Parameters
    ----------
    scale:
        Multiplier on each family's paper count (minimum 1 experiment).
    models:
        Which communication models to sweep.
    n_jobs:
        Parallel worker processes (0 = all cores).
    engine:
        Evaluation engine passed to :func:`run_family` (``"batch"`` or
        ``"percall"``; identical records either way).
    store:
        Optional content-addressed store passed to :func:`run_family`:
        re-running Table 2 (or scaling it up) only computes the points
        not already stored.
    """
    rows: list[Table2Row] = []
    for model in models:
        model = CommModel.parse(model)
        for config in configs:
            count = max(1, round(config.count * scale))
            records = run_family(
                config,
                model,
                count=count,
                root_seed=root_seed,
                n_jobs=n_jobs,
                max_paths=max_paths,
                engine=engine,
                store=store,
            )
            no_crit = [r for r in records if not r.critical]
            rows.append(
                Table2Row(
                    config=config,
                    model=model.value,
                    total=len(records),
                    no_critical=len(no_crit),
                    max_gap=max((r.gap for r in no_crit), default=0.0),
                    records=tuple(records),
                )
            )
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    """Render rows in the paper's layout (counts of no-critical cases)."""
    lines = [
        "Size / time ranges                             | model   | "
        "#no-critical / total | max gap",
        "-" * 100,
    ]
    current_model = None
    for row in rows:
        if row.model != current_model:
            current_model = row.model
            header = "With overlap:" if row.model == "overlap" else "Without overlap:"
            lines.append(header)
        gap = f"{100 * row.max_gap:.1f}%" if row.no_critical else "-"
        lines.append(
            f"  {row.config.name:<44} | {row.model:<7} | "
            f"{row.no_critical:>5} / {row.total:<12} | {gap}"
        )
    return "\n".join(lines)
