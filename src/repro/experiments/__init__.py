"""Experimental harness: paper examples, random sweeps, Table 2."""

from .examples_paper import (
    EXAMPLE_A_EXPECTED,
    EXAMPLE_B_EXPECTED,
    EXAMPLE_C_STRUCTURE,
    example_a,
    example_b,
    example_c,
)
from .generator import (
    TABLE2_CONFIGS,
    ExperimentConfig,
    instance_from_config,
    random_instance,
    random_replication,
)
from .analysis import FamilySummary, feature_report, gap_histogram, summarize
from .io import (
    portfolio_to_json,
    records_from_csv,
    records_to_csv,
    restarts_to_csv,
)
from .runner import ExperimentRecord, family_seeds, run_family, run_single
from .table2 import Table2Row, format_table2, run_table2

__all__ = [
    "example_a",
    "example_b",
    "example_c",
    "EXAMPLE_A_EXPECTED",
    "EXAMPLE_B_EXPECTED",
    "EXAMPLE_C_STRUCTURE",
    "ExperimentConfig",
    "TABLE2_CONFIGS",
    "random_instance",
    "random_replication",
    "instance_from_config",
    "ExperimentRecord",
    "run_single",
    "run_family",
    "family_seeds",
    "Table2Row",
    "run_table2",
    "format_table2",
    "records_to_csv",
    "records_from_csv",
    "portfolio_to_json",
    "restarts_to_csv",
    "FamilySummary",
    "summarize",
    "gap_histogram",
    "feature_report",
]
