"""Experiment runner: sweep random instances, in series or in parallel.

Each experiment draws an instance from a Table 2 family, computes the
exact period and the cycle-time bound ``M_ct`` under one communication
model, and records whether the bound is attained ("critical resource").

Reproducibility and parallelism: every experiment owns a child of the
root :class:`numpy.random.SeedSequence`, so results are bit-identical
whatever the worker count.  The family's position in the seed tree is
derived with :func:`zlib.crc32` — a *stable* digest of the family name —
never with Python's :func:`hash`, whose per-process randomization
(``PYTHONHASHSEED``) would silently make "reproducible" sweeps differ
between interpreter runs.

Two execution engines are available (``engine=`` parameter):

* ``"batch"`` (default) — instances are generated up front and evaluated
  through :func:`repro.engine.evaluate_batch`, which caches the TPN
  skeleton and solver preparation per mapping topology and shards large
  sweeps across worker processes with deterministic chunking;
* ``"percall"`` — the historical path: one
  :func:`~repro.core.throughput.compute_period` call per experiment,
  optionally fanned out one task per seed.

Both engines produce bit-identical :class:`ExperimentRecord` lists.
"""

from __future__ import annotations

import os
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..core.instance import Instance
from ..core.models import CommModel
from ..core.throughput import PeriodResult, compute_period
from ..engine import evaluate_batch
from ..errors import ValidationError
from .generator import ExperimentConfig, instance_from_config

__all__ = ["ExperimentRecord", "run_family", "run_single", "family_seeds"]

#: Replication draws are rejected above this ``lcm(m_i)`` so the STRICT
#: model (full TPN) stays tractable; Table 2's size families stay well
#: below it most of the time (see DESIGN.md section 7).
DEFAULT_MAX_PATHS = 3000


@dataclass(frozen=True)
class ExperimentRecord:
    """Outcome of one random experiment.

    Attributes
    ----------
    config_name:
        The Table 2 family.
    model:
        Communication model value ("overlap"/"strict").
    seed:
        Entropy of the experiment's seed sequence (reproducibility key).
    n_stages, n_procs:
        Drawn size pair.
    replication:
        Drawn per-stage replication counts.
    m:
        ``lcm(m_i)``.
    period, mct:
        Exact period and cycle-time bound.
    critical:
        ``True`` when ``period == mct`` (a critical resource exists).
    gap:
        Relative gap ``(P - M_ct) / M_ct``.
    """

    config_name: str
    model: str
    seed: int
    n_stages: int
    n_procs: int
    replication: tuple[int, ...]
    m: int
    period: float
    mct: float
    critical: bool
    gap: float


def _record_from(
    config: ExperimentConfig,
    model: CommModel,
    seed_entropy: int,
    inst: Instance,
    result: PeriodResult,
) -> ExperimentRecord:
    """Assemble a record from an evaluated instance.

    The critical-resource verdict (``mct`` / ``critical`` / ``gap``) is
    read off the :class:`PeriodResult` — ``compute_period`` already ran
    the classification, so re-running it here would double the work.
    """
    return ExperimentRecord(
        config_name=config.name,
        model=model.value,
        seed=seed_entropy,
        n_stages=inst.n_stages,
        n_procs=inst.platform.n_processors,
        replication=inst.replication_counts,
        m=inst.num_paths,
        period=result.period,
        mct=result.mct,
        critical=result.has_critical_resource,
        gap=result.relative_gap,
    )


def _draw_instance(
    config: ExperimentConfig, seed_entropy: int, max_paths: int
) -> Instance:
    """The experiment's instance is a pure function of its seed."""
    rng = np.random.default_rng(np.random.SeedSequence(seed_entropy))
    return instance_from_config(config, rng, max_paths=max_paths)


def run_single(
    config: ExperimentConfig,
    model: CommModel | str,
    seed_entropy: int,
    max_paths: int = DEFAULT_MAX_PATHS,
) -> ExperimentRecord:
    """Run one experiment (pure function of its seed — safe to fork out)."""
    model = CommModel.parse(model)
    inst = _draw_instance(config, seed_entropy, max_paths)
    result = compute_period(inst, model, max_rows=max_paths + 1)
    return _record_from(config, model, seed_entropy, inst, result)


def _run_single_args(args: tuple) -> ExperimentRecord:
    """Module-level trampoline for process pools (picklable)."""
    return run_single(*args)


def family_seeds(
    config: ExperimentConfig,
    model: CommModel | str,
    count: int,
    root_seed: int = 20090302,
) -> list[int]:
    """Deterministic per-experiment seed entropies of one (family, model).

    The family's branch of the seed tree is keyed by
    ``crc32(config.name)`` — stable across interpreters and platforms,
    unlike ``hash()`` which is randomized per process by
    ``PYTHONHASHSEED``.
    """
    model = CommModel.parse(model)
    ss = np.random.SeedSequence(
        [root_seed, zlib.crc32(config.name.encode()) & 0x7FFFFFFF,
         0 if model.overlap else 1]
    )
    return [int(child.generate_state(1)[0]) for child in ss.spawn(count)]


def run_family(
    config: ExperimentConfig,
    model: CommModel | str,
    count: int | None = None,
    root_seed: int = 20090302,
    n_jobs: int | None = None,
    max_paths: int = DEFAULT_MAX_PATHS,
    engine: str = "batch",
) -> list[ExperimentRecord]:
    """Run ``count`` experiments of one family under one model.

    Parameters
    ----------
    count:
        Number of experiments; defaults to the family's paper count.
    root_seed:
        Root entropy; per-experiment seeds are spawned from it so the
        sweep is deterministic for any ``n_jobs`` — and, because the
        family branch uses a stable digest (:func:`family_seeds`), for
        any interpreter invocation.
    n_jobs:
        Worker processes; ``None``/1 runs serially, 0 uses all cores.
    engine:
        ``"batch"`` routes evaluation through
        :func:`repro.engine.evaluate_batch` (topology-cached, sharded);
        ``"percall"`` keeps the historical one-call-per-seed path.
        Records are bit-identical either way.
    """
    model = CommModel.parse(model)
    if count is None:
        count = config.count
    seeds = family_seeds(config, model, count, root_seed=root_seed)

    if engine == "batch":
        instances = [_draw_instance(config, s, max_paths) for s in seeds]
        results = evaluate_batch(
            instances, model, max_rows=max_paths + 1, n_jobs=n_jobs
        )
        return [
            _record_from(config, model, s, inst, res)
            for s, inst, res in zip(seeds, instances, results)
        ]
    if engine != "percall":
        raise ValidationError(
            f"unknown engine {engine!r}; expected 'batch' or 'percall'"
        )

    tasks = [(config, model, s, max_paths) for s in seeds]
    if n_jobs is None or n_jobs == 1 or count < 4:
        return [run_single(*t) for t in tasks]
    workers = os.cpu_count() if n_jobs == 0 else n_jobs
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_single_args, tasks, chunksize=8))
