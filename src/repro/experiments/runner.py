"""Experiment runner: sweep random instances, in series or in parallel.

Each experiment draws an instance from a Table 2 family, computes the
exact period and the cycle-time bound ``M_ct`` under one communication
model, and records whether the bound is attained ("critical resource").

Reproducibility and parallelism: every experiment owns a child of the
root :class:`numpy.random.SeedSequence`, so results are bit-identical
whatever the worker count.  The sweep is embarrassingly parallel and
scales across cores with :class:`concurrent.futures.ProcessPoolExecutor`
(workers re-import the library; tasks are pure functions of their seed).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..algorithms.bounds import classify_critical_resource
from ..core.models import CommModel
from ..core.throughput import compute_period
from .generator import ExperimentConfig, instance_from_config

__all__ = ["ExperimentRecord", "run_family", "run_single"]

#: Replication draws are rejected above this ``lcm(m_i)`` so the STRICT
#: model (full TPN) stays tractable; Table 2's size families stay well
#: below it most of the time (see DESIGN.md section 7).
DEFAULT_MAX_PATHS = 3000


@dataclass(frozen=True)
class ExperimentRecord:
    """Outcome of one random experiment.

    Attributes
    ----------
    config_name:
        The Table 2 family.
    model:
        Communication model value ("overlap"/"strict").
    seed:
        Entropy of the experiment's seed sequence (reproducibility key).
    n_stages, n_procs:
        Drawn size pair.
    replication:
        Drawn per-stage replication counts.
    m:
        ``lcm(m_i)``.
    period, mct:
        Exact period and cycle-time bound.
    critical:
        ``True`` when ``period == mct`` (a critical resource exists).
    gap:
        Relative gap ``(P - M_ct) / M_ct``.
    """

    config_name: str
    model: str
    seed: int
    n_stages: int
    n_procs: int
    replication: tuple[int, ...]
    m: int
    period: float
    mct: float
    critical: bool
    gap: float


def run_single(
    config: ExperimentConfig,
    model: CommModel | str,
    seed_entropy: int,
    max_paths: int = DEFAULT_MAX_PATHS,
) -> ExperimentRecord:
    """Run one experiment (pure function of its seed — safe to fork out)."""
    model = CommModel.parse(model)
    rng = np.random.default_rng(np.random.SeedSequence(seed_entropy))
    inst = instance_from_config(config, rng, max_paths=max_paths)
    result = compute_period(inst, model, max_rows=max_paths + 1)
    verdict = classify_critical_resource(inst, model, result.period)
    return ExperimentRecord(
        config_name=config.name,
        model=model.value,
        seed=seed_entropy,
        n_stages=inst.n_stages,
        n_procs=inst.platform.n_processors,
        replication=inst.replication_counts,
        m=inst.num_paths,
        period=result.period,
        mct=verdict.mct,
        critical=verdict.has_critical_resource,
        gap=verdict.relative_gap,
    )


def _run_single_args(args: tuple) -> ExperimentRecord:
    """Module-level trampoline for process pools (picklable)."""
    return run_single(*args)


def run_family(
    config: ExperimentConfig,
    model: CommModel | str,
    count: int | None = None,
    root_seed: int = 20090302,
    n_jobs: int | None = None,
    max_paths: int = DEFAULT_MAX_PATHS,
) -> list[ExperimentRecord]:
    """Run ``count`` experiments of one family under one model.

    Parameters
    ----------
    count:
        Number of experiments; defaults to the family's paper count.
    root_seed:
        Root entropy; per-experiment seeds are spawned from it so the
        sweep is deterministic for any ``n_jobs``.
    n_jobs:
        Worker processes; ``None``/1 runs serially, 0 uses all cores.
    """
    model = CommModel.parse(model)
    if count is None:
        count = config.count
    ss = np.random.SeedSequence([root_seed, hash(config.name) & 0x7FFFFFFF,
                                 0 if model.overlap else 1])
    seeds = [int(child.generate_state(1)[0]) for child in ss.spawn(count)]
    tasks = [(config, model, s, max_paths) for s in seeds]

    if n_jobs is None or n_jobs == 1 or count < 4:
        return [run_single(*t) for t in tasks]
    workers = os.cpu_count() if n_jobs == 0 else n_jobs
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_single_args, tasks, chunksize=8))
