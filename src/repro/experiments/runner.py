"""Experiment runner: sweep random instances, in series or in parallel.

Each experiment draws an instance from a Table 2 family, computes the
exact period and the cycle-time bound ``M_ct`` under one communication
model, and records whether the bound is attained ("critical resource").

Reproducibility and parallelism: every experiment owns a child of the
root :class:`numpy.random.SeedSequence`, so results are bit-identical
whatever the worker count.  The family's position in the seed tree is
derived with :func:`zlib.crc32` — a *stable* digest of the family name —
never with Python's :func:`hash`, whose per-process randomization
(``PYTHONHASHSEED``) would silently make "reproducible" sweeps differ
between interpreter runs.

Two execution engines are available (``engine=`` parameter):

* ``"batch"`` (default) — instances are generated up front and evaluated
  through :func:`repro.engine.evaluate`, which caches the TPN
  skeleton and solver preparation per mapping topology and shards large
  sweeps across worker processes with deterministic chunking;
* ``"percall"`` — the historical path: one
  :func:`~repro.core.throughput.compute_period` call per experiment,
  optionally fanned out one task per seed.

Both engines produce bit-identical :class:`ExperimentRecord` lists.
"""

from __future__ import annotations

import os
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - layering: campaign sits above
    from ..campaign.store import ResultStore

from ..core.instance import Instance
from ..core.models import CommModel
from ..core.throughput import PeriodResult, compute_period
from ..engine import evaluate
from ..errors import ValidationError
from .generator import ExperimentConfig, instance_from_config

__all__ = ["ExperimentRecord", "run_family", "run_single", "family_seeds"]

#: Replication draws are rejected above this ``lcm(m_i)`` so the STRICT
#: model (full TPN) stays tractable; Table 2's size families stay well
#: below it most of the time (see DESIGN.md section 7).
DEFAULT_MAX_PATHS = 3000


@dataclass(frozen=True)
class ExperimentRecord:
    """Outcome of one random experiment.

    Attributes
    ----------
    config_name:
        The Table 2 family.
    model:
        Communication model value ("overlap"/"strict").
    seed:
        Entropy of the experiment's seed sequence (reproducibility key).
    n_stages, n_procs:
        Drawn size pair.
    replication:
        Drawn per-stage replication counts.
    m:
        ``lcm(m_i)``.
    period, mct:
        Exact period and cycle-time bound.
    critical:
        ``True`` when ``period == mct`` (a critical resource exists).
    gap:
        Relative gap ``(P - M_ct) / M_ct``.
    """

    config_name: str
    model: str
    seed: int
    n_stages: int
    n_procs: int
    replication: tuple[int, ...]
    m: int
    period: float
    mct: float
    critical: bool
    gap: float


def _record_from(
    config: ExperimentConfig,
    model: CommModel,
    seed_entropy: int,
    inst: Instance,
    result: PeriodResult,
) -> ExperimentRecord:
    """Assemble a record from an evaluated instance.

    The critical-resource verdict (``mct`` / ``critical`` / ``gap``) is
    read off the :class:`PeriodResult` — ``compute_period`` already ran
    the classification, so re-running it here would double the work.
    """
    return ExperimentRecord(
        config_name=config.name,
        model=model.value,
        seed=seed_entropy,
        n_stages=inst.n_stages,
        n_procs=inst.platform.n_processors,
        replication=inst.replication_counts,
        m=inst.num_paths,
        period=result.period,
        mct=result.mct,
        critical=result.has_critical_resource,
        gap=result.relative_gap,
    )


def _draw_instance(
    config: ExperimentConfig, seed_entropy: int, max_paths: int
) -> Instance:
    """The experiment's instance is a pure function of its seed."""
    rng = np.random.default_rng(np.random.SeedSequence(seed_entropy))
    return instance_from_config(config, rng, max_paths=max_paths)


def run_single(
    config: ExperimentConfig,
    model: CommModel | str,
    seed_entropy: int,
    max_paths: int = DEFAULT_MAX_PATHS,
) -> ExperimentRecord:
    """Run one experiment (pure function of its seed — safe to fork out)."""
    model = CommModel.parse(model)
    inst = _draw_instance(config, seed_entropy, max_paths)
    result = compute_period(inst, model, max_rows=max_paths + 1)
    return _record_from(config, model, seed_entropy, inst, result)


def _run_single_args(args: tuple) -> ExperimentRecord:
    """Module-level trampoline for process pools (picklable)."""
    return run_single(*args)


def family_seeds(
    config: ExperimentConfig,
    model: CommModel | str,
    count: int,
    root_seed: int = 20090302,
) -> list[int]:
    """Deterministic per-experiment seed entropies of one (family, model).

    The family's branch of the seed tree is keyed by
    ``crc32(config.name)`` — stable across interpreters and platforms,
    unlike ``hash()`` which is randomized per process by
    ``PYTHONHASHSEED``.
    """
    model = CommModel.parse(model)
    ss = np.random.SeedSequence(
        [root_seed, zlib.crc32(config.name.encode()) & 0x7FFFFFFF,
         0 if model.overlap else 1]
    )
    return [int(child.generate_state(1)[0]) for child in ss.spawn(count)]


def run_family(
    config: ExperimentConfig,
    model: CommModel | str,
    count: int | None = None,
    root_seed: int = 20090302,
    n_jobs: int | None = None,
    max_paths: int = DEFAULT_MAX_PATHS,
    engine: str = "batch",
    store: "ResultStore | None" = None,
) -> list[ExperimentRecord]:
    """Run ``count`` experiments of one family under one model.

    Parameters
    ----------
    count:
        Number of experiments; defaults to the family's paper count.
    root_seed:
        Root entropy; per-experiment seeds are spawned from it so the
        sweep is deterministic for any ``n_jobs`` — and, because the
        family branch uses a stable digest (:func:`family_seeds`), for
        any interpreter invocation.
    n_jobs:
        Worker processes; ``None``/1 runs serially, 0 uses all cores.
    engine:
        ``"batch"`` routes evaluation through
        :func:`repro.engine.evaluate` (topology-cached, sharded);
        ``"percall"`` keeps the historical one-call-per-seed path.
        Records are bit-identical either way.
    store:
        Optional content-addressed
        :class:`~repro.campaign.store.ResultStore` (batch engine only):
        already-stored evaluations are loaded instead of recomputed and
        fresh ones are written back, so repeated sweeps — or a sweep
        overlapping a campaign — cost only the missing points.  Records
        are bit-identical with or without a store.
    """
    model = CommModel.parse(model)
    if count is None:
        count = config.count
    seeds = family_seeds(config, model, count, root_seed=root_seed)

    if store is not None and engine != "batch":
        raise ValidationError(
            "store routing requires engine='batch' (the per-call path "
            "predates the content-addressed store)"
        )

    if engine == "batch":
        instances = [_draw_instance(config, s, max_paths) for s in seeds]
        if store is None:
            results = evaluate(
                instances, model, max_rows=max_paths + 1, n_jobs=n_jobs
            )
            return [
                _record_from(config, model, s, inst, res)
                for s, inst, res in zip(seeds, instances, results)
            ]
        return _run_family_stored(
            config, model, seeds, instances, store,
            max_paths=max_paths, n_jobs=n_jobs,
        )
    if engine != "percall":
        raise ValidationError(
            f"unknown engine {engine!r}; expected 'batch' or 'percall'"
        )

    tasks = [(config, model, s, max_paths) for s in seeds]
    if n_jobs is None or n_jobs == 1 or count < 4:
        return [run_single(*t) for t in tasks]
    workers = os.cpu_count() if n_jobs == 0 else n_jobs
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_single_args, tasks, chunksize=8))


def _run_family_stored(
    config: ExperimentConfig,
    model: CommModel,
    seeds: list[int],
    instances: list[Instance],
    store: "ResultStore",
    max_paths: int,
    n_jobs: int | None,
) -> list[ExperimentRecord]:
    """Batch sweep through a content-addressed store.

    Stored digests are served from the store; only the missing
    instances go through :func:`evaluate`, and their payloads are
    written back so the next overlapping sweep or campaign reuses them.
    """
    # Function-level import: experiments.io imports this module, and
    # campaign.store imports experiments.io — importing at module scope
    # would close the cycle.
    from ..campaign.store import instance_digest, payload_from_result, \
        record_from_payload

    digests = [instance_digest(inst, model) for inst in instances]
    payloads: dict[int, dict] = {}
    miss_idx: list[int] = []
    for i, digest in enumerate(digests):
        payload = store.get(digest)
        if payload is None:
            miss_idx.append(i)
        else:
            payloads[i] = payload
    results = evaluate(
        [instances[i] for i in miss_idx], model,
        max_rows=max_paths + 1, n_jobs=n_jobs,
    )
    for i, res in zip(miss_idx, results):
        payloads[i] = payload_from_result(instances[i], res)
        store.put(digests[i], payloads[i], commit=False)
    store.commit()
    return [
        record_from_payload(config.name, model, seeds[i], payloads[i])
        for i in range(len(seeds))
    ]
