"""CSV/JSON import/export of experiment and search results.

The Table 2 campaign can take minutes at full scale; persisting records
lets analyses (gap histograms, per-family breakdowns) run without
re-sweeping.  The format is plain CSV with a header, one row per
experiment.

Every exporter in this module is **byte-deterministic**: JSON payloads
are dumped with sorted keys (:func:`canonical_json`), floats use
Python's shortest round-trip ``repr``, and CSV rows end in ``"\\n"`` on
every platform.  Two runs that produce equal values produce equal
bytes, so campaign artifacts diff cleanly and the content-addressed
store (:mod:`repro.campaign.store`) can digest them stably.

Portfolio runs (:func:`repro.search.portfolio_search`) persist two
artifacts: the full result as JSON (:func:`portfolio_to_json` — best
mapping plus every restart's trace, round-trippable through
``json.loads``) and the per-restart summary as CSV
(:func:`restarts_to_csv` — one row per restart, for quick spreadsheet
triage of which seed strategy won).  Both back the
``repro-workflow optimize --json/--csv`` flags.

:func:`format_payload` is the CLI's unified ``--format {text,json}``
writer: every subcommand that can speak to machines routes its stdout
payload through it, so ``--format json`` output is canonical JSON
everywhere (the historical ``--json PATH`` / ``--summary-json PATH``
file flags remain as compatibility aliases).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from ..errors import ValidationError
from ..utils import canonical_json
from .runner import ExperimentRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (search -> engine)
    from ..search.portfolio import PortfolioResult

__all__ = [
    "OUTPUT_FORMATS",
    "canonical_json",
    "format_payload",
    "write_canonical_json",
    "records_to_csv",
    "records_from_csv",
    "portfolio_to_json",
    "restarts_to_csv",
]

#: The CLI's unified machine-output convention (``--format`` choices).
OUTPUT_FORMATS = ("text", "json")


def format_payload(
    payload: object,
    fmt: str = "text",
    render: Callable[[object], str] | None = None,
) -> str:
    """One payload, rendered under the CLI's ``--format`` convention.

    The shared writer behind every subcommand's ``--format {text,json}``
    flag: ``"text"`` goes through the caller's human renderer (``str``
    when none is given), ``"json"`` always goes through
    :func:`canonical_json` — so machine output is byte-deterministic
    regardless of which subcommand produced it.  The returned text ends
    in exactly one newline in both modes.

    >>> format_payload({"b": 2, "a": 1}, "json")
    '{\\n  "a": 1,\\n  "b": 2\\n}\\n'
    >>> format_payload("done", "text")
    'done\\n'
    """
    if fmt not in OUTPUT_FORMATS:
        raise ValidationError(
            f"unknown output format {fmt!r} (expected one of: "
            f"{', '.join(OUTPUT_FORMATS)})"
        )
    if fmt == "json":
        return canonical_json(payload, indent=2) + "\n"
    text = str(payload) if render is None else render(payload)
    return text if text.endswith("\n") else text + "\n"


def write_canonical_json(payload: object, path: str | Path) -> str:
    """Write ``payload`` as canonical JSON (+ trailing newline) to ``path``.

    The one write path every machine-readable CLI artifact goes through
    (run summaries, status dumps, campaign/fabric reports, sync
    reports): sorted keys, ``repr`` floats, ``"\\n"`` newline discipline
    on every platform — so artifacts from different hosts diff and
    digest cleanly.  Returns the exact text written.
    """
    text = canonical_json(payload, indent=2) + "\n"
    Path(path).write_text(text, newline="")
    return text


_COLUMNS = [
    "config_name",
    "model",
    "seed",
    "n_stages",
    "n_procs",
    "replication",
    "m",
    "period",
    "mct",
    "critical",
    "gap",
]


def records_to_csv(
    records: Iterable[ExperimentRecord], path: str | Path | None = None
) -> str:
    """Serialize records to CSV text; also writes ``path`` when given.

    Byte-deterministic: ``repr`` floats, ``"\\n"`` row terminators.
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(_COLUMNS)
    for r in records:
        writer.writerow([
            r.config_name,
            r.model,
            r.seed,
            r.n_stages,
            r.n_procs,
            " ".join(str(c) for c in r.replication),
            r.m,
            repr(r.period),
            repr(r.mct),
            int(r.critical),
            repr(r.gap),
        ])
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text, newline="")
    return text


def records_from_csv(source: str | Path) -> list[ExperimentRecord]:
    """Load records from CSV text or a file path (inverse of export)."""
    if isinstance(source, Path):
        text = source.read_text()
    else:
        text = str(source)
        if "\n" not in text and text.endswith(".csv"):
            text = Path(text).read_text()
    reader = csv.DictReader(io.StringIO(text))
    out: list[ExperimentRecord] = []
    for row in reader:
        out.append(
            ExperimentRecord(
                config_name=row["config_name"],
                model=row["model"],
                seed=int(row["seed"]),
                n_stages=int(row["n_stages"]),
                n_procs=int(row["n_procs"]),
                replication=tuple(
                    int(c) for c in row["replication"].split()
                ),
                m=int(row["m"]),
                period=float(row["period"]),
                mct=float(row["mct"]),
                critical=bool(int(row["critical"])),
                gap=float(row["gap"]),
            )
        )
    return out


_RESTART_COLUMNS = [
    "index",
    "kind",
    "seed",
    "period",
    "evaluations",
    "trace",
    "assignments",
    "rungs",
]


def portfolio_to_json(
    result: "PortfolioResult", path: str | Path | None = None
) -> str:
    """Serialize a portfolio result to JSON; also writes ``path`` if given.

    The payload is ``result.to_dict()``: model, best period/assignments,
    spent vs granted budget, and one entry per restart (kind, seed,
    trace, mapping) — everything needed to reproduce or plot the run.
    """
    text = result.to_json()
    if path is not None:
        Path(path).write_text(text, newline="")
    return text


def restarts_to_csv(
    result: "PortfolioResult", path: str | Path | None = None
) -> str:
    """One CSV row per restart of a portfolio; writes ``path`` if given.

    ``trace`` and ``rungs`` (per-grant evaluation counts) are
    space-separated (``repr`` floats for the trace, lossless); stages of
    ``assignments`` are ``|``-separated with space-separated processor
    indices, e.g. ``"0|1 2|3"``.
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(_RESTART_COLUMNS)
    for r in result.restarts:
        writer.writerow([
            r.index,
            r.kind,
            r.seed,
            repr(r.period),
            r.evaluations,
            " ".join(repr(t) for t in r.trace),
            "|".join(" ".join(str(u) for u in s) for s in r.assignments),
            " ".join(str(n) for n in r.rungs),
        ])
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text, newline="")
    return text
