"""CSV import/export of experiment records.

The Table 2 campaign can take minutes at full scale; persisting records
lets analyses (gap histograms, per-family breakdowns) run without
re-sweeping.  The format is plain CSV with a header, one row per
experiment.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable

from .runner import ExperimentRecord

__all__ = ["records_to_csv", "records_from_csv"]

_COLUMNS = [
    "config_name",
    "model",
    "seed",
    "n_stages",
    "n_procs",
    "replication",
    "m",
    "period",
    "mct",
    "critical",
    "gap",
]


def records_to_csv(
    records: Iterable[ExperimentRecord], path: str | Path | None = None
) -> str:
    """Serialize records to CSV text; also writes ``path`` when given."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(_COLUMNS)
    for r in records:
        writer.writerow([
            r.config_name,
            r.model,
            r.seed,
            r.n_stages,
            r.n_procs,
            " ".join(str(c) for c in r.replication),
            r.m,
            repr(r.period),
            repr(r.mct),
            int(r.critical),
            repr(r.gap),
        ])
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def records_from_csv(source: str | Path) -> list[ExperimentRecord]:
    """Load records from CSV text or a file path (inverse of export)."""
    if isinstance(source, Path):
        text = source.read_text()
    else:
        text = str(source)
        if "\n" not in text and text.endswith(".csv"):
            text = Path(text).read_text()
    reader = csv.DictReader(io.StringIO(text))
    out: list[ExperimentRecord] = []
    for row in reader:
        out.append(
            ExperimentRecord(
                config_name=row["config_name"],
                model=row["model"],
                seed=int(row["seed"]),
                n_stages=int(row["n_stages"]),
                n_procs=int(row["n_procs"]),
                replication=tuple(
                    int(c) for c in row["replication"].split()
                ),
                m=int(row["m"]),
                period=float(row["period"]),
                mct=float(row["mct"]),
                critical=bool(int(row["critical"])),
                gap=float(row["gap"]),
            )
        )
    return out
