"""Post-processing of experiment records: summaries and gap histograms.

Turns raw :class:`~repro.experiments.runner.ExperimentRecord` lists (from
a live sweep or a CSV reload) into the aggregates the paper discusses:
per-family no-critical counts, gap distributions of the exceptional
cases, and correlation of exceptions with instance features (replication
factors, time ranges).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from .runner import ExperimentRecord

__all__ = ["FamilySummary", "summarize", "gap_histogram", "feature_report"]


@dataclass(frozen=True)
class FamilySummary:
    """Aggregate of one (family, model) group.

    Attributes
    ----------
    config_name, model:
        Group key.
    total, no_critical:
        Counts (the paper's Table 2 cells).
    max_gap, mean_gap:
        Over the no-critical subset (0 when empty).
    mean_m:
        Average number of TPN rows — the cost driver of Section 5.
    """

    config_name: str
    model: str
    total: int
    no_critical: int
    max_gap: float
    mean_gap: float
    mean_m: float


def summarize(records: list[ExperimentRecord]) -> list[FamilySummary]:
    """Group records by (family, model) and aggregate Table 2 style."""
    groups: dict[tuple[str, str], list[ExperimentRecord]] = defaultdict(list)
    for r in records:
        groups[(r.config_name, r.model)].append(r)
    out = []
    for (name, model), group in sorted(groups.items()):
        gaps = [r.gap for r in group if not r.critical]
        out.append(
            FamilySummary(
                config_name=name,
                model=model,
                total=len(group),
                no_critical=len(gaps),
                max_gap=max(gaps, default=0.0),
                mean_gap=float(np.mean(gaps)) if gaps else 0.0,
                mean_m=float(np.mean([r.m for r in group])),
            )
        )
    return out


def gap_histogram(
    records: list[ExperimentRecord],
    n_bins: int = 10,
    width: int = 50,
) -> str:
    """ASCII histogram of relative gaps among no-critical cases.

    The paper reports only "diff less than X%" per row; this shows the
    whole distribution.
    """
    gaps = np.array([r.gap for r in records if not r.critical])
    if gaps.size == 0:
        return "(no cases without critical resource)"
    hi = float(gaps.max())
    bins = np.linspace(0.0, hi * (1 + 1e-12), n_bins + 1)
    counts, _ = np.histogram(gaps, bins=bins)
    peak = counts.max()
    lines = [f"gap distribution over {gaps.size} no-critical cases:"]
    for i, c in enumerate(counts):
        bar = "#" * int(round(width * c / peak)) if peak else ""
        lines.append(
            f"  {100 * bins[i]:5.2f}% - {100 * bins[i + 1]:5.2f}% | "
            f"{c:>4} {bar}"
        )
    return "\n".join(lines)


def feature_report(records: list[ExperimentRecord]) -> str:
    """Contrast instance features of critical vs. no-critical cases.

    Shows what drives the exceptions: their replication structure (the
    gap needs at least one genuinely replicated stage) and sizes.
    """
    crit = [r for r in records if r.critical]
    rest = [r for r in records if not r.critical]

    def stats(group: list[ExperimentRecord]) -> str:
        if not group:
            return "n=0"
        reps = [max(r.replication) for r in group]
        ms = [r.m for r in group]
        return (
            f"n={len(group)}  max-replication avg {np.mean(reps):.2f}  "
            f"m avg {np.mean(ms):.1f}"
        )

    lines = [
        "feature contrast:",
        f"  with critical resource    : {stats(crit)}",
        f"  without critical resource : {stats(rest)}",
    ]
    if rest:
        all_replicated = all(max(r.replication) > 1 for r in rest)
        lines.append(
            f"  every no-critical case has a replicated stage: "
            f"{all_replicated} (the paper's Section 2 result implies it "
            f"must)"
        )
    return "\n".join(lines)
