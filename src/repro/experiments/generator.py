"""Random instance generation for the paper's experimental campaign.

Section 5 / Table 2: applications of 2-20 stages mapped on 7-30
processors, with computation and communication times drawn uniformly
from per-row ranges, and per-stage replication factors drawn uniformly
among the feasible values (every stage keeps at least one processor and
processors are never shared between stages).

Times are drawn directly — unit works and unit file sizes with speed
``1/time`` and bandwidth ``1/time`` (see
:meth:`repro.core.platform.Platform.from_comm_times`), matching the
paper's parameterization of experiments by time ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.application import Application
from ..core.instance import Instance
from ..core.mapping import Mapping
from ..core.platform import Platform
from ..utils import lcm_all

__all__ = [
    "ExperimentConfig",
    "TABLE2_CONFIGS",
    "random_replication",
    "random_instance",
    "instance_from_config",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """One row family of Table 2.

    Attributes
    ----------
    name:
        Row label used in reports.
    sizes:
        Candidate ``(n_stages, n_processors)`` pairs; one is drawn
        uniformly per instance (the paper merges e.g. (10,20) and (10,30)
        into a single row).
    comp_range:
        Uniform range of computation times, or ``None`` for the fixed
        unit computation time of the small-pipeline rows.
    comm_range:
        Uniform range of communication times.
    count:
        Number of experiments of this family **per model** in the paper.
    """

    name: str
    sizes: tuple[tuple[int, int], ...]
    comp_range: tuple[float, float] | None
    comm_range: tuple[float, float]
    count: int


#: The six experiment families of Table 2 (run once per model: 2 x 2576
#: = 5152 experiments in the paper).
TABLE2_CONFIGS: tuple[ExperimentConfig, ...] = (
    ExperimentConfig("(10,20)+(10,30) comp 5-15 comm 5-15",
                     ((10, 20), (10, 30)), (5.0, 15.0), (5.0, 15.0), 220),
    ExperimentConfig("(10,20)+(10,30) comp 10-1000 comm 10-1000",
                     ((10, 20), (10, 30)), (10.0, 1000.0), (10.0, 1000.0), 220),
    ExperimentConfig("(20,30) comp 5-15 comm 5-15",
                     ((20, 30),), (5.0, 15.0), (5.0, 15.0), 68),
    ExperimentConfig("(20,30) comp 10-1000 comm 10-1000",
                     ((20, 30),), (10.0, 1000.0), (10.0, 1000.0), 68),
    ExperimentConfig("(2,7)+(3,7) comp 1 comm 5-10",
                     ((2, 7), (3, 7)), None, (5.0, 10.0), 1000),
    ExperimentConfig("(2,7)+(3,7) comp 1 comm 10-50",
                     ((2, 7), (3, 7)), None, (10.0, 50.0), 1000),
)


def random_replication(
    n_stages: int,
    n_procs: int,
    rng: np.random.Generator,
    max_paths: int | None = None,
    max_tries: int = 1000,
    method: str = "balls",
) -> tuple[int, ...]:
    """Draw per-stage replication counts ``(m_0, ..., m_{n-1})``.

    Every stage gets at least one processor and the total never exceeds
    the platform size.  The paper does not specify its replication
    distribution ("randomly chosen uniformly"), so two readings are
    offered:

    * ``"balls"`` (default) — every spare processor joins a uniformly
      random stage independently (balls into bins).  Low-variance,
      binomial-ish counts; this is the distribution used for the Table 2
      reproduction.
    * ``"greedy-spare"`` — stages, in shuffled order, grab a uniform
      share of the remaining spares.  Heavy-tailed: single stages often
      absorb most of the platform, which (interestingly) *increases* the
      rate of no-critical-resource mappings — see EXPERIMENTS.md.

    Parameters
    ----------
    max_paths:
        Optional rejection bound on ``m = lcm(m_i)``; draws are repeated
        until the bound holds (used to keep full-TPN methods tractable).
    """
    if n_procs < n_stages:
        raise ValueError(
            f"need at least one processor per stage: {n_stages} stages, "
            f"{n_procs} processors"
        )
    if method not in ("balls", "greedy-spare"):
        raise ValueError(f"unknown replication draw method {method!r}")
    for _ in range(max_tries):
        counts = np.ones(n_stages, dtype=np.int64)
        spare = n_procs - n_stages
        if method == "balls":
            if spare > 0:
                bins = rng.integers(0, n_stages, spare)
                np.add.at(counts, bins, 1)
        else:
            order = rng.permutation(n_stages)
            for stage in order:
                if spare <= 0:
                    break
                extra = int(rng.integers(0, spare + 1))
                counts[stage] += extra
                spare -= extra
        result = tuple(int(c) for c in counts)
        if max_paths is None or lcm_all(result) <= max_paths:
            return result
    raise RuntimeError(
        f"could not draw replication counts with lcm <= {max_paths} in "
        f"{max_tries} tries"
    )


def random_instance(
    n_stages: int,
    n_procs: int,
    comp_range: tuple[float, float] | None,
    comm_range: tuple[float, float],
    rng: np.random.Generator,
    max_paths: int | None = None,
    name: str = "random",
) -> Instance:
    """Draw one random instance with the given time ranges.

    Replication counts come from :func:`random_replication`; the stages'
    processors are a random permutation of the platform sliced into
    consecutive groups (round-robin order is the drawn order).
    """
    counts = random_replication(n_stages, n_procs, rng, max_paths=max_paths)
    perm = rng.permutation(n_procs)
    bounds = np.cumsum((0,) + counts)
    assignments = [
        tuple(int(p) for p in perm[bounds[i] : bounds[i + 1]])
        for i in range(n_stages)
    ]

    if comp_range is None:
        comp_times = np.ones(n_procs)
    else:
        comp_times = rng.uniform(*comp_range, n_procs)
    comm_times = rng.uniform(*comm_range, (n_procs, n_procs))
    np.fill_diagonal(comm_times, 0.0)

    app = Application(works=[1.0] * n_stages, file_sizes=[1.0] * (n_stages - 1),
                      name=name)
    plat = Platform.from_comm_times(comp_times, comm_times, name=name)
    return Instance(app, plat, Mapping(assignments, n_processors=n_procs))


def instance_from_config(
    config: ExperimentConfig,
    rng: np.random.Generator,
    max_paths: int | None = None,
) -> Instance:
    """Draw one instance of an experiment family (random size pair)."""
    n_stages, n_procs = config.sizes[int(rng.integers(0, len(config.sizes)))]
    return random_instance(
        n_stages,
        n_procs,
        config.comp_range,
        config.comm_range,
        rng,
        max_paths=max_paths,
        name=config.name,
    )
