"""The paper's running examples A, B and C as exact instances.

All three instances use unit stage works and unit file sizes, so that
processor speeds and link bandwidths are simply the reciprocals of the
paper's per-resource *times* (see :meth:`Platform.from_comm_times`).

**Example A** (Figure 2) — ``S_0`` on ``P_0``, ``S_1`` replicated on
``P_1, P_2``, ``S_2`` on ``P_3, P_4, P_5``, ``S_3`` on ``P_6``.
The figure's numeric labels are partly garbled in the available source
text, so the durations below were *reconstructed* by constraint search
(`tools/reconstruct_example_a.py`) against every number the paper states:

* OVERLAP: period 189, attained by the output port of ``P_0``
  (``(186 + 192)/2``) with every other resource strictly below;
* STRICT: ``M_ct = 215.83`` (processor ``P_2``), period ``230.67``
  — no critical resource (Figure 7);
* Figure 9's sub-TPN row sums for ``F_1`` ({57, 68, 77} from one sender,
  {13, 157, 165} from the other).

**Example B** (Figure 6) — ``S_0`` on 3 processors, ``S_1`` on 4; all
computation times 100, communication times 100 or 1000 (twelve 100-labels
and seven 1000-labels as in the figure), arranged so that
``M_ct = 3100/12 = 258.33`` (output port of ``P_2``) while the period is
``3500/12 = 291.67`` — the paper's flagship "no critical resource"
OVERLAP instance.

**Example C** (Figure 11) — stages replicated on 5, 21, 27 and 11
processors; used for its *structure* (``m = 10395``; file ``F_1``
decomposes into ``p = 3`` components of ``7 x 9`` patterns repeated 55
times, Figures 13/14).  The paper gives no durations, so they default to
homogeneous unit times (a seeded heterogeneous variant is available).
"""

from __future__ import annotations

import numpy as np

from ..core.application import Application
from ..core.instance import Instance
from ..core.mapping import Mapping
from ..core.platform import Platform

__all__ = [
    "example_a",
    "example_b",
    "example_c",
    "EXAMPLE_A_EXPECTED",
    "EXAMPLE_B_EXPECTED",
    "EXAMPLE_C_STRUCTURE",
]

# ----------------------------------------------------------------------
# Example A
# ----------------------------------------------------------------------

#: Published values for Example A (paper Sections 4.1-4.2).
EXAMPLE_A_EXPECTED = {
    "m": 6,
    "overlap_period": 189.0,
    "overlap_mct": 189.0,
    "strict_mct": 215.8,  # paper rounds 1294.999... /6; see EXPERIMENTS.md
    "strict_period": 230.7,
}

#: Reconstructed computation times (P0..P6) for Example A.
#: Filled by tools/reconstruct_example_a.py — see module docstring.
_EXAMPLE_A_COMP = {0: 22, 1: 104, 2: 128, 3: 73, 4: 146, 5: 147, 6: 23}

#: Reconstructed communication times (sender, receiver) -> time.
_EXAMPLE_A_COMM = {
    (0, 1): 186,
    (0, 2): 192,
    (1, 3): 57,
    (1, 4): 68,
    (1, 5): 77,
    (2, 3): 157,
    (2, 4): 165,
    (2, 5): 13,
    (3, 6): 126,
    (4, 6): 67,
    (5, 6): 73,
}


def _platform_from_times(
    n_procs: int, comp: dict[int, float], comm: dict[tuple[int, int], float], name: str
) -> Platform:
    """Platform whose unit-work/unit-file times match the given tables."""
    comp_times = np.ones(n_procs)
    for u, t in comp.items():
        comp_times[u] = t
    comm_times = np.ones((n_procs, n_procs))
    np.fill_diagonal(comm_times, 0.0)
    for (u, v), t in comm.items():
        comm_times[u, v] = t
    return Platform.from_comm_times(comp_times, comm_times, name=name)


def example_a() -> Instance:
    """Example A (Figure 2): 4 stages on 7 processors, ``m = 6`` paths.

    >>> from repro import compute_period
    >>> compute_period(example_a(), "overlap").period
    189.0
    """
    app = Application(
        works=[1.0] * 4, file_sizes=[1.0] * 3, name="example-A"
    )
    plat = _platform_from_times(7, _EXAMPLE_A_COMP, _EXAMPLE_A_COMM, "example-A")
    mapping = Mapping([(0,), (1, 2), (3, 4, 5), (6,)])
    return Instance(app, plat, mapping)


# ----------------------------------------------------------------------
# Example B
# ----------------------------------------------------------------------

#: Published values for Example B (Section 4.1, Figure 6).
EXAMPLE_B_EXPECTED = {
    "m": 12,
    "overlap_period": 3500.0 / 12.0,  # 291.67 in the paper
    "overlap_mct": 3100.0 / 12.0,  # 258.3 in the paper
}

#: Communication times sender x receiver; rows P0..P2, columns P3..P6.
#: Seven links at 1000 and five at 100 (twelve 100-labels in Figure 6
#: counting the seven computations), arranged so the critical cycle is a
#: "staircase" mixing sender and receiver round-robin circuits with ratio
#: 7000/2 while the busiest single resource (P2's output port) only
#: reaches 3100.  Note the round-robin pairing: data set ``j`` goes
#: ``P_{j mod 3} -> P_{3 + (j mod 4)}``, so the pattern-graph columns
#: visit receivers in the order P3, P6, P5, P4 (step ``3 mod 4``); the
#: all-1000 staircase below is aligned with *that* order.
_EXAMPLE_B_COMM = np.array(
    [
        [1000.0, 100.0, 100.0, 1000.0],
        [100.0, 100.0, 1000.0, 1000.0],
        [1000.0, 1000.0, 1000.0, 100.0],
    ]
)


def example_b() -> Instance:
    """Example B (Figure 6): the OVERLAP mapping without critical resource.

    >>> from repro import compute_period
    >>> res = compute_period(example_b(), "overlap")
    >>> round(res.period, 2), round(res.mct, 2), res.has_critical_resource
    (291.67, 258.33, False)
    """
    app = Application(works=[1.0, 1.0], file_sizes=[1.0], name="example-B")
    comp = {u: 100.0 for u in range(7)}
    comm = {
        (s, 3 + r): float(_EXAMPLE_B_COMM[s, r]) for s in range(3) for r in range(4)
    }
    plat = _platform_from_times(7, comp, comm, "example-B")
    mapping = Mapping([(0, 1, 2), (3, 4, 5, 6)])
    return Instance(app, plat, mapping)


# ----------------------------------------------------------------------
# Example C
# ----------------------------------------------------------------------

#: Structural facts of Example C (Figures 11, 13, 14 and Appendix A).
EXAMPLE_C_STRUCTURE = {
    "replication": (5, 21, 27, 11),
    "m": 10395,
    "f1": {"p": 3, "u": 7, "v": 9, "window": 189, "c": 55},
    # "P5 only communicates with P26, P29, P32, ..., P50"
    "p5_receivers": tuple(range(26, 51, 3)),
    # "P6 only communicates with P27, P30, P33, ..., P51"
    "p6_receivers": tuple(range(27, 52, 3)),
}


def example_c(heterogeneous: bool = False, seed: int = 2009) -> Instance:
    """Example C (Figure 11): replication (5, 21, 27, 11) on 64 processors.

    The paper uses this instance to illustrate the pattern decomposition
    (no durations are given).  With ``heterogeneous=True`` processor and
    link times are drawn uniformly from [5, 15] with the given seed.

    >>> inst = example_c()
    >>> inst.num_paths
    10395
    >>> inst.mapping.comm_structure(1)   # (p, u, v, lcm) for file F1
    (3, 7, 9, 189)
    """
    counts = EXAMPLE_C_STRUCTURE["replication"]
    n_procs = sum(counts)  # 64
    app = Application(works=[1.0] * 4, file_sizes=[1.0] * 3, name="example-C")
    if heterogeneous:
        rng = np.random.default_rng(seed)
        comp_times = rng.uniform(5.0, 15.0, n_procs)
        comm_times = rng.uniform(5.0, 15.0, (n_procs, n_procs))
        np.fill_diagonal(comm_times, 0.0)
        plat = Platform.from_comm_times(comp_times, comm_times, name="example-C")
    else:
        plat = Platform.homogeneous(n_procs, name="example-C")
    bounds = np.cumsum((0,) + counts)
    mapping = Mapping(
        [tuple(range(bounds[i], bounds[i + 1])) for i in range(len(counts))]
    )
    return Instance(app, plat, mapping)
