"""Multi-criteria objective plane: period × latency × reliability.

The source paper optimizes the period alone; its companion papers
(Benoit/Rehn-Sonigo/Robert 2007, 2008) treat throughput, latency and
reliability as one joint scheduling problem.  This package is that
plane:

* :mod:`~repro.objectives.reliability` — the replication-aware
  independent-failure model on :class:`~repro.core.platform.Platform`
  failure rates (a stage survives when at least one replica does);
* :mod:`~repro.objectives.base` — objective names/senses,
  :func:`parse_objectives` canonicalization and the
  :class:`EvalResult` generalization of ``PeriodResult``;
* :mod:`~repro.objectives.evaluate` — :class:`ObjectiveEvaluator`,
  computing the extra objectives over a shared
  :class:`~repro.engine.batch.BatchEngine` without perturbing its
  bit-identical period path;
* :mod:`~repro.objectives.pareto` — the deterministic
  :class:`ParetoArchive` the multi-criteria portfolio collects
  non-dominated mappings into;
* :mod:`~repro.objectives.policy` — replication policies spending a
  platform's spare processors on throughput vs reliability (the two
  ends of the Pareto front, used to seed the portfolio's probes).

The plane is threaded through ``BatchEngine.evaluate(objectives=...)``,
:func:`repro.search.pareto.pareto_portfolio_search`, campaign specs
(``objectives`` grids) and the CLI (``optimize --objectives``).
"""

from .base import OBJECTIVE_NAMES, OBJECTIVE_SENSES, EvalResult, parse_objectives
from .evaluate import (
    DEFAULT_LATENCY_DATASETS,
    ObjectiveEvaluator,
    attach_objectives,
    worst_path_latency,
)
from .pareto import ParetoArchive, ParetoEntry, dominates
from .policy import REPLICATION_POLICIES, replication_policy_mapping
from .reliability import (
    instance_reliability,
    mapping_reliability,
    stage_reliability,
)

__all__ = [
    "OBJECTIVE_NAMES",
    "OBJECTIVE_SENSES",
    "EvalResult",
    "parse_objectives",
    "DEFAULT_LATENCY_DATASETS",
    "ObjectiveEvaluator",
    "attach_objectives",
    "worst_path_latency",
    "ParetoArchive",
    "ParetoEntry",
    "dominates",
    "REPLICATION_POLICIES",
    "replication_policy_mapping",
    "instance_reliability",
    "mapping_reliability",
    "stage_reliability",
]
