"""Deterministic Pareto archive over the minimization-space plane.

The portfolio's multi-criteria mode collects every evaluated mapping
into one :class:`ParetoArchive`: the set of mutually non-dominated
(period, latency, reliability) points, each carrying the mapping that
achieved it.  Everything here is deliberately boring and deterministic:

* dominance compares :meth:`EvalResult.vector` tuples (reliability is
  already negated into minimization space);
* insertion is first-wins on exact vector ties, and dominated entries
  are evicted preserving insertion order — so the archive contents are
  a pure function of the *sequence* of candidates offered;
* :meth:`ParetoArchive.front` sorts by (vector, source) so the exported
  front bytes do not depend on insertion order at all.

Searches feed candidates in a fixed direction-major order, which makes
archive contents identical across ``n_jobs`` and across serial vs
fabric campaign runs — the acceptance bar of the objective plane.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from ..telemetry import TELEMETRY
from ..utils import canonical_json
from .base import EvalResult, parse_objectives

__all__ = ["dominates", "ParetoEntry", "ParetoArchive"]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` Pareto-dominates ``b`` in minimization space.

    Componentwise ``a <= b`` with at least one strict improvement.

    >>> dominates((1.0, 2.0), (1.0, 3.0))
    True
    >>> dominates((1.0, 3.0), (2.0, 1.0))
    False
    >>> dominates((1.0, 2.0), (1.0, 2.0))
    False
    """
    if len(a) != len(b):
        raise ValueError("vectors must have equal length")
    strict = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            strict = True
    return strict


@dataclass(frozen=True)
class ParetoEntry:
    """One non-dominated point: objective values + the mapping behind it.

    ``source`` records deterministic provenance (which scalarization
    direction / epsilon level produced the point) and doubles as the
    sort tie-break for exactly co-located vectors.
    """

    result: EvalResult
    assignments: tuple[tuple[int, ...], ...]
    source: str = ""

    @property
    def vector(self) -> tuple[float, ...]:
        """Minimization-space objective vector."""
        return self.result.vector()

    def to_dict(self) -> dict[str, Any]:
        """Plain-data representation (canonical-JSON friendly)."""
        return {
            "assignments": [list(procs) for procs in self.assignments],
            "source": self.source,
            **self.result.to_dict(),
        }


class ParetoArchive:
    """Mutually non-dominated set with deterministic semantics.

    >>> from repro.core.throughput import PeriodResult
    >>> from repro.core.models import CommModel
    >>> from repro.objectives.base import EvalResult
    >>> def point(period, latency):
    ...     pr = PeriodResult(period=period, throughput=1 / period,
    ...                       model=CommModel.parse("overlap"),
    ...                       method="polynomial",
    ...                       m=1, mct=period, has_critical_resource=True)
    ...     return EvalResult(objectives=("period", "latency"),
    ...                       period_result=pr, latency=latency)
    >>> archive = ParetoArchive(("period", "latency"))
    >>> archive.add(point(10.0, 5.0), assignments=((0,),))
    True
    >>> archive.add(point(12.0, 6.0), assignments=((1,),))   # dominated
    False
    >>> archive.add(point(8.0, 7.0), assignments=((2,),))    # trade-off
    True
    >>> [e.vector for e in archive.front()]
    [(8.0, 7.0), (10.0, 5.0)]
    """

    def __init__(self, objectives: Sequence[str] | str) -> None:
        self.objectives = parse_objectives(objectives)
        self._entries: list[ParetoEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def add(
        self,
        result: EvalResult,
        assignments: Sequence[Sequence[int]],
        source: str = "",
    ) -> bool:
        """Offer one candidate; return True when it enters the archive.

        Rejected when an incumbent dominates it *or* ties its vector
        exactly (first-wins); otherwise inserted, evicting every
        incumbent it dominates (survivor order preserved).
        """
        entry = ParetoEntry(
            result=result,
            assignments=tuple(tuple(int(u) for u in procs)
                              for procs in assignments),
            source=source,
        )
        vector = entry.vector
        for incumbent in self._entries:
            iv = incumbent.vector
            if iv == vector or dominates(iv, vector):
                if TELEMETRY.enabled:
                    TELEMETRY.count("pareto.rejected")
                return False
        self._entries = [
            e for e in self._entries if not dominates(vector, e.vector)
        ]
        self._entries.append(entry)
        if TELEMETRY.enabled:
            TELEMETRY.count("pareto.inserted")
        return True

    def extend(self, entries: Iterable[ParetoEntry]) -> int:
        """Offer entries in order (e.g. merging another archive's front)."""
        inserted = 0
        for entry in entries:
            if self.add(entry.result, entry.assignments, source=entry.source):
                inserted += 1
        return inserted

    def front(self) -> list[ParetoEntry]:
        """The archive sorted by (vector, source, assignments).

        The sort key covers every field that can differ, so the
        returned order — and any bytes derived from it — is independent
        of insertion order.
        """
        return sorted(
            self._entries,
            key=lambda e: (e.vector, e.source, e.assignments),
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data front in deterministic order."""
        return {
            "objectives": list(self.objectives),
            "size": len(self._entries),
            "front": [e.to_dict() for e in self.front()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Canonical-JSON text of :meth:`to_dict` (byte-deterministic)."""
        return canonical_json(self.to_dict(), indent=indent)
