"""Replication-aware reliability model (Benoit/Rehn-Sonigo/Robert).

The multi-criteria follow-on papers to the ICPP 2009 throughput study
("Multi-criteria scheduling of pipeline workflows", 2007; "Optimizing
Latency and Reliability of Pipeline Workflow Applications", 2008) attach
a failure probability to each processor and ask what a *replicated*
mapping buys in terms of success probability.

The model here is the standard independent-failure one:

* processor ``P_u`` fails while handling one data set with probability
  ``f_u`` (``Platform.failure_rates``; 0 when the platform carries no
  failure model);
* a stage replicated on processors ``{u_1, ..., u_m}`` succeeds when at
  least one replica survives: ``1 - prod_j f_{u_j}``;
* the pipeline succeeds when every stage does (stages fail
  independently): ``R = prod_stages (1 - prod_j f_{u_j})``.

Two consequences the tests pin down:

* **zero failure rates** (or an unmodelled platform) give reliability
  exactly 1.0 for every mapping;
* **adding a replica never hurts**: the inner product over replicas can
  only shrink, so ``R`` is monotone non-decreasing in replication —
  replicas can be spent on reliability instead of throughput.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.instance import Instance
from ..core.mapping import Mapping
from ..core.platform import Platform

__all__ = ["stage_reliability", "mapping_reliability", "instance_reliability"]


def stage_reliability(plat: Platform, replicas: Sequence[int]) -> float:
    """Probability that at least one replica of a stage survives.

    ``replicas`` are the processor indices the stage is replicated on.

    >>> plat = Platform.homogeneous(3).with_failure_rates(0.1)
    >>> stage_reliability(plat, [0])
    0.9
    >>> stage_reliability(plat, [0, 1])
    0.99
    """
    if not replicas:
        raise ValueError("a stage must be mapped on at least one processor")
    all_fail = 1.0
    for proc in replicas:
        all_fail *= plat.failure_rate(int(proc))
    return 1.0 - all_fail


def mapping_reliability(plat: Platform, mapping: Mapping) -> float:
    """Success probability of a whole mapped pipeline.

    The product over stages of :func:`stage_reliability`; exactly 1.0
    when the platform has no failure model (every ``f_u`` is 0).

    >>> plat = Platform.homogeneous(4).with_failure_rates(0.5)
    >>> mapping = Mapping([[0, 1], [2, 3]])
    >>> mapping_reliability(plat, mapping)
    0.5625
    """
    reliability = 1.0
    for stage in range(mapping.n_stages):
        reliability *= stage_reliability(plat, mapping.processors_of(stage))
    return reliability


def instance_reliability(inst: Instance) -> float:
    """:func:`mapping_reliability` of an instance's platform + mapping."""
    return mapping_reliability(inst.platform, inst.mapping)
