"""Replication policies: spending spare processors on throughput vs
reliability.

Replication is the paper's throughput lever — ``m_i`` replicas of a
stage round-robin the data sets and cut the computation column of the
period by ``m_i`` — but under the independent-failure model of
:mod:`repro.objectives.reliability` the *same* replicas are also the
reliability lever: a stage survives when at least one replica does, so
its failure probability is the product of its replicas' rates.  The two
policies here make that trade-off explicit by spending the spare
processors of a platform one at a time on opposite ends of it:

* ``"throughput"`` — each grant goes to the stage whose computation
  load per unit of assigned speed is currently worst (the period's
  bottleneck column);
* ``"reliability"`` — each grant goes to the stage whose failure
  probability is currently worst (the reliability bottleneck factor).

Both are deterministic constructive heuristics (stable sorts, ties to
the lower stage index), cheap enough to seed the multi-criteria
portfolio's probe phase with one mapping per end of the Pareto front.
"""

from __future__ import annotations

from math import lcm

from ..core.application import Application
from ..core.mapping import Mapping
from ..core.platform import Platform
from ..errors import ValidationError

__all__ = ["REPLICATION_POLICIES", "replication_policy_mapping"]

#: Recognized ``policy=`` values of :func:`replication_policy_mapping`.
REPLICATION_POLICIES = ("throughput", "reliability")


def _throughput_pressure(app: Application, plat: Platform,
                         assign: list[list[int]], stage: int) -> float:
    """Computation load per unit of speed currently serving ``stage``."""
    speed = sum(float(plat.speeds[u]) for u in assign[stage])
    return float(app.works[stage]) / speed


def _failure_pressure(plat: Platform, assign: list[list[int]],
                      stage: int) -> float:
    """Failure probability of ``stage`` under independent replica faults."""
    prob = 1.0
    for u in assign[stage]:
        prob *= plat.failure_rate(u)
    return prob


def replication_policy_mapping(
    app: Application,
    plat: Platform,
    policy: str = "throughput",
    replicas: int | None = None,
    max_paths: int = 3000,
) -> Mapping:
    """Deterministic replicated mapping under a named replication policy.

    Stages are seeded with the fastest processors one-to-one (the same
    seed as :func:`repro.extensions.mapping_opt.greedy_mapping`), then
    the remaining processors — all of them, or at most ``replicas``
    when given — are granted one at a time to the policy's current
    bottleneck stage.  A grant that would push the mapping's round-robin
    path count (``lcm`` of the replica counts) past ``max_paths`` falls
    through to the next-worst stage; the loop stops when no stage can
    take the processor.

    >>> app = Application(works=[8.0, 2.0, 2.0], file_sizes=[1.0, 1.0],
    ...                   name="demo")
    >>> plat = Platform.homogeneous(6, speed=1.0).with_failure_rates(
    ...     [0.1, 0.1, 0.1, 0.1, 0.3, 0.3])
    >>> replication_policy_mapping(app, plat, "throughput").assignments
    ((0, 3, 4, 5), (1,), (2,))
    >>> replication_policy_mapping(app, plat, "reliability").assignments
    ((0, 3), (1, 4), (2, 5))
    """
    if policy not in REPLICATION_POLICIES:
        raise ValidationError(
            f"unknown replication policy {policy!r} (expected one of: "
            f"{', '.join(REPLICATION_POLICIES)})"
        )
    n, p = app.n_stages, plat.n_processors
    if p < n:
        raise ValidationError("need at least one processor per stage")
    speed_order = sorted(range(p), key=lambda u: (-float(plat.speeds[u]), u))
    assign: list[list[int]] = [[speed_order[i]] for i in range(n)]
    free = speed_order[n:]
    if replicas is not None:
        free = free[: max(0, replicas)]

    for u in free:
        if policy == "throughput":
            pressure = [
                _throughput_pressure(app, plat, assign, i) for i in range(n)
            ]
        else:
            pressure = [_failure_pressure(plat, assign, i) for i in range(n)]
        # Worst pressure first, ties to the lower stage index.
        for stage in sorted(range(n), key=lambda i: (-pressure[i], i)):
            counts = [len(s) for s in assign]
            counts[stage] += 1
            if lcm(*counts) <= max_paths:
                assign[stage].append(u)
                break
        else:
            break  # no stage can take this processor within max_paths

    return Mapping([tuple(s) for s in assign], n_processors=p)
