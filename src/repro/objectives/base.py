"""Objective plane: named criteria and the multi-objective result type.

The library's original evaluation surface is period-shaped — every
oracle call returns a :class:`~repro.core.throughput.PeriodResult`.
The multi-criteria papers the portfolio builds toward optimize three
criteria at once, so this module names them and generalizes the result
type:

* ``"period"`` — steady-state period ``P`` (minimize); the paper's
  original objective, computed exactly by the engine;
* ``"latency"`` — time one data set spends in the pipeline (minimize);
  by default the deterministic contention-free worst-path bound, or the
  exact simulated latency on request;
* ``"reliability"`` — success probability of the replicated pipeline
  (maximize), from :mod:`repro.objectives.reliability`.

:class:`EvalResult` wraps the engine's ``PeriodResult`` and carries the
extra objective values; :meth:`EvalResult.vector` projects onto a
*minimization-space* tuple (reliability contributes ``-R``) so Pareto
dominance and scalarization read uniformly "smaller is better".
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from ..core.throughput import PeriodResult
from ..errors import ValidationError

__all__ = [
    "OBJECTIVE_NAMES",
    "OBJECTIVE_SENSES",
    "parse_objectives",
    "EvalResult",
]

#: Canonical objective order: every objective tuple is a subsequence.
OBJECTIVE_NAMES: tuple[str, ...] = ("period", "latency", "reliability")

#: Optimization sense per objective (``min`` or ``max``).
OBJECTIVE_SENSES: dict[str, str] = {
    "period": "min",
    "latency": "min",
    "reliability": "max",
}


def parse_objectives(spec: str | Iterable[str] | None) -> tuple[str, ...]:
    """Validate and canonicalize an objective selection.

    Accepts a comma-separated string, an iterable of names, or ``None``
    (the period-only default).  Names are deduplicated and returned in
    the canonical :data:`OBJECTIVE_NAMES` order so equal selections
    always produce equal tuples — digests and artifact bytes depend on
    this.

    >>> parse_objectives(None)
    ('period',)
    >>> parse_objectives("reliability,period")
    ('period', 'reliability')
    >>> parse_objectives(["latency"])
    ('latency',)
    """
    if spec is None:
        return ("period",)
    names = spec.split(",") if isinstance(spec, str) else list(spec)
    cleaned = [str(n).strip() for n in names if str(n).strip()]
    if not cleaned:
        raise ValidationError("objectives must name at least one criterion")
    for name in cleaned:
        if name not in OBJECTIVE_NAMES:
            raise ValidationError(
                f"unknown objective {name!r}; expected one of: "
                f"{', '.join(OBJECTIVE_NAMES)}"
            )
    selected = set(cleaned)
    return tuple(n for n in OBJECTIVE_NAMES if n in selected)


@dataclass(frozen=True)
class EvalResult:
    """Multi-objective outcome of evaluating one mapped instance.

    Attributes
    ----------
    objectives:
        The criteria this result was evaluated under (canonical order).
    period_result:
        The engine's exact :class:`PeriodResult` — always present, so
        period-only consumers lose nothing.
    latency:
        Latency value (``None`` unless ``"latency"`` was requested).
    reliability:
        Pipeline success probability (``None`` unless requested).
    latency_mode:
        ``"bound"`` (contention-free worst-path bound) or
        ``"measured"`` (exact simulation).
    """

    objectives: tuple[str, ...]
    period_result: PeriodResult
    latency: float | None = None
    reliability: float | None = None
    latency_mode: str = "bound"

    @property
    def period(self) -> float:
        """Steady-state period ``P`` from the wrapped engine result."""
        return float(self.period_result.period)

    def value(self, objective: str) -> float:
        """Raw value of one objective (its natural sense, not negated)."""
        if objective == "period":
            return self.period
        if objective == "latency":
            if self.latency is None:
                raise ValidationError("latency was not evaluated")
            return float(self.latency)
        if objective == "reliability":
            if self.reliability is None:
                raise ValidationError("reliability was not evaluated")
            return float(self.reliability)
        raise ValidationError(
            f"unknown objective {objective!r}; expected one of: "
            f"{', '.join(OBJECTIVE_NAMES)}"
        )

    def vector(self) -> tuple[float, ...]:
        """Minimization-space projection in objective order.

        ``period`` and ``latency`` pass through; ``reliability`` (a
        maximization criterion) contributes ``-R`` so that dominance and
        scalarization uniformly minimize.
        """
        out: list[float] = []
        for name in self.objectives:
            v = self.value(name)
            out.append(-v if OBJECTIVE_SENSES[name] == "max" else v)
        return tuple(out)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data representation (objective values only)."""
        data: dict[str, Any] = {
            "objectives": list(self.objectives),
            "period": self.period,
        }
        if self.latency is not None:
            data["latency"] = float(self.latency)
            data["latency_mode"] = self.latency_mode
        if self.reliability is not None:
            data["reliability"] = float(self.reliability)
        return data
