"""Objective evaluation over the shared batch engine.

:class:`ObjectiveEvaluator` is the bridge between the engine's exact
period oracle and the multi-criteria plane: periods come from a
caller-owned :class:`~repro.engine.batch.BatchEngine` (skeleton cache,
lockstep group solves — all the PR-1..PR-8 machinery), while latency
and reliability are cheap pure per-instance functions computed in the
calling process.  That split is what makes objective-aware results
bit-identical whatever ``n_jobs`` sharded the period computation.

Latency comes in two modes:

* ``"bound"`` (default) — :func:`worst_path_latency`, the maximum
  contention-free path bound over the mapping's ``m`` round-robin
  paths.  Deterministic, closed-form, cheap enough for search
  neighborhoods.
* ``"measured"`` — exact TPN simulation via
  :func:`repro.core.latency.measure_latency` (saturated regime, worst
  data set); orders of magnitude more expensive, for reporting.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.instance import Instance
from ..core.latency import measure_latency, path_latency_bound
from ..core.models import CommModel
from ..core.throughput import PeriodResult
from ..errors import ValidationError
from ..telemetry import TELEMETRY
from .base import EvalResult, parse_objectives
from .reliability import instance_reliability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..engine.batch import BatchEngine

__all__ = [
    "DEFAULT_LATENCY_DATASETS",
    "worst_path_latency",
    "attach_objectives",
    "ObjectiveEvaluator",
]

#: Data sets simulated by the ``"measured"`` latency mode.
DEFAULT_LATENCY_DATASETS = 24


def worst_path_latency(inst: Instance) -> float:
    """Worst contention-free latency over all ``m`` round-robin paths.

    The maximum of :func:`repro.core.latency.path_latency_bound` over
    one full round-robin sweep — a deterministic lower bound on the
    pipeline's worst per-data-set latency in every regime, and the
    default latency objective.
    """
    worst = 0.0
    for dataset in range(inst.num_paths):
        bound = path_latency_bound(inst, dataset)
        if bound > worst:
            worst = bound
    return worst


def _latency_of(
    inst: Instance,
    model: CommModel,
    latency_mode: str,
    latency_datasets: int,
) -> float:
    if latency_mode == "bound":
        return worst_path_latency(inst)
    if latency_mode == "measured":
        report = measure_latency(inst, model, n_datasets=latency_datasets)
        return float(report.max)
    raise ValidationError(
        f"unknown latency_mode {latency_mode!r}; expected bound/measured"
    )


def attach_objectives(
    inst: Instance,
    result: PeriodResult,
    objectives: Sequence[str] | str | None,
    latency_mode: str = "bound",
    latency_datasets: int = DEFAULT_LATENCY_DATASETS,
) -> EvalResult:
    """Lift one engine :class:`PeriodResult` into an :class:`EvalResult`.

    The period result passes through untouched (bit-identical); latency
    and reliability are computed here only when their objective was
    requested.
    """
    names = parse_objectives(objectives)
    latency: float | None = None
    reliability: float | None = None
    if "latency" in names:
        latency = _latency_of(inst, result.model, latency_mode, latency_datasets)
    if "reliability" in names:
        reliability = instance_reliability(inst)
    if TELEMETRY.enabled:
        TELEMETRY.count("objectives.evaluations")
        for name in names:
            TELEMETRY.count("objectives.evaluations." + name)
    return EvalResult(
        objectives=names,
        period_result=result,
        latency=latency,
        reliability=reliability,
        latency_mode=latency_mode,
    )


@dataclass
class ObjectiveEvaluator:
    """Multi-criteria oracle over a shared :class:`BatchEngine`.

    Parameters
    ----------
    engine:
        The period oracle (caller-owned; its cache amortizes across
        every evaluation this evaluator performs).
    objectives:
        Objective selection, canonicalized by
        :func:`~repro.objectives.base.parse_objectives`.
    latency_mode / latency_datasets:
        See the module docstring.
    """

    engine: "BatchEngine"
    objectives: tuple[str, ...] = ("period",)
    latency_mode: str = "bound"
    latency_datasets: int = DEFAULT_LATENCY_DATASETS

    def __post_init__(self) -> None:
        self.objectives = parse_objectives(self.objectives)

    def evaluate(
        self,
        inst: Instance,
        model: CommModel | str,
        method: str = "auto",
    ) -> EvalResult:
        """Evaluate one instance to an :class:`EvalResult`."""
        result = self.engine.evaluate(inst, model, method)
        return attach_objectives(
            inst,
            result,
            self.objectives,
            latency_mode=self.latency_mode,
            latency_datasets=self.latency_datasets,
        )

    def evaluate_many(
        self,
        instances: Sequence[Instance] | Iterable[Instance],
        models: CommModel | str | Sequence[CommModel | str],
        method: str = "auto",
    ) -> list[EvalResult]:
        """Evaluate a sequence (lockstep same-topology runs) in order."""
        insts = list(instances)
        results = self.engine.evaluate(insts, models, method, mode="many")
        return [
            attach_objectives(
                inst,
                result,
                self.objectives,
                latency_mode=self.latency_mode,
                latency_datasets=self.latency_datasets,
            )
            for inst, result in zip(insts, results)
        ]
