"""Batched throughput evaluation engine.

Every large-scale scenario built on this library — the Table 2 sweeps,
the mapping-search extension, scaling studies of Theorem 1 — reduces to
evaluating :func:`repro.core.throughput.compute_period` over thousands
of ``(instance, model)`` pairs.  The scalar entry point rebuilds the
timed Petri net, reduces it to a ratio graph and re-runs the structural
phases of the cycle-ratio solver from scratch on every call, even when
all instances of a sweep share one mapping topology.

This package amortizes that hot path:

* :func:`~repro.engine.signature.topology_signature` — hashable key
  identifying the (model, mapping) structure an instance shares with its
  sweep siblings;
* :class:`~repro.engine.skeleton.TpnSkeleton` — the cached structural
  artifact of one group: TPN transition/place layout, CSR-prepared
  max-plus solver plan, and vectorized duration stamping arrays;
* :class:`~repro.engine.batch.BatchEngine` — skeleton cache plus a
  drop-in ``evaluate`` returning the same
  :class:`~repro.core.throughput.PeriodResult` values as the scalar
  path, bit-identical; its ``mode="many"`` path locksteps consecutive
  same-topology runs through
  :func:`repro.maxplus.howard.solve_prepared_many` — one ``(B, E)``
  weight matrix, one policy iteration for the whole group;
* :func:`~repro.engine.batch.evaluate` — the module-level batch entry
  point with deterministic chunk sharding across a
  ``ProcessPoolExecutor`` (a bounded in-flight submission window keeps
  streaming memory flat) and streaming, submission-ordered results
  (``mode="stream"``); the old ``evaluate_batch`` / ``evaluate_stream``
  names remain as deprecated aliases.

Quick start::

    from repro.engine import evaluate

    results = evaluate(instances, "strict")         # list[PeriodResult]
    results = evaluate(instances, models, n_jobs=0)    # all cores
    stream = evaluate(instances, "strict", mode="stream")  # lazy
    multi = evaluate(instances, "strict",
                     objectives="period,latency")   # list[EvalResult]

Guarantees
----------
* **Bit-identical results.**  For every supported method the batched
  path executes the same floating-point operations in the same order as
  ``compute_period``; only redundant structural work is skipped.  The
  single intentional difference: batched TPN results carry
  ``tpn_solution.net = None`` (the heavyweight net object is not
  rebuilt per instance) while ``ratio``, ``period`` and every numeric
  field match exactly.
* **Order preservation.**  Results align index-by-index with the input
  iterable, whatever the worker count or chunking.
* **Determinism.**  Evaluation is a pure function of
  ``(instance, model, method)``; ``n_jobs`` only changes wall-clock.
  The single opt-in exception is ``warm_start=True`` (off by default):
  Howard's policy iteration is then seeded from the previous instance
  of the topology group, which leaves every period *value* identical
  but may change which of several exactly-tied critical cycles gets
  extracted.  Mapping search and the :mod:`repro.search` portfolio —
  which only consume period values — can flip it on for the ~2×
  round-count saving on slowly-varying neighborhoods.
"""

from .batch import (
    MAX_GROUP_ROWS,
    MIN_GROUP_ROWS,
    BatchEngine,
    EngineStats,
    evaluate,
    evaluate_batch,
    evaluate_stream,
)
from .classify import CycleTimePlan, build_cycle_time_plan
from .signature import topology_signature
from .skeleton import TpnSkeleton, build_skeleton

__all__ = [
    "BatchEngine",
    "EngineStats",
    "evaluate",
    "evaluate_batch",
    "evaluate_stream",
    "MIN_GROUP_ROWS",
    "MAX_GROUP_ROWS",
    "topology_signature",
    "TpnSkeleton",
    "build_skeleton",
    "CycleTimePlan",
    "build_cycle_time_plan",
]
