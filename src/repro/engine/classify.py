"""Cached cycle-time plans: vectorized ``M_ct`` with byte-stable sums.

``classify_critical_resource`` re-enumerates every processor's in/out
communication windows in Python on each call — after PR 1 removed the
structural TPN work from the batched path, that classification became
~30% of batched evaluation time.  Like the TPN skeleton, the *structure*
of the cycle-time computation (which processor sums which transfer
terms, over which round-robin window) depends only on
``(model, mapping.assignments)``; only the time values change per
instance.

:class:`CycleTimePlan` caches that structure as flat index arrays so one
instance's ``M_ct`` is a handful of vectorized expressions.

Bit-identity contract
---------------------
Every float operation mirrors the scalar path
(:func:`repro.core.cycle_time.cycle_times`) in IEEE-754 order:

* ``C_comp = (w_i / Pi_u) / m_i`` — two elementwise double divisions,
  exactly like ``inst.comp_time(stage, u) / m_i``;
* in/out port totals accumulate with :func:`numpy.add.at`, whose
  unbuffered in-place semantics apply additions **in term order** —
  the same left-to-right ``0.0 + t_0 + t_1 + ...`` as the scalar
  ``sum(...)``, never pairwise/tree summation (the byte-stable
  summation order the batched path requires);
* transfer durations are ``delta_i / b_{u,v}`` with infinite-bandwidth
  links contributing exactly ``+0.0`` like ``Platform.comm_time``;
* STRICT aggregation is the left-associated ``(cin + ccomp) + cout``;
  OVERLAP is the elementwise maximum.

``tests/test_engine_classify.py`` pins equality (``==`` on floats, not
approx) against the scalar classifier across random instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from ..algorithms.bounds import DEFAULT_REL_TOL
from ..core.instance import Instance
from ..core.models import CommModel
from ..telemetry import TELEMETRY
from ..utils import lcm_all

__all__ = ["CycleTimePlan", "build_cycle_time_plan"]


@dataclass(frozen=True)
class CycleTimePlan:
    """Index-array formulation of ``cycle_times`` for one topology group.

    One entry per *used* processor, in the scalar path's
    stage-then-replica order.  Term arrays are laid out entry-major and,
    within an entry, in the scalar path's ``j``-increasing window order,
    so sequential accumulation reproduces the scalar sums byte for byte.

    Attributes
    ----------
    model:
        Communication model the aggregation uses.
    entry_proc, entry_stage:
        Processor / stage of each entry.
    entry_m:
        Replication count ``m_i`` of the entry's stage (the ``C_comp``
        divisor), as float.
    in_entry, in_src, in_file, in_window / out_entry, out_dst,
    out_file, out_window:
        Flattened transfer terms of the input (resp. output) port sums:
        owning entry, peer processor, file index, and the per-entry
        round-robin window divisor (1.0 for entries with no terms, whose
        total stays ``+0.0``).
    """

    model: CommModel
    entry_proc: npt.NDArray[np.int64]
    entry_stage: npt.NDArray[np.int64]
    entry_m: npt.NDArray[np.int64]
    in_entry: npt.NDArray[np.int64]
    in_src: npt.NDArray[np.int64]
    in_file: npt.NDArray[np.int64]
    in_window: npt.NDArray[np.float64]
    out_entry: npt.NDArray[np.int64]
    out_dst: npt.NDArray[np.int64]
    out_file: npt.NDArray[np.int64]
    out_window: npt.NDArray[np.float64]

    @property
    def n_entries(self) -> int:
        """Number of used processors (= scalar report entries)."""
        return int(self.entry_proc.size)

    def components(
        self, inst: Instance
    ) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64], npt.NDArray[np.float64]]:
        """Per-entry ``(cin, ccomp, cout)`` of ``inst`` (vectorized).

        Bit-identical to the scalar
        :class:`~repro.core.cycle_time.ProcessorCycleTime` fields.
        """
        works = np.asarray(inst.application.works, dtype=float)
        speeds = inst.platform.speeds
        ccomp = works[self.entry_stage] / speeds[self.entry_proc] / self.entry_m

        n = self.n_entries
        sizes = np.asarray(inst.application.file_sizes, dtype=float)
        bw = inst.platform.bandwidths

        cin = np.zeros(n)
        if self.in_entry.size:
            # size / inf == +0.0, matching Platform.comm_time's fast-link
            # branch; np.add.at accumulates in term order (left to right
            # per entry), matching the scalar sum() byte for byte.
            terms = sizes[self.in_file] / bw[self.in_src, self.entry_proc[self.in_entry]]
            np.add.at(cin, self.in_entry, terms)
        cin = cin / self.in_window

        cout = np.zeros(n)
        if self.out_entry.size:
            terms = sizes[self.out_file] / bw[self.entry_proc[self.out_entry], self.out_dst]
            np.add.at(cout, self.out_entry, terms)
        cout = cout / self.out_window
        return cin, ccomp, cout

    def mct(self, inst: Instance) -> float:
        """``M_ct`` of ``inst`` — equals ``cycle_times(inst, model).mct``."""
        cin, ccomp, cout = self.components(inst)
        if self.model.overlap:
            cexec = np.maximum(np.maximum(cin, ccomp), cout)
        else:
            cexec = (cin + ccomp) + cout
        return float(cexec.max())

    def verdict(self, inst: Instance, period: float,
                rel_tol: float = DEFAULT_REL_TOL) -> tuple[float, bool, float]:
        """``(mct, has_critical_resource, relative_gap)`` for a period.

        Same formulas as
        :func:`repro.algorithms.bounds.classify_critical_resource`, minus
        the per-resource report object the batched path never reads.
        """
        mct = self.mct(inst)
        gap = (period - mct) / mct if mct > 0 else 0.0
        return mct, gap <= rel_tol, gap

    def components_many(
        self, instances: list[Instance]
    ) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64], npt.NDArray[np.float64]]:
        """Per-entry ``(cin, ccomp, cout)`` of a whole group — ``(B, n)``.

        Row ``b`` equals ``components(instances[b])`` bit for bit: the
        port totals accumulate through ``np.bincount`` keyed by
        ``(row, entry)``, which scans its input once in C order — row
        ``b``'s terms add left to right in term order, exactly like the
        scalar per-instance ``np.add.at`` call.  Falls back to per-row
        evaluation when the group's platforms disagree in size.
        """
        B = len(instances)
        n = self.n_entries
        try:
            works = np.stack(
                [np.asarray(i.application.works, dtype=float) for i in instances]
            )
            speeds = np.stack([i.platform.speeds for i in instances])
            sizes = np.stack(
                [np.asarray(i.application.file_sizes, dtype=float) for i in instances]
            )
            bw = np.stack([i.platform.bandwidths for i in instances])
        except ValueError:  # ragged platforms: evaluate row by row
            cins = np.empty((B, n))
            ccomps = np.empty((B, n))
            couts = np.empty((B, n))
            for b, inst in enumerate(instances):
                cins[b], ccomps[b], couts[b] = self.components(inst)
            return cins, ccomps, couts

        ccomp = works[:, self.entry_stage] / speeds[:, self.entry_proc] / self.entry_m

        # bincount scans its input in C order, so row b's terms
        # accumulate left to right exactly like the scalar sum() (and
        # like np.add.at, several times faster).
        row_off = (np.arange(B) * n)[:, None]
        cin = np.zeros((B, n))
        if self.in_entry.size:
            terms = sizes[:, self.in_file] / bw[
                :, self.in_src, self.entry_proc[self.in_entry]
            ]
            cin = np.bincount(
                (row_off + self.in_entry).ravel(), weights=terms.ravel(),
                minlength=B * n,
            ).reshape(B, n)
        cin = cin / self.in_window

        cout = np.zeros((B, n))
        if self.out_entry.size:
            terms = sizes[:, self.out_file] / bw[
                :, self.entry_proc[self.out_entry], self.out_dst
            ]
            cout = np.bincount(
                (row_off + self.out_entry).ravel(), weights=terms.ravel(),
                minlength=B * n,
            ).reshape(B, n)
        cout = cout / self.out_window
        return cin, ccomp, cout

    def mct_many(self, instances: list[Instance]) -> npt.NDArray[np.float64]:
        """``M_ct`` of every instance of a group — shape ``(B,)``."""
        cin, ccomp, cout = self.components_many(instances)
        if self.model.overlap:
            cexec = np.maximum(np.maximum(cin, ccomp), cout)
        else:
            cexec = (cin + ccomp) + cout
        return cexec.max(axis=1)

    def verdict_many(
        self,
        instances: list[Instance],
        periods: npt.NDArray[np.float64],
        rel_tol: float = DEFAULT_REL_TOL,
    ) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.bool_], npt.NDArray[np.float64]]:
        """Batched :meth:`verdict` — ``(mct, critical, gap)`` arrays.

        ``periods`` aligns with ``instances``; entry ``b`` of each
        returned array is bit-identical to
        ``verdict(instances[b], periods[b], rel_tol)``.
        """
        mct = self.mct_many(instances)
        periods = np.asarray(periods, dtype=float)
        gap = np.zeros(len(instances))
        pos = mct > 0
        gap[pos] = (periods[pos] - mct[pos]) / mct[pos]
        return mct, gap <= rel_tol, gap


def build_cycle_time_plan(
    inst: Instance, model: CommModel | str
) -> CycleTimePlan:
    """Extract the cycle-time index arrays from one representative.

    Any instance of the topology group works: the entry list, term
    layout and window divisors depend only on the mapping's assignments
    (and the model, which only affects aggregation).
    """
    model = CommModel.parse(model)
    if TELEMETRY.enabled:
        TELEMETRY.count("engine.plan_builds")
    mapping = inst.mapping
    n_stages = inst.n_stages

    entry_proc: list[int] = []
    entry_stage: list[int] = []
    entry_m: list[float] = []
    in_entry: list[int] = []
    in_src: list[int] = []
    in_file: list[int] = []
    in_window: list[float] = []
    out_entry: list[int] = []
    out_dst: list[int] = []
    out_file: list[int] = []
    out_window: list[float] = []

    for stage in range(n_stages):
        procs = mapping.processors_of(stage)
        m_i = len(procs)
        for replica, u in enumerate(procs):
            entry = len(entry_proc)
            entry_proc.append(u)
            entry_stage.append(stage)
            entry_m.append(float(m_i))

            win_in = 1.0
            if stage > 0:
                senders = mapping.processors_of(stage - 1)
                window = lcm_all([len(senders), m_i])
                win_in = float(window)
                for j in range(replica, window, m_i):
                    in_entry.append(entry)
                    in_src.append(senders[j % len(senders)])
                    in_file.append(stage - 1)
            in_window.append(win_in)

            win_out = 1.0
            if stage < n_stages - 1:
                receivers = mapping.processors_of(stage + 1)
                window = lcm_all([m_i, len(receivers)])
                win_out = float(window)
                for j in range(replica, window, m_i):
                    out_entry.append(entry)
                    out_dst.append(receivers[j % len(receivers)])
                    out_file.append(stage)
            out_window.append(win_out)

    as_i = lambda xs: np.asarray(xs, dtype=np.int64)  # noqa: E731
    return CycleTimePlan(
        model=model,
        entry_proc=as_i(entry_proc),
        entry_stage=as_i(entry_stage),
        entry_m=np.asarray(entry_m),
        in_entry=as_i(in_entry),
        in_src=as_i(in_src),
        in_file=as_i(in_file),
        in_window=np.asarray(in_window),
        out_entry=as_i(out_entry),
        out_dst=as_i(out_dst),
        out_file=as_i(out_file),
        out_window=np.asarray(out_window),
    )
