"""Cached TPN skeletons: build once per topology, re-stamp weights per instance.

A :class:`TpnSkeleton` captures everything about a ``(model, mapping)``
group that does not depend on the instance's times:

* the net's transition layout, flattened into numpy arrays
  (``comp_mask``, ``stage_or_file``, ``proc_u``, ``proc_v``) that let
  :meth:`TpnSkeleton.stamp_durations` compute all firing durations with
  three vectorized expressions instead of ``m * (2n - 1)`` Python calls;
* the place list as ``(edge_src, edge_dst, edge_tokens)`` arrays — the
  cycle-ratio graph's structure;
* the CSR-prepared Howard plan
  (:func:`repro.maxplus.howard.prepare_howard`), so repeated solves skip
  the liveness check, Tarjan's SCC pass, subgraph extraction and the
  per-SCC edge sort.

:meth:`TpnSkeleton.solve_many` is the group fast path: it stamps every
instance of a topology group into one ``(B, E)`` weight matrix and runs
:func:`repro.maxplus.howard.solve_prepared_many` — lockstep policy
iteration across the whole batch — instead of ``B`` scalar solves.

Bit-identical contract: the duration formulas mirror
:meth:`repro.core.platform.Platform.comp_time` / ``comm_time``
(elementwise IEEE-754 double divisions in the same order), the edge
weights reproduce :meth:`repro.petri.net.TimedEventGraph.to_ratio_graph`
(weight of a place = duration of its input transition), and the solve
delegates to the same :func:`~repro.maxplus.howard.solve_prepared` /
Lawler-fallback dispatch as :func:`repro.maxplus.cycle_ratio.max_cycle_ratio`
with ``method="auto"``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from ..core.instance import Instance
from ..core.models import CommModel
from ..errors import ReplicationExplosionError, SolverError
from ..maxplus.cycle_ratio import CycleRatioResult
from ..maxplus.graph import RatioGraph
from ..maxplus.howard import (
    HowardPlan,
    HowardState,
    prepare_howard,
    solve_prepared,
    solve_prepared_many,
)
from ..maxplus.lawler import max_cycle_ratio_lawler
from ..petri.builder import DEFAULT_MAX_ROWS, build_tpn
from ..telemetry import TELEMETRY

__all__ = ["TpnSkeleton", "build_skeleton"]


@dataclass(frozen=True)
class TpnSkeleton:
    """Structural cache entry for one ``(model, mapping)`` topology group.

    Attributes
    ----------
    model:
        Communication model the net was built for.
    m:
        Number of TPN rows ``lcm(m_i)`` (also the period divisor).
    n_transitions:
        ``m * (2n - 1)``.
    comp_mask:
        Boolean per transition: ``True`` for computations.
    stage_or_file:
        Stage index (computations) or file index (transmissions).
    proc_u, proc_v:
        Executing processor, resp. (sender, receiver) pair; ``proc_v``
        is ``-1`` on computation rows.
    edge_src, edge_dst, edge_tokens:
        Place arrays of the reduced cycle-ratio graph.
    plan:
        CSR-prepared Howard solver plan for the graph's structure.
    """

    model: CommModel
    m: int
    n_transitions: int
    comp_mask: npt.NDArray[np.bool_]
    stage_or_file: npt.NDArray[np.int64]
    proc_u: npt.NDArray[np.int64]
    proc_v: npt.NDArray[np.int64]
    edge_src: npt.NDArray[np.int64]
    edge_dst: npt.NDArray[np.int64]
    edge_tokens: npt.NDArray[np.int64]
    plan: HowardPlan

    def check_budget(self, max_rows: int | None) -> None:
        """Enforce the row budget exactly like :func:`build_tpn` would."""
        if max_rows is not None and self.m > max_rows:
            raise ReplicationExplosionError(self.m, max_rows)

    def stamp_durations(self, inst: Instance) -> npt.NDArray[np.float64]:
        """Per-transition firing durations of ``inst`` (vectorized).

        Equals ``[t.duration for t in build_tpn(inst, model).transitions]``
        bit-for-bit: ``w_i / Pi_u`` for computations, ``delta_i / b_{u,v}``
        for transmissions (0 on infinite-bandwidth links, exactly as
        :meth:`Platform.comm_time` returns).
        """
        dur = np.empty(self.n_transitions)
        cm = self.comp_mask
        works = np.asarray(inst.application.works, dtype=float)
        dur[cm] = works[self.stage_or_file[cm]] / inst.platform.speeds[self.proc_u[cm]]
        comm = ~cm
        if comm.any():
            sizes = np.asarray(inst.application.file_sizes, dtype=float)
            # size / inf == 0.0, matching Platform.comm_time's fast-link case.
            dur[comm] = sizes[self.stage_or_file[comm]] / inst.platform.bandwidths[
                self.proc_u[comm], self.proc_v[comm]
            ]
        return dur

    def stamp_weights(self, inst: Instance) -> npt.NDArray[np.float64]:
        """Edge weights of the cycle-ratio graph for ``inst``.

        The weight of a place is the duration of its *input* transition
        (see :meth:`TimedEventGraph.to_ratio_graph`).
        """
        return self.stamp_durations(inst)[self.edge_src]

    def solve(
        self,
        inst: Instance,
        solver: str = "auto",
        state: HowardState | None = None,
    ) -> CycleRatioResult:
        """Maximum cycle ratio for ``inst`` on the cached structure.

        Mirrors :func:`repro.maxplus.cycle_ratio.max_cycle_ratio`'s
        ``"auto"``/``"howard"``/``"lawler"`` dispatch (Karp is pointless
        here: round-robin wrap places mean tokens are not all 1).

        ``state`` optionally warm-starts Howard's policy iteration from
        the previous solve on this skeleton (see
        :class:`~repro.maxplus.howard.HowardState`); the period *value*
        is unchanged, but the extracted critical cycle may differ on
        exact ties, which is why :class:`~repro.engine.batch.BatchEngine`
        keeps warm starting opt-in.
        """
        weights = self.stamp_weights(inst)
        if solver == "lawler":
            return CycleRatioResult(
                max_cycle_ratio_lawler(self._graph(weights)), (), (), "lawler"
            )
        if solver not in ("auto", "howard"):
            raise ValueError(f"unknown method {solver!r}")
        try:
            res = solve_prepared(self.plan, weights, state=state)
            return CycleRatioResult(res.value, res.cycle_nodes, res.cycle_edges, "howard")
        except SolverError:
            if solver == "howard":
                raise
            return CycleRatioResult(
                max_cycle_ratio_lawler(self._graph(weights)), (), (), "lawler"
            )

    def stamp_durations_many(self, instances: list[Instance]) -> npt.NDArray[np.float64]:
        """``(B, n_transitions)`` firing-duration matrix of a whole group.

        Row ``b`` equals ``stamp_durations(instances[b])`` bit for bit:
        the stacked formulation performs the same elementwise IEEE-754
        divisions, just over a batch axis.  Falls back to per-row
        stamping when the group's platforms disagree in size (legal —
        the signature only pins the *used* processor indices).
        """
        dur = np.empty((len(instances), self.n_transitions))
        try:
            works = np.stack(
                [np.asarray(i.application.works, dtype=float) for i in instances]
            )
            speeds = np.stack([i.platform.speeds for i in instances])
        except ValueError:  # ragged platforms: stamp row by row
            for b, inst in enumerate(instances):
                dur[b] = self.stamp_durations(inst)
            return dur
        cm = self.comp_mask
        dur[:, cm] = works[:, self.stage_or_file[cm]] / speeds[:, self.proc_u[cm]]
        comm = ~cm
        if comm.any():
            sizes = np.stack(
                [np.asarray(i.application.file_sizes, dtype=float) for i in instances]
            )
            bw = np.stack([i.platform.bandwidths for i in instances])
            dur[:, comm] = sizes[:, self.stage_or_file[comm]] / bw[
                :, self.proc_u[comm], self.proc_v[comm]
            ]
        return dur

    def stamp_weights_many(self, instances: list[Instance]) -> npt.NDArray[np.float64]:
        """``(B, n_edges)`` cycle-ratio weight matrix of a whole group."""
        return self.stamp_durations_many(instances)[:, self.edge_src]

    def solve_many(
        self,
        instances: list[Instance],
        solver: str = "auto",
        state: HowardState | None = None,
    ) -> list[CycleRatioResult]:
        """Maximum cycle ratios for a whole topology group, in lockstep.

        Stamps every instance's weights into one ``(B, E)`` matrix and
        runs :func:`~repro.maxplus.howard.solve_prepared_many` — policy
        iteration for all rows simultaneously.  Cold results are
        bit-identical to per-instance :meth:`solve` calls.

        ``state`` optionally carries one shared
        :class:`~repro.maxplus.howard.HowardState`: every row seeds from
        the state's current policy and the state leaves with the last
        row's converged policy, so consecutive group solves chain like
        consecutive scalar solves.  Values are unchanged (warm starts
        never change values), but round counts and exact-tie cycle
        extraction follow the group seeding rather than the scalar
        instance-to-instance chaining.

        Any :class:`~repro.errors.SolverError` from the lockstep path
        (non-convergence, acyclic graph) falls back to per-instance
        :meth:`solve` so errors and Lawler dispatch behave exactly like
        the scalar path, row by row.
        """
        if solver == "lawler":
            return [self.solve(inst, solver="lawler") for inst in instances]
        if solver not in ("auto", "howard"):
            raise ValueError(f"unknown method {solver!r}")
        try:
            weights = self.stamp_weights_many(instances)
            many = solve_prepared_many(self.plan, weights, state=state)
            return [
                CycleRatioResult(r.value, r.cycle_nodes, r.cycle_edges, "howard")
                for r in many
            ]
        except SolverError:
            if TELEMETRY.enabled:
                TELEMETRY.count("engine.group_fallbacks")
                TELEMETRY.count("engine.group_fallback_rows", len(instances))
            return [
                self.solve(inst, solver=solver, state=state) for inst in instances
            ]

    def _graph(self, weights: npt.NDArray[np.float64]) -> RatioGraph:
        """Materialize the full ratio graph (Lawler fallback only)."""
        return RatioGraph(
            self.n_transitions,
            zip(self.edge_src, self.edge_dst, weights, self.edge_tokens),
        )


def build_skeleton(
    inst: Instance,
    model: CommModel | str,
    max_rows: int | None = DEFAULT_MAX_ROWS,
) -> TpnSkeleton:
    """Build the structural skeleton from one representative instance.

    Any instance of the topology group works as representative: the
    extracted arrays and the Howard plan depend only on the mapping's
    assignments and the model.
    """
    model = CommModel.parse(model)
    net = build_tpn(inst, model, max_rows=max_rows)
    graph = net.to_ratio_graph()
    plan = prepare_howard(graph)

    n_t = net.n_transitions
    comp_mask = np.empty(n_t, dtype=bool)
    stage_or_file = np.empty(n_t, dtype=np.int64)
    proc_u = np.empty(n_t, dtype=np.int64)
    proc_v = np.full(n_t, -1, dtype=np.int64)
    for t in net.transitions:
        comp_mask[t.index] = t.kind == "comp"
        stage_or_file[t.index] = t.stage_or_file
        proc_u[t.index] = t.procs[0]
        if t.kind == "comm":
            proc_v[t.index] = t.procs[1]

    return TpnSkeleton(
        model=model,
        m=net.n_rows,
        n_transitions=n_t,
        comp_mask=comp_mask,
        stage_or_file=stage_or_file,
        proc_u=proc_u,
        proc_v=proc_v,
        edge_src=graph.src,
        edge_dst=graph.dst,
        edge_tokens=graph.tokens,
        plan=plan,
    )
