"""Topology signatures: grouping instances that share TPN structure.

The timed Petri net of an instance is determined by two ingredients
(:mod:`repro.petri.builder`): the communication model and the mapping's
per-stage processor tuples (which fix ``m = lcm(m_i)``, the round-robin
row structure and every place of the net).  Stage works, file sizes,
processor speeds and link bandwidths only enter as *transition
durations* — edge weights of the reduced cycle-ratio graph.

Hence two instances with equal ``(model, mapping.assignments)`` share
the entire structural pipeline: net layout, liveness check, SCC
decomposition and CSR solver preparation.  :func:`topology_signature`
is the cache key the batch engine groups by.
"""

from __future__ import annotations

from ..core.instance import Instance
from ..core.models import CommModel

__all__ = ["topology_signature"]


def topology_signature(
    inst: Instance, model: CommModel | str
) -> tuple[str, tuple[tuple[int, ...], ...]]:
    """Hashable key of the TPN structure shared by a sweep group.

    Examples
    --------
    Instances differing only in speeds/bandwidths share a signature:

    >>> from repro import Application, Platform, Mapping, Instance
    >>> app = Application(works=[1, 1], file_sizes=[1])
    >>> mp = Mapping([(0,), (1, 2)])
    >>> a = Instance(app, Platform.homogeneous(3, speed=1.0), mp)
    >>> b = Instance(app, Platform.homogeneous(3, speed=2.0), mp)
    >>> topology_signature(a, "overlap") == topology_signature(b, "overlap")
    True
    >>> topology_signature(a, "overlap") == topology_signature(a, "strict")
    False
    """
    return (CommModel.parse(model).value, inst.mapping.assignments)
