"""Batch evaluation: skeleton cache, group lockstep solves, streaming.

:class:`BatchEngine` is the per-process cache of
:class:`~repro.engine.skeleton.TpnSkeleton` objects keyed by
:func:`~repro.engine.signature.topology_signature`;
:func:`evaluate` is the module-level entry point that shards large
batches across worker processes (``mode="batch"`` collects a list,
``mode="stream"`` yields lazily; :func:`evaluate_batch` /
:func:`evaluate_stream` remain as deprecated aliases).

:meth:`BatchEngine.evaluate` is the engine's single documented entry
point: a single instance takes the scalar cache path, a sequence is
evaluated in order with keyword-only ``mode=`` narrowing the dispatch
(``"many"`` run detection, ``"group"`` explicit lockstep), and
``objectives=`` lifts results into the multi-criteria
(period, latency, reliability) plane of :mod:`repro.objectives`.
``BatchEngine.evaluate_group`` / ``BatchEngine.evaluate_many`` are
deprecated aliases onto the same implementations.

**Group evaluation** is the hot path: consecutive TPN-method pairs that
share a topology signature are stamped into one ``(B, E)`` weight
matrix and solved in lockstep by
:func:`repro.maxplus.howard.solve_prepared_many`
(``mode="many"`` does the run detection;
``mode="group"`` is the explicit entry point).  It
kicks in for runs of at least :data:`MIN_GROUP_ROWS` same-signature
pairs and slabs huge groups at :data:`MAX_GROUP_ROWS` rows to bound the
weight-matrix footprint.  Cold group results are bit-identical to
per-pair :meth:`BatchEngine.evaluate` calls.

Sharding is deterministic: the input order is cut into contiguous
chunks of ``chunk_size`` pairs, chunks are dispatched in order to a
``ProcessPoolExecutor`` through a **bounded in-flight window** (a
handful of chunks per worker are pickled/buffered at any moment, so
streaming a huge batch keeps memory flat), and results stream back in
submission order.  Contiguous chunks deliberately preserve the caller's
grouping — a sweep that emits instances topology-by-topology gets
near-perfect skeleton cache hit rates *and* full-chunk lockstep groups
inside every worker.  Each worker process keeps one long-lived
:class:`BatchEngine`, so the cache survives across chunks of the same
batch (and across batches, for repeated calls inside one worker
lifetime).  A caller-owned ``engine=`` is a serial-path feature;
combining it with ``n_jobs`` parallelism raises
:class:`~repro.errors.ValidationError` (worker processes cannot share
the caller's cache).

Every evaluation is a pure function of ``(instance, model, method)``:
results are bit-identical whatever ``n_jobs`` or ``chunk_size``.  The
one opt-in exception is ``warm_start=True``, which seeds Howard's policy
iteration from the previous instance (or, on the group path, the
previous *group*) of a topology group: period *values* are unchanged,
but the extracted critical cycle (and hence
``tpn_solution.ratio.cycle_nodes``) may depend on evaluation history —
see :class:`BatchEngine`.
"""

from __future__ import annotations

import os
import warnings
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence, overload

import numpy as np

from ..algorithms.general_tpn import TpnSolution
from ..algorithms.overlap_poly import OverlapBreakdown, overlap_period
from ..core.instance import Instance
from ..core.models import CommModel
from ..core.throughput import PeriodResult, compute_period
from ..errors import ValidationError
from ..faults import FAULTS
from ..maxplus.howard import HowardState
from ..petri.builder import DEFAULT_MAX_ROWS
from ..telemetry import TELEMETRY
from .classify import CycleTimePlan, build_cycle_time_plan
from .signature import topology_signature
from .skeleton import TpnSkeleton, build_skeleton

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..objectives.base import EvalResult

__all__ = [
    "BatchEngine",
    "EngineStats",
    "evaluate",
    "evaluate_batch",
    "evaluate_stream",
    "MIN_GROUP_ROWS",
    "MAX_GROUP_ROWS",
    "MIN_PARALLEL_BATCH",
]


def _warn_deprecated(old: str, new: str) -> None:
    """One deprecated-alias warning, attributed to the caller's line."""
    warnings.warn(
        f"{old} is deprecated and will be removed in a future release; "
        f"use {new} (see CONTRIBUTING.md, 'Deprecated evaluate entry "
        f"points')",
        DeprecationWarning,
        stacklevel=3,
    )


def _attach_objectives(
    pairs: Sequence[tuple[Instance, CommModel]],
    results: Iterable[PeriodResult],
    objectives: Sequence[str] | str,
    latency_mode: str,
) -> Iterator["EvalResult"]:
    """Wrap engine results with the extra objective values, lazily.

    The latency / reliability computations are pure per-instance
    functions evaluated in the caller's process, so objective-aware
    results stay bit-identical whatever ``n_jobs`` did to the period
    computation.  Imported lazily to keep ``repro.engine`` importable
    without the objectives package (and cycle-free).
    """
    from ..objectives.base import parse_objectives
    from ..objectives.evaluate import attach_objectives

    names = parse_objectives(objectives)
    for (inst, _model), result in zip(pairs, results):
        yield attach_objectives(
            inst, result, names, latency_mode=latency_mode
        )

#: Below this many pairs a process pool costs more than it saves; the
#: stream falls back to the serial path.  Public so callers that must
#: decide between a caller-owned engine and worker sharding (e.g. the
#: mapping-search neighborhood scan) can mirror the dispatch.
MIN_PARALLEL_BATCH = 4

#: Smallest same-signature run routed through the lockstep group solver;
#: a single pair goes through the scalar path (identical results, no
#: batch setup cost).
MIN_GROUP_ROWS = 2

#: Largest number of rows stamped into one lockstep solve.  Bounds the
#: ``(B, E)`` weight matrix (and the serial stream's grouping buffer);
#: longer runs are solved in consecutive slabs of this size.
MAX_GROUP_ROWS = 256

#: In-flight chunks per worker on the parallel streaming path.
_INFLIGHT_PER_WORKER = 2


@dataclass
class EngineStats:
    """Cache counters of one :class:`BatchEngine` (diagnostics only).

    ``hits``/``misses``/``evaluated`` are the PR-1 cache stats;
    ``scalar_solves``/``group_solves``/``group_rows`` split the
    evaluations between the per-pair path and the lockstep group path
    (PR 8, surfaced by ``campaign report``).  All fields are exact
    integers, deterministic for a fixed evaluation order.
    """

    hits: int = 0
    misses: int = 0
    evaluated: int = 0
    scalar_solves: int = 0
    group_solves: int = 0
    group_rows: int = 0

    @property
    def groups(self) -> int:
        """Number of distinct topology groups seen (= cache misses)."""
        return self.misses


@dataclass
class BatchEngine:
    """Skeleton-caching period evaluator, drop-in for ``compute_period``.

    Parameters
    ----------
    max_rows:
        Row budget on ``m = lcm(m_i)`` for TPN-based methods, enforced
        per evaluation exactly like the scalar path (``None`` disables).
    cache_limit:
        Maximum number of cached skeletons; the oldest entry is evicted
        beyond it (sweeps use a handful of topologies, but a mapping
        *search* streams through thousands — the bound keeps memory
        flat).  ``None`` disables eviction.
    warm_start:
        Opt-in: seed Howard's policy iteration from the previous
        evaluation of the same topology group
        (:class:`~repro.maxplus.howard.HowardState` per cached
        skeleton).  On slowly-varying neighborhoods — a mapping-search
        trajectory, a sweep of nearby instances — the previous policy
        is typically one improvement round from the new fixed point.
        Period *values* are identical to cold start; the extracted
        critical cycle may differ when several cycles tie exactly,
        which is why the flag defaults to off (cold evaluation stays a
        pure function of ``(instance, model, method)``).

    Notes
    -----
    ``evaluate`` returns :class:`PeriodResult` objects whose numeric
    fields (``period``, ``throughput``, ``mct``, ``relative_gap``,
    ``has_critical_resource``, ``m``, ``method``, ``model``) and
    ``breakdown`` / ``tpn_solution.ratio`` payloads are bit-identical
    to ``compute_period(inst, model, method)``.  The only difference:
    TPN results carry ``tpn_solution.net = None`` because the engine
    never materializes the per-instance net object.
    """

    max_rows: int | None = DEFAULT_MAX_ROWS
    cache_limit: int | None = 1024
    warm_start: bool = False
    stats: EngineStats = field(default_factory=EngineStats)
    _skeletons: dict[tuple, TpnSkeleton] = field(default_factory=dict)
    _warm_states: dict[tuple, HowardState] = field(default_factory=dict)
    _ct_plans: dict[tuple, CycleTimePlan] = field(default_factory=dict)

    def skeleton(self, inst: Instance, model: CommModel | str) -> TpnSkeleton:
        """Fetch (or build and cache) the topology group's skeleton."""
        return self._skeleton_for(topology_signature(inst, model), inst, model)

    def _skeleton_for(
        self, key: tuple[object, ...], inst: Instance, model: CommModel | str
    ) -> TpnSkeleton:
        sk = self._skeletons.get(key)
        if sk is None:
            sk = build_skeleton(inst, model, max_rows=self.max_rows)
            if self.cache_limit is not None and len(self._skeletons) >= self.cache_limit:
                oldest = next(iter(self._skeletons))
                self._skeletons.pop(oldest)
                self._warm_states.pop(oldest, None)
            self._skeletons[key] = sk
            self.stats.misses += 1
            if TELEMETRY.enabled:
                TELEMETRY.count("engine.skeleton_builds")
        else:
            self.stats.hits += 1
            if TELEMETRY.enabled:
                TELEMETRY.count("engine.cache_hits")
        return sk

    def _ct_plan_for(
        self, key: tuple[object, ...], inst: Instance, model: CommModel
    ) -> CycleTimePlan:
        """Fetch (or build) the topology group's cycle-time plan.

        Cached independently of the skeletons: the polynomial path needs
        the plan but never builds a skeleton.  Same bound, same oldest-
        entry eviction.
        """
        plan = self._ct_plans.get(key)
        if plan is None:
            plan = build_cycle_time_plan(inst, model)
            if self.cache_limit is not None and len(self._ct_plans) >= self.cache_limit:
                self._ct_plans.pop(next(iter(self._ct_plans)))
            self._ct_plans[key] = plan
        return plan

    # -- unified entry point -------------------------------------------
    @overload
    def evaluate(
        self,
        instances: Instance,
        models: CommModel | str,
        method: str = ...,
        n_firings: int | None = ...,
        *,
        mode: str = ...,
        objectives: None = ...,
        latency_mode: str = ...,
    ) -> PeriodResult: ...

    @overload
    def evaluate(
        self,
        instances: Instance,
        models: CommModel | str,
        method: str = ...,
        n_firings: int | None = ...,
        *,
        mode: str = ...,
        objectives: Sequence[str] | str,
        latency_mode: str = ...,
    ) -> "EvalResult": ...

    @overload
    def evaluate(
        self,
        instances: Sequence[Instance] | Iterable[Instance],
        models: CommModel | str | Sequence[CommModel | str],
        method: str = ...,
        n_firings: int | None = ...,
        *,
        mode: str = ...,
        objectives: None = ...,
        latency_mode: str = ...,
    ) -> list[PeriodResult]: ...

    @overload
    def evaluate(
        self,
        instances: Sequence[Instance] | Iterable[Instance],
        models: CommModel | str | Sequence[CommModel | str],
        method: str = ...,
        n_firings: int | None = ...,
        *,
        mode: str = ...,
        objectives: Sequence[str] | str,
        latency_mode: str = ...,
    ) -> list["EvalResult"]: ...

    def evaluate(
        self,
        instances: Instance | Sequence[Instance] | Iterable[Instance],
        models: CommModel | str | Sequence[CommModel | str],
        method: str = "auto",
        n_firings: int | None = None,
        *,
        mode: str = "auto",
        objectives: Sequence[str] | str | None = None,
        latency_mode: str = "bound",
    ) -> Any:
        """The engine's single documented entry point.

        One :class:`~repro.core.instance.Instance` evaluates through the
        scalar cache path and returns one result; a sequence of
        instances evaluates in order and returns a list aligned with the
        input.  The keyword-only ``mode=`` narrows the dispatch:

        ``"auto"``
            Scalar for a single instance, ``"many"`` for a sequence
            (the default — callers rarely need anything else).
        ``"scalar"``
            Require a single instance (the PR-1 ``evaluate`` path).
        ``"many"``
            A sequence of pairs; consecutive same-topology TPN runs are
            lockstep-solved (the old ``evaluate_many``).
        ``"group"``
            A sequence that *must* share one topology signature, solved
            as explicit lockstep slabs (the old ``evaluate_group``);
            a mixed batch raises :class:`~repro.errors.ValidationError`.

        ``objectives=`` selects the multi-criteria plane: pass a
        comma-separated string or iterable of objective names
        (``"period"``, ``"latency"``, ``"reliability"``) and the call
        returns :class:`~repro.objectives.base.EvalResult` values
        wrapping the same bit-identical period results; ``latency_mode``
        chooses the deterministic worst-path ``"bound"`` (default) or
        the exact ``"measured"`` simulation.  With ``objectives=None``
        results are plain :class:`PeriodResult` — byte-for-byte the
        pre-redesign behavior.

        Method selection, validation errors and the
        ``ReplicationExplosionError`` budget behave exactly like
        :func:`repro.core.throughput.compute_period`.
        """
        single = isinstance(instances, Instance)
        if mode not in ("auto", "scalar", "many", "group"):
            raise ValidationError(
                f"unknown mode {mode!r}; expected auto/scalar/many/group"
            )
        if mode == "scalar" and not single:
            raise ValidationError(
                "mode='scalar' expects a single Instance, not a sequence"
            )
        if single:
            if mode in ("many", "group"):
                raise ValidationError(
                    f"mode={mode!r} expects a sequence of instances; got a "
                    f"single Instance (use mode='scalar' or 'auto')"
                )
            if isinstance(models, (list, tuple)):
                raise ValidationError(
                    "a single instance takes a single model, not a sequence"
                )
            result = self._evaluate_point(
                instances, models, method=method, n_firings=n_firings
            )
            if objectives is None:
                return result
            return next(iter(_attach_objectives(
                [(instances, result.model)], [result], objectives,
                latency_mode,
            )))
        pairs = _normalize_pairs(instances, models)
        if mode == "group":
            if pairs and any(m != pairs[0][1] for _, m in pairs):
                raise ValidationError(
                    "mode='group' expects a single shared model"
                )
            results = self._evaluate_uniform_group(
                [inst for inst, _ in pairs],
                pairs[0][1] if pairs else "overlap",
                method=method,
            )
        else:
            results = self._evaluate_sequence(
                pairs, method=method, n_firings=n_firings
            )
        if objectives is None:
            return results
        return list(
            _attach_objectives(pairs, results, objectives, latency_mode)
        )

    def _evaluate_point(
        self,
        inst: Instance,
        model: CommModel | str,
        method: str = "auto",
        n_firings: int | None = None,
    ) -> PeriodResult:
        """Evaluate one pair through the cache (scalar-path semantics)."""
        model = CommModel.parse(model)
        if method == "auto":
            method = "polynomial" if model.overlap else "tpn"

        if FAULTS.enabled:
            # A stall here models a slow machine: the worker's lease
            # heartbeats arrive late and the fabric's watchdog path
            # (stale takeover) is exercised end-to-end.
            FAULTS.hit("engine.evaluate")
        self.stats.evaluated += 1
        self.stats.scalar_solves += 1
        if TELEMETRY.enabled:
            # Contract counters: one per point, split by resolved
            # method, plus the point's path count — all pure functions
            # of the point, so totals are partition-invariant.
            TELEMETRY.count("engine.points")
            TELEMETRY.count("engine.points." + method)
            TELEMETRY.count("engine.paths", inst.num_paths)
        key = topology_signature(inst, model)
        breakdown: OverlapBreakdown | None = None
        solution: TpnSolution | None = None
        if method == "polynomial":
            if not model.overlap:
                raise ValidationError(
                    "the polynomial algorithm (Theorem 1) only applies to the "
                    "OVERLAP ONE-PORT model; use method='tpn' for STRICT"
                )
            breakdown = overlap_period(inst)
            period = breakdown.period
        elif method == "tpn":
            sk = self._skeleton_for(key, inst, model)
            sk.check_budget(self.max_rows)
            state = self._warm_states.setdefault(key, HowardState()) \
                if self.warm_start else None
            ratio = sk.solve(inst, state=state)
            period = ratio.value / sk.m
            solution = TpnSolution(period=period, ratio=ratio, net=None)
        elif method == "simulation":
            # No structure worth caching: the simulator walks the full net.
            return compute_period(
                inst, model, method="simulation",
                max_rows=self.max_rows, n_firings=n_firings,
            )
        else:
            raise ValidationError(
                f"unknown method {method!r}; expected auto/polynomial/tpn/simulation"
            )

        # Classification through the cached index-array plan: bit-identical
        # to classify_critical_resource, ~3x cheaper per evaluation.
        mct, has_critical, _ = self._ct_plan_for(key, inst, model).verdict(
            inst, period
        )
        return PeriodResult(
            period=period,
            throughput=1.0 / period if period > 0 else float("inf"),
            model=model,
            method=method,
            m=inst.num_paths,
            mct=mct,
            has_critical_resource=has_critical,
            breakdown=breakdown,
            tpn_solution=solution,
        )

    def evaluate_group(
        self,
        instances: Sequence[Instance],
        model: CommModel | str,
        method: str = "auto",
    ) -> list[PeriodResult]:
        """Deprecated alias for :meth:`evaluate` with ``mode="group"``."""
        _warn_deprecated(
            "BatchEngine.evaluate_group", "BatchEngine.evaluate(mode='group')"
        )
        return self._evaluate_uniform_group(instances, model, method=method)

    def _evaluate_uniform_group(
        self,
        instances: Sequence[Instance],
        model: CommModel | str,
        method: str = "auto",
    ) -> list[PeriodResult]:
        """Evaluate one topology group through the lockstep solver.

        Every instance must share ``topology_signature(inst, model)``
        with the first (callers that may mix topologies should use
        ``mode="many"``, which detects same-signature runs).  The
        TPN method stamps the whole group into one ``(B, E)`` weight
        matrix and runs
        :func:`~repro.maxplus.howard.solve_prepared_many`; other methods
        fall back to the per-pair scalar path.  Cold results are
        bit-identical to per-pair evaluation; with ``warm_start=True``
        all rows seed from the group's carried policy (values unchanged,
        see :class:`~repro.maxplus.howard.HowardState`).
        """
        model = CommModel.parse(model)
        if method == "auto":
            method = "polynomial" if model.overlap else "tpn"
        if method != "tpn" or len(instances) < MIN_GROUP_ROWS:
            return [
                self._evaluate_point(i, model, method=method)
                for i in instances
            ]
        key = topology_signature(instances[0], model)
        for inst in instances[1:]:
            if topology_signature(inst, model) != key:
                # A mismatched instance would be stamped through the
                # first instance's skeleton and return plausible but
                # wrong numbers — fail loudly instead.
                raise ValidationError(
                    "mode='group' requires every instance to share one "
                    "topology signature (model + mapping assignments); "
                    "use mode='many' for mixed batches"
                )
        out: list[PeriodResult] = []
        for i in range(0, len(instances), MAX_GROUP_ROWS):
            out.extend(
                self._evaluate_tpn_group(key, instances[i: i + MAX_GROUP_ROWS], model)
            )
        return out

    def _evaluate_tpn_group(
        self, key: tuple[object, ...], instances: Sequence[Instance], model: CommModel
    ) -> list[PeriodResult]:
        """One lockstep slab: stamp, solve, classify, package."""
        if FAULTS.enabled:
            FAULTS.hit("engine.evaluate")
        B = len(instances)
        self.stats.evaluated += B
        self.stats.group_solves += 1
        self.stats.group_rows += B
        sk = self._skeleton_for(key, instances[0], model)
        # Cache-lookup parity with B scalar evaluations of the group.
        self.stats.hits += B - 1
        if TELEMETRY.enabled:
            TELEMETRY.count("engine.points", B)
            TELEMETRY.count("engine.points.tpn", B)
            TELEMETRY.count("engine.paths", sk.m * B)
            TELEMETRY.count("engine.cache_hits", B - 1)
            TELEMETRY.count("engine.group_solves")
            TELEMETRY.count("engine.group_rows", B)
        sk.check_budget(self.max_rows)
        state = self._warm_states.setdefault(key, HowardState()) \
            if self.warm_start else None
        with TELEMETRY.span("group-solve", rows=B):
            ratios = sk.solve_many(list(instances), state=state)
        periods = [r.value / sk.m for r in ratios]
        ct_plan = self._ct_plan_for(key, instances[0], model)
        mcts, crits, _ = ct_plan.verdict_many(
            list(instances), np.asarray(periods)
        )
        out = []
        for b, inst in enumerate(instances):
            period = periods[b]
            out.append(PeriodResult(
                period=period,
                throughput=1.0 / period if period > 0 else float("inf"),
                model=model,
                method="tpn",
                m=sk.m,  # == inst.num_paths for every group member
                mct=float(mcts[b]),
                has_critical_resource=bool(crits[b]),
                breakdown=None,
                tpn_solution=TpnSolution(period=period, ratio=ratios[b], net=None),
            ))
        return out

    def evaluate_many(
        self,
        instances: Sequence[Instance] | Iterable[Instance],
        models: CommModel | str | Sequence[CommModel | str],
        method: str = "auto",
        n_firings: int | None = None,
    ) -> list[PeriodResult]:
        """Deprecated alias for :meth:`evaluate` with ``mode="many"``."""
        _warn_deprecated(
            "BatchEngine.evaluate_many", "BatchEngine.evaluate(mode='many')"
        )
        return self._evaluate_sequence(
            _normalize_pairs(instances, models),
            method=method, n_firings=n_firings,
        )

    def _evaluate_sequence(
        self,
        pairs: list[tuple[Instance, CommModel]],
        method: str = "auto",
        n_firings: int | None = None,
    ) -> list[PeriodResult]:
        """Evaluate pairs in order, locksteping same-topology runs.

        The drop-in batched counterpart of calling the scalar path in a
        loop: consecutive pairs whose ``(model, signature)`` match form
        a group and go through the lockstep slabs; everything else
        (singleton runs, polynomial/simulation methods) takes the scalar
        path.  Results align with the input and are bit-identical to the
        per-pair loop on a cold engine.
        """
        out: list[PeriodResult] = []
        for i, j, model, key in _signature_runs(pairs, method):
            if key is None or j - i < MIN_GROUP_ROWS:
                out.extend(
                    self._evaluate_point(inst, model, method=method,
                                         n_firings=n_firings)
                    for inst, _ in pairs[i:j]
                )
            else:
                group = [p[0] for p in pairs[i:j]]
                for k in range(0, len(group), MAX_GROUP_ROWS):
                    out.extend(self._evaluate_tpn_group(
                        key, group[k: k + MAX_GROUP_ROWS], model
                    ))
        return out


def _signature_runs(
    pairs: list[tuple[Instance, CommModel]], method: str
) -> Iterator[tuple[int, int, CommModel, tuple | None]]:
    """Contiguous ``[i, j)`` segments of a pair list, for group dispatch.

    TPN-method pairs extend their segment while model and topology
    signature match (``key`` is the shared signature); other methods
    yield singleton segments with ``key = None``.  The single owner of
    the run-boundary predicate for :meth:`BatchEngine.evaluate_many`
    and the serial :func:`evaluate_stream` path.
    """
    i = 0
    while i < len(pairs):
        inst, model = pairs[i]
        resolved = method
        if resolved == "auto":
            resolved = "polynomial" if model.overlap else "tpn"
        if resolved != "tpn":
            yield i, i + 1, model, None
            i += 1
            continue
        key = topology_signature(inst, model)
        j = i + 1
        while j < len(pairs) and pairs[j][1] == model \
                and topology_signature(pairs[j][0], model) == key:
            j += 1
        yield i, j, model, key
        i = j


def _normalize_pairs(
    instances: Sequence[Instance] | Iterable[Instance],
    models: CommModel | str | Sequence[CommModel | str],
) -> list[tuple[Instance, CommModel]]:
    instances = list(instances)
    if isinstance(models, (CommModel, str)):
        parsed = CommModel.parse(models)
        return [(inst, parsed) for inst in instances]
    models = [CommModel.parse(m) for m in models]
    if len(models) != len(instances):
        raise ValidationError(
            f"got {len(instances)} instances but {len(models)} models; pass "
            f"a single model or one per instance"
        )
    return list(zip(instances, models))


# ----------------------------------------------------------------------
# worker-process plumbing
# ----------------------------------------------------------------------
#: One engine per worker process, reused across chunks so the skeleton
#: cache amortizes over the whole batch, not a single chunk.
_WORKER_ENGINE: BatchEngine | None = None


def _evaluate_chunk(
    payload: tuple[list[tuple[Instance, CommModel]], str, int | None, bool, bool],
) -> tuple[list[PeriodResult], dict[str, int] | None]:
    """Module-level trampoline for process pools (picklable).

    Returns the chunk's results plus, when the parent runs with
    telemetry on, this chunk's counter snapshot.  Counters merge by
    summation, so the parent's totals are independent of chunk
    completion order (NUM205-safe).  The collector is re-enabled (reset)
    or disabled explicitly per chunk: forked workers inherit the
    parent's collector state, which must never double-count.
    """
    global _WORKER_ENGINE
    chunk, method, max_rows, warm_start, telemetry_on = payload
    if telemetry_on:
        TELEMETRY.enable("chunk")
    else:
        TELEMETRY.disable()
    if (
        _WORKER_ENGINE is None
        or _WORKER_ENGINE.max_rows != max_rows
        or _WORKER_ENGINE.warm_start != warm_start
    ):
        _WORKER_ENGINE = BatchEngine(max_rows=max_rows, warm_start=warm_start)
    engine = _WORKER_ENGINE
    results = engine._evaluate_sequence(list(chunk), method=method)
    counters = TELEMETRY.counter_snapshot() if telemetry_on else None
    return results, counters


def _stream_pairs(
    pairs: list[tuple[Instance, CommModel]],
    method: str = "auto",
    max_rows: int | None = DEFAULT_MAX_ROWS,
    n_jobs: int | None = None,
    chunk_size: int | None = None,
    engine: BatchEngine | None = None,
    warm_start: bool = False,
) -> Iterator[PeriodResult]:
    """Lazily yield one :class:`PeriodResult` per pair, in input order.

    The engine room of the module-level :func:`evaluate`: serial path
    through one (caller-owned or fresh) :class:`BatchEngine`, parallel
    path through the bounded in-flight chunk window.  See
    :func:`evaluate` for parameter semantics.
    """
    if engine is not None and n_jobs not in (None, 1):
        raise ValidationError(
            f"engine= is a serial-path option but n_jobs={n_jobs} requests "
            f"worker processes, which cannot share the caller's engine "
            f"cache; drop engine= or run with n_jobs=1"
        )
    if n_jobs is None or n_jobs == 1 or len(pairs) < MIN_PARALLEL_BATCH:
        eng = engine if engine is not None else BatchEngine(
            max_rows=max_rows, warm_start=warm_start)
        # Yield at same-topology run boundaries: runs of >= MIN_GROUP_ROWS
        # solve in lockstep (per MAX_GROUP_ROWS slab), while a stream of
        # distinct topologies still yields per evaluation.
        for i, j, model, key in _signature_runs(pairs, method):
            if key is None or j - i < MIN_GROUP_ROWS:
                for inst, _ in pairs[i:j]:
                    yield eng._evaluate_point(inst, model, method=method)
            else:
                group = [p[0] for p in pairs[i:j]]
                for k in range(0, len(group), MAX_GROUP_ROWS):
                    yield from eng._evaluate_tpn_group(
                        key, group[k: k + MAX_GROUP_ROWS], model
                    )
        return

    workers = (os.cpu_count() or 1) if n_jobs == 0 else n_jobs
    if chunk_size is None:
        chunk_size = max(1, -(-len(pairs) // (workers * 4)))
    telemetry_on = TELEMETRY.enabled
    payloads = (
        (pairs[i: i + chunk_size], method, max_rows, warm_start, telemetry_on)
        for i in range(0, len(pairs), chunk_size)
    )
    # Bounded in-flight window: submit a few chunks per worker, then
    # one-in-one-out in submission order — a huge batch never has more
    # than `window` chunks pickled or buffered at once.
    window = workers * _INFLIGHT_PER_WORKER
    with ProcessPoolExecutor(max_workers=workers) as pool:
        inflight: deque = deque()
        for payload in payloads:
            inflight.append(pool.submit(_evaluate_chunk, payload))
            if len(inflight) < window:
                continue
            results, counters = inflight.popleft().result()
            if counters is not None:
                TELEMETRY.merge_counters(counters)
            yield from results
        while inflight:
            results, counters = inflight.popleft().result()
            if counters is not None:
                TELEMETRY.merge_counters(counters)
            yield from results


@overload
def evaluate(
    instances: Sequence[Instance] | Iterable[Instance],
    models: CommModel | str | Sequence[CommModel | str],
    method: str = ...,
    *,
    mode: str = ...,
    max_rows: int | None = ...,
    n_jobs: int | None = ...,
    chunk_size: int | None = ...,
    engine: BatchEngine | None = ...,
    warm_start: bool = ...,
    objectives: None = ...,
    latency_mode: str = ...,
) -> list[PeriodResult]: ...


@overload
def evaluate(
    instances: Sequence[Instance] | Iterable[Instance],
    models: CommModel | str | Sequence[CommModel | str],
    method: str = ...,
    *,
    mode: str = ...,
    max_rows: int | None = ...,
    n_jobs: int | None = ...,
    chunk_size: int | None = ...,
    engine: BatchEngine | None = ...,
    warm_start: bool = ...,
    objectives: Sequence[str] | str,
    latency_mode: str = ...,
) -> list["EvalResult"]: ...


def evaluate(
    instances: Sequence[Instance] | Iterable[Instance],
    models: CommModel | str | Sequence[CommModel | str],
    method: str = "auto",
    *,
    mode: str = "batch",
    max_rows: int | None = DEFAULT_MAX_ROWS,
    n_jobs: int | None = None,
    chunk_size: int | None = None,
    engine: BatchEngine | None = None,
    warm_start: bool = False,
    objectives: Sequence[str] | str | None = None,
    latency_mode: str = "bound",
) -> Any:
    """The module-level entry point: evaluate pairs, sharded on request.

    Drop-in replacement for ``[compute_period(i, m, method) for i, m in
    pairs]`` — same values, same exceptions — with skeleton caching and
    optional multi-process sharding.

    Parameters
    ----------
    instances:
        The instances to evaluate.
    models:
        A single model applied to every instance, or one model per
        instance.
    method:
        ``"auto"`` / ``"polynomial"`` / ``"tpn"`` / ``"simulation"``,
        with :func:`compute_period`'s semantics.
    mode:
        Keyword-only.  ``"batch"`` (default) returns the full result
        list aligned with the input; ``"stream"`` returns a lazy
        iterator that yields results in input order (per same-topology
        run on the serial path, per chunk on the parallel path).
    max_rows:
        TPN row budget (per evaluation, like the scalar path).
    n_jobs:
        ``None``/``1`` evaluates serially in-process; ``0`` uses all
        cores; ``k > 1`` uses ``k`` worker processes.  Results are
        bit-identical whatever the worker count.
    chunk_size:
        Pairs per worker task; default balances ~4 chunks per worker.
        Chunks are contiguous, so keep topology groups adjacent in the
        input for best cache locality *and* full-chunk lockstep groups.
    engine:
        Serial path only: reuse a caller-owned :class:`BatchEngine`
        (e.g. to share its cache across successive sweeps).  When given,
        the engine's own ``warm_start`` flag governs, not this call's.
        Combining ``engine=`` with a parallel ``n_jobs`` raises
        :class:`~repro.errors.ValidationError` — worker processes
        cannot share the caller's cache.
    warm_start:
        Opt-in Howard warm starting inside each evaluating engine (see
        :class:`BatchEngine`).  Period values are identical to cold
        start; extracted critical cycles may depend on chunk boundaries.
    objectives:
        ``None`` (default) returns plain :class:`PeriodResult` values —
        byte-identical to the pre-redesign behavior.  A selection of
        objective names returns
        :class:`~repro.objectives.base.EvalResult` values; the extra
        objectives are computed in the calling process, so they are
        identical whatever ``n_jobs``.
    latency_mode:
        ``"bound"`` (deterministic worst-path bound, default) or
        ``"measured"`` (exact simulation) for the latency objective.

    Examples
    --------
    >>> from repro.experiments.examples_paper import example_a
    >>> from repro.core.throughput import compute_period
    >>> batch = evaluate([example_a()] * 3, "overlap")
    >>> [r.period for r in batch]
    [189.0, 189.0, 189.0]
    >>> batch[0].period == compute_period(example_a(), "overlap").period
    True
    """
    if mode not in ("batch", "stream"):
        raise ValidationError(
            f"unknown mode {mode!r}; expected batch/stream"
        )
    pairs = _normalize_pairs(instances, models)
    stream: Iterator[PeriodResult] = _stream_pairs(
        pairs, method=method, max_rows=max_rows, n_jobs=n_jobs,
        chunk_size=chunk_size, engine=engine, warm_start=warm_start,
    )
    if objectives is None:
        return stream if mode == "stream" else list(stream)
    wrapped = _attach_objectives(pairs, stream, objectives, latency_mode)
    return wrapped if mode == "stream" else list(wrapped)


def evaluate_stream(
    instances: Sequence[Instance] | Iterable[Instance],
    models: CommModel | str | Sequence[CommModel | str],
    method: str = "auto",
    max_rows: int | None = DEFAULT_MAX_ROWS,
    n_jobs: int | None = None,
    chunk_size: int | None = None,
    engine: BatchEngine | None = None,
    warm_start: bool = False,
) -> Iterator[PeriodResult]:
    """Deprecated alias for :func:`evaluate` with ``mode="stream"``."""
    _warn_deprecated("evaluate_stream", "evaluate(mode='stream')")
    return _stream_pairs(
        _normalize_pairs(instances, models), method=method,
        max_rows=max_rows, n_jobs=n_jobs, chunk_size=chunk_size,
        engine=engine, warm_start=warm_start,
    )


def evaluate_batch(
    instances: Sequence[Instance] | Iterable[Instance],
    models: CommModel | str | Sequence[CommModel | str],
    method: str = "auto",
    max_rows: int | None = DEFAULT_MAX_ROWS,
    n_jobs: int | None = None,
    chunk_size: int | None = None,
    engine: BatchEngine | None = None,
    warm_start: bool = False,
) -> list[PeriodResult]:
    """Deprecated alias for :func:`evaluate` with ``mode="batch"``."""
    _warn_deprecated("evaluate_batch", "evaluate(mode='batch')")
    return list(
        _stream_pairs(
            _normalize_pairs(instances, models), method=method,
            max_rows=max_rows, n_jobs=n_jobs, chunk_size=chunk_size,
            engine=engine, warm_start=warm_start,
        )
    )
