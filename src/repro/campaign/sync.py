"""Store push/pull/merge: partial campaigns computed anywhere combine.

A campaign no longer has to live in one store file.  This module moves
rows between **stores** (SQLite files) and **directory remotes**
(DVC-style content-addressed object trees, trivially rsync/NFS/S3-able)
so that partial result sets computed on different hosts merge into one
— byte-identically, because rows are transported as their exact
canonical-JSON payload text and keyed by content digest.

Semantics (the properties ``tests/test_store_sync.py`` pins):

* **Idempotent** — merging a source twice changes nothing; rows
  already present with equal bytes are skipped.
* **Commutative** — on conflict-free inputs, ``merge(A, B)`` and
  ``merge(B, A)`` leave both sides with the same result set: content
  addressing means there is nothing order-dependent to decide.
* **Convergent** — ``push`` then ``pull`` against the same remote
  leaves local and remote with identical result sets.
* **Never silently merged** — a payload that fails validation
  (:func:`repro.campaign.store.payload_error`) is *quarantined* at the
  destination (parked in its ``quarantine`` table / directory, never in
  ``results``) and reported.  A **conflict** — one digest, two
  *different* payload texts on the two sides — proves one side corrupt
  or schema-drifted; the destination keeps its row, the incoming copy
  is quarantined for forensics, and the conflict is reported (or raised,
  for ``strict=True`` callers).

Directory remote layout::

    <root>/objects/<digest[:2]>/<digest>.json     # payload text, exact bytes
    <root>/quarantine/<digest>.<origin>.json      # {digest, origin, reason, payload}

The two-level fan-out keeps directories small at millions of objects;
every listing is sorted before use, so remote enumeration order is a
contract, not a filesystem accident.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from ..errors import SyncConflictError, ValidationError
from ..faults import DEFAULT_RETRY, FAULTS, RetryPolicy
from ..telemetry import TELEMETRY
from ..utils import canonical_json
from .store import ResultStore, payload_error

__all__ = [
    "SyncReport",
    "DirectoryRemote",
    "open_remote",
    "merge_stores",
    "push",
    "pull",
]


@dataclass
class SyncReport:
    """Outcome of one push/pull/merge direction.

    ``merged`` rows were new at the destination, ``skipped`` were
    already present with identical bytes, ``repaired`` replaced an
    *invalid* destination copy with a valid incoming one.  ``conflicts``
    and ``quarantined`` list what was refused: conflicting digests keep
    the destination's row, and every refused payload is parked in the
    destination's quarantine area with a reason.
    """

    source: str
    dest: str
    examined: int = 0
    merged: int = 0
    skipped: int = 0
    repaired: int = 0
    conflicts: list[str] = field(default_factory=list)
    quarantined: list[tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Whether nothing was refused (no conflicts, no quarantines)."""
        return not self.conflicts and not self.quarantined

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (the CLI's ``store ... --json`` payload)."""
        return {
            "source": self.source,
            "dest": self.dest,
            "examined": self.examined,
            "merged": self.merged,
            "skipped": self.skipped,
            "repaired": self.repaired,
            "conflicts": sorted(self.conflicts),
            "quarantined": [
                {"digest": d, "reason": r}
                for d, r in sorted(self.quarantined)
            ],
            "clean": self.clean,
        }


# ----------------------------------------------------------------------
# remote endpoints
# ----------------------------------------------------------------------
class _StoreEndpoint:
    """A :class:`ResultStore` as a sync endpoint."""

    def __init__(self, store: ResultStore) -> None:
        self._store = store
        self.label = store.path

    def items_text(self) -> Iterator[tuple[str, str]]:
        return self._store.items_text()

    def get_text(self, digest: str) -> str | None:
        return self._store.payload_text(digest)

    def put_text(self, digest: str, text: str) -> bool:
        return self._store.put_text(digest, text)

    def quarantine(
        self, digest: str, origin: str, text: str, reason: str
    ) -> None:
        self._store.add_quarantine(digest, origin, text, reason)


class DirectoryRemote:
    """A content-addressed object directory as a sync endpoint.

    The directory is created on first write.  Payloads are stored as
    exact bytes under ``objects/<digest[:2]>/<digest>.json`` and are
    never overwritten — like the store, a directory remote is
    content-addressed and append-only (quarantine aside).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.label = str(root)

    def _object_path(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / f"{digest}.json"

    def items_text(self) -> Iterator[tuple[str, str]]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for path in sorted(objects.glob("*/*.json")):
            yield path.stem, path.read_text()

    def get_text(self, digest: str) -> str | None:
        path = self._object_path(digest)
        return path.read_text() if path.exists() else None

    def put_text(self, digest: str, text: str) -> bool:
        if FAULTS.enabled:
            # Chaos hook: a full disk raises here; a torn write hands
            # back a truncated payload that lands under the final name
            # — exactly the wreckage quarantine exists to catch.
            text = FAULTS.mangle("sync.object-write", text)
        path = self._object_path(digest)
        if path.exists():
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename: a reader (or a crash) never observes a
        # half-written object under its final content-addressed name.
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text, newline="")
        tmp.replace(path)
        return True

    def quarantine(
        self, digest: str, origin: str, text: str, reason: str
    ) -> None:
        qdir = self.root / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        entry = canonical_json(
            {"digest": digest, "origin": origin, "reason": reason,
             "payload": text},
            indent=2,
        ) + "\n"
        (qdir / f"{digest}.{origin}.json").write_text(entry, newline="")

    def quarantined(self) -> list[tuple[str, str, str, str]]:
        """``(digest, origin, payload_text, reason)`` rows, sorted."""
        qdir = self.root / "quarantine"
        rows: list[tuple[str, str, str, str]] = []
        if qdir.is_dir():
            for path in sorted(qdir.glob("*.json")):
                entry = json.loads(path.read_text())
                rows.append((str(entry["digest"]), str(entry["origin"]),
                             str(entry["payload"]), str(entry["reason"])))
        return rows


def open_remote(
    target: str | Path, store: ResultStore | None = None
) -> _StoreEndpoint | DirectoryRemote:
    """Resolve a sync target: an open store, a store file, or a directory.

    An existing directory (or a path spelled with a trailing separator)
    is a :class:`DirectoryRemote`; anything else is opened as a
    :class:`ResultStore` file (created when missing).  Pass an already
    open ``store`` to wrap it without reopening the file.
    """
    if store is not None:
        return _StoreEndpoint(store)
    path = Path(target)
    if path.is_dir() or str(target).endswith(("/", "\\")):
        return DirectoryRemote(path)
    if path.exists() or path.suffix in (".sqlite", ".db", ".store"):
        return _StoreEndpoint(ResultStore(path))
    raise ValidationError(
        f"sync target {str(target)!r} does not exist; create it first, "
        f"spell a directory remote with a trailing '/', or use a "
        f".sqlite/.db suffix to create a store file"
    )


# ----------------------------------------------------------------------
# the merge core
# ----------------------------------------------------------------------
def _merge(
    src: _StoreEndpoint | DirectoryRemote,
    dst: _StoreEndpoint | DirectoryRemote,
    strict: bool = False,
) -> SyncReport:
    """Merge every valid row of ``src`` into ``dst`` (the one primitive).

    push = merge(local, remote); pull = merge(remote, local).  The
    source is never mutated.
    """
    report = SyncReport(source=src.label, dest=dst.label)
    origin = src.label
    for digest, text in src.items_text():
        if FAULTS.enabled:
            FAULTS.hit("sync.merge-row")
        report.examined += 1
        reason = payload_error(text)
        if reason is not None:
            dst.quarantine(digest, origin, text, reason)
            report.quarantined.append((digest, reason))
            continue
        existing = dst.get_text(digest)
        if existing is None:
            dst.put_text(digest, text)
            report.merged += 1
        elif existing == text:
            report.skipped += 1
        elif payload_error(existing) is not None:
            # The destination's copy is the invalid one: park it and
            # let the valid incoming bytes take the slot.
            dst.quarantine(
                digest, dst.label, existing,
                f"replaced by valid copy from {origin}: "
                f"{payload_error(existing)}",
            )
            _replace_text(dst, digest, text)
            report.repaired += 1
        else:
            dst.quarantine(
                digest, origin, text,
                "conflict: differs from the destination's valid copy",
            )
            report.conflicts.append(digest)
    if TELEMETRY.enabled:
        TELEMETRY.count("sync.merged", report.merged)
        TELEMETRY.count("sync.skipped", report.skipped)
        TELEMETRY.count("sync.repaired", report.repaired)
        TELEMETRY.count("sync.conflicts", len(report.conflicts))
        TELEMETRY.count("sync.quarantined", len(report.quarantined))
    if strict and report.conflicts:
        raise SyncConflictError(
            f"sync {origin!r} -> {dst.label!r} found "
            f"{len(report.conflicts)} digest(s) with conflicting "
            f"payloads (first: {report.conflicts[0]}); both copies are "
            f"preserved (destination row + quarantined incoming row) — "
            f"inspect the quarantine and delete the corrupt side"
        )
    return report


def _replace_text(
    dst: _StoreEndpoint | DirectoryRemote, digest: str, text: str
) -> None:
    """Swap an (invalid) destination row for valid bytes."""
    if isinstance(dst, _StoreEndpoint):
        dst._store.connection.execute(
            "UPDATE results SET payload = ? WHERE digest = ?",
            (text, digest),
        )
        dst._store.commit()
    else:
        path = dst._object_path(digest)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text, newline="")
        tmp.replace(path)


# ----------------------------------------------------------------------
# public verbs
# ----------------------------------------------------------------------
def _merge_with_retry(
    src: _StoreEndpoint | DirectoryRemote,
    dst: _StoreEndpoint | DirectoryRemote,
    strict: bool,
    retry: RetryPolicy | None,
    key: str,
) -> SyncReport:
    """Run one merge direction under a retry policy.

    Safe because the merge is idempotent: a direction that died on a
    transient lock or a full disk simply re-examines everything and
    skips the rows the first pass already landed.
    """
    policy = DEFAULT_RETRY if retry is None else retry
    return policy.run(
        key,
        lambda: _merge(src, dst, strict=strict),
        retryable=(sqlite3.OperationalError, OSError),
    )


def push(
    store: ResultStore,
    remote: str | Path,
    strict: bool = False,
    retry: RetryPolicy | None = None,
) -> SyncReport:
    """Merge this store's rows into ``remote`` (file or directory).

    Examples
    --------
    >>> import tempfile, os
    >>> a = ResultStore(":memory:")
    >>> _ = a.put("d1", {"schema": 1, "model": "overlap", "method": "x",
    ...                  "period": 1.0, "mct": 1.0, "critical": True,
    ...                  "gap": 0.0, "m": 1, "n_stages": 1, "n_procs": 1,
    ...                  "replication": [1]})
    >>> tmp = tempfile.mkdtemp()
    >>> push(a, os.path.join(tmp, "remote") + os.sep).merged
    1
    """
    return _merge_with_retry(
        _StoreEndpoint(store), open_remote(remote), strict, retry,
        key=f"sync.push:{remote}",
    )


def pull(
    store: ResultStore,
    remote: str | Path,
    strict: bool = False,
    retry: RetryPolicy | None = None,
) -> SyncReport:
    """Merge ``remote``'s rows into this store."""
    return _merge_with_retry(
        open_remote(remote), _StoreEndpoint(store), strict, retry,
        key=f"sync.pull:{remote}",
    )


def merge_stores(
    dst: ResultStore,
    src: ResultStore,
    strict: bool = False,
    retry: RetryPolicy | None = None,
) -> SyncReport:
    """Merge ``src``'s rows into ``dst`` (both already open)."""
    return _merge_with_retry(
        _StoreEndpoint(src), _StoreEndpoint(dst), strict, retry,
        key=f"sync.merge:{dst.path}",
    )
