"""Content-addressed SQLite store of period-evaluation results.

The store maps a **content digest** — SHA-256 over the canonical JSON of
``(instance.to_dict(), model, schema version)`` — to the plain-data
outcome of evaluating that pair (period, ``M_ct``, classification).
Keying on content rather than on campaign/point identity has two
consequences the campaign subsystem is built on:

* **Resumability**: re-running a spec re-materializes the same
  instances (expansion is deterministic), re-derives the same digests,
  and skips every point already present — an interrupted campaign
  resumes exactly where it stopped, and a *grown* campaign (more draws,
  extra axes) only computes the new points.
* **Cross-harness sharing**: :func:`repro.experiments.runner.run_family`
  and :func:`~repro.experiments.table2.run_table2` route their record
  creation through the same API, so a Table 2 sweep and a campaign that
  happen to draw the same instance share one stored evaluation.

Payloads are value-only (no config/seed identity): callers attach their
own context when reassembling records
(:func:`record_from_payload`).  All serialization goes through
:func:`repro.experiments.io.canonical_json`, so the stored bytes — and
any export derived from them — are deterministic.

The schema version is baked into every digest: bump
:data:`RESULT_SCHEMA_VERSION` whenever the payload layout or the
evaluation semantics change, and stale entries simply stop matching
instead of silently poisoning new runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..core.instance import Instance
from ..core.models import CommModel
from ..core.throughput import PeriodResult
from ..errors import StoreCorruptionError
from ..experiments.io import canonical_json
from ..experiments.runner import ExperimentRecord

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "StoreStats",
    "ResultStore",
    "instance_digest",
    "payload_from_result",
    "record_from_payload",
]

#: Bump when the payload layout or evaluation semantics change; digests
#: include it, so old entries become invisible rather than wrong.
RESULT_SCHEMA_VERSION = 1

#: Keys every stored payload must carry (recovery drops rows without).
_REQUIRED_KEYS = frozenset({
    "schema", "model", "method", "period", "mct", "critical", "gap",
    "m", "n_stages", "n_procs", "replication",
})


def instance_digest(
    inst: Instance,
    model: CommModel | str,
    schema: int = RESULT_SCHEMA_VERSION,
) -> str:
    """Stable content digest of one ``(instance, model)`` evaluation.

    SHA-256 over canonical JSON (sorted keys, ``repr`` floats), so the
    digest is identical across interpreters and platforms for equal
    values.

    Examples
    --------
    >>> from repro.experiments.examples_paper import example_a
    >>> d1 = instance_digest(example_a(), "overlap")
    >>> d1 == instance_digest(example_a(), "overlap")
    True
    >>> d1 == instance_digest(example_a(), "strict")
    False
    """
    payload = {
        "instance": inst.to_dict(),
        "model": CommModel.parse(model).value,
        "schema": schema,
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def payload_from_result(inst: Instance, result: PeriodResult) -> dict:
    """Value-only payload of one evaluation (JSON-plain, digestable)."""
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "model": result.model.value,
        "method": result.method,
        "period": result.period,
        "mct": result.mct,
        "critical": result.has_critical_resource,
        "gap": result.relative_gap,
        "m": result.m,
        "n_stages": inst.n_stages,
        "n_procs": inst.platform.n_processors,
        "replication": list(inst.replication_counts),
    }


def record_from_payload(
    config_name: str, model: CommModel | str, seed: int, payload: dict
) -> ExperimentRecord:
    """Reattach caller context to a stored payload.

    The inverse of what :func:`repro.experiments.runner.run_family`
    does when it stores a fresh evaluation: payloads carry only content
    (results + instance shape), the family name and seed are the
    caller's identity.  Records rebuilt this way are equal to records
    computed live — floats round-trip exactly through canonical JSON.
    """
    return ExperimentRecord(
        config_name=config_name,
        model=CommModel.parse(model).value,
        seed=seed,
        n_stages=int(payload["n_stages"]),
        n_procs=int(payload["n_procs"]),
        replication=tuple(int(c) for c in payload["replication"]),
        m=int(payload["m"]),
        period=float(payload["period"]),
        mct=float(payload["mct"]),
        critical=bool(payload["critical"]),
        gap=float(payload["gap"]),
    )


@dataclass
class StoreStats:
    """Lookup counters of one store handle (diagnostics and tests)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0


class ResultStore:
    """Content-addressed result store backed by a single SQLite file.

    Parameters
    ----------
    path:
        Database file (created if missing), or ``":memory:"`` for an
        ephemeral store (tests, dry runs).
    check:
        Run ``PRAGMA quick_check`` on open and raise
        :class:`~repro.errors.StoreCorruptionError` if the file is
        damaged (pass ``False`` only from :meth:`recover`).

    Notes
    -----
    Writes default to immediate commit; bulk writers (the campaign
    executor) pass ``commit=False`` and call :meth:`commit` at chunk
    boundaries, so a hard kill loses at most the uncommitted tail —
    never already-committed work, and never the file's integrity
    (SQLite journals the transaction).

    Examples
    --------
    >>> store = ResultStore(":memory:")
    >>> store.put("abc", {"schema": 1, "period": 2.0})
    True
    >>> store.get("abc")["period"]
    2.0
    >>> store.get("missing") is None
    True
    >>> len(store)
    1
    """

    def __init__(self, path: str | Path, check: bool = True) -> None:
        self.path = str(path)
        self.stats = StoreStats()
        self._conn = sqlite3.connect(self.path)
        try:
            if check and self.path != ":memory:":
                row = self._conn.execute("PRAGMA quick_check").fetchone()
                if row is None or row[0] != "ok":
                    raise StoreCorruptionError(
                        f"store {self.path!r} failed its integrity check: "
                        f"{row[0] if row else 'no result'}; use "
                        f"ResultStore.recover() to salvage readable rows"
                    )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " digest TEXT PRIMARY KEY,"
                " payload TEXT NOT NULL)"
            )
            self._conn.commit()
        except sqlite3.DatabaseError as exc:
            # Release the handle: recover() renames the file, which an
            # open connection would block on some platforms.
            self._conn.close()
            raise StoreCorruptionError(
                f"store {self.path!r} is not a readable SQLite database "
                f"({exc}); use ResultStore.recover() to salvage what is "
                f"left or delete the file to start fresh"
            ) from exc
        except StoreCorruptionError:
            self._conn.close()
            raise

    # ------------------------------------------------------------------
    # digests (re-exported for callers holding only a store)
    # ------------------------------------------------------------------
    digest = staticmethod(instance_digest)

    # ------------------------------------------------------------------
    # lookups and writes
    # ------------------------------------------------------------------
    def get(self, digest: str) -> dict | None:
        """The stored payload, or ``None`` (counted in :attr:`stats`)."""
        row = self._conn.execute(
            "SELECT payload FROM results WHERE digest = ?", (digest,)
        ).fetchone()
        if row is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return json.loads(row[0])

    def put(self, digest: str, payload: dict, commit: bool = True) -> bool:
        """Store a payload under its digest; ``False`` if already present.

        Content-addressed stores never overwrite: two writers racing on
        the same digest computed the same values (or one of them is
        wrong, which a digest collision cannot repair).
        """
        cur = self._conn.execute(
            "INSERT OR IGNORE INTO results (digest, payload) VALUES (?, ?)",
            (digest, canonical_json(payload)),
        )
        if commit:
            self._conn.commit()
        inserted = cur.rowcount == 1
        if inserted:
            self.stats.puts += 1
        return inserted

    def commit(self) -> None:
        """Flush pending ``put(..., commit=False)`` writes to disk."""
        self._conn.commit()

    def __contains__(self, digest: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE digest = ?", (digest,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        return int(
            self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        )

    def items(self) -> Iterator[tuple[str, dict]]:
        """All ``(digest, payload)`` pairs, digest-ordered (stable)."""
        for digest, payload in self._conn.execute(
            "SELECT digest, payload FROM results ORDER BY digest"
        ):
            yield digest, json.loads(payload)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Commit and close the underlying connection."""
        self._conn.commit()
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # corruption recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(cls, path: str | Path) -> tuple["ResultStore", int]:
        """Salvage a damaged store file into a fresh one.

        Every row that still reads back as valid JSON with the current
        schema version and the required payload keys is copied into a
        new database at ``path``; the damaged original is set aside as
        ``<path>.corrupt``.  Returns the fresh store and the number of
        salvaged rows.  Rows that are lost are simply recomputed by the
        next campaign run — content addressing makes recovery safe.
        """
        path = Path(path)
        salvaged: list[tuple[str, dict]] = []
        if path.exists():
            conn = sqlite3.connect(str(path))
            try:
                for digest, payload in conn.execute(
                    "SELECT digest, payload FROM results"
                ):
                    try:
                        data = json.loads(payload)
                    except (TypeError, ValueError):
                        continue
                    if (isinstance(data, dict)
                            and data.get("schema") == RESULT_SCHEMA_VERSION
                            and _REQUIRED_KEYS <= data.keys()):
                        salvaged.append((str(digest), data))
            except sqlite3.DatabaseError:
                pass  # nothing (more) readable; keep what we got
            finally:
                conn.close()
            os.replace(path, f"{path}.corrupt")
        store = cls(path, check=False)
        for digest, data in salvaged:
            store.put(digest, data, commit=False)
        store.commit()
        return store, len(salvaged)
