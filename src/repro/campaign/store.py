"""Content-addressed SQLite store of period-evaluation results.

The store maps a **content digest** — SHA-256 over the canonical JSON of
``(instance.to_dict(), model, schema version)`` — to the plain-data
outcome of evaluating that pair (period, ``M_ct``, classification).
Keying on content rather than on campaign/point identity has two
consequences the campaign subsystem is built on:

* **Resumability**: re-running a spec re-materializes the same
  instances (expansion is deterministic), re-derives the same digests,
  and skips every point already present — an interrupted campaign
  resumes exactly where it stopped, and a *grown* campaign (more draws,
  extra axes) only computes the new points.
* **Cross-harness sharing**: :func:`repro.experiments.runner.run_family`
  and :func:`~repro.experiments.table2.run_table2` route their record
  creation through the same API, so a Table 2 sweep and a campaign that
  happen to draw the same instance share one stored evaluation.

Since the distributed-fabric work the store is also **multi-writer
safe**: files open in WAL journal mode with a busy timeout, so N worker
processes (or N hosts against one shared file) can interleave reads and
writes without corrupting each other — SQLite serializes the writers,
the busy timeout makes them queue instead of erroring, and content
addressing makes any racing duplicate a harmless no-op
(``INSERT OR IGNORE``).  The *coordination* layer that makes duplicates
rare rather than merely harmless is :mod:`repro.campaign.lease`; the
cross-store transport is :mod:`repro.campaign.sync`.  Both share this
file: alongside ``results`` the store carries a ``leases`` table
(claim/lease protocol state) and a ``quarantine`` table (payloads a
sync refused to merge, kept for forensics).

Payloads are value-only (no config/seed identity): callers attach their
own context when reassembling records
(:func:`record_from_payload`).  All serialization goes through
:func:`repro.experiments.io.canonical_json`, so the stored bytes — and
any export derived from them — are deterministic.

The schema version is baked into every digest: bump
:data:`RESULT_SCHEMA_VERSION` whenever the payload layout or the
evaluation semantics change, and stale entries simply stop matching
instead of silently poisoning new runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from ..core.instance import Instance
from ..core.models import CommModel
from ..core.throughput import PeriodResult
from ..errors import StoreCorruptionError, StoreLeaseError, StoreUnavailableError
from ..faults import DEFAULT_RETRY, FAULTS, RetryPolicy
from ..telemetry import TELEMETRY
from ..utils import canonical_json
from ..experiments.runner import ExperimentRecord

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "StoreStats",
    "ResultStore",
    "instance_digest",
    "payload_from_result",
    "record_from_payload",
    "payload_error",
]

#: Bump when the payload layout or evaluation semantics change; digests
#: include it, so old entries become invisible rather than wrong.
RESULT_SCHEMA_VERSION = 1

#: Keys every stored payload must carry (recovery and sync drop rows
#: without them).
_REQUIRED_KEYS = frozenset({
    "schema", "model", "method", "period", "mct", "critical", "gap",
    "m", "n_stages", "n_procs", "replication",
})

#: Default time (seconds) a writer waits on a locked database before
#: sqlite raises — generous because campaign workers hold the write
#: lock only for their brief post-evaluation commit bursts.
DEFAULT_BUSY_TIMEOUT = 30.0


def instance_digest(
    inst: Instance,
    model: CommModel | str,
    schema: int = RESULT_SCHEMA_VERSION,
    objectives: Sequence[str] = ("period",),
) -> str:
    """Stable content digest of one ``(instance, model)`` evaluation.

    SHA-256 over canonical JSON (sorted keys, ``repr`` floats), so the
    digest is identical across interpreters and platforms for equal
    values.  ``objectives`` joins the digest payload only when it names
    more than the period — every pre-existing period-only digest is
    unchanged, while multi-objective evaluations (whose stored payloads
    carry extra values) address separate rows.

    Examples
    --------
    >>> from repro.experiments.examples_paper import example_a
    >>> d1 = instance_digest(example_a(), "overlap")
    >>> d1 == instance_digest(example_a(), "overlap")
    True
    >>> d1 == instance_digest(example_a(), "strict")
    False
    >>> d1 == instance_digest(example_a(), "overlap",
    ...                       objectives=("period", "latency"))
    False
    """
    payload = {
        "instance": inst.to_dict(),
        "model": CommModel.parse(model).value,
        "schema": schema,
    }
    names = tuple(objectives)
    if names != ("period",):
        payload["objectives"] = list(names)
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def payload_from_result(
    inst: Instance,
    result: PeriodResult,
    objectives: Sequence[str] = ("period",),
) -> dict[str, Any]:
    """Value-only payload of one evaluation (JSON-plain, digestable).

    With a multi-objective selection the payload additionally carries
    the requested extra values (``latency`` + ``latency_mode`` and/or
    ``reliability``) and the ``objectives`` list itself — all computed
    by :func:`repro.objectives.attach_objectives` as pure functions of
    the instance, so serial, ``n_jobs`` and fabric runs store identical
    bytes.  Period-only payloads are unchanged (no extra keys), and the
    extra keys are tolerated by :func:`payload_error`, which checks
    required keys only.
    """
    payload: dict[str, Any] = {
        "schema": RESULT_SCHEMA_VERSION,
        "model": result.model.value,
        "method": result.method,
        "period": result.period,
        "mct": result.mct,
        "critical": result.has_critical_resource,
        "gap": result.relative_gap,
        "m": result.m,
        "n_stages": inst.n_stages,
        "n_procs": inst.platform.n_processors,
        "replication": list(inst.replication_counts),
    }
    names = tuple(objectives)
    if names != ("period",):
        from ..objectives.evaluate import attach_objectives

        ev = attach_objectives(inst, result, names)
        payload["objectives"] = list(ev.objectives)
        if ev.latency is not None:
            payload["latency"] = float(ev.latency)
            payload["latency_mode"] = ev.latency_mode
        if ev.reliability is not None:
            payload["reliability"] = float(ev.reliability)
    return payload


def payload_error(text: str) -> str | None:
    """Why ``text`` is not a valid stored payload, or ``None`` if it is.

    The shared validity predicate of :meth:`ResultStore.recover` and
    :mod:`repro.campaign.sync`: a payload must parse as a JSON object,
    carry the current schema version and every required key.  Sync
    quarantines rows that fail this check instead of merging them.

    Examples
    --------
    >>> payload_error("{not json")
    'payload is not valid JSON'
    >>> payload_error('{"schema": 999}')
    'payload has schema 999, expected 1'
    """
    try:
        data = json.loads(text)
    except (TypeError, ValueError):
        return "payload is not valid JSON"
    if not isinstance(data, dict):
        return "payload is not a JSON object"
    if data.get("schema") != RESULT_SCHEMA_VERSION:
        return (f"payload has schema {data.get('schema')!r}, "
                f"expected {RESULT_SCHEMA_VERSION}")
    missing = _REQUIRED_KEYS - data.keys()
    if missing:
        return f"payload is missing keys: {', '.join(sorted(missing))}"
    return None


def record_from_payload(
    config_name: str,
    model: CommModel | str,
    seed: int,
    payload: dict[str, Any],
) -> ExperimentRecord:
    """Reattach caller context to a stored payload.

    The inverse of what :func:`repro.experiments.runner.run_family`
    does when it stores a fresh evaluation: payloads carry only content
    (results + instance shape), the family name and seed are the
    caller's identity.  Records rebuilt this way are equal to records
    computed live — floats round-trip exactly through canonical JSON.
    """
    return ExperimentRecord(
        config_name=config_name,
        model=CommModel.parse(model).value,
        seed=seed,
        n_stages=int(payload["n_stages"]),
        n_procs=int(payload["n_procs"]),
        replication=tuple(int(c) for c in payload["replication"]),
        m=int(payload["m"]),
        period=float(payload["period"]),
        mct=float(payload["mct"]),
        critical=bool(payload["critical"]),
        gap=float(payload["gap"]),
    )


@dataclass
class StoreStats:
    """Lookup counters of one store handle (diagnostics and tests)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0


class ResultStore:
    """Content-addressed result store backed by a single SQLite file.

    Parameters
    ----------
    path:
        Database file (created if missing), or ``":memory:"`` for an
        ephemeral store (tests, dry runs).
    check:
        Run ``PRAGMA quick_check`` on open and raise
        :class:`~repro.errors.StoreCorruptionError` if the file is
        damaged (pass ``False`` only from :meth:`recover`).
    busy_timeout:
        Seconds a statement waits on another writer's lock before
        sqlite gives up.  File stores open in WAL journal mode, so
        readers never block and writers queue behind each other for
        the duration of their (short) commit bursts.
    retry:
        :class:`~repro.faults.RetryPolicy` for connect and commit.
        Environmental failures (a locked WAL sidecar, a read-only or
        full filesystem) surface as
        :class:`~repro.errors.StoreUnavailableError` carrying path +
        cause and are retried under the policy's deterministic backoff
        before propagating; corruption is *never* retried.  Defaults to
        :data:`repro.faults.DEFAULT_RETRY`.

    Notes
    -----
    Writes default to immediate commit; bulk writers (the campaign
    executor) pass ``commit=False`` and call :meth:`commit` at chunk
    boundaries, so a hard kill loses at most the uncommitted tail —
    never already-committed work, and never the file's integrity
    (SQLite journals the transaction).  Concurrent writers are safe:
    the store never overwrites, so the only cross-process race is two
    workers inserting the same digest, which ``INSERT OR IGNORE``
    resolves identically regardless of who wins.

    Examples
    --------
    >>> store = ResultStore(":memory:")
    >>> store.put("abc", {"schema": 1, "period": 2.0})
    True
    >>> store.get("abc")["period"]
    2.0
    >>> store.get("missing") is None
    True
    >>> len(store)
    1
    """

    def __init__(
        self,
        path: str | Path,
        check: bool = True,
        busy_timeout: float = DEFAULT_BUSY_TIMEOUT,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.path = str(path)
        self.stats = StoreStats()
        self._retry = DEFAULT_RETRY if retry is None else retry
        self._conn = self._retry.run(
            f"store.connect:{self.path}",
            lambda: self._connect(busy_timeout),
            retryable=(StoreUnavailableError,),
        )
        # Autocommit with explicit BEGIN/COMMIT: multi-statement writes
        # (claim transactions, chunk commits) control their own
        # boundaries instead of relying on implicit-transaction rules.
        self._conn.isolation_level = None
        try:
            if check and self.path != ":memory:":
                row = self._conn.execute("PRAGMA quick_check").fetchone()
                if row is None or row[0] != "ok":
                    raise StoreCorruptionError(
                        f"store {self.path!r} failed its integrity check: "
                        f"{row[0] if row else 'no result'}; use "
                        f"ResultStore.recover() to salvage readable rows"
                    )
            if self.path != ":memory:":
                # WAL survives in the file; setting it again is a no-op.
                # NORMAL sync is the standard WAL pairing: a power cut
                # can lose the last commits but never integrity — and
                # content addressing recomputes lost rows anyway.
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " digest TEXT PRIMARY KEY,"
                " payload TEXT NOT NULL)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS leases ("
                " digest TEXT PRIMARY KEY,"
                " worker TEXT NOT NULL,"
                " expires REAL NOT NULL,"
                " acquired REAL NOT NULL)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS quarantine ("
                " digest TEXT NOT NULL,"
                " origin TEXT NOT NULL,"
                " payload TEXT NOT NULL,"
                " reason TEXT NOT NULL,"
                " PRIMARY KEY (digest, origin))"
            )
        except sqlite3.OperationalError as exc:
            # Environmental, not structural: a read-only filesystem or
            # a lock held past the busy timeout.  The file is (as far
            # as we know) intact, so signal "come back later", not
            # "recover".
            self._conn.close()
            raise StoreUnavailableError(self.path, exc) from exc
        except sqlite3.DatabaseError as exc:
            # Release the handle: recover() renames the file, which an
            # open connection would block on some platforms.
            self._conn.close()
            raise StoreCorruptionError(
                f"store {self.path!r} is not a readable SQLite database "
                f"({exc}); use ResultStore.recover() to salvage what is "
                f"left or delete the file to start fresh"
            ) from exc
        except StoreCorruptionError:
            self._conn.close()
            raise

    def _connect(self, busy_timeout: float) -> sqlite3.Connection:
        """One connection attempt, with typed failure + injection site."""
        try:
            if FAULTS.enabled:
                FAULTS.hit("store.connect")
            return sqlite3.connect(self.path, timeout=busy_timeout)
        except sqlite3.OperationalError as exc:
            raise StoreUnavailableError(self.path, exc) from exc

    # ------------------------------------------------------------------
    # digests (re-exported for callers holding only a store)
    # ------------------------------------------------------------------
    digest = staticmethod(instance_digest)

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection (lease manager / sync plumbing)."""
        return self._conn

    # ------------------------------------------------------------------
    # lookups and writes
    # ------------------------------------------------------------------
    def get(self, digest: str) -> dict[str, Any] | None:
        """The stored payload, or ``None`` (counted in :attr:`stats`)."""
        text = self.payload_text(digest)
        if text is None:
            return None
        data: dict[str, Any] = json.loads(text)
        return data

    def payload_text(self, digest: str) -> str | None:
        """The stored payload's exact canonical-JSON text, or ``None``.

        Sync compares and transports payloads at the byte level — equal
        values always serialize to equal canonical bytes, so text
        equality *is* value equality here.
        """
        row = self._conn.execute(
            "SELECT payload FROM results WHERE digest = ?", (digest,)
        ).fetchone()
        if row is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return str(row[0])

    def put(
        self, digest: str, payload: dict[str, Any], commit: bool = True
    ) -> bool:
        """Store a payload under its digest; ``False`` if already present.

        Content-addressed stores never overwrite: two writers racing on
        the same digest computed the same values (or one of them is
        wrong, which a digest collision cannot repair).
        """
        return self.put_text(digest, canonical_json(payload), commit=commit)

    def put_text(
        self, digest: str, payload_text: str, commit: bool = True
    ) -> bool:
        """Store an already-serialized payload (byte-preserving sync path)."""
        if FAULTS.enabled:
            FAULTS.hit("store.put")
        if commit is False and not self._conn.in_transaction:
            self._conn.execute("BEGIN")
        cur = self._conn.execute(
            "INSERT OR IGNORE INTO results (digest, payload) VALUES (?, ?)",
            (digest, payload_text),
        )
        if commit:
            self.commit()
        inserted = cur.rowcount == 1
        if inserted:
            self.stats.puts += 1
            if TELEMETRY.enabled:
                TELEMETRY.count("store.puts")
        return inserted

    def commit(self) -> None:
        """Flush pending ``put(..., commit=False)`` writes to disk.

        Retried under the store's :class:`~repro.faults.RetryPolicy`:
        ``COMMIT`` leaves the transaction open when it fails on a
        locked or full database, so re-issuing it is safe.  Past the
        retry budget the last error propagates — the fabric's cue to
        spill the chunk to a journal.
        """
        if self._conn.in_transaction:
            self._retry.run(
                f"store.commit:{self.path}",
                self._commit_once,
                retryable=(sqlite3.OperationalError, OSError),
            )

    def _commit_once(self) -> None:
        if FAULTS.enabled:
            FAULTS.hit("store.commit")
        if self._conn.in_transaction:
            self._conn.execute("COMMIT")

    def rollback(self) -> None:
        """Abandon the open ``put(..., commit=False)`` transaction.

        The graceful-degradation path: when :meth:`commit` exhausts its
        retries, the fabric rolls the chunk back and spills its payloads
        to a :class:`~repro.faults.SpillJournal` instead.  A no-op
        outside a transaction.
        """
        if self._conn.in_transaction:
            self._conn.execute("ROLLBACK")

    def __contains__(self, digest: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE digest = ?", (digest,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        return int(
            self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        )

    def digests(self) -> list[str]:
        """All stored digests, sorted (stable)."""
        return [
            str(row[0]) for row in self._conn.execute(
                "SELECT digest FROM results ORDER BY digest"
            )
        ]

    def items(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """All ``(digest, payload)`` pairs, digest-ordered (stable)."""
        for digest, payload in self.items_text():
            yield digest, json.loads(payload)

    def items_text(self) -> Iterator[tuple[str, str]]:
        """All ``(digest, payload_text)`` pairs, digest-ordered (stable)."""
        for digest, payload in self._conn.execute(
            "SELECT digest, payload FROM results ORDER BY digest"
        ):
            yield str(digest), str(payload)

    # ------------------------------------------------------------------
    # quarantine (rows a sync refused to merge; kept for forensics)
    # ------------------------------------------------------------------
    def add_quarantine(
        self, digest: str, origin: str, payload_text: str, reason: str
    ) -> None:
        """Park a payload that failed validation or conflicted on sync."""
        self._conn.execute(
            "INSERT OR REPLACE INTO quarantine "
            "(digest, origin, payload, reason) VALUES (?, ?, ?, ?)",
            (digest, origin, payload_text, reason),
        )
        self.commit()
        if TELEMETRY.enabled:
            TELEMETRY.count("store.quarantines")

    def quarantined(self) -> list[tuple[str, str, str, str]]:
        """``(digest, origin, payload_text, reason)`` rows, sorted."""
        return [
            (str(d), str(o), str(p), str(r))
            for d, o, p, r in self._conn.execute(
                "SELECT digest, origin, payload, reason FROM quarantine "
                "ORDER BY digest, origin"
            )
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Commit and close the underlying connection."""
        self.commit()
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # corruption recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        path: str | Path,
        force: bool = False,
        clock: Callable[[], float] | None = None,
    ) -> tuple["ResultStore", int]:
        """Salvage a damaged store file into a fresh one.

        Every row that still reads back as a valid payload
        (:func:`payload_error`) is copied into a new database at
        ``path``; the damaged original is set aside as
        ``<path>.corrupt``.  Returns the fresh store and the number of
        salvaged rows.  Rows that are lost are simply recomputed by the
        next campaign run — content addressing makes recovery safe.

        Recovery is **lease-aware**: if the file still carries unexpired
        leases, some worker is (as far as the file can tell) actively
        evaluating claimed points and may commit results at any moment —
        replacing the file underneath it would clobber those rows.
        In that case :class:`~repro.errors.StoreLeaseError` is raised
        listing the holders; pass ``force=True`` only once the workers
        are known to be dead (their leases then expire on their own —
        waiting out the TTL is always the safe alternative).
        """
        path = Path(path)
        now = (clock or time.time)()  # detlint: disable=DET105 - lease expiry is inherently wall-clock; tests inject `clock`
        salvaged: list[tuple[str, str]] = []
        if path.exists():
            conn = sqlite3.connect(str(path))
            try:
                if not force:
                    _check_no_active_leases(conn, path, now)
                for digest, payload in conn.execute(
                    "SELECT digest, payload FROM results"
                ):
                    if payload_error(str(payload)) is None:
                        salvaged.append((str(digest), str(payload)))
            except sqlite3.DatabaseError:
                pass  # nothing (more) readable; keep what we got
            finally:
                conn.close()
            os.replace(path, f"{path}.corrupt")
            # WAL sidecars belong to the damaged file: set them aside
            # too, or the fresh database would try to replay them.
            for suffix in ("-wal", "-shm"):
                sidecar = Path(f"{path}{suffix}")
                if sidecar.exists():
                    os.replace(sidecar, f"{path}.corrupt{suffix}")
        store = cls(path, check=False)
        for digest, text in salvaged:
            store.put_text(digest, text, commit=False)
        store.commit()
        return store, len(salvaged)


def _check_no_active_leases(
    conn: sqlite3.Connection, path: Path, now: float
) -> None:
    """Raise :class:`StoreLeaseError` if the file has unexpired leases."""
    try:
        rows = conn.execute(
            "SELECT worker, COUNT(*), MAX(expires) FROM leases "
            "WHERE expires > ? GROUP BY worker ORDER BY worker", (now,)
        ).fetchall()
    except sqlite3.DatabaseError:
        return  # no readable lease table: nothing provably active
    if rows:
        holders = ", ".join(
            f"{worker!r} ({count} lease(s), expiring in "
            f"{max(0.0, expires - now):.1f}s)"
            for worker, count, expires in rows
        )
        raise StoreLeaseError(
            f"store {str(path)!r} has active leases held by {holders}; "
            f"recovery would clobber rows those workers are about to "
            f"commit — wait for the leases to expire, or pass "
            f"force=True once the workers are known dead"
        )
