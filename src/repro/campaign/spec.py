"""Declarative campaign specifications and their deterministic expansion.

A :class:`CampaignSpec` declares an experiment grid over four scenario
axes — applications, platform heterogeneity regimes, replication
policies and communication models — plus a number of random ``draws``
per grid cell.  Expansion is **deterministic**: every point's entropy
derives from a :class:`numpy.random.SeedSequence` keyed by stable
``zlib.crc32`` digests of the campaign name and the cell's axis labels
(the same scheme as :func:`repro.experiments.runner.family_seeds` —
never Python's per-process-randomized ``hash()``), so a spec expands to
the *same* instances in every interpreter, on every machine.  That is
what makes campaigns resumable: the content-addressed store
(:mod:`repro.campaign.store`) can recognize already-computed points by
digesting the re-materialized instance.

Specs are plain data: build them in Python, or load them from JSON /
TOML files (:meth:`CampaignSpec.from_file`) whose structure mirrors
:meth:`CampaignSpec.to_dict`.

Axes
----
* **Applications** (:class:`ApplicationAxis`): a named catalog workload
  (:data:`repro.workloads.CATALOG`) or a parametric synthetic family
  (:func:`repro.workloads.synthetic` shapes).
* **Platforms** (:class:`PlatformAxis`): heterogeneity regimes — either
  ``"uniform"`` speed/bandwidth distributions with optional speed
  clusters (``clusters > 1`` splits processors into groups sharing a
  drawn speed factor, with optionally boosted intra-cluster links), or
  ``"times"`` regimes parameterized by computation/communication time
  ranges like the paper's Table 2
  (:meth:`repro.core.platform.Platform.from_comm_times`).
* **Replications** (:class:`ReplicationAxis`): random per-stage
  replication draws (:func:`repro.experiments.generator.random_replication`
  ``"balls"`` / ``"greedy-spare"`` readings) or a ``fixed`` count vector
  with ``"random"`` or ``"blocks"`` processor assignment.  ``"blocks"``
  pins the mapping itself, so every draw of the cell shares one TPN
  topology — the regime where the executor's skeleton cache and Howard
  warm starts shine.
* **Models**: ``"overlap"`` / ``"strict"``.
* **Objectives** (``objectives``): the campaign's criteria selection
  (:func:`repro.objectives.parse_objectives` canonical order).  The
  period-only default is digest- and byte-compatible with pre-plane
  campaigns; adding ``"latency"`` / ``"reliability"`` stores their
  values alongside every period payload and unlocks the report's
  per-objective pivots and Pareto export.

A point materializes to an :class:`~repro.core.instance.Instance` as a
pure function of its seed: the mapping is drawn first, then the
platform — in that fixed order — from one generator.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from ..core.application import Application
from ..core.instance import Instance
from ..core.mapping import Mapping
from ..core.models import CommModel
from ..core.platform import Platform
from ..errors import ValidationError
from ..experiments.generator import random_replication
from ..objectives.base import parse_objectives
from ..utils import lcm_all
from ..workloads import get_workload, synthetic

__all__ = [
    "ApplicationAxis",
    "PlatformAxis",
    "ReplicationAxis",
    "CampaignPoint",
    "CampaignSpec",
]

#: Same tractability bound as ``experiments.runner.DEFAULT_MAX_PATHS``.
DEFAULT_MAX_PATHS = 3000


def _crc(text: str) -> int:
    """Stable 31-bit digest used to key seed trees (never ``hash()``)."""
    return zlib.crc32(text.encode()) & 0x7FFFFFFF


def _pair(value: Sequence[float], what: str) -> tuple[float, float]:
    lo, hi = (float(v) for v in value)
    if not lo <= hi:
        raise ValidationError(f"{what} range must be (lo, hi) with lo <= hi")
    return (lo, hi)


# ----------------------------------------------------------------------
# application axis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ApplicationAxis:
    """One application family of the grid.

    Attributes
    ----------
    label:
        Axis label (seed-tree key and report column).
    kind:
        ``"workload"`` — a catalog entry; ``"synthetic"`` — a
        parametric :func:`repro.workloads.synthetic` pipeline.
    workload:
        Catalog name (``kind="workload"``).
    n_stages, shape, scale, seed:
        Synthetic parameters (``kind="synthetic"``); ``seed`` feeds the
        ``"random"`` shape only.
    """

    label: str
    kind: str
    workload: str | None = None
    n_stages: int | None = None
    shape: str = "balanced"
    scale: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind == "workload":
            if not self.workload:
                raise ValidationError("workload axis needs a catalog name")
            get_workload(self.workload)  # raises KeyError listing names
        elif self.kind == "synthetic":
            if self.n_stages is None or self.n_stages < 1:
                raise ValidationError("synthetic axis needs n_stages >= 1")
        else:
            raise ValidationError(
                f"unknown application kind {self.kind!r}; "
                f"expected 'workload' or 'synthetic'"
            )

    def application(self) -> Application:
        """The (deterministic) application of this axis."""
        if self.kind == "workload":
            assert self.workload is not None  # __post_init__ guarantees
            return get_workload(self.workload)
        assert self.n_stages is not None  # __post_init__ guarantees
        return synthetic(self.n_stages, shape=self.shape, scale=self.scale,
                         seed=self.seed)

    def to_dict(self) -> dict[str, Any]:
        if self.kind == "workload":
            return {"label": self.label, "workload": self.workload}
        return {
            "label": self.label,
            "synthetic": {
                "n_stages": self.n_stages, "shape": self.shape,
                "scale": self.scale, "seed": self.seed,
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ApplicationAxis":
        if "workload" in data:
            name = data["workload"]
            return cls(label=data.get("label", name), kind="workload",
                       workload=name)
        if "synthetic" in data:
            syn = data["synthetic"]
            n = int(syn["n_stages"])
            shape = syn.get("shape", "balanced")
            return cls(
                label=data.get("label", f"synthetic-{shape}-{n}"),
                kind="synthetic", n_stages=n, shape=shape,
                scale=float(syn.get("scale", 10.0)),
                seed=int(syn.get("seed", 0)),
            )
        raise ValidationError(
            f"application axis needs a 'workload' or 'synthetic' key, "
            f"got {sorted(data)}"
        )


# ----------------------------------------------------------------------
# platform axis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlatformAxis:
    """One platform heterogeneity regime of the grid.

    Attributes
    ----------
    label:
        Axis label.
    n_procs:
        Platform size ``p``.
    kind:
        ``"uniform"`` — speeds and bandwidths drawn uniformly from the
        given ranges; ``"times"`` — computation/communication *times*
        drawn like Table 2 and inverted through
        :meth:`Platform.from_comm_times`.
    speed_range, bandwidth_range:
        Uniform ranges of the ``"uniform"`` regime.
    comp_time_range, comm_time_range:
        Uniform ranges of the ``"times"`` regime.
    clusters:
        ``k > 1`` splits processors into ``k`` groups; each group draws
        one speed factor from ``cluster_factor_range`` (multiplying its
        processors' speeds) and intra-group links are multiplied by
        ``intra_bandwidth_factor`` — a cheap model of fast-interconnect
        sub-clusters inside a heterogeneous platform.
    """

    label: str
    n_procs: int
    kind: str = "uniform"
    speed_range: tuple[float, float] = (1.0, 5.0)
    bandwidth_range: tuple[float, float] = (1.0, 10.0)
    comp_time_range: tuple[float, float] = (5.0, 15.0)
    comm_time_range: tuple[float, float] = (5.0, 15.0)
    clusters: int = 1
    cluster_factor_range: tuple[float, float] = (0.5, 2.0)
    intra_bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValidationError("platform axis needs n_procs >= 1")
        if self.kind not in ("uniform", "times"):
            raise ValidationError(
                f"unknown platform kind {self.kind!r}; "
                f"expected 'uniform' or 'times'"
            )
        if not 1 <= self.clusters <= self.n_procs:
            raise ValidationError(
                f"clusters must be in [1, n_procs], got {self.clusters}"
            )

    def draw(self, rng: np.random.Generator) -> Platform:
        """Draw one platform of this regime."""
        p = self.n_procs
        if self.kind == "times":
            comp = rng.uniform(*self.comp_time_range, p)
            comm = rng.uniform(*self.comm_time_range, (p, p))
            np.fill_diagonal(comm, 0.0)
            return Platform.from_comm_times(comp, comm, name=self.label)

        speeds = rng.uniform(*self.speed_range, p)
        bw = rng.uniform(*self.bandwidth_range, (p, p))
        if self.clusters > 1:
            factors = rng.uniform(*self.cluster_factor_range, self.clusters)
            group = (np.arange(p) * self.clusters) // p
            speeds = speeds * factors[group]
            if self.intra_bandwidth_factor != 1.0:
                same = group[:, None] == group[None, :]
                bw = np.where(same, bw * self.intra_bandwidth_factor, bw)
        np.fill_diagonal(bw, 0.0)
        return Platform(speeds, bw, name=self.label)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"label": self.label, "n_procs": self.n_procs,
                     "kind": self.kind}
        if self.kind == "uniform":
            out["speed_range"] = list(self.speed_range)
            out["bandwidth_range"] = list(self.bandwidth_range)
        else:
            out["comp_time_range"] = list(self.comp_time_range)
            out["comm_time_range"] = list(self.comm_time_range)
        if self.clusters > 1:
            out["clusters"] = self.clusters
            out["cluster_factor_range"] = list(self.cluster_factor_range)
            out["intra_bandwidth_factor"] = self.intra_bandwidth_factor
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PlatformAxis":
        p = int(data["n_procs"])
        kind = data.get("kind", "times" if "comp_time_range" in data
                        or "comm_time_range" in data else "uniform")
        return cls(
            label=data.get("label", f"{kind}-p{p}"),
            n_procs=p,
            kind=kind,
            speed_range=_pair(data.get("speed_range", (1.0, 5.0)), "speed"),
            bandwidth_range=_pair(data.get("bandwidth_range", (1.0, 10.0)),
                                  "bandwidth"),
            comp_time_range=_pair(data.get("comp_time_range", (5.0, 15.0)),
                                  "comp time"),
            comm_time_range=_pair(data.get("comm_time_range", (5.0, 15.0)),
                                  "comm time"),
            clusters=int(data.get("clusters", 1)),
            cluster_factor_range=_pair(
                data.get("cluster_factor_range", (0.5, 2.0)), "cluster factor"
            ),
            intra_bandwidth_factor=float(
                data.get("intra_bandwidth_factor", 1.0)
            ),
        )


# ----------------------------------------------------------------------
# replication axis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicationAxis:
    """One replication policy of the grid.

    Attributes
    ----------
    label:
        Axis label.
    policy:
        ``"balls"`` / ``"greedy-spare"`` — the two random readings of
        the paper's "uniformly chosen" replication
        (:func:`repro.experiments.generator.random_replication`) — or
        ``"fixed"`` for an explicit per-stage count vector.
    counts:
        The fixed counts (``policy="fixed"``).
    assignment:
        ``"random"`` — a drawn permutation sliced into consecutive
        groups (the Table 2 scheme); ``"blocks"`` — processors
        ``0..sum(counts)-1`` in stage order, deterministic, so all
        draws of a cell share one mapping (and hence one TPN topology).
        Only meaningful with ``policy="fixed"``.
    """

    label: str
    policy: str = "balls"
    counts: tuple[int, ...] | None = None
    assignment: str = "random"

    def __post_init__(self) -> None:
        if self.policy == "fixed":
            if not self.counts:
                raise ValidationError("fixed replication needs counts")
            if any(c < 1 for c in self.counts):
                raise ValidationError("replication counts must be >= 1")
        elif self.policy not in ("balls", "greedy-spare"):
            raise ValidationError(
                f"unknown replication policy {self.policy!r}; expected "
                f"'balls', 'greedy-spare' or 'fixed'"
            )
        if self.assignment not in ("random", "blocks"):
            raise ValidationError(
                f"unknown assignment {self.assignment!r}; expected "
                f"'random' or 'blocks'"
            )
        if self.assignment == "blocks" and self.policy != "fixed":
            raise ValidationError(
                "assignment='blocks' requires policy='fixed' (random "
                "counts have no canonical block layout)"
            )

    def feasible(self, n_stages: int, n_procs: int, max_paths: int) -> bool:
        """Whether this policy can map ``n_stages`` onto ``n_procs``.

        Grid cells combining an infeasible (application, platform,
        replication) triple — a fixed count vector of the wrong length
        or over capacity, or fewer processors than stages — are
        *excluded* from the expansion rather than erroring: a
        declarative grid naturally mixes axes that only apply to some
        applications ("where applicable" semantics).
        """
        if self.policy == "fixed":
            assert self.counts is not None  # __post_init__ guarantees
            counts = tuple(int(c) for c in self.counts)
            return (len(counts) == n_stages
                    and sum(counts) <= n_procs
                    and lcm_all(counts) <= max_paths)
        return n_procs >= n_stages

    def draw_mapping(
        self,
        n_stages: int,
        n_procs: int,
        rng: np.random.Generator,
        max_paths: int,
    ) -> Mapping:
        """Draw (or lay out) one mapping for ``n_stages`` on ``n_procs``."""
        if self.policy == "fixed":
            assert self.counts is not None  # __post_init__ guarantees
            counts = tuple(int(c) for c in self.counts)
            if len(counts) != n_stages:
                raise ValidationError(
                    f"replication axis {self.label!r} has {len(counts)} "
                    f"counts but the application has {n_stages} stages"
                )
            if sum(counts) > n_procs:
                raise ValidationError(
                    f"replication axis {self.label!r} needs "
                    f"{sum(counts)} processors but the platform has "
                    f"{n_procs}"
                )
            if lcm_all(counts) > max_paths:
                raise ValidationError(
                    f"replication axis {self.label!r} has lcm(m_i) = "
                    f"{lcm_all(counts)} > max_paths = {max_paths}"
                )
        else:
            counts = random_replication(
                n_stages, n_procs, rng, max_paths=max_paths,
                method=self.policy,
            )
        bounds = np.cumsum((0,) + counts)
        if self.assignment == "blocks":
            order = np.arange(n_procs)
        else:
            order = rng.permutation(n_procs)
        assignments = [
            tuple(int(u) for u in order[bounds[i]: bounds[i + 1]])
            for i in range(n_stages)
        ]
        return Mapping(assignments, n_processors=n_procs)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"label": self.label, "policy": self.policy}
        if self.policy == "fixed":
            assert self.counts is not None  # __post_init__ guarantees
            out["counts"] = list(self.counts)
            out["assignment"] = self.assignment
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ReplicationAxis":
        if "fixed" in data and "policy" not in data:
            data = {**data, "policy": "fixed", "counts": data["fixed"]}
        policy = data.get("policy", "balls")
        counts = data.get("counts")
        if policy == "fixed":
            label = data.get(
                "label", "fixed-" + "x".join(str(c) for c in counts or ())
            )
        else:
            label = data.get("label", policy)
        return cls(
            label=label,
            policy=policy,
            counts=tuple(int(c) for c in counts) if counts else None,
            assignment=data.get(
                "assignment", "blocks" if policy == "fixed" else "random"
            ),
        )


# ----------------------------------------------------------------------
# points and the spec itself
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignPoint:
    """One expanded point: a grid cell plus a draw index and its seed.

    The instance is a pure function of ``seed`` (mapping drawn first,
    then platform), so a point re-materializes identically in any
    process — the property the content-addressed store keys on.
    """

    index: int
    application: ApplicationAxis
    platform: PlatformAxis
    replication: ReplicationAxis
    model: str
    draw: int
    seed: int
    max_paths: int = DEFAULT_MAX_PATHS

    @property
    def cell(self) -> tuple[str, str, str, str]:
        """The grid-cell key ``(app, platform, replication, model)``."""
        return (self.application.label, self.platform.label,
                self.replication.label, self.model)

    def instance(self) -> Instance:
        """Materialize the point's instance (deterministic)."""
        rng = np.random.default_rng(np.random.SeedSequence(self.seed))
        app = self.application.application()
        mapping = self.replication.draw_mapping(
            app.n_stages, self.platform.n_procs, rng, self.max_paths
        )
        plat = self.platform.draw(rng)
        return Instance(app, plat, mapping)


def _unique_labels(axes: Sequence[Any], what: str) -> None:
    labels = [a.label for a in axes]
    if len(set(labels)) != len(labels):
        raise ValidationError(f"duplicate {what} axis labels: {labels}")


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative, deterministically expandable experiment campaign.

    The grid is the cartesian product
    ``applications x platforms x replications x models``, with ``draws``
    seeded repetitions per cell.  Expansion order is the nested loop in
    that axis order (draws innermost) — the "sweep order" the executor's
    chunk layout preserves inside each topology group.

    Examples
    --------
    >>> spec = CampaignSpec(
    ...     name="demo",
    ...     draws=2,
    ...     models=("overlap",),
    ...     applications=(ApplicationAxis.from_dict(
    ...         {"synthetic": {"n_stages": 3}}),),
    ...     platforms=(PlatformAxis.from_dict({"n_procs": 6}),),
    ...     replications=(ReplicationAxis.from_dict({"policy": "balls"}),),
    ... )
    >>> [p.index for p in spec.expand()]
    [0, 1]
    >>> spec.expand()[0].instance().n_stages
    3
    """

    name: str
    draws: int
    models: tuple[str, ...]
    applications: tuple[ApplicationAxis, ...]
    platforms: tuple[PlatformAxis, ...]
    replications: tuple[ReplicationAxis, ...] = (
        ReplicationAxis(label="balls", policy="balls"),
    )
    root_seed: int = 20090302
    max_paths: int = DEFAULT_MAX_PATHS
    #: Objective grid of the campaign (canonical order; the period-only
    #: default keeps digests and artifacts byte-identical to pre-plane
    #: campaigns).  Extra objectives ride along on every stored payload
    #: (``latency`` / ``reliability`` next to the period values) and
    #: unlock the report's per-objective pivots and Pareto export.
    objectives: tuple[str, ...] = ("period",)

    def __post_init__(self) -> None:
        # Canonicalize through the objective plane's parser ("latency,
        # period" and ("period", "latency") are the same grid — equal
        # specs must digest equally).
        object.__setattr__(self, "objectives",
                           parse_objectives(self.objectives))
        if not self.name:
            raise ValidationError("a campaign needs a non-empty name")
        if self.draws < 1:
            raise ValidationError("draws must be >= 1")
        if not self.models:
            raise ValidationError("a campaign needs at least one model")
        for m in self.models:
            try:
                CommModel.parse(m)
            except ValueError as exc:
                raise ValidationError(str(exc)) from None
        for axes, what in ((self.applications, "application"),
                           (self.platforms, "platform"),
                           (self.replications, "replication")):
            if not axes:
                raise ValidationError(f"a campaign needs >= 1 {what} axis")
            _unique_labels(axes, what)

    @property
    def n_points(self) -> int:
        """Total number of points the spec expands to."""
        return len(self.expand())

    def expand(self) -> list[CampaignPoint]:
        """Expand the grid into seeded points (stable order and seeds).

        Every point's entropy comes from
        ``SeedSequence([root_seed, crc32(name), crc32(cell-key), draw])``
        — stable across interpreters, and insensitive to the *other*
        cells in the spec: adding an axis never reseeds existing cells,
        so a grown campaign re-uses every already-stored point.

        Cells whose replication policy is infeasible for the cell's
        (application, platform) pair are excluded
        (:meth:`ReplicationAxis.feasible`).
        """
        points: list[CampaignPoint] = []
        name_key = _crc(self.name)
        for app in self.applications:
            n_stages = app.application().n_stages
            for plat in self.platforms:
                for repl in self.replications:
                    if not repl.feasible(n_stages, plat.n_procs,
                                         self.max_paths):
                        continue
                    for model in self.models:
                        model_value = CommModel.parse(model).value
                        cell_key = _crc("|".join(
                            (app.label, plat.label, repl.label, model_value)
                        ))
                        for draw in range(self.draws):
                            ss = np.random.SeedSequence(
                                [self.root_seed, name_key, cell_key, draw]
                            )
                            points.append(CampaignPoint(
                                index=len(points),
                                application=app,
                                platform=plat,
                                replication=repl,
                                model=model_value,
                                draw=draw,
                                seed=int(ss.generate_state(1)[0]),
                                max_paths=self.max_paths,
                            ))
        return points

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "draws": self.draws,
            "models": list(self.models),
            "applications": [a.to_dict() for a in self.applications],
            "platforms": [p.to_dict() for p in self.platforms],
            "replications": [r.to_dict() for r in self.replications],
            "root_seed": self.root_seed,
            "max_paths": self.max_paths,
        }
        # Emitted only off-default so period-only spec artifacts keep
        # their historical bytes.
        if self.objectives != ("period",):
            out["objectives"] = list(self.objectives)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignSpec":
        for section in ("applications", "platforms"):
            if section not in data:
                raise ValidationError(
                    f"campaign spec is missing the {section!r} section"
                )
        apps = tuple(ApplicationAxis.from_dict(d)
                     for d in data["applications"])
        plats = tuple(PlatformAxis.from_dict(d)
                      for d in data["platforms"])
        repls = tuple(ReplicationAxis.from_dict(d)
                      for d in data.get("replications",
                                        [{"policy": "balls"}]))
        return cls(
            name=data.get("name", "campaign"),
            draws=int(data.get("draws", 1)),
            models=tuple(data.get("models", ("overlap", "strict"))),
            applications=apps,
            platforms=plats,
            replications=repls,
            root_seed=int(data.get("root_seed", 20090302)),
            max_paths=int(data.get("max_paths", DEFAULT_MAX_PATHS)),
            objectives=parse_objectives(data.get("objectives")),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "CampaignSpec":
        """Load a spec from a ``.json`` or ``.toml`` file."""
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() == ".toml":
            try:
                import tomllib
            except ImportError:  # pragma: no cover - Python < 3.11
                raise ValidationError(
                    "TOML specs need Python >= 3.11 (tomllib); use the "
                    "JSON spec format on this interpreter"
                ) from None
            data = tomllib.loads(text)
        else:
            data = json.loads(text)
        return cls.from_dict(data)
