"""Campaign analytics: per-axis pivots and cross-model deltas.

The ``campaign report`` CLI subcommand's engine: join a (possibly
merged, possibly multi-host) store with the spec and aggregate the
result set along each scenario axis.  Everything is computed from
:func:`repro.campaign.executor.campaign_rows`, so a report over a store
assembled by ``store push/pull/merge`` from N hosts is byte-identical
to a report over a store computed by one process — the acceptance
contract the fabric CI job verifies.

Determinism rules: rows are aggregated in spec order (fixed float
summation order), group keys are emitted sorted, and the JSON export
goes through :func:`repro.utils.canonical_json`.

Cross-model deltas compare **cell means**, not paired draws: a cell's
seed tree is keyed by its model (see
:meth:`repro.campaign.spec.CampaignSpec.expand`), so the overlap and
strict points of one scenario cell are independent draws of the same
distribution — the honest comparison is between their per-cell
aggregates.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping, Sequence

from ..objectives.base import OBJECTIVE_SENSES
from ..objectives.pareto import dominates
from ..utils import canonical_json
from .executor import campaign_rows, _require_complete
from .spec import CampaignSpec
from .store import ResultStore

__all__ = [
    "campaign_report_data",
    "export_campaign_report",
    "render_report_text",
]

#: The scenario axes a report pivots on (row key -> pivot name).
_AXES = ("application", "platform", "replication", "model")


def _aggregate(rows: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Deterministic summary statistics of one group of rows."""
    n = len(rows)
    periods = [float(r["period"]) for r in rows]
    gaps = [float(r["gap"]) for r in rows]
    return {
        "n": n,
        "period_mean": sum(periods) / n,
        "period_min": min(periods),
        "period_max": max(periods),
        "mct_mean": sum(float(r["mct"]) for r in rows) / n,
        "gap_mean": sum(gaps) / n,
        "gap_max": max(gaps),
        "critical_fraction": sum(bool(r["critical"]) for r in rows) / n,
    }


def campaign_report_data(
    spec: CampaignSpec,
    store: ResultStore,
    allow_partial: bool = False,
    counters: Mapping[str, int] | None = None,
) -> dict[str, Any]:
    """The report payload: totals, per-axis pivots, cross-model deltas.

    Structure::

        {"campaign": ..., "total": ..., "rows": ..., "missing": ...,
         "pivots": {axis: [{"label": ..., <aggregates>}, ...], ...},
         "model_deltas": [{"application": ..., "platform": ...,
                           "replication": ..., "model_a": ..., ...}]}

    ``pivots`` aggregates the whole result set along each scenario axis
    (labels sorted).  ``model_deltas`` compares, per (application,
    platform, replication) cell, every pair of models present: the
    delta and ratio of the cells' mean periods, and the gap between
    their critical-resource fractions.

    A multi-objective spec adds an ``"objectives"`` section: its
    objective names, per-axis pivots of each extra objective
    (mean/min/max of latency and/or reliability per label), and the
    ``"pareto"`` export — the non-dominated rows of the whole result
    set in minimization space (reliability negated), sorted by vector.
    The key is **absent** for period-only specs, so their report bytes
    are unchanged.

    ``counters`` — a deterministic-counter mapping, typically the
    ``counters`` of a :func:`repro.telemetry.merge_traces` result —
    adds a ``"telemetry"`` section (the counters, sorted, plus derived
    engine cache/lockstep figures).  The key is **absent** when no
    counters are passed, so default report bytes are independent of
    whether a run was traced (the fabric CI byte-compare relies on
    this).
    """
    rows, missing = campaign_rows(spec, store)
    _require_complete(missing, allow_partial)

    pivots: dict[str, list[dict[str, Any]]] = {}
    for axis in _AXES:
        groups: dict[str, list[dict[str, Any]]] = {}
        for row in rows:
            groups.setdefault(str(row[axis]), []).append(row)
        pivots[axis] = [
            {"label": label, **_aggregate(groups[label])}
            for label in sorted(groups)
        ]

    cells: dict[tuple[str, str, str], dict[str, list[dict[str, Any]]]] = {}
    for row in rows:
        cell = (str(row["application"]), str(row["platform"]),
                str(row["replication"]))
        cells.setdefault(cell, {}).setdefault(str(row["model"]), []).append(row)

    deltas: list[dict[str, Any]] = []
    for cell in sorted(cells):
        by_model = cells[cell]
        models = sorted(by_model)
        for i, model_a in enumerate(models):
            for model_b in models[i + 1:]:
                agg_a = _aggregate(by_model[model_a])
                agg_b = _aggregate(by_model[model_b])
                deltas.append({
                    "application": cell[0],
                    "platform": cell[1],
                    "replication": cell[2],
                    "model_a": model_a,
                    "model_b": model_b,
                    "n_a": agg_a["n"],
                    "n_b": agg_b["n"],
                    "period_mean_a": agg_a["period_mean"],
                    "period_mean_b": agg_b["period_mean"],
                    "period_delta": agg_b["period_mean"] - agg_a["period_mean"],
                    "period_ratio": (agg_b["period_mean"] / agg_a["period_mean"]
                                     if agg_a["period_mean"] else None),
                    "critical_fraction_delta": (agg_b["critical_fraction"]
                                                - agg_a["critical_fraction"]),
                })

    data: dict[str, Any] = {
        "campaign": spec.name,
        "total": len(rows) + len(missing),
        "rows": len(rows),
        "missing": len(missing),
        "pivots": pivots,
        "model_deltas": deltas,
    }
    if spec.objectives != ("period",):
        data["objectives"] = _objectives_section(rows, spec.objectives)
    if counters is not None:
        data["telemetry"] = _telemetry_section(counters)
    return data


def _objective_pivots(
    rows: Sequence[Mapping[str, Any]], extra: Sequence[str]
) -> dict[str, list[dict[str, Any]]]:
    """Per-axis mean/min/max of each non-period objective (labels sorted)."""
    pivots: dict[str, list[dict[str, Any]]] = {}
    for axis in _AXES:
        groups: dict[str, list[Mapping[str, Any]]] = {}
        for row in rows:
            groups.setdefault(str(row[axis]), []).append(row)
        entries: list[dict[str, Any]] = []
        for label in sorted(groups):
            entry: dict[str, Any] = {"label": label, "n": len(groups[label])}
            for name in extra:
                values = [float(r[name]) for r in groups[label]]
                entry[f"{name}_mean"] = sum(values) / len(values)
                entry[f"{name}_min"] = min(values)
                entry[f"{name}_max"] = max(values)
            entries.append(entry)
        pivots[axis] = entries
    return pivots


def _pareto_rows(
    rows: Sequence[Mapping[str, Any]], objectives: Sequence[str]
) -> list[dict[str, Any]]:
    """Non-dominated rows of the result set (deterministic front).

    Vectors are minimization-space (reliability negated); exact-tie
    duplicates keep the first row in spec order, and the front is
    emitted sorted by ``(vector, point)`` so serial, ``n_jobs`` and
    fabric stores export identical bytes.
    """
    vectors = [
        tuple(
            -float(row[name]) if OBJECTIVE_SENSES[name] == "max"
            else float(row[name])
            for name in objectives
        )
        for row in rows
    ]
    front: list[int] = []
    for i, v in enumerate(vectors):
        if any(dominates(vectors[j], v) or vectors[j] == v for j in front):
            continue
        front = [j for j in front if not dominates(v, vectors[j])]
        front.append(i)
    front.sort(key=lambda i: (vectors[i], int(rows[i]["point"])))
    return [
        {
            "point": rows[i]["point"],
            "application": rows[i]["application"],
            "platform": rows[i]["platform"],
            "replication": rows[i]["replication"],
            "model": rows[i]["model"],
            "draw": rows[i]["draw"],
            **{name: float(rows[i][name]) for name in objectives},
            "vector": list(vectors[i]),
        }
        for i in front
    ]


def _objectives_section(
    rows: Sequence[Mapping[str, Any]], objectives: tuple[str, ...]
) -> dict[str, Any]:
    """The report's multi-objective block (absent for period-only specs)."""
    extra = [name for name in objectives if name != "period"]
    return {
        "names": list(objectives),
        "pivots": _objective_pivots(rows, extra),
        "pareto": _pareto_rows(rows, objectives),
    }


def _telemetry_section(counters: Mapping[str, int]) -> dict[str, Any]:
    """Engine-efficiency digest of a run's deterministic counters.

    Derived figures the raw counters bury: the skeleton-cache hit rate,
    how many points the lockstep (group) path solved versus the scalar
    path, and how many group solves fell back to scalar row-by-row
    evaluation.
    """
    def get(name: str) -> int:
        return int(counters.get(name, 0))

    builds = get("engine.skeleton_builds")
    hits = get("engine.cache_hits")
    lookups = builds + hits
    return {
        "counters": {name: int(counters[name]) for name in sorted(counters)},
        "engine": {
            "cache_hits": hits,
            "cache_hit_rate": hits / lookups if lookups else None,
            "skeleton_builds": builds,
            "group_solves": get("engine.group_solves"),
            "group_rows": get("engine.group_rows"),
            "group_fallbacks": get("engine.group_fallbacks"),
            "group_fallback_rows": get("engine.group_fallback_rows"),
            "lockstep_solves": get("howard.lockstep_solves"),
            "lockstep_rows": get("howard.lockstep_rows"),
            "scalar_points": get("engine.points") - get("engine.group_rows"),
        },
    }


def export_campaign_report(
    spec: CampaignSpec,
    store: ResultStore,
    path: str | Path | None = None,
    allow_partial: bool = False,
) -> str:
    """Byte-deterministic JSON report artifact; writes ``path`` if given."""
    text = canonical_json(
        campaign_report_data(spec, store, allow_partial=allow_partial),
        indent=2,
    ) + "\n"
    if path is not None:
        Path(path).write_text(text, newline="")
    return text


def _format_row(values: Sequence[object], widths: Sequence[int]) -> str:
    return "  ".join(str(v).rjust(w) if i else str(v).ljust(w)
                     for i, (v, w) in enumerate(zip(values, widths)))


def render_report_text(data: Mapping[str, Any]) -> str:
    """Terminal rendering of :func:`campaign_report_data`'s payload."""
    lines: list[str] = [
        f"campaign       : {data['campaign']}",
        f"rows           : {data['rows']} / {data['total']}"
        + (f"  ({data['missing']} missing)" if data["missing"] else ""),
    ]
    header = ("label", "n", "period mean", "min", "max",
              "gap mean", "crit%")
    for axis in _AXES:
        entries = data["pivots"].get(axis, [])
        if not entries:
            continue
        table = [header] + [
            (e["label"], e["n"], f"{e['period_mean']:.4g}",
             f"{e['period_min']:.4g}", f"{e['period_max']:.4g}",
             f"{e['gap_mean']:.3g}",
             f"{100 * e['critical_fraction']:.0f}")
            for e in entries
        ]
        widths = [max(len(str(row[c])) for row in table)
                  for c in range(len(header))]
        lines.append("")
        lines.append(f"by {axis}:")
        lines.extend("  " + _format_row(row, widths) for row in table)
    if data["model_deltas"]:
        lines.append("")
        lines.append("cross-model deltas (per cell, mean period):")
        for d in data["model_deltas"]:
            ratio = (f"x{d['period_ratio']:.3f}"
                     if d["period_ratio"] is not None else "n/a")
            lines.append(
                f"  {d['application']} | {d['platform']} | "
                f"{d['replication']}: {d['model_b']} vs {d['model_a']} = "
                f"{d['period_delta']:+.4g} ({ratio})"
            )
    if "objectives" in data:
        section = data["objectives"]
        extra = [n for n in section["names"] if n != "period"]
        for name in extra:
            entries = section["pivots"].get("model", [])
            if not entries:
                continue
            obj_header = ("model", "n", f"{name} mean", "min", "max")
            obj_table = [obj_header] + [
                (e["label"], e["n"], f"{e[name + '_mean']:.4g}",
                 f"{e[name + '_min']:.4g}", f"{e[name + '_max']:.4g}")
                for e in entries
            ]
            obj_widths = [max(len(str(row[c])) for row in obj_table)
                          for c in range(len(obj_header))]
            lines.append("")
            lines.append(f"{name} by model:")
            lines.extend("  " + _format_row(row, obj_widths)
                         for row in obj_table)
        lines.append("")
        lines.append(
            f"pareto front ({', '.join(section['names'])}): "
            f"{len(section['pareto'])} non-dominated point(s)"
        )
        for p in section["pareto"]:
            values = ", ".join(
                f"{name}={p[name]:.6g}" for name in section["names"]
            )
            lines.append(
                f"  point {p['point']}: {p['application']} | "
                f"{p['platform']} | {p['replication']} | {p['model']} "
                f"({values})"
            )
    if "telemetry" in data:
        engine = data["telemetry"]["engine"]
        rate = engine["cache_hit_rate"]
        lines.append("")
        lines.append("engine telemetry:")
        lines.append(
            f"  skeleton cache : {engine['cache_hits']} hits / "
            f"{engine['skeleton_builds']} builds"
            + (f"  ({100.0 * rate:.0f}% hit rate)" if rate is not None else "")
        )
        lines.append(
            f"  lockstep solves: {engine['lockstep_solves']} "
            f"({engine['lockstep_rows']} rows); "
            f"{engine['scalar_points']} scalar point(s)"
        )
        lines.append(
            f"  group fallbacks: {engine['group_fallbacks']} "
            f"({engine['group_fallback_rows']} rows re-solved scalar)"
        )
    return "\n".join(lines)
