"""Claim/lease protocol: N workers drain one campaign without duplicates.

Content addressing (:mod:`repro.campaign.store`) already makes
concurrent duplicate evaluations *harmless* — two workers computing the
same digest store identical bytes and ``INSERT OR IGNORE`` picks either.
This module makes duplicates *rare by design*: before evaluating, a
worker **claims** the digests it is about to compute by writing rows
into the store's ``leases`` table inside one ``BEGIN IMMEDIATE``
transaction.  Other workers see the claim and move on to unclaimed
work, so at any moment each pending digest is being evaluated by at
most one live worker.

Leases expire.  A claim carries ``expires = now + ttl``; a healthy
worker renews (heartbeats) its leases long before that, while a worker
that was SIGKILLed mid-claim simply stops renewing and its leases go
**stale**.  Stale leases are reclaimed by the next claim that wants
them — the claim transaction takes over any lease whose expiry has
passed — so a crashed worker delays its claimed points by at most one
TTL, never loses them.

Lease state machine (per digest)::

                   claim()                    put(result) + release()
    UNCLAIMED ──────────────▶ CLAIMED(w, t) ────────────────────────▶ DONE
        ▲                        │    ▲
        │       ttl elapses      │    │ renew() before expiry
        │   (worker crashed or   │    │ (heartbeat: t ← now + ttl)
        │        stalled)        ▼    │
        └─────────────────── STALE ───┘
             reclaimed by any worker's next claim()

``DONE`` is absorbing: claims always skip digests already present in
``results``, and a completed digest's lease row is deleted.  The
protocol never *blocks* correctness: every transition is crash-safe
(single SQLite transactions), and even a protocol violation would only
produce a duplicate evaluation that content addressing absorbs.

All timestamps come from an injectable ``clock`` so tests can freeze
or fast-forward time; production uses wall-clock seconds because lease
expiry must be comparable **across processes and hosts** sharing one
store file.  Lease state never influences stored values or exports —
it is pure coordination — so wall-clock here cannot leak into any
byte-determinism contract.
"""

from __future__ import annotations

import sqlite3
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..faults import FAULTS, RetryPolicy
from ..telemetry import TELEMETRY
from .store import ResultStore

__all__ = ["Lease", "LeaseManager", "DEFAULT_LEASE_TTL", "DEFAULT_TXN_RETRY"]

#: Default lease lifetime (seconds).  Generous relative to one claim
#: batch's evaluation time; small enough that a crashed worker's points
#: are reclaimed promptly.
DEFAULT_LEASE_TTL = 30.0

#: Backoff for a lease transaction that keeps hitting a locked database
#: even after sqlite's own busy timeout: five tries over ~0.5 s of
#: deterministic jittered backoff (the successor of the old fixed
#: 0.05 s * attempt ladder).
DEFAULT_TXN_RETRY = RetryPolicy(
    attempts=5, base_delay=0.05, max_delay=0.3, budget=1.0
)


@dataclass(frozen=True)
class Lease:
    """One row of the ``leases`` table (diagnostics and tests)."""

    digest: str
    worker: str
    expires: float
    acquired: float


class LeaseManager:
    """Claim, renew and release leases on one store's ``leases`` table.

    Parameters
    ----------
    store:
        The (shared, WAL-mode) result store the leases coordinate.
    worker:
        This worker's identity — any string unique among concurrent
        workers (the executor uses ``fabric-<host>-<pid>``).  Identity
        never reaches stored payloads or exports.
    ttl:
        Lease lifetime in seconds; claims and renewals set
        ``expires = now + ttl``.
    clock:
        Time source returning seconds (tests inject fakes; defaults to
        wall clock, which cross-process expiry comparison requires).
        The fault plane's ``lease.clock`` site adds its injected skew on
        top of whatever source is used, so chaos schedules can step the
        clock without touching the source.
    retry:
        :class:`~repro.faults.RetryPolicy` for the ``BEGIN IMMEDIATE``
        transactions (claim/renew/release); defaults to
        :data:`DEFAULT_TXN_RETRY`.

    Examples
    --------
    >>> store = ResultStore(":memory:")
    >>> a = LeaseManager(store, "a", ttl=60.0, clock=lambda: 0.0)
    >>> b = LeaseManager(store, "b", ttl=60.0, clock=lambda: 0.0)
    >>> a.claim(["d1", "d2"])
    ['d1', 'd2']
    >>> b.claim(["d2", "d3"])         # d2 is taken
    ['d3']
    >>> late = LeaseManager(store, "c", ttl=60.0, clock=lambda: 120.0)
    >>> late.claim(["d2"])            # a's lease expired at t=60: stale
    ['d2']
    """

    def __init__(
        self,
        store: ResultStore,
        worker: str,
        ttl: float = DEFAULT_LEASE_TTL,
        clock: Callable[[], float] | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self._store = store
        self._conn = store.connection
        self.worker = worker
        self.ttl = float(ttl)
        self._retry = DEFAULT_TXN_RETRY if retry is None else retry
        self._clock: Callable[[], float] = clock if clock is not None \
            else time.time  # detlint: disable=DET105 - lease expiry is cross-process wall-clock by design; tests inject `clock`

    def _now(self) -> float:
        """The protocol's notion of now: the clock source plus any
        injected skew (the ``lease.clock`` fault site — chaos schedules
        step this worker's view of time to force premature expiry or
        stale-takeover races without touching the source)."""
        now = self._clock()
        if FAULTS.enabled:
            now += FAULTS.skew("lease.clock")
        return now

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def _immediate(self) -> None:
        """``BEGIN IMMEDIATE`` with bounded retry on a locked database."""

        def begin() -> None:
            if FAULTS.enabled:
                FAULTS.hit("lease.begin")
            self._conn.execute("BEGIN IMMEDIATE")

        self._retry.run(
            f"lease.begin:{self.worker}",
            begin,
            retryable=(sqlite3.OperationalError,),
        )

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def claim(
        self, digests: Sequence[str], limit: int | None = None
    ) -> list[str]:
        """Claim up to ``limit`` of ``digests`` for this worker.

        One atomic transaction; for each candidate in order:

        * already in ``results`` — skip (DONE is absorbing);
        * unleased — claim it;
        * leased but expired — **reclaim** it (stale-lease takeover);
        * leased and live (any worker, including this one) — skip.

        Returns the claimed digests in candidate order (deterministic
        for a fixed store state).
        """
        now = self._now()
        expires = now + self.ttl
        claimed: list[str] = []
        budget = len(digests) if limit is None else limit
        self._immediate()
        try:
            for digest in digests:
                if len(claimed) >= budget:
                    break
                done = self._conn.execute(
                    "SELECT 1 FROM results WHERE digest = ?", (digest,)
                ).fetchone()
                if done is not None:
                    continue
                prior_expired = False
                if TELEMETRY.enabled:
                    # Probe whether an upsert here would be a stale-lease
                    # takeover rather than a fresh claim (the upsert's
                    # rowcount cannot distinguish the two).
                    row = self._conn.execute(
                        "SELECT expires FROM leases WHERE digest = ?",
                        (digest,),
                    ).fetchone()
                    prior_expired = row is not None and float(row[0]) <= now
                cur = self._conn.execute(
                    "INSERT INTO leases (digest, worker, expires, acquired)"
                    " VALUES (?, ?, ?, ?)"
                    " ON CONFLICT(digest) DO UPDATE SET"
                    "  worker = excluded.worker,"
                    "  expires = excluded.expires,"
                    "  acquired = excluded.acquired"
                    " WHERE leases.expires <= ?",
                    (digest, self.worker, expires, now, now),
                )
                if cur.rowcount == 1:
                    claimed.append(digest)
                    if prior_expired:
                        TELEMETRY.count("lease.stale_takeovers")
            self._conn.execute("COMMIT")
        except BaseException:
            if self._conn.in_transaction:
                self._conn.execute("ROLLBACK")
            raise
        if TELEMETRY.enabled:
            TELEMETRY.count("lease.claim_batches")
            TELEMETRY.count("lease.claims", len(claimed))
        return claimed

    def renew(self, digests: Sequence[str] | None = None) -> int:
        """Heartbeat: push the expiry of held leases to ``now + ttl``.

        Renews ``digests`` (or every lease this worker holds) and
        returns how many rows were actually renewed — fewer than asked
        means some leases were lost to expiry + reclamation, and the
        caller should treat those digests as no longer its own.
        """
        if FAULTS.enabled:
            # A stall here models a hung worker: its heartbeat arrives
            # late (or never), the leases expire, and the watchdog path
            # in the executor hands the digests to a live worker.
            FAULTS.hit("lease.renew")
        now = self._now()
        if digests is None:
            cur = self._conn.execute(
                "UPDATE leases SET expires = ? WHERE worker = ?"
                " AND expires > ?",
                (now + self.ttl, self.worker, now),
            )
            TELEMETRY.count("lease.renews", int(cur.rowcount))
            return int(cur.rowcount)
        renewed = 0
        self._immediate()
        try:
            for digest in digests:
                cur = self._conn.execute(
                    "UPDATE leases SET expires = ? WHERE digest = ?"
                    " AND worker = ? AND expires > ?",
                    (now + self.ttl, digest, self.worker, now),
                )
                renewed += int(cur.rowcount)
            self._conn.execute("COMMIT")
        except BaseException:
            if self._conn.in_transaction:
                self._conn.execute("ROLLBACK")
            raise
        TELEMETRY.count("lease.renews", renewed)
        return renewed

    def release(self, digests: Sequence[str]) -> int:
        """Drop this worker's leases on ``digests`` (after storing results).

        Releasing a lease another worker has meanwhile reclaimed is a
        no-op: the ``worker = ?`` guard means a worker can only ever
        delete its own claims.
        """
        released = 0
        self._immediate()
        try:
            for digest in digests:
                cur = self._conn.execute(
                    "DELETE FROM leases WHERE digest = ? AND worker = ?",
                    (digest, self.worker),
                )
                released += int(cur.rowcount)
            self._conn.execute("COMMIT")
        except BaseException:
            if self._conn.in_transaction:
                self._conn.execute("ROLLBACK")
            raise
        TELEMETRY.count("lease.releases", released)
        return released

    # ------------------------------------------------------------------
    # inspection and maintenance
    # ------------------------------------------------------------------
    def held(self) -> list[str]:
        """Digests this worker currently holds live leases on (sorted)."""
        now = self._now()
        return [
            str(row[0]) for row in self._conn.execute(
                "SELECT digest FROM leases WHERE worker = ? AND expires > ?"
                " ORDER BY digest",
                (self.worker, now),
            )
        ]

    def active(self) -> list[Lease]:
        """Every live lease in the store, digest-sorted (all workers)."""
        now = self._now()
        return [
            Lease(str(d), str(w), float(e), float(a))
            for d, w, e, a in self._conn.execute(
                "SELECT digest, worker, expires, acquired FROM leases"
                " WHERE expires > ? ORDER BY digest",
                (now,),
            )
        ]

    def reclaim_stale(self) -> int:
        """Delete expired lease rows outright; returns how many.

        Purely hygienic — claims already treat expired rows as free —
        but dropping them keeps the table small and makes `active()`
        reflect reality after a crashy campaign.
        """
        now = self._now()
        cur = self._conn.execute(
            "DELETE FROM leases WHERE expires <= ?", (now,)
        )
        return int(cur.rowcount)
