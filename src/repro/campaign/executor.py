"""Streaming campaign executor: resume, warm-start-friendly ordering, export.

:func:`run_campaign` drains a :class:`~repro.campaign.spec.CampaignSpec`
through one shared :class:`~repro.engine.BatchEngine`:

1. **Expand + dedupe** — the spec expands deterministically; every
   point's digest is looked up in the store and already-computed points
   are skipped (this is both the resume path and the duplicate guard).
2. **Order** — pending points are regrouped by
   :func:`~repro.engine.signature.topology_signature` (groups in
   first-seen order) while *preserving sweep order inside each group*.
   Grouping maximizes skeleton-cache and Howard warm-start hits; the
   preserved sweep adjacency keeps consecutive same-topology instances
   similar, so the carried policy is typically one improvement round
   from each new fixed point (see ``benchmarks/bench_campaign.py``,
   which asserts this ordering beats PR-1's plain contiguous chunking).
3. **Evaluate + checkpoint** — results stream into the store with a
   commit every ``commit_every`` points (serial) or per worker span as
   each span *finishes* (parallel), so a killed serial run loses at
   most ``commit_every`` points and a killed parallel run at most the
   spans still in flight — never committed work.  Parallel runs split
   the *ordered* stream into one contiguous span per worker — never
   round-robin chunks, which would interleave sweep neighbors away
   from each other's engines.  Because the stream is signature-ordered,
   both paths drain through ``BatchEngine.evaluate(mode="many")``: each
   same-topology run is stamped into one ``(B, E)`` weight matrix and
   solved in lockstep (:func:`repro.maxplus.howard.solve_prepared_many`)
   instead of point by point.

Evaluation runs ``warm_start=True``: period values are identical to
cold start (pinned by ``tests/test_warm_start.py``), and stored
payloads carry only values — so interrupted, resumed, serial and
parallel runs all export byte-identical artifacts.

:func:`export_campaign_json` / :func:`export_campaign_csv` join the
(re-expanded) spec with the store and emit byte-deterministic files via
:func:`repro.experiments.io.canonical_json` conventions.
"""

from __future__ import annotations

import csv
import io
import os as _os
import sqlite3
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..core.instance import Instance
from ..engine import BatchEngine, topology_signature
from ..errors import ValidationError
from ..experiments.io import canonical_json
from ..faults import FAULTS, FaultPlan, SpillJournal, pause
from ..telemetry import TELEMETRY, write_trace
from .spec import CampaignPoint, CampaignSpec
from .store import ResultStore, instance_digest, payload_from_result

__all__ = [
    "CampaignReport",
    "FabricReport",
    "run_campaign",
    "run_campaign_worker",
    "run_campaign_workers",
    "order_for_engine",
    "campaign_status",
    "campaign_rows",
    "export_campaign_json",
    "export_campaign_csv",
]

#: Serial checkpoint cadence (points per store commit).
DEFAULT_COMMIT_EVERY = 32

#: Fabric claim-batch size: how many digests one worker leases per
#: claim transaction.  Small enough that a crashed worker strands
#: little work behind its TTL; large enough that claim overhead stays
#: negligible next to evaluation.
DEFAULT_CLAIM_BATCH = 16

#: Sleep while every pending digest is leased by some other worker
#: (seconds); bounded by the lease TTL, after which stale leases
#: become claimable.
_FABRIC_POLL_SLEEP = 0.05


@dataclass(frozen=True)
class CampaignReport:
    """Outcome of one :func:`run_campaign` invocation.

    Attributes
    ----------
    spec_name:
        The campaign.
    total:
        Points the spec expands to.
    hits:
        Points already in the store when the run started (resume skips).
    evaluated:
        Points computed (and stored) by this run.
    remaining:
        Points still missing afterwards (non-zero only when the run was
        truncated by ``max_points``).
    groups:
        Distinct TPN topology groups among the evaluated points.
    """

    spec_name: str
    total: int
    hits: int
    evaluated: int
    remaining: int
    groups: int

    @property
    def complete(self) -> bool:
        """Whether every point of the spec is now stored."""
        return self.remaining == 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (the CLI's ``run --summary-json`` payload).

        Plain scalars only, so CI scripts can assert on parsed fields
        instead of grepping the human-formatted run summary.
        """
        return {
            "campaign": self.spec_name,
            "total": self.total,
            "hits": self.hits,
            "evaluated": self.evaluated,
            "remaining": self.remaining,
            "groups": self.groups,
            "complete": self.complete,
        }


def order_for_engine(
    pairs: Sequence[tuple[Instance, str]]
) -> list[int]:
    """Engine-friendly evaluation order of ``(instance, model)`` pairs.

    Returns indices grouped by topology signature — groups in order of
    first appearance, original (sweep) order preserved *within* each
    group.  Stable and deterministic: a pure function of the input
    sequence.

    Examples
    --------
    >>> from repro import Application, Platform, Mapping, Instance
    >>> app = Application(works=[1, 1], file_sizes=[1])
    >>> plat = Platform.homogeneous(4)
    >>> a = Instance(app, plat, Mapping([(0,), (1,)]))
    >>> b = Instance(app, plat, Mapping([(0,), (1, 2)]))
    >>> order_for_engine([(a, "strict"), (b, "strict"), (a, "strict")])
    [0, 2, 1]
    """
    groups: dict[tuple[str, tuple[tuple[int, ...], ...]], list[int]] = {}
    for i, (inst, model) in enumerate(pairs):
        groups.setdefault(topology_signature(inst, model), []).append(i)
    return [i for members in groups.values() for i in members]


def _split_spans(order: list[int], n_spans: int) -> list[list[int]]:
    """Cut an ordered index list into contiguous, near-equal spans."""
    n_spans = max(1, min(n_spans, len(order)))
    base, extra = divmod(len(order), n_spans)
    spans: list[list[int]] = []
    start = 0
    for s in range(n_spans):
        size = base + (1 if s < extra else 0)
        spans.append(order[start: start + size])
        start += size
    return [s for s in spans if s]


def _evaluate_span(
    args: tuple[list[tuple[str, Instance, str]], int, bool, tuple[str, ...]],
) -> tuple[list[tuple[str, dict[str, Any]]], dict[str, int] | None]:
    """Worker: evaluate one contiguous span with a warm-started engine.

    The span is signature-ordered (see :func:`order_for_engine`), so
    ``mode="many"`` turns it into a handful of lockstep group solves.
    Extra objective values (latency / reliability) are pure per-instance
    functions, so computing them in the worker yields the same payload
    bytes as any other execution path.

    When the parent collects telemetry, the worker tallies its own
    counters on a fresh collector and ships the snapshot back alongside
    the results (summed merge — completion order cannot matter).  The
    collector is reset (or disabled) unconditionally: forked workers
    inherit the parent's collector state and must never double-count it.
    """
    items, max_rows, telemetry_on, objectives = args
    if telemetry_on:
        TELEMETRY.enable("span")
    else:
        TELEMETRY.disable()
    engine = BatchEngine(max_rows=max_rows, warm_start=True)
    results = engine.evaluate(
        [inst for _, inst, _ in items], [model for _, _, model in items],
        mode="many",
    )
    out = [
        (digest, payload_from_result(inst, result, objectives=objectives))
        for (digest, inst, _), result in zip(items, results)
    ]
    counters = TELEMETRY.counter_snapshot() if telemetry_on else None
    return out, counters


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    n_jobs: int | None = None,
    max_points: int | None = None,
    commit_every: int = DEFAULT_COMMIT_EVERY,
    progress: Callable[[int, int], None] | None = None,
    trace_dir: str | Path | None = None,
) -> CampaignReport:
    """Run (or resume) a campaign against a content-addressed store.

    Parameters
    ----------
    spec:
        The campaign to drain.
    store:
        Result store; points whose digest is already present are never
        re-evaluated, which is both the resume path and the cross-run
        dedupe.
    n_jobs:
        ``None``/``1`` — serial, one shared engine, streaming commits;
        ``k > 1`` — the ordered stream splits into ``k`` contiguous
        spans, one long-lived engine per worker (``0`` = all cores).
        Stored values are identical either way.
    max_points:
        Evaluate at most this many *new* points, then stop with
        ``remaining > 0`` — a deterministic stand-in for an interrupted
        run (used by tests and the CI resume smoke).
    commit_every:
        Serial checkpoint cadence.
    progress:
        Optional ``callback(done_new_points, pending_total)``.
    trace_dir:
        Enable :mod:`repro.telemetry` on a fresh collector and write a
        ``trace-main.jsonl`` canonical trace (counters + spans) into
        this directory when done.  ``None`` leaves the collector's
        enabled state alone, so callers may also enable/inspect
        telemetry themselves.
    """
    if trace_dir is not None:
        TELEMETRY.enable("main")

    with TELEMETRY.span("campaign", campaign=spec.name):
        with TELEMETRY.span("expand"):
            points = spec.expand()
            instances = [pt.instance() for pt in points]
            digests = [instance_digest(inst, pt.model,
                                       objectives=spec.objectives)
                       for pt, inst in zip(points, instances)]

            seen: set[str] = set()
            pending: list[int] = []
            for i, digest in enumerate(digests):
                if digest in seen:
                    continue
                # existence probe only — never fetch/parse payloads
                # during resume
                if digest not in store:
                    pending.append(i)
                    seen.add(digest)
            hits = len(points) - len(pending)

            order = order_for_engine(
                [(instances[i], points[i].model) for i in pending]
            )
            ordered = [pending[j] for j in order]
            if max_points is not None:
                ordered = ordered[:max_points]

            n_groups = len({
                topology_signature(instances[i], points[i].model)
                for i in ordered
            })
        max_rows = spec.max_paths + 1

        if n_jobs is None or n_jobs == 1 or len(ordered) < 2:
            engine = BatchEngine(max_rows=max_rows, warm_start=True)
            # Drain in commit-sized slices: each slice is signature-ordered,
            # so mode="many" locksteps it as a few whole-group solves, and
            # a kill still loses at most ``commit_every`` points.
            done = 0
            for start in range(0, len(ordered), commit_every):
                chunk = ordered[start: start + commit_every]
                with TELEMETRY.span("evaluate", points=len(chunk)):
                    results = engine.evaluate(
                        [instances[i] for i in chunk],
                        [points[i].model for i in chunk],
                        mode="many",
                    )
                with TELEMETRY.span("commit", points=len(chunk)):
                    for i, result in zip(chunk, results):
                        store.put(digests[i],
                                  payload_from_result(
                                      instances[i], result,
                                      objectives=spec.objectives),
                                  commit=False)
                    store.commit()
                done += len(chunk)
                if progress is not None:
                    progress(done, len(ordered))
        else:
            workers = (_os.cpu_count() or 1) if n_jobs == 0 else n_jobs
            spans = _split_spans(ordered, workers)
            telemetry_on = TELEMETRY.enabled
            payloads = [
                ([(digests[i], instances[i], points[i].model) for i in span],
                 max_rows, telemetry_on, spec.objectives)
                for span in spans
            ]
            done = 0
            with TELEMETRY.span("evaluate", points=len(ordered),
                                spans=len(spans)):
                with ProcessPoolExecutor(max_workers=len(spans)) as pool:
                    futures = [pool.submit(_evaluate_span, p)
                               for p in payloads]
                    # Commit spans the moment they finish (not in
                    # submission order): a kill loses at most the
                    # in-flight spans, never a finished one stuck behind
                    # a slow predecessor.
                    for fut in as_completed(futures):
                        results, counters = fut.result()
                        if counters is not None:
                            TELEMETRY.merge_counters(counters)
                        with TELEMETRY.span("commit",
                                            points=len(results)):
                            for digest, payload in results:
                                store.put(digest, payload, commit=False)
                            store.commit()
                        done += len(results)
                        if progress is not None:
                            progress(done, len(ordered))

    report = CampaignReport(
        spec_name=spec.name,
        total=len(points),
        hits=hits,
        evaluated=len(ordered),
        remaining=len(pending) - len(ordered),
        groups=n_groups,
    )
    if trace_dir is not None:
        trace_path = Path(trace_dir)
        trace_path.mkdir(parents=True, exist_ok=True)
        write_trace(trace_path / "trace-main.jsonl", TELEMETRY)
        TELEMETRY.disable()
    return report


# ----------------------------------------------------------------------
# the distributed fabric: lease-coordinated multi-process drain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FabricReport:
    """Outcome of one :func:`run_campaign_workers` invocation.

    Attributes
    ----------
    spec_name:
        The campaign.
    total:
        Distinct digests the spec expands to.
    hits:
        Digests already stored when the fabric launched.
    evaluated:
        New digests stored by this fabric run (all workers combined).
    remaining:
        Digests still missing afterwards — non-zero only when workers
        crashed (or were crash-injected); rerun to resume.
    workers:
        Worker processes launched.
    crashed:
        Indices of workers that did not exit cleanly (SIGKILL shows up
        here); their claimed-but-uncommitted points simply wait out the
        lease TTL and are reclaimed on the next run.
    """

    spec_name: str
    total: int
    hits: int
    evaluated: int
    remaining: int
    workers: int
    crashed: tuple[int, ...] = ()

    @property
    def complete(self) -> bool:
        """Whether every point of the spec is now stored."""
        return self.remaining == 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (mirrors :meth:`CampaignReport.to_dict`)."""
        return {
            "campaign": self.spec_name,
            "total": self.total,
            "hits": self.hits,
            "evaluated": self.evaluated,
            "remaining": self.remaining,
            "workers": self.workers,
            "crashed": list(self.crashed),
            "complete": self.complete,
        }


def _unique_spec_digests(
    spec: CampaignSpec,
) -> tuple[list[str], dict[str, tuple[Instance, str]]]:
    """Signature-ordered distinct digests of a spec + their instances.

    Every worker derives the *same* list (expansion and ordering are
    deterministic), so the fabric needs no coordinator process: the
    shared store plus the lease table are the only channel.
    """
    points = spec.expand()
    by_digest: dict[str, tuple[Instance, str]] = {}
    firsts: list[tuple[str, Instance, str]] = []
    for pt in points:
        inst = pt.instance()
        digest = instance_digest(inst, pt.model, objectives=spec.objectives)
        if digest not in by_digest:
            by_digest[digest] = (inst, pt.model)
            firsts.append((digest, inst, pt.model))
    order = order_for_engine([(inst, model) for _, inst, model in firsts])
    return [firsts[j][0] for j in order], by_digest


def _spill_chunk(
    store: ResultStore,
    spill_dir: str | Path,
    payloads: Sequence[tuple[str, str]],
    spilled: set[str],
) -> None:
    """Degrade gracefully: journal a chunk the store would not take.

    The open transaction is rolled back (COMMIT already exhausted its
    retry budget) and every payload goes to the write-ahead journal;
    ``repro-workflow store heal`` replays it later.  Digests that made
    it into the journal are added to ``spilled`` so the worker treats
    them as done and keeps draining — per-worker progress instead of a
    dead campaign.
    """
    store.rollback()
    journal = SpillJournal(spill_dir)
    for digest, text in payloads:
        try:
            journal.spill(digest, text)
        except OSError:
            # The journal write itself failed (e.g. injected ENOSPC):
            # the digest simply stays pending for a later worker/run.
            continue
        spilled.add(digest)
    if TELEMETRY.enabled:
        TELEMETRY.count("fabric.spilled_chunks")


def run_campaign_worker(
    spec: CampaignSpec,
    store: ResultStore,
    worker_id: str,
    lease_ttl: float | None = None,
    claim_batch: int = DEFAULT_CLAIM_BATCH,
    commit_every: int = DEFAULT_COMMIT_EVERY,
    progress: Callable[[int, int], None] | None = None,
    spill_dir: str | Path | None = None,
) -> int:
    """Drain one campaign as a lease-coordinated fabric worker.

    The claim loop of the distributed fabric: any number of processes —
    on one host or many, sharing the store file or a synced copy — can
    run this concurrently against one ``CampaignSpec`` and partition
    the work without duplicates:

    1. derive the signature-ordered digest list (deterministic, no
       coordinator), rotated by a stable per-worker offset so workers
       start claiming in different regions;
    2. **claim** a batch of unstored, unleased digests
       (:class:`~repro.campaign.lease.LeaseManager` — stale leases of
       crashed workers are reclaimed by the same transaction);
    3. evaluate the batch in commit-sized chunks through a warm-started
       :class:`~repro.engine.BatchEngine`, renewing held leases between
       chunks (the heartbeat), committing results and releasing their
       leases chunk by chunk;
    4. when nothing is claimable but points remain, sweep leases whose
       renewal deadline has passed (the hung-worker watchdog) and sleep
       briefly — either another live worker finishes them or the next
       claim takes the stale ones over.

    Returns the number of new points this worker stored.  Crash-safe at
    every boundary: a SIGKILL loses only the current uncommitted chunk,
    whose leases expire and free the points for everyone else.

    The loop carries the fabric's resilience ladder.  A heartbeat that
    comes back short (this worker stalled past its renewal deadline and
    lost leases to a takeover) drops the lost digests instead of
    double-committing blindly.  A commit that fails past the store's
    retry budget spills the chunk's payloads to the ``spill_dir``
    write-ahead journal (when given) and keeps draining; ``store heal``
    replays the journal idempotently.  Chaos tests drive all of this
    through the :mod:`repro.faults` plane — the ``worker.after-claim``,
    ``worker.pre-release`` and ``worker.after-release`` sites mark the
    protocol barriers where a plan may SIGKILL this process for real.
    """
    from .lease import DEFAULT_LEASE_TTL, LeaseManager

    ordered, by_digest = _unique_spec_digests(spec)
    lease = LeaseManager(
        store, worker_id,
        ttl=DEFAULT_LEASE_TTL if lease_ttl is None else lease_ttl,
    )
    engine = BatchEngine(max_rows=spec.max_paths + 1, warm_start=True)

    # Stable stagger: worker k starts claiming at offset k/N-ish of the
    # ordered list (keyed by the worker id's crc so independent hosts
    # need no index assignment), keeping claim contention rare while
    # preserving signature-contiguous runs inside each claim batch.
    import zlib as _zlib

    offset = (_zlib.crc32(worker_id.encode()) % max(1, len(ordered)))
    rotated = ordered[offset:] + ordered[:offset]

    done_new = 0
    spilled: set[str] = set()
    while True:
        with TELEMETRY.span("claim"):
            stored = set(store.digests())
            remaining = [
                d for d in rotated if d not in stored and d not in spilled
            ]
            if remaining:
                claimed = lease.claim(remaining, limit=claim_batch)
        if not remaining:
            break
        if FAULTS.enabled:
            FAULTS.hit("worker.after-claim")
        if not claimed:
            # Everything left is leased by some other live worker (or
            # just landed in the store); wait for completion or expiry.
            # The watchdog half: sweep leases whose renewal deadline
            # has passed, so a hung worker's digests go back on the
            # market after one TTL instead of lingering.
            with TELEMETRY.span("wait"):
                swept = lease.reclaim_stale()
                if swept and TELEMETRY.enabled:
                    TELEMETRY.count("fabric.stale_reclaimed", swept)
                pause(_FABRIC_POLL_SLEEP)
            continue
        for start in range(0, len(claimed), commit_every):
            chunk = claimed[start: start + commit_every]
            tail = claimed[start:]
            renewed = lease.renew(tail)  # heartbeat for the unevaluated tail
            if renewed < len(tail):
                # This worker stalled past its renewal deadline and the
                # watchdog handed (some of) its leases to someone else.
                # Evaluating them anyway would be harmless (content
                # addressing absorbs duplicates) but wasteful — keep
                # only what is still ours.
                held = set(lease.held())
                lost = [d for d in chunk if d not in held]
                if lost:
                    chunk = [d for d in chunk if d in held]
                    if TELEMETRY.enabled:
                        TELEMETRY.count("fabric.lost_leases", len(lost))
                if not chunk:
                    continue
            with TELEMETRY.span("evaluate", points=len(chunk)):
                results = engine.evaluate(
                    [by_digest[d][0] for d in chunk],
                    [by_digest[d][1] for d in chunk],
                    mode="many",
                )
            payloads = [
                (digest,
                 canonical_json(
                     payload_from_result(by_digest[digest][0], result,
                                         objectives=spec.objectives)))
                for digest, result in zip(chunk, results)
            ]
            with TELEMETRY.span("commit", points=len(chunk)):
                try:
                    for digest, text in payloads:
                        store.put_text(digest, text, commit=False)
                    store.commit()
                except (sqlite3.OperationalError, OSError):
                    if spill_dir is None:
                        raise
                    _spill_chunk(store, spill_dir, payloads, spilled)
                    continue
                if FAULTS.enabled:
                    FAULTS.hit("worker.pre-release")
                lease.release(chunk)
            if FAULTS.enabled:
                FAULTS.hit("worker.after-release")
            done_new += len(chunk)
            if progress is not None:
                progress(done_new, len(ordered))
    return done_new


def _fabric_worker_main(
    spec_data: dict[str, Any],
    store_path: str,
    worker_index: int,
    lease_ttl: float | None,
    claim_batch: int,
    commit_every: int,
    fault_plan: FaultPlan | None,
    spill_dir: str | None,
    trace_dir: str | None,
) -> None:
    """Subprocess entry point of :func:`run_campaign_workers`.

    Telemetry and fault-plane state are set unconditionally: forked
    workers inherit the parent's collector and plane (spans, counters,
    hit counts, enabled flags) and must start from a clean slate —
    telemetry enabled on a fresh per-worker collector when tracing, the
    plane armed with this worker's own :class:`~repro.faults.FaultPlan`
    when one is scheduled, both disabled otherwise.  Each tracing
    worker writes its own ``trace-worker-<i>.jsonl``;
    :func:`repro.telemetry.merge_traces` recombines them with the
    parent's ``trace-main.jsonl``.
    """
    spec = CampaignSpec.from_dict(spec_data)
    if trace_dir is not None:
        TELEMETRY.enable(f"worker-{worker_index}")
    else:
        TELEMETRY.disable()
    if fault_plan is not None:
        FAULTS.arm(fault_plan)
    else:
        FAULTS.disarm()
    with ResultStore(store_path) as store:
        with TELEMETRY.span("worker-run", worker=worker_index):
            run_campaign_worker(
                spec, store,
                worker_id=f"fabric-{worker_index}-{_os.getpid()}",
                lease_ttl=lease_ttl,
                claim_batch=claim_batch,
                commit_every=commit_every,
                spill_dir=spill_dir,
            )
    if trace_dir is not None:
        write_trace(
            Path(trace_dir) / f"trace-worker-{worker_index}.jsonl", TELEMETRY
        )


def run_campaign_workers(
    spec: CampaignSpec,
    store_path: str | Path,
    workers: int,
    lease_ttl: float | None = None,
    claim_batch: int = DEFAULT_CLAIM_BATCH,
    commit_every: int = DEFAULT_COMMIT_EVERY,
    fault_plans: Mapping[int, FaultPlan] | None = None,
    spill_dir: str | Path | None = None,
    trace_dir: str | Path | None = None,
) -> FabricReport:
    """Drain one campaign with ``workers`` independent processes.

    Unlike ``run_campaign(n_jobs=k)`` — which *pre-partitions* the
    ordered stream into spans inside one process — every fabric worker
    is a full, independent campaign runner against the shared WAL
    store: the processes coordinate **only** through the store's lease
    table, so this is exactly the multi-host execution model run on one
    machine.  Workers that crash strand nothing: their leases expire
    and the survivors (or the next invocation) absorb the work.

    Stored values, and therefore every export and report, are
    byte-identical to a ``workers=1`` (or plain :func:`run_campaign`)
    drain of the same spec — asserted by
    ``tests/test_store_concurrency.py`` and the ``campaign-fabric`` CI
    job.

    ``fault_plans`` maps worker index to a :class:`~repro.faults.FaultPlan`
    armed inside that worker's process — the chaos-soak entry point:
    per-worker seeded schedules of SIGKILLs, store errors, stalls and
    clock jumps, replayable byte-for-byte.  ``spill_dir`` names the
    write-ahead journal workers spill to when the store stays
    unreachable past its retry budget (see :func:`run_campaign_worker`).

    ``trace_dir`` enables telemetry fabric-wide: the parent records the
    root ``campaign`` span (with ``prepare`` and per-worker ``worker``
    wait spans) into ``trace-main.jsonl`` and each worker process
    records its own counters and spans into ``trace-worker-<i>.jsonl``
    — recombine with :func:`repro.telemetry.merge_traces`.
    """
    import multiprocessing as mp

    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    store_path = str(store_path)
    trace_arg = None if trace_dir is None else str(trace_dir)
    if trace_arg is not None:
        Path(trace_arg).mkdir(parents=True, exist_ok=True)
        TELEMETRY.enable("main")

    with TELEMETRY.span("campaign", campaign=spec.name, workers=workers):
        with TELEMETRY.span("prepare"):
            ordered, _ = _unique_spec_digests(spec)
            with ResultStore(store_path) as parent_store:
                hits = sum(1 for d in ordered if d in parent_store)

            ctx = mp.get_context()
            spill_arg = None if spill_dir is None else str(spill_dir)
            procs = [
                ctx.Process(
                    target=_fabric_worker_main,
                    args=(spec.to_dict(), store_path, i, lease_ttl,
                          claim_batch, commit_every,
                          None if fault_plans is None else fault_plans.get(i),
                          spill_arg, trace_arg),
                )
                for i in range(workers)
            ]
            for proc in procs:
                proc.start()
        crashed: list[int] = []
        # One parent-side span per worker join: together the join spans
        # tile the fabric's whole drain phase (span i ends when worker i
        # exits, span i+1 starts immediately), so the root campaign
        # span's time is attributed to named children even though the
        # parent itself only waits here.
        for i, proc in enumerate(procs):
            with TELEMETRY.span("worker", worker=i):
                proc.join()
            if proc.exitcode != 0:
                crashed.append(i)

        with ResultStore(store_path) as parent_store:
            done = sum(1 for d in ordered if d in parent_store)

    report = FabricReport(
        spec_name=spec.name,
        total=len(ordered),
        hits=hits,
        evaluated=done - hits,
        remaining=len(ordered) - done,
        workers=workers,
        crashed=tuple(crashed),
    )
    if trace_arg is not None:
        write_trace(Path(trace_arg) / "trace-main.jsonl", TELEMETRY)
        TELEMETRY.disable()
    return report


# ----------------------------------------------------------------------
# status and exports
# ----------------------------------------------------------------------
def campaign_rows(
    spec: CampaignSpec, store: ResultStore
) -> tuple[list[dict[str, Any]], list[CampaignPoint]]:
    """Join the expanded spec with the store.

    Returns ``(rows, missing)``: one plain-data row per stored point in
    spec order (point identity + payload values), plus the points whose
    results are not stored yet.
    """
    rows: list[dict[str, Any]] = []
    missing: list[CampaignPoint] = []
    for pt in spec.expand():
        inst = pt.instance()
        digest = instance_digest(inst, pt.model, objectives=spec.objectives)
        payload = store.get(digest)
        if payload is None:
            missing.append(pt)
            continue
        row = {
            "point": pt.index,
            "application": pt.application.label,
            "platform": pt.platform.label,
            "replication": pt.replication.label,
            "model": pt.model,
            "draw": pt.draw,
            "seed": pt.seed,
            "digest": digest,
        }
        # "replication" in a payload means the counts vector; the row's
        # "replication" is the axis label, so the counts get their own key.
        row.update(
            ("replication_counts" if k == "replication" else k, v)
            for k, v in payload.items() if k not in ("schema", "model")
        )
        rows.append(row)
    return rows, missing


def campaign_status(spec: CampaignSpec, store: ResultStore) -> dict[str, Any]:
    """Progress summary: total/done/pending plus per-cell done counts."""
    done_by_cell: dict[tuple[str, str, str, str], int] = {}
    total_by_cell: dict[tuple[str, str, str, str], int] = {}
    done = 0
    points = spec.expand()
    for pt in points:
        total_by_cell[pt.cell] = total_by_cell.get(pt.cell, 0) + 1
        if instance_digest(pt.instance(), pt.model,
                           objectives=spec.objectives) in store:
            done += 1
            done_by_cell[pt.cell] = done_by_cell.get(pt.cell, 0) + 1
    return {
        "campaign": spec.name,
        "total": len(points),
        "done": done,
        "pending": len(points) - done,
        "cells": [
            {
                "application": cell[0], "platform": cell[1],
                "replication": cell[2], "model": cell[3],
                "done": done_by_cell.get(cell, 0), "total": total,
            }
            for cell, total in total_by_cell.items()
        ],
    }


def _require_complete(
    missing: list[CampaignPoint], allow_partial: bool
) -> None:
    if missing and not allow_partial:
        raise ValidationError(
            f"campaign export is missing {len(missing)} of its points "
            f"(first missing point index {missing[0].index}); run the "
            f"campaign to completion or pass allow_partial=True"
        )


def export_campaign_json(
    spec: CampaignSpec,
    store: ResultStore,
    path: str | Path | None = None,
    allow_partial: bool = False,
) -> str:
    """Byte-deterministic JSON artifact of a campaign; writes ``path``.

    The payload embeds the spec itself (sorted keys), so an artifact is
    self-describing and reproducible from its own bytes.
    """
    rows, missing = campaign_rows(spec, store)
    _require_complete(missing, allow_partial)
    text = canonical_json(
        {"campaign": spec.name, "spec": spec.to_dict(), "rows": rows},
        indent=2,
    ) + "\n"
    if path is not None:
        Path(path).write_text(text, newline="")
    return text


#: Fixed CSV column order (point identity, then payload values).
_CSV_COLUMNS = [
    "point", "application", "platform", "replication", "model", "draw",
    "seed", "digest", "method", "n_stages", "n_procs", "replication_counts",
    "m", "period", "mct", "critical", "gap",
]


def export_campaign_csv(
    spec: CampaignSpec,
    store: ResultStore,
    path: str | Path | None = None,
    allow_partial: bool = False,
) -> str:
    """Byte-deterministic CSV artifact (``repr`` floats, ``\\n`` rows).

    Multi-objective specs append one column per extra objective
    (``latency`` / ``reliability``) after the period columns; the
    period-only header and bytes are unchanged.
    """
    rows, missing = campaign_rows(spec, store)
    _require_complete(missing, allow_partial)
    extra = [name for name in spec.objectives if name != "period"]
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(_CSV_COLUMNS + extra)
    for row in rows:
        writer.writerow([
            row["point"], row["application"], row["platform"],
            row["replication"], row["model"], row["draw"], row["seed"],
            row["digest"], row["method"], row["n_stages"], row["n_procs"],
            " ".join(str(c) for c in row["replication_counts"]),
            row["m"], repr(row["period"]), repr(row["mct"]),
            int(row["critical"]), repr(row["gap"]),
        ] + [repr(float(row[name])) for name in extra])
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text, newline="")
    return text
