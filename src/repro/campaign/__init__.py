"""Durable, resumable experiment campaigns.

The layer above :mod:`repro.engine` and :mod:`repro.experiments` that
turns one-shot, in-memory sweeps into declarative campaigns:

* :mod:`~repro.campaign.spec` — :class:`CampaignSpec`, a JSON/TOML-
  loadable grid over applications, platform heterogeneity regimes,
  replication policies and communication models, expanded
  deterministically through crc32-keyed ``SeedSequence`` trees;
* :mod:`~repro.campaign.store` — :class:`ResultStore`, a
  content-addressed SQLite store keyed by a stable digest of
  ``(instance, model, schema version)``: duplicate points are never
  recomputed and interrupted campaigns resume where they stopped;
* :mod:`~repro.campaign.executor` — :func:`run_campaign`, the streaming
  runner that drains a spec through one shared
  :class:`~repro.engine.BatchEngine`, ordering evaluation by topology
  signature *and* sweep adjacency so skeleton caches and Howard warm
  starts hit, plus byte-deterministic JSON/CSV exports; and
  :func:`run_campaign_workers`, the distributed fabric that drains one
  spec with N independent worker processes against one shared WAL store;
* :mod:`~repro.campaign.lease` — :class:`LeaseManager`, the claim/lease
  protocol (TTL expiry, heartbeat renewal, stale-lease reclamation)
  that makes fabric duplicates rare by design;
* :mod:`~repro.campaign.sync` — :func:`push` / :func:`pull` /
  :func:`merge_stores`, content-keyed transport between store files and
  directory remotes so partial campaigns computed anywhere merge
  byte-identically (invalid or conflicting payloads are quarantined,
  never silently merged);
* :mod:`~repro.campaign.report` — :func:`campaign_report_data`,
  per-axis pivots and cross-model deltas over a (possibly merged)
  store, exported through canonical JSON.

Quick start::

    from repro.campaign import CampaignSpec, ResultStore, run_campaign

    spec = CampaignSpec.from_file("campaign.json")   # or .toml
    with ResultStore("results.sqlite") as store:
        report = run_campaign(spec, store)           # resumable
        print(report.evaluated, "new points,", report.hits, "reused")

The ``repro-workflow campaign run/status/export`` CLI wraps the same
calls, and :func:`repro.experiments.runner.run_family` /
:func:`repro.experiments.table2.run_table2` accept a ``store=`` to
route the Table 2 harness through the same cache.
"""

from .executor import (
    CampaignReport,
    FabricReport,
    campaign_rows,
    campaign_status,
    export_campaign_csv,
    export_campaign_json,
    order_for_engine,
    run_campaign,
    run_campaign_worker,
    run_campaign_workers,
)
from .lease import DEFAULT_LEASE_TTL, DEFAULT_TXN_RETRY, Lease, LeaseManager
from .report import (
    campaign_report_data,
    export_campaign_report,
    render_report_text,
)
from .spec import (
    ApplicationAxis,
    CampaignPoint,
    CampaignSpec,
    PlatformAxis,
    ReplicationAxis,
)
from .store import (
    RESULT_SCHEMA_VERSION,
    ResultStore,
    StoreStats,
    instance_digest,
    payload_error,
    payload_from_result,
    record_from_payload,
)
from .sync import (
    DirectoryRemote,
    SyncReport,
    merge_stores,
    open_remote,
    pull,
    push,
)

__all__ = [
    "ApplicationAxis",
    "PlatformAxis",
    "ReplicationAxis",
    "CampaignPoint",
    "CampaignSpec",
    "ResultStore",
    "StoreStats",
    "RESULT_SCHEMA_VERSION",
    "instance_digest",
    "payload_error",
    "payload_from_result",
    "record_from_payload",
    "CampaignReport",
    "FabricReport",
    "run_campaign",
    "run_campaign_worker",
    "run_campaign_workers",
    "order_for_engine",
    "campaign_status",
    "campaign_rows",
    "export_campaign_json",
    "export_campaign_csv",
    "Lease",
    "LeaseManager",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_TXN_RETRY",
    "SyncReport",
    "DirectoryRemote",
    "open_remote",
    "push",
    "pull",
    "merge_stores",
    "campaign_report_data",
    "export_campaign_report",
    "render_report_text",
]
