"""Durable, resumable experiment campaigns.

The layer above :mod:`repro.engine` and :mod:`repro.experiments` that
turns one-shot, in-memory sweeps into declarative campaigns:

* :mod:`~repro.campaign.spec` — :class:`CampaignSpec`, a JSON/TOML-
  loadable grid over applications, platform heterogeneity regimes,
  replication policies and communication models, expanded
  deterministically through crc32-keyed ``SeedSequence`` trees;
* :mod:`~repro.campaign.store` — :class:`ResultStore`, a
  content-addressed SQLite store keyed by a stable digest of
  ``(instance, model, schema version)``: duplicate points are never
  recomputed and interrupted campaigns resume where they stopped;
* :mod:`~repro.campaign.executor` — :func:`run_campaign`, the streaming
  runner that drains a spec through one shared
  :class:`~repro.engine.BatchEngine`, ordering evaluation by topology
  signature *and* sweep adjacency so skeleton caches and Howard warm
  starts hit, plus byte-deterministic JSON/CSV exports.

Quick start::

    from repro.campaign import CampaignSpec, ResultStore, run_campaign

    spec = CampaignSpec.from_file("campaign.json")   # or .toml
    with ResultStore("results.sqlite") as store:
        report = run_campaign(spec, store)           # resumable
        print(report.evaluated, "new points,", report.hits, "reused")

The ``repro-workflow campaign run/status/export`` CLI wraps the same
calls, and :func:`repro.experiments.runner.run_family` /
:func:`repro.experiments.table2.run_table2` accept a ``store=`` to
route the Table 2 harness through the same cache.
"""

from .executor import (
    CampaignReport,
    campaign_rows,
    campaign_status,
    export_campaign_csv,
    export_campaign_json,
    order_for_engine,
    run_campaign,
)
from .spec import (
    ApplicationAxis,
    CampaignPoint,
    CampaignSpec,
    PlatformAxis,
    ReplicationAxis,
)
from .store import (
    RESULT_SCHEMA_VERSION,
    ResultStore,
    StoreStats,
    instance_digest,
    payload_from_result,
    record_from_payload,
)

__all__ = [
    "ApplicationAxis",
    "PlatformAxis",
    "ReplicationAxis",
    "CampaignPoint",
    "CampaignSpec",
    "ResultStore",
    "StoreStats",
    "RESULT_SCHEMA_VERSION",
    "instance_digest",
    "payload_from_result",
    "record_from_payload",
    "CampaignReport",
    "run_campaign",
    "order_for_engine",
    "campaign_status",
    "campaign_rows",
    "export_campaign_json",
    "export_campaign_csv",
]
