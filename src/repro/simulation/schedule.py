"""Per-resource schedules extracted from simulation traces.

Maps every firing of the TPN onto the hardware resources it occupies:

* OVERLAP model — a computation occupies ``P{u}:comp``; a transmission
  occupies both ``P{u}:out`` (sender port) and ``P{v}:in`` (receiver
  port), which is what makes the one-port circuits interact;
* STRICT model — every activity of processor ``u`` occupies the whole
  processor ``P{u}``.

The resulting :class:`ResourceSchedule` objects power the ASCII Gantt
charts (Figures 7 and 12 of the paper) and the busy/idle analysis behind
the "no critical resource" observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.models import CommModel
from ..errors import SimulationError
from .event_sim import SimulationTrace

__all__ = ["BusyInterval", "ResourceSchedule", "extract_schedules"]


@dataclass(frozen=True)
class BusyInterval:
    """One busy interval of a resource.

    Attributes
    ----------
    start, end:
        Time span (``end - start`` is the firing duration).
    dataset:
        Data-set index served by the firing.
    transition:
        Index of the TPN transition.
    label:
        ``S{i} ({dataset})`` for computations, ``F{i} ({dataset})`` for
        transmissions — matching the labels of the paper's Gantt figures.
    """

    start: float
    end: float
    dataset: int
    transition: int
    label: str


@dataclass
class ResourceSchedule:
    """Chronological busy intervals of one hardware resource."""

    resource: str
    intervals: list[BusyInterval] = field(default_factory=list)

    def sort(self) -> None:
        """Order intervals chronologically (stable on ties)."""
        self.intervals.sort(key=lambda iv: (iv.start, iv.end, iv.dataset))

    def check_exclusive(self, tol: float = 1e-9) -> None:
        """Raise when two intervals overlap (resource used twice at once).

        Zero-duration intervals are allowed to share an instant.
        """
        for a, b in zip(self.intervals, self.intervals[1:]):
            if b.start < a.end - tol:
                raise SimulationError(
                    f"resource {self.resource} is used by two firings at "
                    f"once: [{a.start}, {a.end}] ({a.label}) overlaps "
                    f"[{b.start}, {b.end}] ({b.label})"
                )

    def busy_time(self, t0: float, t1: float) -> float:
        """Total busy time within the window ``[t0, t1]``."""
        total = 0.0
        for iv in self.intervals:
            lo, hi = max(iv.start, t0), min(iv.end, t1)
            if hi > lo:
                total += hi - lo
        return total

    def utilization(self, t0: float, t1: float) -> float:
        """Busy fraction within the window ``[t0, t1]``."""
        if t1 <= t0:
            raise SimulationError("utilization window must have positive length")
        return self.busy_time(t0, t1) / (t1 - t0)

    def has_idle_in(self, t0: float, t1: float, tol: float = 1e-9) -> bool:
        """``True`` when the resource is idle at some point of the window."""
        return self.busy_time(t0, t1) < (t1 - t0) * (1.0 - tol)


def extract_schedules(
    trace: SimulationTrace, model: CommModel | str
) -> dict[str, ResourceSchedule]:
    """Build the per-resource schedule map from a simulation trace.

    Returns a dict keyed by resource name (``"P0"``, ``"P0:out"``, ...).
    Every schedule is sorted and exclusivity-checked — overlapping busy
    intervals indicate a modelling bug and raise immediately.
    """
    model = CommModel.parse(model)
    net = trace.net
    schedules: dict[str, ResourceSchedule] = {}
    m = net.n_rows
    for t in net.transitions:
        if t.duration == 0.0:
            # Zero-cost firings occupy no resource time; skip for clarity.
            continue
        prefix = "S" if t.kind == "comp" else "F"
        for k in range(trace.n_firings):
            end = float(trace.completion[k, t.index])
            start = end - t.duration
            dataset = t.row + k * m
            label = f"{prefix}{t.stage_or_file} ({dataset})"
            for res in t.resources(model.overlap):
                sched = schedules.setdefault(res, ResourceSchedule(res))
                sched.intervals.append(
                    BusyInterval(start, end, dataset, t.index, label)
                )
    for sched in schedules.values():
        sched.sort()
        sched.check_exclusive()
    return schedules
