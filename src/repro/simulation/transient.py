"""Transient analysis: when does the periodic regime start?

Max-plus theory guarantees every live TEG becomes *exactly* periodic:
there are ``K0`` (the coupling / transient length) and ``q`` (the
cyclicity) with ``x(k + q) = x(k) + q * lambda`` for all ``k >= K0``.
The paper's Gantt figures display the regime after the transient; this
module measures both constants on the *sweep-completion* sequence (the
max over the selected transitions per firing index — the throughput-
relevant scalar, since uncoupled replicas may keep distinct individual
rates forever), and the test-suite cross-checks the measured cyclicity
against the *predicted* one from
:func:`repro.maxplus.spectral.cyclicity`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..petri.net import TimedEventGraph
from .event_sim import SimulationTrace, simulate

__all__ = ["TransientReport", "analyze_transient"]


@dataclass(frozen=True)
class TransientReport:
    """Measured periodic-regime constants of a net.

    Attributes
    ----------
    coupling_index:
        Smallest firing index ``K0`` from which the exact periodic regime
        holds over the simulated horizon.
    cyclicity:
        Smallest ``q`` with ``x(k + q) = x(k) + q * rate`` for all
        ``k >= K0`` (restricted to the transitions considered).
    rate:
        Per-firing growth ``lambda`` on those transitions.
    horizon:
        Number of firings simulated.
    """

    coupling_index: int
    cyclicity: int
    rate: float
    horizon: int


def analyze_transient(
    net: TimedEventGraph,
    n_firings: int | None = None,
    transitions: list[int] | None = None,
    tol: float = 1e-9,
) -> TransientReport:
    """Measure the transient length and cyclicity of a net.

    Parameters
    ----------
    net:
        The timed event graph.
    n_firings:
        Simulation horizon (default ``max(96, 12 * n_rows)``).
    transitions:
        Restrict the check to these transitions; defaults to the last
        column (the throughput-relevant ones — under OVERLAP, source
        columns may run at their own faster rate forever).
    tol:
        Absolute tolerance on dater equality (scaled by the rate).

    Raises
    ------
    SimulationError
        If no periodic regime is found within the horizon (increase it).
    """
    if n_firings is None:
        n_firings = max(96, 12 * net.n_rows)
    trace: SimulationTrace = simulate(net, n_firings)
    if transitions is None:
        last = net.n_columns - 1
        transitions = [net.transition_at(r, last).index for r in range(net.n_rows)]
    # Sweep-completion sequence: a round-robin sweep completes when its
    # slowest selected transition does.  (Per-transition rates can differ
    # forever on uncoupled replicas — see repro.simulation.steady_state —
    # so the throughput-relevant periodic object is this scalar sequence.)
    x = trace.completion[:, transitions].max(axis=1)
    K = x.shape[0]

    max_q = max(2 * net.n_rows, 8)
    for q in range(1, min(max_q, K // 3) + 1):
        # rate candidate from the tail
        rate = float((x[K - 1] - x[K - 1 - q]) / q)
        scale = max(abs(rate), 1.0)
        # the periodic regime holds at k if x[k+q] == x[k] + q*rate
        diffs = x[q:] - x[:-q] - q * rate
        ok = np.abs(diffs) <= tol * scale * q
        if not ok[-1]:
            continue
        # coupling index: first k from which ok holds for the whole tail
        bad = np.flatnonzero(~ok)
        k0 = 0 if bad.size == 0 else int(bad[-1]) + 1
        if k0 + 2 * q < K:  # regime observed long enough to trust
            return TransientReport(
                coupling_index=k0, cyclicity=q, rate=rate, horizon=K
            )
    raise SimulationError(
        f"no exact periodic regime within {K} firings; the transient is "
        f"longer — increase n_firings"
    )
