"""Empirical period estimation from simulation traces.

In steady state a live TEG is eventually periodic: there are ``q`` and
``K0`` with ``x_t(k + q) = x_t(k) + q * rate_t`` for all ``k >= K0``.
For the *completion* transitions (last column) the common rate equals the
net's critical cycle ratio, so the per-data-set period is
``rate / m`` — the quantity the analytic solvers must reproduce.

Upstream transitions may fire *faster* than the critical rate under the
OVERLAP model (nothing feeds back into the first columns; sources can run
ahead), which is why measurement is pinned to the last column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..petri.net import TimedEventGraph
from .event_sim import SimulationTrace, simulate

__all__ = ["PeriodEstimate", "estimate_period", "measure_period"]


@dataclass(frozen=True)
class PeriodEstimate:
    """Empirical period measurement.

    Attributes
    ----------
    period:
        Per-data-set period estimate (time between completions).
    rate:
        Inter-firing time of last-column transitions (= ``period * m``).
    n_firings:
        Simulation horizon used.
    exact:
        ``True`` when an exact periodic regime was detected (successive
        windows agree to machine precision), ``False`` for a plain
        asymptotic-slope estimate.
    """

    period: float
    rate: float
    n_firings: int
    exact: bool


def measure_period(trace: SimulationTrace, burn_in_fraction: float = 0.5) -> PeriodEstimate:
    """Estimate the per-data-set period from an existing trace.

    Uses the completion times of the last column only.  The estimate is
    the average slope over the post-burn-in window; it is flagged
    ``exact`` when two consecutive measurement windows agree to within
    float round-off, which happens as soon as the transient has died out.
    """
    net = trace.net
    K = trace.n_firings
    if K < 4:
        raise SimulationError("need at least 4 firings to estimate a period")
    m = net.n_rows
    last_col = net.n_columns - 1
    ids = np.array([net.transition_at(r, last_col).index for r in range(m)])

    x = trace.completion[:, ids]  # (K, m)
    # Sweep k (data sets k*m .. k*m + m - 1) completes when its slowest
    # row does.  (Under OVERLAP a replicated last stage leaves rows
    # uncoupled, so rows genuinely differ in rate; the system period is
    # paced by the critical one.)
    sweep = x.max(axis=1)
    scale = max(float(sweep[-1] - sweep[0]) / max(K - 1, 1), 1e-12)

    # Timed event graphs are eventually periodic: for some cyclicity q,
    # sweep[k + q] - sweep[k] is a constant q * rate.  Detect the exact
    # regime by matching two consecutive q-windows at the tail.
    max_q = min(K // 3, max(2 * m, 16))
    for q in range(1, max_q + 1):
        d1 = float(sweep[K - 1] - sweep[K - 1 - q])
        d2 = float(sweep[K - 1 - q] - sweep[K - 1 - 2 * q])
        if abs(d1 - d2) <= 1e-9 * max(scale * q, 1.0):
            rate = d1 / q
            return PeriodEstimate(period=rate / m, rate=rate, n_firings=K,
                                  exact=True)

    # Transient not over: fall back to the asymptotic slope.
    k0 = max(1, int(K * burn_in_fraction))
    rate = float(sweep[K - 1] - sweep[k0]) / (K - 1 - k0)
    return PeriodEstimate(period=rate / m, rate=rate, n_firings=K, exact=False)


def estimate_period(
    net: TimedEventGraph,
    n_firings: int | None = None,
    burn_in_fraction: float = 0.5,
) -> PeriodEstimate:
    """Simulate and estimate the per-data-set period of a net.

    Parameters
    ----------
    net:
        The timed event graph.
    n_firings:
        Horizon; defaults to ``max(64, 8 * n_rows)`` firings which is
        enough for the transient of the nets used in the paper's
        experiments (the estimate reports whether it hit the exact regime).
    """
    if n_firings is None:
        n_firings = max(64, 8 * net.n_rows)
    trace = simulate(net, n_firings)
    return measure_period(trace, burn_in_fraction=burn_in_fraction)
