"""Discrete-event simulation, schedules and Gantt rendering."""

from .event_sim import SimulationTrace, simulate
from .gantt import render_gantt, resource_order, utilization_table
from .schedule import BusyInterval, ResourceSchedule, extract_schedules
from .steady_state import PeriodEstimate, estimate_period, measure_period
from .svg import render_gantt_svg
from .transient import TransientReport, analyze_transient

__all__ = [
    "simulate",
    "SimulationTrace",
    "estimate_period",
    "measure_period",
    "PeriodEstimate",
    "extract_schedules",
    "ResourceSchedule",
    "BusyInterval",
    "render_gantt",
    "resource_order",
    "utilization_table",
    "render_gantt_svg",
    "analyze_transient",
    "TransientReport",
]
