"""Standalone SVG rendering of schedules (publication-quality Figure 7/12).

No external dependency — the SVG is assembled as text.  Each resource
gets a horizontal lane; busy intervals become colored rectangles labeled
with the data set they serve (computations and transmissions in
different hues), with a time axis and optional period separators like
the dashed lines delimiting "Period 0 / 1 / 2" in the paper's figures.
"""

from __future__ import annotations

import html
from pathlib import Path

from .schedule import ResourceSchedule

__all__ = ["render_gantt_svg"]

_COMP_FILL = "#4e79a7"
_COMM_FILL = "#f28e2b"
_LANE_BG = "#f4f4f4"


def render_gantt_svg(
    schedules: dict[str, ResourceSchedule],
    t0: float,
    t1: float,
    resources: list[str] | None = None,
    width: int = 1200,
    lane_height: int = 26,
    period_marks: list[float] | None = None,
    title: str = "",
    path: str | Path | None = None,
) -> str:
    """Render schedules over ``[t0, t1]`` as an SVG document.

    Parameters
    ----------
    schedules:
        Output of :func:`repro.simulation.schedule.extract_schedules`.
    t0, t1:
        Time window.
    resources:
        Lane order (defaults to sorted keys).
    width, lane_height:
        Pixel geometry.
    period_marks:
        Time stamps where dashed vertical period separators are drawn.
    title:
        Optional chart title.
    path:
        When given, the SVG text is also written to this file.
    """
    if t1 <= t0:
        raise ValueError("svg window must have positive length")
    if resources is None:
        resources = sorted(schedules)
    label_w = 90
    chart_w = width - label_w - 10
    top = 40 if title else 24
    height = top + lane_height * len(resources) + 30
    sx = chart_w / (t1 - t0)

    def x(t: float) -> float:
        return label_w + (t - t0) * sx

    out: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="Helvetica, sans-serif" '
        f'font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        out.append(
            f'<text x="{width / 2:.1f}" y="18" text-anchor="middle" '
            f'font-size="14">{html.escape(title)}</text>'
        )

    # lanes
    for i, res in enumerate(resources):
        y = top + i * lane_height
        out.append(
            f'<rect x="{label_w}" y="{y}" width="{chart_w}" '
            f'height="{lane_height - 4}" fill="{_LANE_BG}"/>'
        )
        out.append(
            f'<text x="{label_w - 6}" y="{y + lane_height / 2 + 2:.1f}" '
            f'text-anchor="end">{html.escape(res)}</text>'
        )
        sched = schedules.get(res)
        if sched is None:
            continue
        for iv in sched.intervals:
            if iv.end <= t0 or iv.start >= t1:
                continue
            a, b = max(iv.start, t0), min(iv.end, t1)
            fill = _COMM_FILL if iv.label.startswith("F") else _COMP_FILL
            w = max(1.0, (b - a) * sx)
            out.append(
                f'<rect x="{x(a):.2f}" y="{y + 1}" width="{w:.2f}" '
                f'height="{lane_height - 6}" fill="{fill}" '
                f'stroke="white" stroke-width="0.5">'
                f"<title>{html.escape(iv.label)}: "
                f"[{iv.start:g}, {iv.end:g}]</title></rect>"
            )
            if w > 7 * len(iv.label):
                out.append(
                    f'<text x="{x(a) + w / 2:.2f}" '
                    f'y="{y + lane_height / 2 + 2:.1f}" fill="white" '
                    f'text-anchor="middle" font-size="9">'
                    f"{html.escape(iv.label)}</text>"
                )

    # period separators
    for mark in period_marks or []:
        if t0 <= mark <= t1:
            out.append(
                f'<line x1="{x(mark):.2f}" y1="{top - 4}" '
                f'x2="{x(mark):.2f}" y2="{height - 28}" stroke="#888" '
                f'stroke-dasharray="5,4"/>'
            )

    # time axis
    axis_y = top + lane_height * len(resources) + 4
    out.append(
        f'<line x1="{label_w}" y1="{axis_y}" x2="{label_w + chart_w}" '
        f'y2="{axis_y}" stroke="black"/>'
    )
    for i in range(6):
        t = t0 + (t1 - t0) * i / 5
        out.append(
            f'<line x1="{x(t):.2f}" y1="{axis_y}" x2="{x(t):.2f}" '
            f'y2="{axis_y + 4}" stroke="black"/>'
        )
        out.append(
            f'<text x="{x(t):.2f}" y="{axis_y + 16}" '
            f'text-anchor="middle">{t:.6g}</text>'
        )
    out.append("</svg>")
    text = "\n".join(out)
    if path is not None:
        Path(path).write_text(text)
    return text
