"""Earliest-firing simulation of workflow TPNs (dater recursion).

A timed event graph evolves by the max-plus *dater* equations: writing
``x_t(k)`` for the completion time of the ``k``-th firing of transition
``t`` (``k = 0, 1, ...``),

::

    x_t(k) = d_t + max over places (s -> t, tok) of x_s(k - tok)

with ``x_s(j) = 0`` for ``j < 0`` (initial tokens are available at time
0, "any resource before its first use is ready, only waiting for the
input file").  Places with zero tokens couple firings of the *same*
index ``k``; because the 0-token subgraph of a live net is acyclic the
recursion is evaluated level by level of that DAG, each level as one
vectorized scatter-max.

The simulator yields exact firing times for any horizon — it is the
library's ground truth: the analytic period (critical cycle ratio) must
match the asymptotic firing rate measured here, and per-resource busy
intervals must never overlap (both are property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..petri.net import TimedEventGraph

__all__ = ["SimulationTrace", "simulate"]


@dataclass(frozen=True)
class SimulationTrace:
    """Firing times of every transition over a finite horizon.

    Attributes
    ----------
    net:
        The simulated net.
    completion:
        Array of shape ``(n_firings, n_transitions)``:
        ``completion[k, t]`` is the completion time of the ``k``-th firing
        of transition ``t``.  Start times are ``completion - durations``.
    durations:
        Per-transition firing durations (copy of the net's).
    """

    net: TimedEventGraph
    completion: np.ndarray
    durations: np.ndarray

    @property
    def n_firings(self) -> int:
        """Number of simulated firings per transition."""
        return int(self.completion.shape[0])

    def start(self, k: int, t: int) -> float:
        """Start time of the ``k``-th firing of transition ``t``."""
        return float(self.completion[k, t] - self.durations[t])

    def dataset_of_firing(self, k: int, t: int) -> int:
        """Data-set index processed by the ``k``-th firing of ``t``.

        Row ``j`` of the net serves data sets ``j, j + m, j + 2m, ...`` —
        the ``k``-th firing of a row-``j`` transition handles data set
        ``j + k * m``.
        """
        return self.net.transitions[t].row + k * self.net.n_rows

    def completion_times_of_datasets(self) -> np.ndarray:
        """Completion time of each data set, in data-set order.

        Data set ``j + k*m`` completes when the last-column transition of
        row ``j`` finishes its ``k``-th firing.
        """
        m = self.net.n_rows
        last_col = self.net.n_columns - 1
        ids = [self.net.transition_at(r, last_col).index for r in range(m)]
        return self.completion[:, ids].reshape(-1)


def _token_levels(net: TimedEventGraph) -> list[np.ndarray]:
    """Group transitions into levels of the 0-token DAG.

    Level ``L`` contains transitions all of whose 0-token predecessors
    live in levels ``< L``; evaluating levels in order makes every
    same-index dependency available.
    """
    n = net.n_transitions
    indeg = np.zeros(n, dtype=np.int64)
    adj: list[list[int]] = [[] for _ in range(n)]
    for p in net.places:
        if p.tokens == 0:
            adj[p.src].append(p.dst)
            indeg[p.dst] += 1
    level = np.zeros(n, dtype=np.int64)
    queue = [int(v) for v in np.flatnonzero(indeg == 0)]
    head = 0
    while head < len(queue):
        v = queue[head]
        head += 1
        for w in adj[v]:
            level[w] = max(level[w], level[v] + 1)
            indeg[w] -= 1
            if indeg[w] == 0:
                queue.append(w)
    if head != n:
        raise SimulationError(
            "net is not live (token-free cycle); cannot simulate"
        )
    n_levels = int(level.max()) + 1 if n else 0
    return [np.flatnonzero(level == lv) for lv in range(n_levels)]


def simulate(
    net: TimedEventGraph,
    n_firings: int,
    release_period: float | None = None,
) -> SimulationTrace:
    """Simulate ``n_firings`` firings of every transition.

    Parameters
    ----------
    net:
        A live timed event graph (tokens in {0, 1, 2, ...}).
    n_firings:
        Horizon: number of firings computed per transition (>= 1).
    release_period:
        When given, data set ``j`` is only *released* to the pipeline at
        time ``j * release_period`` — the first-column computation of
        data set ``j`` cannot start earlier.  ``None`` (default) is the
        saturated regime where all data sets are available at time 0.
        Used by :mod:`repro.core.latency` for paced-injection studies.

    Returns
    -------
    SimulationTrace
        Exact completion times under earliest-firing semantics.
    """
    if n_firings < 1:
        raise SimulationError("n_firings must be >= 1")
    if release_period is not None and release_period < 0:
        raise SimulationError("release_period must be >= 0")
    n = net.n_transitions
    durations = np.array([t.duration for t in net.transitions])
    m = net.n_rows
    first_col = np.array(
        [net.transition_at(r, 0).index for r in range(m)], dtype=np.int64
    )

    # Edge arrays grouped by token count.
    src_by_tok: dict[int, np.ndarray] = {}
    dst_by_tok: dict[int, np.ndarray] = {}
    for tok in sorted({p.tokens for p in net.places}):
        idx = [(p.src, p.dst) for p in net.places if p.tokens == tok]
        src_by_tok[tok] = np.array([s for s, _ in idx], dtype=np.int64)
        dst_by_tok[tok] = np.array([d for _, d in idx], dtype=np.int64)

    levels = _token_levels(net)
    # Restrict the 0-token scatter to each level's incoming edges.
    zero_src = src_by_tok.get(0, np.empty(0, dtype=np.int64))
    zero_dst = dst_by_tok.get(0, np.empty(0, dtype=np.int64))
    level_of = np.zeros(n, dtype=np.int64)
    for lv, members in enumerate(levels):
        level_of[members] = lv
    zero_edges_by_level = [
        np.flatnonzero(level_of[zero_dst] == lv) for lv in range(len(levels))
    ]

    completion = np.empty((n_firings, n))
    for k in range(n_firings):
        # Start from the contribution of token-carrying places.
        ready = np.zeros(n)
        if release_period is not None:
            # data set j + k*m enters the pipeline at (j + k*m) * T
            datasets = np.arange(m) + k * m
            ready[first_col] = datasets * release_period
        for tok, srcs in src_by_tok.items():
            if tok == 0 or srcs.size == 0:
                continue
            if k - tok >= 0:
                np.maximum.at(ready, dst_by_tok[tok], completion[k - tok, srcs])
            # else: the initial token is available at time 0 (no-op).
        # Then sweep the 0-token DAG level by level.
        x = ready + durations
        for lv in range(len(levels)):
            if lv > 0:
                eidx = zero_edges_by_level[lv]
                if eidx.size:
                    upd = np.full(n, -np.inf)
                    np.maximum.at(upd, zero_dst[eidx], x[zero_src[eidx]])
                    members = levels[lv]
                    x[members] = np.maximum(
                        x[members], upd[members] + durations[members]
                    )
        completion[k] = x
    return SimulationTrace(net=net, completion=completion, durations=durations)
