"""ASCII Gantt charts of simulated schedules (Figures 7 and 12).

Renders per-resource busy intervals over a time window as fixed-width
text.  The resource ordering mirrors the paper's figures: for each
processor in pipeline order — input port, CPU, output port (OVERLAP
model) or the single processor row (STRICT model).
"""

from __future__ import annotations

from ..core.instance import Instance
from ..core.models import CommModel
from .schedule import ResourceSchedule

__all__ = ["resource_order", "render_gantt", "utilization_table"]


def resource_order(inst: Instance, model: CommModel | str) -> list[str]:
    """Resource display order matching Figure 7's row layout.

    Processors appear in stage-then-replica order; under OVERLAP each
    contributes its input port, CPU and output port (when they exist).
    """
    model = CommModel.parse(model)
    n = inst.n_stages
    order: list[str] = []
    for stage in range(n):
        for u in inst.mapping.processors_of(stage):
            if not model.overlap:
                order.append(f"P{u}")
                continue
            if stage > 0:
                order.append(f"P{u}:in")
            order.append(f"P{u}:comp")
            if stage < n - 1:
                order.append(f"P{u}:out")
    return order


def render_gantt(
    schedules: dict[str, ResourceSchedule],
    t0: float,
    t1: float,
    width: int = 100,
    resources: list[str] | None = None,
) -> str:
    """Render schedules over ``[t0, t1]`` as an ASCII chart.

    Each resource becomes one line; busy spans are drawn as ``#`` blocks
    with the interval label (``S1 (4)``, ``F0 (2)``, ...) embedded when it
    fits.  Idle time is drawn as ``.`` — the visual signature of the
    paper's "all resources have idle times" examples.

    Parameters
    ----------
    schedules:
        Output of :func:`repro.simulation.schedule.extract_schedules`.
    t0, t1:
        Time window (e.g. one or two periods into the steady state).
    width:
        Chart width in characters.
    resources:
        Display order; defaults to sorted schedule keys (use
        :func:`resource_order` for the paper's layout).
    """
    if t1 <= t0:
        raise ValueError("gantt window must have positive length")
    if resources is None:
        resources = sorted(schedules)
    name_w = max((len(r) for r in resources), default=4) + 1
    scale = width / (t1 - t0)

    def col(t: float) -> int:
        return min(width, max(0, int(round((t - t0) * scale))))

    lines = [
        f"{'time':<{name_w}}|{_ruler(t0, t1, width)}|",
    ]
    for res in resources:
        row = ["."] * width
        sched = schedules.get(res)
        if sched is not None:
            for iv in sched.intervals:
                if iv.end <= t0 or iv.start >= t1:
                    continue
                a, b = col(iv.start), col(iv.end)
                if b <= a:
                    b = min(width, a + 1)
                for x in range(a, b):
                    row[x] = "#"
                label = iv.label
                if b - a >= len(label) + 2:
                    start_at = a + ((b - a) - len(label)) // 2
                    for i, ch in enumerate(label):
                        row[start_at + i] = ch
        lines.append(f"{res:<{name_w}}|{''.join(row)}|")
    return "\n".join(lines)


def _ruler(t0: float, t1: float, width: int) -> str:
    """A sparse time ruler with ~5 tick labels."""
    row = [" "] * width
    n_ticks = 5
    for i in range(n_ticks + 1):
        t = t0 + (t1 - t0) * i / n_ticks
        label = f"{t:.6g}"
        pos = min(width - len(label), int(round(width * i / n_ticks)))
        for j, ch in enumerate(label):
            if 0 <= pos + j < width and row[pos + j] == " ":
                row[pos + j] = ch
    return "".join(row)


def utilization_table(
    schedules: dict[str, ResourceSchedule],
    t0: float,
    t1: float,
    resources: list[str] | None = None,
) -> str:
    """Tabulate busy fraction per resource over a window.

    A row with utilization < 1 is a resource with idle time; the paper's
    Examples A-strict and B show **every** row below 1.
    """
    if resources is None:
        resources = sorted(schedules)
    name_w = max((len(r) for r in resources), default=4) + 1
    lines = [f"{'resource':<{name_w}} busy%   busy-time (window {t0:g}..{t1:g})"]
    for res in resources:
        sched = schedules.get(res)
        busy = sched.busy_time(t0, t1) if sched else 0.0
        frac = busy / (t1 - t0)
        lines.append(f"{res:<{name_w}} {100 * frac:6.2f}  {busy:g}")
    return "\n".join(lines)
