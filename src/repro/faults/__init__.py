"""Deterministic fault injection + the resilience half that survives it.

The campaign fabric's robustness layer, in two symmetric halves:

* **Chaos in** — :data:`FAULTS`, a zero-cost-when-disarmed injection
  plane (the telemetry collector's ``if enabled`` pattern) with named
  sites registered through the store, lease, sync, executor and engine
  layers.  A :class:`FaultPlan` — written explicitly or expanded from a
  crc32-keyed seed — schedules typed faults at those sites: locked
  databases, full disks, torn writes, clock jumps, stalls, real
  SIGKILLs.  Same plan, same workload → same chaos, byte-for-byte.
* **Resilience out** — :class:`RetryPolicy` (bounded exponential
  backoff, deterministic seeded jitter, per-operation budgets) adopted
  by store connect/commit, lease transactions and sync verbs; and the
  degradation ladder: retry → spill committed results to a local
  :class:`SpillJournal` → :func:`heal` replays them into the store
  idempotently (``repro-workflow store heal``).

Every fault raised, retry spent, spill written and heal replayed is
counted through :mod:`repro.telemetry` as diagnostic counters; armed or
not, the plane never touches stored values, so all byte-determinism
contracts hold whenever the faults themselves don't kill the run — and
after crashes, resume + heal restores the exact same bytes.
"""

from __future__ import annotations

from .core import (
    FAULT_KINDS,
    FAULTS,
    INJECTION_SITES,
    FaultEvent,
    FaultPlan,
    FaultPlane,
    Site,
)
from .journal import SpillJournal, heal
from .retry import DEFAULT_RETRY, RetryPolicy, pause

__all__ = [
    "FAULT_KINDS",
    "FAULTS",
    "INJECTION_SITES",
    "FaultEvent",
    "FaultPlan",
    "FaultPlane",
    "Site",
    "SpillJournal",
    "heal",
    "DEFAULT_RETRY",
    "RetryPolicy",
    "pause",
]
