"""Bounded, deterministic retry/backoff — the production half of the plane.

:class:`RetryPolicy` wraps an operation in bounded exponential backoff
with **deterministic seeded jitter**: the delay schedule for a given
operation key is a pure function of ``(key, policy)``, derived through
``crc32`` like every other seed in this repo, so two runs of the same
campaign retry at the exact same simulated offsets and a chaos schedule
replays byte-for-byte.  The *budget* field caps the total planned sleep
per operation — a per-operation timeout that needs no wall-clock read
(detlint DET105 stays clean): when the planned delays are spent, the
last error propagates to the caller, which is the campaign fabric's cue
to degrade gracefully (spill to a :class:`~repro.faults.SpillJournal`).

This module is also the repo's one sanctioned home for ``time.sleep``:
detlint DET109 flags bare sleeps and unbounded retry loops everywhere
else under ``src/``, so ad-hoc polling can't silently reappear —
production code routes through :func:`pause` or a policy instead.
"""

from __future__ import annotations

import random
import time
import zlib
from dataclasses import dataclass
from typing import Callable, TypeVar

from ..errors import ValidationError
from ..telemetry import TELEMETRY

__all__ = ["RetryPolicy", "DEFAULT_RETRY", "pause"]

_T = TypeVar("_T")


def pause(seconds: float) -> None:
    """Sleep ``seconds`` (no-op for zero/negative durations).

    The single sanctioned sleep primitive: fabric polling, retry
    backoff and injected stalls all funnel through here, so every
    deliberate delay in the system is greppable and lintable.
    """
    if seconds > 0.0:
        time.sleep(seconds)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic seeded jitter.

    Attributes
    ----------
    attempts:
        Maximum tries (first call included); ``attempts=1`` disables
        retrying entirely.
    base_delay:
        Delay before the first retry (seconds); retry ``i`` waits
        ``base_delay * factor**i``, capped at ``max_delay``.
    factor:
        Exponential growth factor (>= 1).
    max_delay:
        Ceiling for one delay (seconds).
    budget:
        Cap on the *total* planned sleep per operation (seconds) — the
        per-operation timeout.  Delays are truncated so their sum never
        exceeds it; a zero remainder means no further retries.
    jitter_seed:
        Mixed (XOR) into each operation key's crc32 before drawing
        jitter, so independent policies decorrelate without losing
        replayability.

    Examples
    --------
    >>> policy = RetryPolicy(attempts=3, base_delay=0.1, jitter_seed=7)
    >>> policy.delays("op") == policy.delays("op")   # deterministic
    True
    >>> len(policy.delays("op"))
    2
    """

    attempts: int = 4
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 1.0
    budget: float = 5.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValidationError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.budget < 0:
            raise ValidationError("retry delays and budget must be >= 0")
        if self.factor < 1.0:
            raise ValidationError(f"factor must be >= 1, got {self.factor}")

    def delays(self, key: str) -> list[float]:
        """The full backoff schedule for one operation key.

        ``attempts - 1`` entries (one per retry), each jittered into
        ``[0.5, 1.0] * nominal`` by an RNG seeded from
        ``crc32(key) ^ jitter_seed``, truncated to fit :attr:`budget`.
        Pure: calling this never sleeps and never mutates the policy.
        """
        rng = random.Random(zlib.crc32(key.encode("utf-8")) ^ self.jitter_seed)
        out: list[float] = []
        total = 0.0
        for i in range(self.attempts - 1):
            nominal = min(self.max_delay, self.base_delay * self.factor**i)
            delay = nominal * (0.5 + 0.5 * rng.random())
            if total + delay > self.budget:
                delay = self.budget - total
            if delay <= 0.0:
                break
            out.append(delay)
            total += delay
        return out

    def run(
        self,
        key: str,
        fn: Callable[[], _T],
        retryable: tuple[type[BaseException], ...],
    ) -> _T:
        """Call ``fn`` under this policy; return its first success.

        Only exceptions of the ``retryable`` types are retried; anything
        else propagates immediately.  When the schedule (or budget) is
        exhausted the last retryable error propagates unchanged, so
        callers keep the original typed exception — e.g.
        :class:`~repro.errors.StoreUnavailableError` with its path and
        cause — for their own degradation decisions.  Retries and
        give-ups are counted as diagnostic telemetry (``retry.attempts``
        / ``retry.exhausted``); the zero-failure fast path adds nothing.
        """
        schedule: list[float] | None = None
        attempt = 0
        while True:
            try:
                return fn()
            except retryable:
                attempt += 1
                if schedule is None:
                    schedule = self.delays(key)
                if attempt > len(schedule):
                    if TELEMETRY.enabled:
                        TELEMETRY.count("retry.exhausted")
                    raise
                if TELEMETRY.enabled:
                    TELEMETRY.count("retry.attempts")
                pause(schedule[attempt - 1])


#: Shared default policy for store/lease/sync adoption sites.  Four
#: tries over ~0.5 s of backoff: enough to ride out WAL-lock bursts and
#: short stalls, short enough that a genuinely dead store fails fast
#: and the fabric moves on to spilling.
DEFAULT_RETRY = RetryPolicy(attempts=4, base_delay=0.05, max_delay=0.4, budget=2.0)
