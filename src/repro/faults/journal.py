"""Write-ahead spill journal + idempotent heal: the degradation ladder.

When a fabric worker has results committed in memory but the store is
unreachable past its retry budget, losing the work or crashing the
campaign are both wrong — evaluation is the expensive part.  Instead
the worker **spills** each payload to a local, append-only journal
directory with the exact layout of a sync directory remote
(``objects/<digest[:2]>/<digest>.json``, write-then-rename, exact
canonical bytes) and keeps draining: the campaign degrades to
per-worker progress instead of dying.

``repro-workflow store heal <store> <journal>`` later replays the
journal through :func:`repro.campaign.sync.pull` — the same merge
algebra as any sync, so healing inherits its pinned properties:
idempotent (healing twice changes nothing), commutative with
concurrent direct commits (content addressing leaves nothing
order-dependent), convergent after interruption (a heal killed mid-way
replays the remainder on retry), and never silently merging — a spill
entry torn by the very fault that forced the spill is quarantined, and
the digest is simply recomputed by the next campaign run.

Spills and heals are counted as diagnostic telemetry
(``journal.spills``, ``journal.heal_replayed``, ``journal.heal_skipped``).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..telemetry import TELEMETRY
from .core import FAULTS

if TYPE_CHECKING:
    from ..campaign.store import ResultStore
    from ..campaign.sync import SyncReport

__all__ = ["SpillJournal", "heal"]


class SpillJournal:
    """A local write-ahead journal of payloads the store never received.

    Layout-compatible with :class:`repro.campaign.sync.DirectoryRemote`
    (that *is* the reuse: heal opens the journal as a directory remote),
    but writes tolerate concurrent spillers — the temp name carries the
    pid — and are themselves an injection site, so chaos schedules can
    tear a spill mid-write and prove heal quarantines the wreckage.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _object_path(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / f"{digest}.json"

    def spill(self, digest: str, payload_text: str) -> bool:
        """Journal one payload; ``False`` if the digest is already spilled.

        Append-only and content-addressed like the store itself: equal
        digests carry equal bytes, so the first spill wins and repeats
        are no-ops — a worker retrying a failed chunk cannot duplicate.
        """
        text = payload_text
        if FAULTS.enabled:
            text = FAULTS.mangle("journal.spill-write", text)
        path = self._object_path(digest)
        if path.exists():
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{digest}.{os.getpid()}.tmp"
        tmp.write_text(text, newline="")
        tmp.replace(path)
        if TELEMETRY.enabled:
            TELEMETRY.count("journal.spills")
        return True

    def digests(self) -> list[str]:
        """All spilled digests, sorted (stable)."""
        return [digest for digest, _ in self.items_text()]

    def items_text(self) -> Iterator[tuple[str, str]]:
        """All ``(digest, payload_text)`` pairs, digest-ordered."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for path in sorted(objects.glob("*/*.json")):
            yield path.stem, path.read_text()

    def __len__(self) -> int:
        return sum(1 for _ in self.items_text())


def heal(store: ResultStore, journal: str | Path, strict: bool = False) -> SyncReport:
    """Replay a spill journal into ``store`` idempotently.

    A thin, counted wrapper over :func:`repro.campaign.sync.pull`: valid
    entries merge (or skip, when a retry or another worker already
    landed them), torn entries quarantine with a reason, and the journal
    itself is never mutated — re-running heal is always safe, which is
    what makes an interrupted heal converge on retry.  A missing or
    empty journal heals to a clean no-op report.
    """
    from ..campaign.sync import SyncReport as _SyncReport
    from ..campaign.sync import pull

    root = Path(journal)
    if not root.is_dir():
        return _SyncReport(source=str(journal), dest=store.path)
    report = pull(store, f"{root}{os.sep}", strict=strict)
    if TELEMETRY.enabled:
        TELEMETRY.count("journal.heal_replayed", report.merged)
        TELEMETRY.count("journal.heal_skipped", report.skipped + report.repaired)
    return report
