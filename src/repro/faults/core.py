"""The fault plane: seeded, replayable chaos at named injection sites.

Production code registers **injection sites** — named points where the
real system can fail (a store commit, a lease transaction, an object
write) — and consults the module singleton :data:`FAULTS` behind an
``if FAULTS.enabled`` guard, exactly like the telemetry collector's
``if TELEMETRY.enabled`` pattern: one attribute read on the hot path
when disarmed, nothing else.  When a test or a chaos-soak run **arms**
the plane with a :class:`FaultPlan`, each site counts its hits and
fires the plan's scheduled faults: typed exceptions
(``sqlite3.OperationalError``, ``OSError``/``ENOSPC``), partial-write
truncation, injected clock jumps, latency stalls, or a real process
SIGKILL at protocol barriers.

Everything is deterministic.  A plan is either written out explicitly
(tuples of :class:`FaultEvent`) or expanded by :meth:`FaultPlan.expand`
from a crc32-keyed seed; hit counts are plan-relative and advance only
at armed sites; jitter, stalls and jumps carry their parameters in the
plan.  Re-running the same plan against the same workload replays the
same chaos schedule byte-for-byte, which is what lets the chaos-soak CI
job assert byte-identical exports against an undisturbed reference.

Every fault that fires is counted through :mod:`repro.telemetry` as
diagnostic (schedule-dependent) counters ``faults.injected`` and
``faults.injected.<kind>`` — never contract counters, because a chaos
schedule is an input, not a property of the workload.
"""

from __future__ import annotations

import errno
import os
import random
import signal
import sqlite3
import zlib
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..errors import ValidationError
from ..telemetry import TELEMETRY
from .retry import pause

__all__ = [
    "FAULT_KINDS",
    "FAULTS",
    "FaultEvent",
    "FaultPlan",
    "FaultPlane",
    "INJECTION_SITES",
    "Site",
]

#: Every fault kind the plane can inject.  ``operational`` raises
#: ``sqlite3.OperationalError`` (a locked database), ``enospc`` raises
#: ``OSError(ENOSPC)`` (disk full), ``truncate`` cuts a payload text in
#: half mid-write (a torn write), ``clock-jump`` shifts an injected
#: clock by ``param`` seconds (NTP step / VM resume), ``stall`` sleeps
#: ``param`` seconds (a hung syscall or GC pause), and ``sigkill``
#: kills the current process outright.
FAULT_KINDS: tuple[str, ...] = (
    "operational",
    "enospc",
    "truncate",
    "clock-jump",
    "stall",
    "sigkill",
)

#: Kinds that raise an exception when they fire (the retryable ones).
_RAISING_KINDS = frozenset({"operational", "enospc"})


@dataclass(frozen=True)
class Site:
    """One registered injection site.

    ``name`` is the stable identifier production code passes to
    :meth:`FaultPlane.hit` / :meth:`FaultPlane.mangle` /
    :meth:`FaultPlane.skew`; ``module`` is the repo-relative source file
    (under ``src/repro/``) that consults it — ``tools/check_docs.py``
    verifies both that the ARCHITECTURE §9 table matches this registry
    and that each site literal really appears in its module; ``kinds``
    are the fault kinds that make sense at the site (plan validation
    rejects the rest).
    """

    name: str
    module: str
    kinds: tuple[str, ...]


_SITE_DEFS: tuple[Site, ...] = (
    Site("store.connect", "campaign/store.py", ("operational", "stall")),
    Site("store.commit", "campaign/store.py", ("operational", "enospc", "stall")),
    Site("store.put", "campaign/store.py", ("operational",)),
    Site("lease.begin", "campaign/lease.py", ("operational", "stall")),
    Site("lease.renew", "campaign/lease.py", ("stall",)),
    Site("lease.clock", "campaign/lease.py", ("clock-jump",)),
    Site("sync.object-write", "campaign/sync.py", ("enospc", "truncate")),
    Site("sync.merge-row", "campaign/sync.py", ("operational",)),
    Site("engine.evaluate", "engine/batch.py", ("stall",)),
    Site("worker.after-claim", "campaign/executor.py", ("sigkill",)),
    Site("worker.pre-release", "campaign/executor.py", ("sigkill",)),
    Site("worker.after-release", "campaign/executor.py", ("sigkill",)),
    Site("journal.spill-write", "faults/journal.py", ("enospc", "truncate")),
)

#: The machine-readable injection-site registry (name → :class:`Site`).
#: ARCHITECTURE §9's site table is validated against this dict, so
#: adding a site here without documenting it fails the docs CI job.
INJECTION_SITES: dict[str, Site] = {site.name: site for site in _SITE_DEFS}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *kind* fires at hits ``at .. at+repeat-1``.

    ``at`` is the 1-based hit count of ``site`` at which the fault first
    fires; ``repeat`` keeps it firing for that many consecutive hits
    (e.g. long enough to exhaust a retry budget and force a spill).
    ``param`` carries the kind-specific magnitude: stall duration or
    clock-jump offset in seconds, ignored elsewhere.
    """

    site: str
    kind: str
    at: int = 1
    param: float = 0.0
    repeat: int = 1

    def __post_init__(self) -> None:
        site = INJECTION_SITES.get(self.site)
        if site is None:
            raise ValidationError(
                f"unknown injection site {self.site!r}; registered sites: "
                f"{', '.join(sorted(INJECTION_SITES))}"
            )
        if self.kind not in site.kinds:
            raise ValidationError(
                f"fault kind {self.kind!r} is not valid at site "
                f"{self.site!r} (supported: {', '.join(site.kinds)})"
            )
        if self.at < 1:
            raise ValidationError(f"fault `at` must be >= 1, got {self.at}")
        if self.repeat < 1:
            raise ValidationError(f"fault `repeat` must be >= 1, got {self.repeat}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "at": self.at,
            "param": self.param,
            "repeat": self.repeat,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        return cls(
            site=str(data["site"]),
            kind=str(data["kind"]),
            at=int(data.get("at", 1)),
            param=float(data.get("param", 0.0)),
            repeat=int(data.get("repeat", 1)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A replayable chaos schedule: an ordered tuple of fault events.

    Plans are plain frozen data — picklable across the fabric's worker
    process boundary and JSON-serializable via :meth:`to_dict`, so the
    exact schedule that broke a campaign can be attached to a bug
    report and replayed.
    """

    events: tuple[FaultEvent, ...] = ()

    @classmethod
    def single(
        cls,
        site: str,
        kind: str,
        at: int = 1,
        param: float = 0.0,
        repeat: int = 1,
    ) -> "FaultPlan":
        """A one-event plan (the common unit in targeted tests)."""
        return cls(
            (FaultEvent(site=site, kind=kind, at=at, param=param, repeat=repeat),)
        )

    @classmethod
    def expand(
        cls,
        key: str | int,
        n_events: int = 3,
        include: Sequence[str] = FAULT_KINDS,
        sites: Sequence[str] | None = None,
        max_at: int = 4,
        max_repeat: int = 3,
        stall: float = 0.1,
        jump: float = 30.0,
    ) -> "FaultPlan":
        """Expand a chaos schedule deterministically from a seed key.

        The RNG is seeded with ``crc32(key)`` — the repo's standard
        stable hash — so the same key always yields the same plan, on
        any platform and any Python version.  ``include`` restricts the
        fault kinds drawn, ``sites`` the candidate sites; ``stall`` and
        ``jump`` scale the magnitude of stall and clock-jump events.
        """
        rng = random.Random(zlib.crc32(str(key).encode("utf-8")))
        wanted = frozenset(include)
        names = sorted(sites) if sites is not None else sorted(INJECTION_SITES)
        pool = [
            (name, kind)
            for name in names
            for kind in INJECTION_SITES[name].kinds
            if kind in wanted
        ]
        if not pool:
            return cls(())
        events: list[FaultEvent] = []
        for _ in range(n_events):
            site, kind = pool[rng.randrange(len(pool))]
            at = rng.randint(1, max_at)
            param = 0.0
            repeat = 1
            if kind == "stall":
                param = stall * rng.uniform(0.25, 1.0)
            elif kind == "clock-jump":
                param = jump * rng.uniform(0.25, 1.0)
            elif kind in _RAISING_KINDS or kind == "truncate":
                repeat = rng.randint(1, max_repeat)
            events.append(
                FaultEvent(site=site, kind=kind, at=at, param=param, repeat=repeat)
            )
        return cls(tuple(events))

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (``schema`` guards future layout changes)."""
        return {"schema": 1, "events": [ev.to_dict() for ev in self.events]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        if int(data.get("schema", 1)) != 1:
            raise ValidationError(
                f"unsupported fault plan schema {data.get('schema')!r}"
            )
        raw = data.get("events", [])
        return cls(tuple(FaultEvent.from_dict(entry) for entry in raw))


class FaultPlane:
    """The process-wide injection plane (use the :data:`FAULTS` singleton).

    Disarmed (the default) it is a single false attribute read at every
    site; :meth:`arm` installs a plan and resets all hit counts so every
    armed run starts from the same state.  Worker processes of the
    campaign fabric arm their own per-worker plans (or explicitly
    disarm, since forked children inherit the parent's plane).
    """

    __slots__ = ("enabled", "_events", "_counts")

    def __init__(self) -> None:
        self.enabled = False
        self._events: dict[str, tuple[FaultEvent, ...]] = {}
        self._counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def arm(self, plan: FaultPlan) -> None:
        """Install ``plan`` and reset every site's hit count."""
        grouped: dict[str, list[FaultEvent]] = {}
        for event in plan.events:
            grouped.setdefault(event.site, []).append(event)
        self._events = {site: tuple(evs) for site, evs in grouped.items()}
        self._counts = {}
        self.enabled = True

    def disarm(self) -> None:
        """Drop the plan; every site reverts to a no-op."""
        self.enabled = False
        self._events = {}
        self._counts = {}

    def hits(self, site: str) -> int:
        """How many times ``site`` has been struck since :meth:`arm`."""
        return self._counts.get(site, 0)

    # ------------------------------------------------------------------
    # the three site hooks
    # ------------------------------------------------------------------
    def hit(self, site: str) -> None:
        """Strike ``site``: raise / stall / kill if the plan says so."""
        self._strike(site, None)

    def mangle(self, site: str, text: str) -> str:
        """Strike a *write* site: like :meth:`hit`, plus truncation.

        Returns the (possibly truncated) text the caller should write —
        a torn write under the plan's control.
        """
        mangled = self._strike(site, text)
        return text if mangled is None else mangled

    def skew(self, site: str) -> float:
        """Strike a *clock* site: the injected offset now in effect.

        Clock jumps are persistent — once an event's trigger hit has
        passed, its ``param`` stays in the returned offset, like a step
        of the machine's real clock.
        """
        events = self._events.get(site)
        if not events:
            return 0.0
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        offset = 0.0
        for event in events:
            if event.kind != "clock-jump" or event.at > count:
                continue
            if event.at == count:
                self._record(event)
            offset += event.param
        return offset

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _strike(self, site: str, text: str | None) -> str | None:
        events = self._events.get(site)
        if not events:
            return text
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        for event in events:
            if event.kind == "clock-jump":
                continue
            if not (event.at <= count < event.at + event.repeat):
                continue
            kind = event.kind
            if kind == "truncate":
                if text is not None:
                    self._record(event)
                    text = text[: len(text) // 2]
                continue
            self._record(event)
            if kind == "stall":
                pause(event.param)
            elif kind == "operational":
                raise sqlite3.OperationalError(f"injected({site}): database is locked")
            elif kind == "enospc":
                raise OSError(
                    errno.ENOSPC, f"injected({site}): no space left on device"
                )
            elif kind == "sigkill":
                os.kill(os.getpid(), signal.SIGKILL)
        return text

    @staticmethod
    def _record(event: FaultEvent) -> None:
        if TELEMETRY.enabled:
            TELEMETRY.count("faults.injected")
            TELEMETRY.count(f"faults.injected.{event.kind}")


#: The module singleton every injection site consults.
FAULTS = FaultPlane()
