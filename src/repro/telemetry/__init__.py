"""Zero-cost-when-disabled instrumentation: counters + wall-clock spans.

Two strictly separated channels share one process-local collector:

* **Deterministic counters** — plain integer tallies (points evaluated,
  Howard rounds, cache hits, lease claims, store puts ...).  They never
  contain timing information, and the *contract* subset
  (:data:`CONTRACT_COUNTERS`) is partition-invariant: bit-identical
  across ``n_jobs`` values and fabric worker counts, so
  ``benchmarks/run_all.py`` can gate them like any other deterministic
  contract.
* **Wall-clock spans** — hierarchical ``campaign -> worker -> claim ->
  group-solve`` timings recorded with ``time.perf_counter``.  Spans are
  write-only diagnostics: no logic, contract, or export byte ever
  depends on them, which keeps the detlint DET105 invariant intact.

The collector is the module-level :data:`TELEMETRY` singleton, disabled
by default.  Every instrumentation point in the code base guards on
``TELEMETRY.enabled``, so the disabled cost is one attribute load and a
branch.  Traces are written per worker as canonical JSONL
(:func:`write_trace`), combined deterministically by
:func:`merge_traces`, and exported as a terminal summary
(:func:`render_summary`), Chrome trace-event JSON
(:func:`chrome_trace` — loadable in Perfetto), or a per-phase
attribution table (:func:`attribution`).

This package is the single place under ``src/`` where wall-clock reads
are legal: detlint rule DET108 flags ``time.monotonic`` and
``time.perf_counter`` anywhere else.
"""

from .core import (
    CONTRACT_COUNTERS,
    TELEMETRY,
    SpanRecord,
    Telemetry,
    contract_counters,
    is_contract_counter,
)
from .export import attribution, chrome_trace, merged_from_chrome, render_summary
from .trace import TRACE_SCHEMA, merge_traces, read_trace, trace_files, write_trace

__all__ = [
    "CONTRACT_COUNTERS",
    "TELEMETRY",
    "TRACE_SCHEMA",
    "SpanRecord",
    "Telemetry",
    "attribution",
    "chrome_trace",
    "contract_counters",
    "is_contract_counter",
    "merge_traces",
    "merged_from_chrome",
    "read_trace",
    "render_summary",
    "trace_files",
    "write_trace",
]
